//! # Lelantus — fine-granularity copy-on-write for secure NVMs
//!
//! Umbrella crate for the reproduction of *"Lelantus: Fine-Granularity
//! Copy-On-Write Operations for Secure Non-Volatile Memories"* (ISCA
//! 2020). It re-exports every subsystem crate so applications and the
//! examples can depend on a single crate:
//!
//! * [`types`] — shared address/page/cycle newtypes,
//! * [`crypto`] — AES-128 counter-mode encryption, SipHash, Merkle tree,
//! * [`nvm`] — the NVM device timing model,
//! * [`cache`] — the L1/L2/L3 cache hierarchy,
//! * [`metadata`] — split-counter security metadata and caches,
//! * [`os`] — the kernel memory-management model (fork, CoW, rmap),
//! * [`core`] — the secure memory controller and the CoW schemes,
//! * [`sim`] — the full-system simulator,
//! * [`trace`] — the `.ltr` binary access-trace format (record/replay),
//! * [`workloads`] — the paper's benchmark workload generators,
//! * [`bench`] — the bench harness and results tooling.
//!
//! See `README.md` for a tour and `DESIGN.md` for the architecture.

pub use lelantus_bench as bench;
pub use lelantus_cache as cache;
pub use lelantus_core as core;
pub use lelantus_crypto as crypto;
pub use lelantus_metadata as metadata;
pub use lelantus_nvm as nvm;
pub use lelantus_os as os;
pub use lelantus_sim as sim;
pub use lelantus_trace as trace;
pub use lelantus_types as types;
pub use lelantus_workloads as workloads;
