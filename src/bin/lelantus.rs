//! `lelantus` — command-line experiment runner.
//!
//! ```console
//! $ lelantus list
//! $ lelantus run --workload forkbench --scheme lelantus --pages 2m
//! $ lelantus compare --workload redis --pages 4k --json
//! ```
//!
//! `run` executes one workload on one scheme and prints its metrics;
//! `compare` runs all four schemes and reports speedups and write
//! reductions against the baseline (a single Fig 9 column).

use lelantus::os::CowStrategy;
use lelantus::sim::{SimConfig, SimMetrics, System};
use lelantus::types::PageSize;
use lelantus::workloads::{
    bootwl::Boot, compilewl::Compile, forkbench::Forkbench, hotspot::Hotspot,
    mariadbwl::Mariadb, noncopy::NonCopy, rediswl::Redis, shellwl::Shell, Workload, WorkloadRun,
};
use std::collections::HashMap;
use std::process::ExitCode;

const WORKLOADS: &[&str] =
    &["boot", "compile", "forkbench", "redis", "mariadb", "shell", "non-copy", "hotspot"];
const SCHEMES: &[&str] = &["baseline", "silent-shredder", "lelantus", "lelantus-cow"];

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  lelantus list
  lelantus run     --workload <name> [--scheme <s>] [--pages 4k|2m] [--scale small|medium|paper] [--json]
  lelantus compare --workload <name> [--pages 4k|2m] [--scale ...] [--json]

workloads: {}
schemes:   {} (default: lelantus)",
        WORKLOADS.join(", "),
        SCHEMES.join(", ")
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}`"));
        };
        if key == "json" {
            flags.insert("json".into(), "true".into());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("--{key} needs a value"));
        };
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn scheme_of(name: &str) -> Option<CowStrategy> {
    match name {
        "baseline" => Some(CowStrategy::Baseline),
        "silent-shredder" | "ss" => Some(CowStrategy::SilentShredder),
        "lelantus" => Some(CowStrategy::Lelantus),
        "lelantus-cow" | "cow" => Some(CowStrategy::LelantusCow),
        _ => None,
    }
}

fn pages_of(name: &str) -> Option<PageSize> {
    match name {
        "4k" | "4K" | "4kb" => Some(PageSize::Regular4K),
        "2m" | "2M" | "2mb" => Some(PageSize::Huge2M),
        _ => None,
    }
}

fn workload_of(name: &str, scale: &str) -> Option<Box<dyn Workload>> {
    let small = scale == "small";
    let paper = scale == "paper";
    Some(match name {
        "boot" => {
            if small {
                Box::new(Boot::small())
            } else if paper {
                Box::new(Boot::default())
            } else {
                Box::new(Boot { services: 16, shared_bytes: 1 << 20, ..Boot::default() })
            }
        }
        "compile" => {
            if small {
                Box::new(Compile::small())
            } else if paper {
                Box::new(Compile::default())
            } else {
                Box::new(Compile { heap_bytes: 6 << 20, rewrite_ops: 12_000, ..Compile::default() })
            }
        }
        "forkbench" => {
            let total = if small {
                2 << 20
            } else if paper {
                16 << 20
            } else {
                4 << 20
            };
            Box::new(Forkbench { total_bytes: total, bytes_per_page: None })
        }
        "redis" => {
            if small {
                Box::new(Redis::small())
            } else if paper {
                Box::new(Redis::default())
            } else {
                Box::new(Redis { pairs: 20_000, operations: 4_000, ..Redis::default() })
            }
        }
        "mariadb" => {
            if small {
                Box::new(Mariadb::small())
            } else if paper {
                Box::new(Mariadb::default())
            } else {
                Box::new(Mariadb { buffer_pool_bytes: 4 << 20, rows: 24_000, ..Mariadb::default() })
            }
        }
        "shell" => {
            if small {
                Box::new(Shell::small())
            } else if paper {
                Box::new(Shell::default())
            } else {
                Box::new(Shell { directories: 24, ..Shell::default() })
            }
        }
        "non-copy" | "noncopy" => {
            Box::new(NonCopy { total_bytes: if small { 1 << 20 } else { 4 << 20 } })
        }
        "hotspot" => Box::new(if small { Hotspot::small() } else { Hotspot::default() }),
        _ => return None,
    })
}

fn run_one(workload: &dyn Workload, strategy: CowStrategy, pages: PageSize) -> WorkloadRun {
    let mut sys = System::new(SimConfig::new(strategy, pages));
    workload.run(&mut sys).unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    })
}

fn print_metrics_text(label: &str, m: &SimMetrics) {
    println!("{label}");
    println!("  cycles              {}", m.cycles.as_u64());
    println!("  nvm line writes     {}", m.nvm.line_writes);
    println!("  nvm line reads      {}", m.nvm.line_reads);
    println!("  cow faults          {}", m.kernel.cow_faults);
    println!("  redirected reads    {}", m.controller.redirected_reads);
    println!("  implicit copies     {}", m.controller.implicit_copies);
    println!("  page_copy cmds      {}", m.controller.cmd_page_copy);
    println!("  page_phyc cmds      {}", m.controller.cmd_page_phyc);
    println!("  counter overflows   {}", m.controller.minor_overflows);
    println!("  tlb walks           {}", m.tlb.walks);
}

fn json_metrics(m: &SimMetrics) -> String {
    format!(
        concat!(
            "{{\"cycles\":{},\"nvm_writes\":{},\"nvm_reads\":{},\"cow_faults\":{},",
            "\"redirected_reads\":{},\"implicit_copies\":{},\"page_copy\":{},",
            "\"page_phyc\":{},\"overflows\":{},\"tlb_walks\":{}}}"
        ),
        m.cycles.as_u64(),
        m.nvm.line_writes,
        m.nvm.line_reads,
        m.kernel.cow_faults,
        m.controller.redirected_reads,
        m.controller.implicit_copies,
        m.controller.cmd_page_copy,
        m.controller.cmd_page_phyc,
        m.controller.minor_overflows,
        m.tlb.walks,
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { return usage() };
    match command.as_str() {
        "list" => {
            println!("workloads: {}", WORKLOADS.join(", "));
            println!("schemes:   {}", SCHEMES.join(", "));
            println!("pages:     4k, 2m");
            println!("scales:    small, medium, paper");
            ExitCode::SUCCESS
        }
        "run" | "compare" => {
            let flags = match parse_flags(&args[1..]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            let scale = flags.get("scale").map(String::as_str).unwrap_or("medium");
            let Some(wl_name) = flags.get("workload") else {
                eprintln!("error: --workload is required");
                return usage();
            };
            let Some(workload) = workload_of(wl_name, scale) else {
                eprintln!("error: unknown workload `{wl_name}`");
                return usage();
            };
            let Some(pages) = pages_of(flags.get("pages").map(String::as_str).unwrap_or("4k"))
            else {
                eprintln!("error: bad --pages");
                return usage();
            };
            let json = flags.contains_key("json");
            if command == "run" {
                let Some(strategy) =
                    scheme_of(flags.get("scheme").map(String::as_str).unwrap_or("lelantus"))
                else {
                    eprintln!("error: bad --scheme");
                    return usage();
                };
                let run = run_one(workload.as_ref(), strategy, pages);
                if json {
                    println!(
                        "{{\"workload\":\"{}\",\"scheme\":\"{strategy}\",\"pages\":\"{pages}\",\"metrics\":{}}}",
                        workload.name(),
                        json_metrics(&run.measured)
                    );
                } else {
                    print_metrics_text(
                        &format!("{} / {strategy} / {pages} pages", workload.name()),
                        &run.measured,
                    );
                }
            } else {
                let base = run_one(workload.as_ref(), CowStrategy::Baseline, pages);
                let mut rows = Vec::new();
                for strategy in CowStrategy::all() {
                    let run = if strategy == CowStrategy::Baseline {
                        base.measured
                    } else {
                        run_one(workload.as_ref(), strategy, pages).measured
                    };
                    rows.push((
                        strategy.to_string(),
                        run.cycles.as_u64(),
                        run.speedup_vs(&base.measured),
                        run.nvm.line_writes,
                        run.write_fraction_vs(&base.measured),
                    ));
                }
                if json {
                    let body: Vec<String> = rows
                        .iter()
                        .map(|(s, c, sp, w, wf)| {
                            format!(
                                "{{\"scheme\":\"{s}\",\"cycles\":{c},\"speedup\":{sp:.4},\"nvm_writes\":{w},\"write_fraction\":{wf:.4}}}"
                            )
                        })
                        .collect();
                    println!(
                        "{{\"workload\":\"{}\",\"pages\":\"{pages}\",\"schemes\":[{}]}}",
                        workload.name(),
                        body.join(",")
                    );
                } else {
                    println!("{} / {pages} pages", workload.name());
                    println!(
                        "{:>16}  {:>12}  {:>8}  {:>12}  {:>8}",
                        "scheme", "cycles", "speedup", "NVM writes", "writes%"
                    );
                    for (s, c, sp, w, wf) in rows {
                        println!(
                            "{s:>16}  {c:>12}  {:>8}  {w:>12}  {:>8}",
                            format!("{sp:.2}x"),
                            format!("{:.1}%", wf * 100.0)
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
