//! `lelantus` — command-line experiment runner.
//!
//! ```console
//! $ lelantus list
//! $ lelantus run --workload forkbench --scheme lelantus --pages 2m
//! $ lelantus compare --workload redis --pages 4k --json
//! ```
//!
//! `run` executes one workload on one scheme and prints its metrics;
//! `compare` runs all four schemes and reports speedups and write
//! reductions against the baseline (a single Fig 9 column);
//! `report` runs one workload with tracing enabled and produces the
//! attribution story: per-event counts, latency histograms, an epoch
//! time series, and optional JSONL / chrome://tracing exports;
//! `profile` runs one workload with the cycle-attribution ledger and
//! prints the per-category overhead breakdown (optionally as
//! flamegraph-folded stacks or a chrome trace);
//! `tail` sweeps every paper workload across all schemes with the
//! per-fault span recorder and reports p50/p99/p999 fault latency
//! (recorded into `BENCH_RESULTS.json`);
//! `bench-diff` compares two `BENCH_RESULTS.json` snapshots and exits
//! non-zero on regression.

use lelantus::bench::diff::{diff, parse_results};
use lelantus::bench::results::{emit, Record};
use lelantus::os::CowStrategy;
use lelantus::sim::{
    chrome_trace, chrome_trace_with_spans, explain_divergence, replay, selfprof, CounterSeries,
    CycleCategory, CycleLedger, EpochSample, EventKind, FaultAction, HeatGrid, HeatLane, HistKind,
    JsonlProbe, NullProbe, Probe, ReplayError, ReplayStats, RingProbe, SimConfig, SimMetrics, Span,
    System, TailRecorder, TailSummary, TeeProbe, Trace, TraceError, TraceHeader, TraceRecorder,
};
use lelantus::types::PageSize;
use lelantus::workloads::{
    bootwl::Boot, compilewl::Compile, forkbench::Forkbench, hotspot::Hotspot, mariadbwl::Mariadb,
    noncopy::NonCopy, rediswl::Redis, shellwl::Shell, stormwl::Storm, Workload, WorkloadRun,
};
use std::collections::HashMap;
use std::process::ExitCode;

const WORKLOADS: &[&str] =
    &["boot", "compile", "forkbench", "redis", "mariadb", "shell", "non-copy", "hotspot"];
const SCHEMES: &[&str] = &["baseline", "silent-shredder", "lelantus", "lelantus-cow"];

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  lelantus list
  lelantus run     --workload <name> [--scheme <s>] [--pages 4k|2m] [--scale small|medium|paper] [--json]
  lelantus run     --trace <file.ltr> [--scheme <s>] [--json]
                   (replay a recorded binary trace through one scheme; geometry
                    comes from the trace header)
  lelantus record  <workload> -o <file.ltr> [--scheme <s>] [--pages 4k|2m] [--scale ...] [--json]
                   (run the workload with the trace recorder attached and write
                    every state-changing operation to a replayable .ltr file)
  lelantus compare --workload <name> [--pages 4k|2m] [--scale ...] [--json]
  lelantus compare --trace <file.ltr> [--json]
                   (replay one trace through all four schemes: Fig 9 from a trace)
  lelantus report  --workload <name> [--scheme <s>] [--pages 4k|2m] [--scale ...] [--json]
                   [--replay <file.ltr>]  (drive the report from a recorded trace
                    instead of a synthetic workload; --workload is then ignored)
                   [--epoch <cycles>] [--ring <events>] [--events <out.jsonl>] [--trace <out.json>]
                   [--workers <n>]  (n > 0 runs the parallel sharded engine and reports its stats)
                   [--tail]  (per-fault span recording: percentiles, per-action breakdown,
                              worst offenders, per-epoch tail series)
  lelantus profile --workload <name> [--scheme <s>] [--pages 4k|2m] [--scale ...] [--json]
                   [--epoch <cycles>] [--folded <out.folded>] [--trace <out.json>] [--workers <n>]
  lelantus tail    [--pages 4k|2m] [--scale ...] [--workers <n>] [--json] [--top-k <n>]
                   (fig11-style sweep: p50/p99/p999 fault latency for every paper workload x
                    scheme; records into BENCH_RESULTS.json)
  lelantus storm   [--tenants <n>] [--depth <n>] [--region-kb <n>] [--touched <n>]
                   [--workers <n>] [--small] [--json]
                   (fork-storm multi-tenant kernel-plane sweep: every scheme at
                    1024 tenants x 1152-page regions by default; records throughput,
                    fault tails and resident pages into BENCH_RESULTS.json)
  lelantus heatmap [--pages 4k|2m] [--scale ...] [--small] [--workers <n>] [--top <n>] [--json]
                   (spatial sweep: forkbench/redis/storm on every scheme with the
                    region heat grid; hottest regions, Gini and top-1% concentration
                    recorded into BENCH_RESULTS.json)
  lelantus convert <in.csv> -o <out.ltr> [--scheme <s>] [--pages 4k|2m] [--arena-mb <n>] [--json]
                   (convert an external `pid,op,va,len` text trace to a replayable
                    .ltr file; op is r or w, numbers decimal or 0x-hex, `#` comments)
  lelantus bench-diff <baseline.json> <candidate.json> [--tolerance <frac>] [--json]

subcommands: list, run, record, convert, compare, report, profile, tail, storm,
             heatmap, bench-diff
report also takes --heatmap (spatial heat table; --json adds a stable \"heatmap\"
key, null when off) and --grid <out.pgm|out.csv> (per-lane grid export).

trace exit codes:  10 io, 11 bad magic, 12 bad version, 13 truncated,
                   14 checksum mismatch, 15 bad header, 16 bad record
replay exit codes: 17 os error, 18 geometry mismatch, 19 divergence,
                   20 recovery failure

workloads: {}
schemes:   {} (default: lelantus)",
        WORKLOADS.join(", "),
        SCHEMES.join(", ")
    );
    ExitCode::from(2)
}

/// [`parse_flags`] with the shared failure path: print the error,
/// print usage, hand back the usage exit code.
fn parse_or_usage(args: &[String]) -> Result<HashMap<String, String>, ExitCode> {
    parse_flags(args).map_err(|e| {
        eprintln!("error: {e}");
        usage()
    })
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}`"));
        };
        if key == "json" || key == "tail" || key == "small" || key == "heatmap" {
            flags.insert(key.to_string(), "true".into());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("--{key} needs a value"));
        };
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn scheme_of(name: &str) -> Option<CowStrategy> {
    match name {
        "baseline" => Some(CowStrategy::Baseline),
        "silent-shredder" | "ss" => Some(CowStrategy::SilentShredder),
        "lelantus" => Some(CowStrategy::Lelantus),
        "lelantus-cow" | "cow" => Some(CowStrategy::LelantusCow),
        _ => None,
    }
}

fn pages_of(name: &str) -> Option<PageSize> {
    match name {
        "4k" | "4K" | "4kb" => Some(PageSize::Regular4K),
        "2m" | "2M" | "2mb" => Some(PageSize::Huge2M),
        _ => None,
    }
}

fn workload_of<P: Probe>(name: &str, scale: &str) -> Option<Box<dyn Workload<P>>> {
    let small = scale == "small";
    let paper = scale == "paper";
    Some(match name {
        "boot" => {
            if small {
                Box::new(Boot::small())
            } else if paper {
                Box::new(Boot::default())
            } else {
                Box::new(Boot { services: 16, shared_bytes: 1 << 20, ..Boot::default() })
            }
        }
        "compile" => {
            if small {
                Box::new(Compile::small())
            } else if paper {
                Box::new(Compile::default())
            } else {
                Box::new(Compile { heap_bytes: 6 << 20, rewrite_ops: 12_000, ..Compile::default() })
            }
        }
        "forkbench" => {
            let total = if small {
                2 << 20
            } else if paper {
                16 << 20
            } else {
                4 << 20
            };
            Box::new(Forkbench { total_bytes: total, bytes_per_page: None })
        }
        "redis" => {
            if small {
                Box::new(Redis::small())
            } else if paper {
                Box::new(Redis::default())
            } else {
                Box::new(Redis { pairs: 20_000, operations: 4_000, ..Redis::default() })
            }
        }
        "mariadb" => {
            if small {
                Box::new(Mariadb::small())
            } else if paper {
                Box::new(Mariadb::default())
            } else {
                Box::new(Mariadb { buffer_pool_bytes: 4 << 20, rows: 24_000, ..Mariadb::default() })
            }
        }
        "shell" => {
            if small {
                Box::new(Shell::small())
            } else if paper {
                Box::new(Shell::default())
            } else {
                Box::new(Shell { directories: 24, ..Shell::default() })
            }
        }
        "non-copy" | "noncopy" => {
            Box::new(NonCopy { total_bytes: if small { 1 << 20 } else { 4 << 20 } })
        }
        "hotspot" => Box::new(if small { Hotspot::small() } else { Hotspot::default() }),
        _ => return None,
    })
}

fn run_one(workload: &dyn Workload, strategy: CowStrategy, pages: PageSize) -> WorkloadRun {
    let mut sys = System::new(SimConfig::new(strategy, pages));
    workload.run(&mut sys).unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    })
}

/// Distinct non-zero exit code per malformed-trace failure, so CI and
/// scripts can tell truncation from tampering without parsing stderr.
fn trace_exit_code(e: &TraceError) -> u8 {
    match e {
        TraceError::Io(_) => 10,
        TraceError::BadMagic => 11,
        TraceError::BadVersion { .. } => 12,
        TraceError::Truncated => 13,
        TraceError::ChecksumMismatch { .. } => 14,
        TraceError::BadHeader { .. } => 15,
        TraceError::BadRecord { .. } => 16,
    }
}

fn replay_exit_code(e: &ReplayError) -> u8 {
    match e {
        ReplayError::Trace(t) => trace_exit_code(t),
        ReplayError::Os(_) => 17,
        ReplayError::Geometry { .. } => 18,
        ReplayError::Divergence { .. } => 19,
        ReplayError::Recovery(_) => 20,
    }
}

/// Opens and validates a `.ltr` file, exiting with the per-error code
/// on failure.
fn open_trace_or_exit(path: &str) -> Trace {
    Trace::open(path).unwrap_or_else(|e| {
        eprintln!("error: cannot open trace {path}: {e}");
        std::process::exit(trace_exit_code(&e) as i32);
    })
}

/// One replay of `trace` under `strategy` (geometry from the trace
/// header), returning final metrics, replay stats, and the ingest
/// wall-clock seconds. Exits with the per-error code on failure; a
/// divergence additionally prints the spatial context report (with
/// heat lanes when `heatmap` is on).
fn replay_one(
    trace: &Trace,
    strategy: CowStrategy,
    path: &str,
    heatmap: bool,
) -> (SimMetrics, ReplayStats, f64) {
    let header = trace.header();
    let mut cfg = SimConfig::new(strategy, header.page_size).with_phys_bytes(header.phys_bytes);
    if heatmap {
        cfg = cfg.with_heatmap();
    }
    let mut sys = System::new(cfg);
    let start = std::time::Instant::now();
    let stats = match replay(&mut sys, trace) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: replaying {path} under {strategy} failed: {e}");
            if let Some(report) = explain_divergence(&mut sys, trace, &e) {
                eprint!("{report}");
            }
            std::process::exit(replay_exit_code(&e) as i32);
        }
    };
    let wall = start.elapsed().as_secs_f64();
    (sys.finish(), stats, wall)
}

/// The stable `"trace"` object `run`/`report --json` carry: the source
/// file, what was ingested, and the end-to-end ingest rate. `None`
/// renders as `null` (synthetic workload, schema key still present).
fn trace_json(src: Option<(&str, &Trace, &ReplayStats, f64)>) -> String {
    let Some((path, trace, stats, wall)) = src else { return "null".into() };
    format!(
        concat!(
            "{{\"source\":\"{}\",\"file_bytes\":{},\"mapped\":{},\"records\":{},",
            "\"ops\":{},\"batches\":{},\"payload_bytes\":{},\"ingest_ops_per_s\":{:.0}}}"
        ),
        path,
        trace.file_bytes(),
        trace.is_mapped(),
        stats.records,
        stats.ops,
        stats.batches,
        stats.payload_bytes,
        stats.ops as f64 / wall.max(1e-9),
    )
}

/// `lelantus run --trace` / `lelantus compare --trace`: replay a
/// recorded `.ltr` file through one scheme (or all four, comparing
/// against the replayed baseline exactly like a synthetic `compare`).
fn trace_run(single: bool, path: &str, flags: &HashMap<String, String>) -> ExitCode {
    let json = flags.contains_key("json");
    let trace = open_trace_or_exit(path);
    let pages = trace.header().page_size;
    if single {
        let Some(strategy) =
            scheme_of(flags.get("scheme").map(String::as_str).unwrap_or("lelantus"))
        else {
            eprintln!("error: bad --scheme");
            return usage();
        };
        let (m, stats, wall) = replay_one(&trace, strategy, path, flags.contains_key("heatmap"));
        if json {
            println!(
                "{{\"workload\":\"trace\",\"scheme\":\"{strategy}\",\"pages\":\"{pages}\",\"metrics\":{},\"trace\":{}}}",
                json_metrics(&m),
                trace_json(Some((path, &trace, &stats, wall))),
            );
        } else {
            print_metrics_text(&format!("{path} / {strategy} / {pages} pages (replay)"), &m);
            println!(
                "  ingested {} ops in {} records ({:.1}M ops/s end-to-end, {})",
                stats.ops,
                stats.records,
                stats.ops as f64 / wall.max(1e-9) / 1e6,
                if trace.is_mapped() { "mmap" } else { "buffered" },
            );
        }
        return ExitCode::SUCCESS;
    }
    // compare: the same trace through every scheme.
    let (base, base_stats, base_wall) = replay_one(&trace, CowStrategy::Baseline, path, false);
    let mut rows = Vec::new();
    for strategy in CowStrategy::all() {
        let m = if strategy == CowStrategy::Baseline {
            base
        } else {
            replay_one(&trace, strategy, path, false).0
        };
        rows.push((
            strategy.to_string(),
            m.cycles.as_u64(),
            m.speedup_vs(&base),
            m.nvm.line_writes,
            m.write_fraction_vs(&base),
        ));
    }
    if json {
        let body: Vec<String> = rows
            .iter()
            .map(|(s, c, sp, w, wf)| {
                format!(
                    "{{\"scheme\":\"{s}\",\"cycles\":{c},\"speedup\":{sp:.4},\"nvm_writes\":{w},\"write_fraction\":{wf:.4}}}"
                )
            })
            .collect();
        println!(
            "{{\"workload\":\"trace\",\"pages\":\"{pages}\",\"schemes\":[{}],\"trace\":{}}}",
            body.join(","),
            trace_json(Some((path, &trace, &base_stats, base_wall))),
        );
    } else {
        println!("{path} / {pages} pages (replayed through every scheme)");
        println!(
            "{:>16}  {:>12}  {:>8}  {:>12}  {:>8}",
            "scheme", "cycles", "speedup", "NVM writes", "writes%"
        );
        for (s, c, sp, w, wf) in rows {
            println!(
                "{s:>16}  {c:>12}  {:>8}  {w:>12}  {:>8}",
                format!("{sp:.2}x"),
                format!("{:.1}%", wf * 100.0)
            );
        }
    }
    ExitCode::SUCCESS
}

/// `lelantus record <workload> -o <file.ltr>`: run a workload with the
/// trace recorder attached and seal the binary trace.
fn record_cmd(args: &[String]) -> ExitCode {
    let mut wl_name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut flag_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("error: {arg} needs a file path");
                    return usage();
                }
            },
            a if !a.starts_with('-') && wl_name.is_none() => wl_name = Some(a.to_string()),
            _ => flag_args.push(arg.clone()),
        }
    }
    let flags = match parse_or_usage(&flag_args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let Some(wl_name) = wl_name.or_else(|| flags.get("workload").cloned()) else {
        eprintln!("error: record needs a workload (positional or --workload)");
        return usage();
    };
    let Some(out) = out else {
        eprintln!("error: record needs -o <file.ltr>");
        return usage();
    };
    let scale = flags.get("scale").map(String::as_str).unwrap_or("medium");
    let Some(workload) = workload_of::<NullProbe>(&wl_name, scale) else {
        eprintln!("error: unknown workload `{wl_name}`");
        return usage();
    };
    let Some(pages) = pages_of(flags.get("pages").map(String::as_str).unwrap_or("4k")) else {
        eprintln!("error: bad --pages");
        return usage();
    };
    let Some(strategy) = scheme_of(flags.get("scheme").map(String::as_str).unwrap_or("lelantus"))
    else {
        eprintln!("error: bad --scheme");
        return usage();
    };
    let json = flags.contains_key("json");

    let cfg = SimConfig::new(strategy, pages);
    let header = TraceHeader { page_size: pages, phys_bytes: cfg.kernel.phys_bytes };
    let rec = match TraceRecorder::create(&out, header) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot create {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut sys = System::new(cfg);
    sys.record_into(rec.clone());
    let start = std::time::Instant::now();
    let run = workload.run(&mut sys).unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    });
    sys.stop_recording();
    let totals = match rec.finish() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: writing {out} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall = start.elapsed().as_secs_f64();
    // Full-system metrics: what a replay of this trace reproduces
    // bit-for-bit (the workload's `measured` window excludes setup).
    let full = sys.metrics();
    let file_bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    if json {
        println!(
            concat!(
                "{{\"workload\":\"{}\",\"scheme\":\"{}\",\"pages\":\"{}\",\"out\":\"{}\",",
                "\"records\":{},\"ops\":{},\"file_bytes\":{},\"bytes_per_op\":{:.2},",
                "\"wall_clock_s\":{:.3},\"metrics\":{},\"metrics_full\":{}}}"
            ),
            workload.name(),
            strategy,
            pages,
            out,
            totals.records,
            totals.ops,
            file_bytes,
            file_bytes as f64 / totals.ops.max(1) as f64,
            wall,
            json_metrics(&run.measured),
            json_metrics(&full),
        );
    } else {
        println!("recorded {} / {strategy} / {pages} pages -> {out}", workload.name());
        println!(
            "  {} records, {} ops, {} bytes ({:.2} B/op), {wall:.2}s",
            totals.records,
            totals.ops,
            file_bytes,
            file_bytes as f64 / totals.ops.max(1) as f64
        );
        println!("  replay with: lelantus run --trace {out}");
    }
    ExitCode::SUCCESS
}

fn print_metrics_text(label: &str, m: &SimMetrics) {
    println!("{label}");
    println!("  cycles              {}", m.cycles.as_u64());
    println!("  nvm line writes     {}", m.nvm.line_writes);
    println!("  nvm line reads      {}", m.nvm.line_reads);
    println!("  cow faults          {}", m.kernel.cow_faults);
    println!("  redirected reads    {}", m.controller.redirected_reads);
    println!("  implicit copies     {}", m.controller.implicit_copies);
    println!("  page_copy cmds      {}", m.controller.cmd_page_copy);
    println!("  page_phyc cmds      {}", m.controller.cmd_page_phyc);
    println!("  counter overflows   {}", m.controller.minor_overflows);
    println!("  tlb walks           {}", m.tlb.walks);
    println!(
        "  tlb front hits      {} ({:.1}% of lookups served by the run cache)",
        m.tlb.front_hits,
        tlb_front_hit_rate(m) * 100.0
    );
}

/// Fraction of TLB lookups answered by the last-translation front
/// cache (the batched driver's run cache; a subset of L1 hits).
fn tlb_front_hit_rate(m: &SimMetrics) -> f64 {
    let lookups = m.tlb.l1_hits + m.tlb.l2_hits + m.tlb.walks;
    if lookups == 0 {
        return 0.0;
    }
    m.tlb.front_hits as f64 / lookups as f64
}

fn json_metrics(m: &SimMetrics) -> String {
    format!(
        concat!(
            "{{\"cycles\":{},\"nvm_writes\":{},\"nvm_reads\":{},\"cow_faults\":{},",
            "\"redirected_reads\":{},\"implicit_copies\":{},\"page_copy\":{},",
            "\"page_phyc\":{},\"overflows\":{},\"tlb_walks\":{},",
            "\"tlb_front_hits\":{},\"tlb_front_hit_rate\":{:.4}}}"
        ),
        m.cycles.as_u64(),
        m.nvm.line_writes,
        m.nvm.line_reads,
        m.kernel.cow_faults,
        m.controller.redirected_reads,
        m.controller.implicit_copies,
        m.controller.cmd_page_copy,
        m.controller.cmd_page_phyc,
        m.controller.minor_overflows,
        m.tlb.walks,
        m.tlb.front_hits,
        tlb_front_hit_rate(m),
    )
}

/// The `report` subcommand's probe: a bounded ring for the in-process
/// summary teed with an optional streaming JSONL file. One
/// monomorphization covers both `--events` and not.
type ReportProbe = TeeProbe<RingProbe, Option<JsonlProbe>>;

/// Renders the parallel engine's run statistics (`null` for the
/// serial engine): aggregate counts plus the per-shard breakdown with
/// each shard's host-time ledger (AES / MAC / Merkle-walk work).
fn par_json(par: Option<&lelantus::sim::ParStats>) -> String {
    let Some(p) = par else { return "null".into() };
    let shards: Vec<String> = p
        .shards
        .iter()
        .map(|s| {
            let cats: Vec<String> = CycleCategory::ALL
                .iter()
                .filter(|&&c| s.stats.ledger.get(c) > 0)
                .map(|&c| format!("\"{}\":{}", c.name(), s.stats.ledger.get(c)))
                .collect();
            format!(
                concat!(
                    "{{\"shard\":{},\"stores\":{},\"mac_tags\":{},\"leaf_hashes\":{},",
                    "\"cross_shard\":{},\"resident_lines\":{},\"regions_touched\":{},",
                    "\"host_ns\":{},\"host_ledger_ns\":{{{}}}}}"
                ),
                s.shard,
                s.stats.stores,
                s.stats.mac_tags,
                s.stats.leaf_hashes,
                s.stats.cross_shard,
                s.resident_lines,
                s.regions_touched,
                s.stats.host_ns,
                cats.join(","),
            )
        })
        .collect();
    format!(
        "{{\"workers\":{},\"barriers\":{},\"ops_dispatched\":{},\"cross_shard_messages\":{},\"shards\":[{}]}}",
        p.workers,
        p.barriers,
        p.ops_dispatched,
        p.cross_shard_messages,
        shards.join(","),
    )
}

fn hist_json(h: &lelantus::sim::Histogram) -> String {
    format!(
        "{{\"count\":{},\"mean\":{:.3},\"max\":{},\"p50\":{},\"p99\":{}}}",
        h.count,
        h.mean(),
        h.max,
        h.quantile_bound(0.50),
        h.quantile_bound(0.99),
    )
}

fn tail_summary_json(s: &TailSummary) -> String {
    format!(
        "{{\"count\":{},\"mean\":{:.3},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
        s.count,
        s.mean(),
        s.max,
        s.p50,
        s.p90,
        s.p99,
        s.p999,
    )
}

fn ledger_json(l: &CycleLedger) -> String {
    let cats: Vec<String> = CycleCategory::ALL
        .iter()
        .filter(|&&c| l.get(c) > 0)
        .map(|&c| format!("\"{}\":{}", c.name(), l.get(c)))
        .collect();
    format!("{{{}}}", cats.join(","))
}

/// Renders the tail recorder's state (`null` when `--tail` is off so
/// the JSON schema stays stable): overall summary, one summary per
/// action (all six keys always present), the worst-offender exemplars
/// with their per-span cycle breakdown, and the per-epoch percentile +
/// queue-depth time series.
fn tail_json(tail: Option<&TailRecorder>, epochs: &[EpochSample]) -> String {
    let Some(t) = tail else { return "null".into() };
    let actions: Vec<String> = FaultAction::ALL
        .iter()
        .map(|&a| {
            format!("\"{}\":{}", a.name(), tail_summary_json(&t.action_histogram(a).summary()))
        })
        .collect();
    let worst: Vec<String> = t
        .worst()
        .iter()
        .map(|s| {
            format!(
                "{{\"latency\":{},\"start\":{},\"end\":{},\"pid\":{},\"va\":{},\"pa\":{},\"action\":\"{}\",\"ledger\":{}}}",
                s.latency(),
                s.start,
                s.end,
                s.pid,
                s.va,
                s.pa,
                s.action.name(),
                ledger_json(&s.ledger),
            )
        })
        .collect();
    let series: Vec<String> = epochs
        .iter()
        .map(|e| {
            let q = e.hists.get(HistKind::WriteQueueDepth);
            format!(
                "{{\"end_cycle\":{},\"spans\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{},\"queue_depth_p99\":{},\"queue_depth_max\":{}}}",
                e.end_cycle.as_u64(),
                e.tail.count,
                e.tail.p50,
                e.tail.p99,
                e.tail.p999,
                e.tail.max,
                q.quantile_bound(0.99),
                q.max,
            )
        })
        .collect();
    format!(
        "{{\"top_k\":{},\"summary\":{},\"actions\":{{{}}},\"worst\":[{}],\"epochs\":[{}]}}",
        t.top_k(),
        tail_summary_json(&t.summary()),
        actions.join(","),
        worst.join(","),
        series.join(","),
    )
}

/// Renders the merged heat grid (`null` when `--heatmap` is off so the
/// JSON schema stays stable): extent, concentration summary, nonzero
/// per-lane totals, and the hottest regions.
fn heat_json(grid: Option<&HeatGrid>) -> String {
    let Some(g) = grid else { return "null".into() };
    let lanes: Vec<String> = HeatLane::ALL
        .iter()
        .filter(|&&l| g.lane_total(l) > 0)
        .map(|&l| format!("\"{}\":{}", l.name(), g.lane_total(l)))
        .collect();
    let top: Vec<String> = g
        .top_regions(10)
        .iter()
        .map(|&(r, t)| format!("{{\"region\":{r},\"total\":{t}}}"))
        .collect();
    format!(
        concat!(
            "{{\"regions\":{},\"touched\":{},\"total\":{},\"gini\":{:.4},",
            "\"top_share_1pct\":{:.4},\"lanes\":{{{}}},\"top\":[{}]}}"
        ),
        g.regions(),
        g.touched_regions(),
        g.total(),
        g.gini(),
        g.top_share(0.01),
        lanes.join(","),
        top.join(","),
    )
}

/// Human rendering of the heat grid: the concentration headline plus
/// the hottest regions with their dominant lanes.
fn print_heat_text(g: &HeatGrid) {
    println!();
    println!(
        "spatial heat: {} of {} regions touched, gini {:.3}, top-1% regions carry {:.1}%",
        g.touched_regions(),
        g.regions(),
        g.gini(),
        g.top_share(0.01) * 100.0,
    );
    println!("  {:>10} {:>12}  dominant lanes", "region", "heat");
    for (r, t) in g.top_regions(8) {
        let mut lanes: Vec<(&str, u32)> = HeatLane::ALL
            .iter()
            .map(|&l| (l.name(), g.get(l, r)))
            .filter(|&(_, c)| c > 0)
            .collect();
        lanes.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let dominant =
            lanes.iter().take(3).map(|(n, c)| format!("{n}={c}")).collect::<Vec<_>>().join(" ");
        println!("  {r:>10} {t:>12}  {dominant}");
    }
}

/// Exports the grid for plotting: a PGM (P2) image with one row per
/// lane and one column per region when `path` ends in `.pgm`, a sparse
/// `lane,region,count` CSV otherwise.
fn write_grid(path: &str, g: &HeatGrid) -> std::io::Result<()> {
    let regions = g.regions().max(1);
    if path.ends_with(".pgm") {
        let max =
            HeatLane::ALL.iter().flat_map(|&l| g.lane(l).iter().copied()).max().unwrap_or(0).max(1);
        let mut doc = format!("P2\n{regions} {}\n255\n", HeatLane::COUNT);
        for lane in HeatLane::ALL {
            let row = g.lane(lane);
            let cells: Vec<String> = (0..regions)
                .map(|i| {
                    let v = row.get(i).copied().unwrap_or(0);
                    (u64::from(v) * 255 / u64::from(max)).to_string()
                })
                .collect();
            doc.push_str(&cells.join(" "));
            doc.push('\n');
        }
        std::fs::write(path, doc)
    } else {
        let mut doc = String::from("lane,region,count\n");
        for lane in HeatLane::ALL {
            for (i, &c) in g.lane(lane).iter().enumerate() {
                if c > 0 {
                    doc.push_str(&format!("{},{i},{c}\n", lane.name()));
                }
            }
        }
        std::fs::write(path, doc)
    }
}

/// Human rendering of the tail recorder: per-action percentile table,
/// worst-offender exemplars, and the per-epoch tail / queue-depth
/// series.
fn print_tail_text(t: &TailRecorder, epochs: &[EpochSample]) {
    println!();
    println!("tail latency (cycles per fault span):");
    println!(
        "  {:<14} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "action", "count", "p50", "p90", "p99", "p999", "max"
    );
    let row = |label: &str, s: &TailSummary| {
        println!(
            "  {:<14} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            label, s.count, s.p50, s.p90, s.p99, s.p999, s.max
        );
    };
    row("overall", &t.summary());
    for action in FaultAction::ALL {
        let s = t.action_histogram(action).summary();
        if s.count > 0 {
            row(action.name(), &s);
        }
    }
    if !t.worst().is_empty() {
        println!();
        println!("worst offenders (top {}):", t.worst().len());
        println!(
            "  {:>9}  {:<14} {:>5} {:>14} {:>14}  breakdown",
            "latency", "action", "pid", "va", "pa"
        );
        for s in t.worst() {
            // The two biggest ledger categories tell the story; the
            // JSON output carries the full breakdown.
            let mut cats: Vec<(lelantus::sim::CycleCategory, u64)> = CycleCategory::ALL
                .iter()
                .map(|&c| (c, s.ledger.get(c)))
                .filter(|&(_, n)| n > 0)
                .collect();
            cats.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            let breakdown = if cats.is_empty() {
                "(enable --tail with profile/ledger for per-span cycles)".into()
            } else {
                cats.iter()
                    .take(2)
                    .map(|(c, n)| format!("{}={n}", c.name()))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            println!(
                "  {:>9}  {:<14} {:>5} {:>14x} {:>14x}  {breakdown}",
                s.latency(),
                s.action.name(),
                s.pid,
                s.va,
                s.pa,
            );
        }
    }
    let active: Vec<&EpochSample> = epochs.iter().filter(|e| e.tail.count > 0).collect();
    if !active.is_empty() {
        const SHOWN: usize = 12;
        println!();
        println!(
            "tail per epoch ({} epochs with spans, showing first {}):",
            active.len(),
            SHOWN.min(active.len())
        );
        println!(
            "  {:>14} {:>8} {:>9} {:>9} {:>9} {:>10} {:>10}",
            "end_cycle", "spans", "p50", "p99", "p999", "queue_p99", "queue_max"
        );
        for e in active.iter().take(SHOWN) {
            let q = e.hists.get(HistKind::WriteQueueDepth);
            println!(
                "  {:>14} {:>8} {:>9} {:>9} {:>9} {:>10} {:>10}",
                e.end_cycle.as_u64(),
                e.tail.count,
                e.tail.p50,
                e.tail.p99,
                e.tail.p999,
                q.quantile_bound(0.99),
                q.max,
            );
        }
    }
}

fn report(flags: &HashMap<String, String>) -> ExitCode {
    let scale = flags.get("scale").map(String::as_str).unwrap_or("medium");
    // `--replay <file.ltr>` swaps the synthetic workload for a
    // recorded trace; geometry then comes from the trace header.
    let replay_src: Option<(String, Trace)> =
        flags.get("replay").map(|p| (p.clone(), open_trace_or_exit(p)));
    let workload: Option<Box<dyn Workload<ReportProbe>>> = if replay_src.is_some() {
        None
    } else {
        let Some(wl_name) = flags.get("workload") else {
            eprintln!("error: --workload is required (or --replay <file.ltr>)");
            return usage();
        };
        let Some(w) = workload_of::<ReportProbe>(wl_name, scale) else {
            eprintln!("error: unknown workload `{wl_name}`");
            return usage();
        };
        Some(w)
    };
    let pages = match &replay_src {
        Some((_, t)) => t.header().page_size,
        None => {
            let Some(p) = pages_of(flags.get("pages").map(String::as_str).unwrap_or("4k")) else {
                eprintln!("error: bad --pages");
                return usage();
            };
            p
        }
    };
    let Some(strategy) = scheme_of(flags.get("scheme").map(String::as_str).unwrap_or("lelantus"))
    else {
        eprintln!("error: bad --scheme");
        return usage();
    };
    let epoch: u64 = match flags.get("epoch").map(String::as_str).unwrap_or("100000").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: bad --epoch");
            return usage();
        }
    };
    let ring_cap: usize = match flags.get("ring").map(String::as_str).unwrap_or("65536").parse() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("error: --ring needs a positive event count");
            return usage();
        }
    };
    let workers: usize = match flags.get("workers").map(String::as_str).unwrap_or("0").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: --workers needs a non-negative worker count (0 = serial engine)");
            return usage();
        }
    };
    let jsonl = match flags.get("events") {
        Some(path) => match JsonlProbe::create(path) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let json = flags.contains_key("json");
    let tail_enabled = flags.contains_key("tail");
    let heatmap_enabled = flags.contains_key("heatmap");

    let ring = RingProbe::new(ring_cap);
    let probe = TeeProbe::new(ring.clone(), jsonl.clone());
    let mut cfg = SimConfig::new(strategy, pages).with_epoch_interval(epoch);
    if let Some((_, t)) = &replay_src {
        cfg = cfg.with_phys_bytes(t.header().phys_bytes);
    }
    if workers > 0 {
        cfg = cfg.with_parallel(workers);
    }
    if tail_enabled {
        // The ledger rides along so each worst-offender span carries a
        // per-category cycle breakdown.
        cfg = cfg.with_tail_recorder().with_cycle_ledger();
    }
    if heatmap_enabled {
        cfg = cfg.with_heatmap();
    }
    let mut sys = System::with_probe(cfg, probe);
    let wl_name = workload.as_ref().map(|w| w.name()).unwrap_or("replay");
    let (run, replay_stats) = match (&workload, &replay_src) {
        (Some(w), _) => {
            let run = w.run(&mut sys).unwrap_or_else(|e| {
                eprintln!("simulation failed: {e}");
                std::process::exit(1);
            });
            (run, None)
        }
        (None, Some((path, trace))) => {
            let start = std::time::Instant::now();
            let stats = match replay(&mut sys, trace) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: replaying {path} failed: {e}");
                    if let Some(report) = explain_divergence(&mut sys, trace, &e) {
                        eprint!("{report}");
                    }
                    std::process::exit(replay_exit_code(&e) as i32);
                }
            };
            let wall = start.elapsed().as_secs_f64();
            let measured = sys.finish();
            (WorkloadRun { measured, logical_line_writes: stats.ops }, Some((stats, wall)))
        }
        (None, None) => unreachable!("either a workload or a replay source is set"),
    };
    let m = run.measured;
    // Syncs outstanding shard work first, so the report covers the
    // whole run; `None` on the serial engine.
    let par = sys.parallel_stats();
    let full = sys.metrics();
    let tail = sys.tail_recorder().cloned();
    let heat = sys.heatmap();
    let counts = ring.counts();
    let hists = ring.histograms();
    let epochs = sys.epochs().to_vec();

    if let Some(path) = flags.get("grid") {
        match &heat {
            Some(g) => {
                if let Err(e) = write_grid(path, g) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            None => eprintln!("warning: --grid needs --heatmap; no grid written"),
        }
    }

    if let Some(p) = &jsonl {
        if let Err(e) = p.flush() {
            eprintln!("warning: flushing {} failed: {e}", p.path().display());
        }
    }

    // Epoch counter tracks: the attribution time series both the
    // chrome trace and the JSON report carry.
    let series: Vec<CounterSeries> = [
        (
            "nvm_line_writes",
            Box::new(|d: &SimMetrics| d.nvm.line_writes) as Box<dyn Fn(&SimMetrics) -> u64>,
        ),
        ("cow_faults", Box::new(|d: &SimMetrics| d.kernel.cow_faults)),
        ("redirected_reads", Box::new(|d: &SimMetrics| d.controller.redirected_reads)),
        ("counter_fetches", Box::new(|d: &SimMetrics| d.controller.counter_fetches)),
    ]
    .into_iter()
    .map(|(name, get)| CounterSeries {
        name: format!("{name}_per_epoch"),
        points: epochs.iter().map(|e| (e.end_cycle.as_u64(), get(&e.delta) as f64)).collect(),
    })
    .collect();

    if let Some(path) = flags.get("trace") {
        let doc = chrome_trace(&ring.events(), &series);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if json {
        // Every kind appears with an explicit (possibly zero) count so
        // downstream diffing sees a stable key set run-over-run.
        let events: Vec<String> = (0..EventKind::COUNT)
            .map(|i| format!("\"{}\":{}", EventKind::name_of(i), counts[i]))
            .collect();
        let hist_body: Vec<String> = HistKind::ALL
            .iter()
            .map(|k| format!("\"{}\":{}", k.name(), hist_json(hists.get(*k))))
            .collect();
        let epoch_body: Vec<String> = epochs
            .iter()
            .map(|e| {
                format!(
                    "{{\"end_cycle\":{},\"cycles\":{},\"nvm_writes\":{},\"cow_faults\":{},\"redirected_reads\":{},\"counter_fetches\":{}}}",
                    e.end_cycle.as_u64(),
                    e.delta.cycles.as_u64(),
                    e.delta.nvm.line_writes,
                    e.delta.kernel.cow_faults,
                    e.delta.controller.redirected_reads,
                    e.delta.controller.counter_fetches,
                )
            })
            .collect();
        let trace_body = trace_json(
            replay_src
                .as_ref()
                .zip(replay_stats.as_ref())
                .map(|((path, trace), (stats, wall))| (path.as_str(), trace, stats, *wall)),
        );
        println!(
            "{{\"workload\":\"{wl_name}\",\"scheme\":\"{strategy}\",\"pages\":\"{pages}\",\"epoch_interval\":{epoch},\"metrics\":{},\"metrics_full\":{},\"parallel\":{},\"trace\":{},\"events\":{{{}}},\"events_total\":{},\"ring_dropped\":{},\"histograms\":{{{}}},\"tail\":{},\"heatmap\":{},\"epochs\":[{}]}}",
            json_metrics(&m),
            json_metrics(&full),
            par_json(par.as_ref()),
            trace_body,
            events.join(","),
            ring.total(),
            ring.dropped(),
            hist_body.join(","),
            tail_json(tail.as_ref(), &epochs),
            heat_json(heat.as_ref()),
            epoch_body.join(","),
        );
        return ExitCode::SUCCESS;
    }

    print_metrics_text(
        &format!("{wl_name} / {strategy} / {pages} pages (epoch {epoch} cycles)"),
        &m,
    );
    if let (Some((path, trace)), Some((stats, wall))) = (&replay_src, &replay_stats) {
        println!(
            "  replayed {path}: {} ops in {} records ({:.1}M ops/s end-to-end, {})",
            stats.ops,
            stats.records,
            stats.ops as f64 / wall.max(1e-9) / 1e6,
            if trace.is_mapped() { "mmap" } else { "buffered" },
        );
    }
    println!();
    println!(
        "events: {} emitted, ring kept {}, dropped {}",
        ring.total(),
        ring.events().len(),
        ring.dropped()
    );
    println!("  (events cover the whole run; headline metrics above are the measured interval)");
    println!(
        "  full run: {} nvm writes, {} cow faults, {} redirected reads, {} counter fetches",
        full.nvm.line_writes,
        full.kernel.cow_faults,
        full.controller.redirected_reads,
        full.controller.counter_fetches
    );
    for (i, &n) in counts.iter().enumerate() {
        if n > 0 {
            println!("  {:<20} {n:>12}", EventKind::name_of(i));
        }
    }
    if let Some(p) = &par {
        println!();
        println!(
            "parallel engine: {} workers, {} epoch barriers, {} ops dispatched, \
             {} cross-shard messages",
            p.workers, p.barriers, p.ops_dispatched, p.cross_shard_messages
        );
        println!(
            "  {:>5}  {:>10}  {:>10}  {:>10}  {:>11}  {:>8}  {:>8}  host ms (aes/mac/merkle)",
            "shard", "stores", "mac_tags", "leaves", "cross-shard", "lines", "regions"
        );
        for s in &p.shards {
            let ms = |c: CycleCategory| s.stats.ledger.get(c) as f64 / 1e6;
            println!(
                "  {:>5}  {:>10}  {:>10}  {:>10}  {:>11}  {:>8}  {:>8}  {:.2} ({:.2}/{:.2}/{:.2})",
                s.shard,
                s.stats.stores,
                s.stats.mac_tags,
                s.stats.leaf_hashes,
                s.stats.cross_shard,
                s.resident_lines,
                s.regions_touched,
                s.stats.host_ns as f64 / 1e6,
                ms(CycleCategory::AesPad),
                ms(CycleCategory::Mac),
                ms(CycleCategory::MerkleWalk),
            );
        }
    }
    println!();
    for kind in HistKind::ALL {
        let h = hists.get(kind);
        if h.count > 0 {
            println!("histogram {}:", kind.name());
            for line in h.to_string().lines() {
                println!("  {line}");
            }
        }
    }
    if !epochs.is_empty() {
        const SHOWN: usize = 12;
        println!();
        println!(
            "epochs: {} of {epoch} cycles (showing first {})",
            epochs.len(),
            SHOWN.min(epochs.len())
        );
        println!(
            "  {:>14}  {:>10}  {:>10}  {:>12}  {:>12}",
            "end_cycle", "nvm_wr", "cow_faults", "redir_reads", "ctr_fetches"
        );
        for e in epochs.iter().take(SHOWN) {
            println!(
                "  {:>14}  {:>10}  {:>10}  {:>12}  {:>12}",
                e.end_cycle.as_u64(),
                e.delta.nvm.line_writes,
                e.delta.kernel.cow_faults,
                e.delta.controller.redirected_reads,
                e.delta.controller.counter_fetches,
            );
        }
    }
    if let Some(t) = &tail {
        print_tail_text(t, &epochs);
    }
    if let Some(g) = &heat {
        print_heat_text(g);
    }
    if let Some(path) = flags.get("grid") {
        if heat.is_some() {
            println!("heat grid: {path} (one row per lane, one column per region)");
        }
    }
    if let Some(p) = &jsonl {
        println!();
        println!("events JSONL: {}", p.path().display());
    }
    if let Some(path) = flags.get("trace") {
        println!("chrome trace: {path} (load in chrome://tracing or ui.perfetto.dev)");
    }
    ExitCode::SUCCESS
}

fn profile(flags: &HashMap<String, String>) -> ExitCode {
    let scale = flags.get("scale").map(String::as_str).unwrap_or("medium");
    let Some(wl_name) = flags.get("workload") else {
        eprintln!("error: --workload is required");
        return usage();
    };
    let Some(workload) = workload_of::<NullProbe>(wl_name, scale) else {
        eprintln!("error: unknown workload `{wl_name}`");
        return usage();
    };
    let Some(pages) = pages_of(flags.get("pages").map(String::as_str).unwrap_or("4k")) else {
        eprintln!("error: bad --pages");
        return usage();
    };
    let Some(strategy) = scheme_of(flags.get("scheme").map(String::as_str).unwrap_or("lelantus"))
    else {
        eprintln!("error: bad --scheme");
        return usage();
    };
    let epoch: u64 = match flags.get("epoch").map(String::as_str).unwrap_or("100000").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: bad --epoch");
            return usage();
        }
    };
    let json = flags.contains_key("json");
    let workers: usize = match flags.get("workers").map(String::as_str).unwrap_or("0").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: --workers needs a non-negative worker count (0 = serial engine)");
            return usage();
        }
    };

    selfprof::reset();
    selfprof::enable();
    let mut cfg = SimConfig::new(strategy, pages).with_cycle_ledger().with_epoch_interval(epoch);
    if workers > 0 {
        // The sharded engine: bit-identical breakdowns, host wall
        // clock spread across cores (see DESIGN.md §11).
        cfg = cfg.with_parallel(workers);
    }
    let mut sys = System::new(cfg);
    let run = workload.run(&mut sys).unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    });
    sys.finish();
    selfprof::disable();
    let par = sys.parallel_stats();
    let total = sys.metrics().cycles.as_u64();
    let ledger = sys.cycle_ledger();
    let epochs = sys.epochs().to_vec();
    let prof = selfprof::report();

    // The ledger's defining invariant; a mismatch means a charging
    // site was missed and the breakdown cannot be trusted.
    let sum = ledger.total();
    if sum != total {
        eprintln!("error: ledger sum {sum} != total cycles {total} (attribution hole)");
        return ExitCode::FAILURE;
    }

    // Per-category rows, largest first.
    let mut rows: Vec<(CycleCategory, u64)> =
        CycleCategory::ALL.iter().map(|&c| (c, ledger.get(c))).filter(|&(_, n)| n > 0).collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.name().cmp(b.0.name())));

    if let Some(path) = flags.get("folded") {
        // Flamegraph-folded stacks: one line per category, weight =
        // cycles (feed to inferno/flamegraph.pl).
        let mut doc = String::new();
        for &(cat, n) in &rows {
            doc.push_str(&format!("lelantus;{};{strategy};{} {n}\n", workload.name(), cat.name()));
        }
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = flags.get("trace") {
        // One lane per category; within each epoch the categories are
        // laid out back-to-back (attribution is per-epoch aggregate,
        // so the lanes tile each epoch window exactly).
        let mut spans = Vec::new();
        for e in &epochs {
            let mut at = e.end_cycle.as_u64() - e.delta.cycles.as_u64();
            for (i, &cat) in CycleCategory::ALL.iter().enumerate() {
                let n = e.ledger.get(cat);
                if n > 0 {
                    spans.push(Span {
                        name: cat.name().to_string(),
                        tid: i as u32 + 1,
                        start_cycle: at,
                        dur_cycles: n,
                    });
                    at += n;
                }
            }
        }
        let doc = chrome_trace_with_spans(&[], &[], &spans);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if json {
        let cats: Vec<String> = rows.iter().map(|(c, n)| format!("\"{}\":{n}", c.name())).collect();
        let epoch_body: Vec<String> = epochs
            .iter()
            .map(|e| {
                let cats: Vec<String> = CycleCategory::ALL
                    .iter()
                    .filter(|&&c| e.ledger.get(c) > 0)
                    .map(|&c| format!("\"{}\":{}", c.name(), e.ledger.get(c)))
                    .collect();
                format!(
                    "{{\"end_cycle\":{},\"cycles\":{},\"ledger\":{{{}}}}}",
                    e.end_cycle.as_u64(),
                    e.delta.cycles.as_u64(),
                    cats.join(",")
                )
            })
            .collect();
        let prof_body: Vec<String> = prof
            .iter()
            .map(|s| {
                format!(
                    "{{\"site\":\"{}\",\"calls\":{},\"total_ns\":{},\"mean_ns\":{:.1}}}",
                    s.site,
                    s.calls,
                    s.total_ns,
                    s.mean_ns()
                )
            })
            .collect();
        println!(
            "{{\"workload\":\"{}\",\"scheme\":\"{strategy}\",\"pages\":\"{pages}\",\"epoch_interval\":{epoch},\"total_cycles\":{total},\"ledger_sum\":{sum},\"measured_cycles\":{},\"parallel\":{},\"categories\":{{{}}},\"epochs\":[{}],\"selfprof\":[{}]}}",
            workload.name(),
            run.measured.cycles.as_u64(),
            par_json(par.as_ref()),
            cats.join(","),
            epoch_body.join(","),
            prof_body.join(","),
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "{} / {strategy} / {pages} pages — cycle attribution over the full run",
        workload.name()
    );
    println!("  total cycles   {total} (measured interval: {})", run.measured.cycles.as_u64());
    println!();
    println!("  {:<16} {:>16} {:>8}", "category", "cycles", "share");
    for &(cat, n) in &rows {
        println!("  {:<16} {n:>16} {:>7.2}%", cat.name(), n as f64 * 100.0 / total as f64);
    }
    println!("  {:<16} {sum:>16} {:>7.2}%", "sum", 100.0);
    println!("  sum check: {sum} == {total} total cycles ✓");
    if let Some(p) = &par {
        println!(
            "  parallel engine: {} workers, {} barriers, {} ops dispatched \
             (breakdown identical to serial by construction)",
            p.workers, p.barriers, p.ops_dispatched
        );
    }
    if !prof.is_empty() {
        println!();
        println!("  self-profiler (host wall clock):");
        println!("  {:<24} {:>10} {:>12} {:>12}", "site", "calls", "total_ms", "mean_ns");
        for s in &prof {
            println!(
                "  {:<24} {:>10} {:>12.3} {:>12.1}",
                s.site,
                s.calls,
                s.total_ns as f64 / 1e6,
                s.mean_ns()
            );
        }
    }
    if let Some(path) = flags.get("folded") {
        println!();
        println!("folded stacks: {path} (feed to flamegraph.pl / inferno)");
    }
    if let Some(path) = flags.get("trace") {
        println!("chrome trace: {path} (load in chrome://tracing or ui.perfetto.dev)");
    }
    ExitCode::SUCCESS
}

fn bench_diff(args: &[String]) -> ExitCode {
    let mut files = Vec::new();
    let mut tolerance = 0.25f64;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--tolerance" => {
                let parsed = it.next().and_then(|v| v.parse::<f64>().ok());
                match parsed {
                    Some(t) if t >= 0.0 => tolerance = t,
                    _ => {
                        eprintln!("error: --tolerance needs a non-negative fraction");
                        return usage();
                    }
                }
            }
            other if !other.starts_with("--") => files.push(other.to_string()),
            other => {
                eprintln!("error: unexpected flag `{other}`");
                return usage();
            }
        }
    }
    let [base_path, new_path] = files.as_slice() else {
        eprintln!("error: bench-diff needs exactly two results files");
        return usage();
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => parse_results(&text),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let base = read(base_path);
    let new = read(new_path);
    let report = diff(&base, &new, tolerance);
    let regressions = report.regressions();

    if json {
        let body: Vec<String> = report
            .entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"key\":\"{}\",\"unit\":\"{}\",\"base\":{},\"new\":{},\"ratio\":{:.4},\"regression\":{}}}",
                    e.key, e.unit, e.base, e.new, e.ratio, e.regression
                )
            })
            .collect();
        let list =
            |v: &[String]| v.iter().map(|k| format!("\"{k}\"")).collect::<Vec<_>>().join(",");
        println!(
            "{{\"tolerance\":{tolerance},\"compared\":{},\"regressions\":{},\"entries\":[{}],\"only_base\":[{}],\"only_new\":[{}]}}",
            report.entries.len(),
            regressions.len(),
            body.join(","),
            list(&report.only_base),
            list(&report.only_new),
        );
    } else {
        println!(
            "compared {} metric(s), tolerance ±{:.0}% — {} regression(s)",
            report.entries.len(),
            tolerance * 100.0,
            regressions.len()
        );
        for e in &regressions {
            println!(
                "  REGRESSION {:<44} {:>12.3} -> {:>12.3} {} ({:.2}x)",
                e.key, e.base, e.new, e.unit, e.ratio
            );
        }
        for k in &report.only_base {
            println!("  missing in candidate: {k}");
        }
        for k in &report.only_new {
            println!("  new metric: {k}");
        }
    }
    if regressions.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `lelantus tail`: the fig11-style tail sweep — every paper workload
/// on every scheme with the span recorder on, reporting p50/p99/p999
/// fault-service latency and recording the percentiles into
/// `BENCH_RESULTS.json` for bench-diff gating.
fn tail_sweep(flags: &HashMap<String, String>) -> ExitCode {
    const PAPER_WORKLOADS: &[&str] = &["boot", "compile", "forkbench", "redis", "mariadb", "shell"];
    let scale = flags.get("scale").map(String::as_str).unwrap_or("medium");
    let Some(pages) = pages_of(flags.get("pages").map(String::as_str).unwrap_or("4k")) else {
        eprintln!("error: bad --pages");
        return usage();
    };
    let workers: usize = match flags.get("workers").map(String::as_str).unwrap_or("0").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: --workers needs a non-negative worker count (0 = serial engine)");
            return usage();
        }
    };
    let top_k: usize = match flags.get("top-k").map(String::as_str).unwrap_or("16").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: bad --top-k");
            return usage();
        }
    };
    let json = flags.contains_key("json");

    let started = std::time::Instant::now();
    let mut records = Vec::new();
    let mut rows: Vec<String> = Vec::new();
    if !json {
        println!("tail sweep: {scale} scale, {pages} pages (fault-service cycles per span)");
        println!(
            "  {:<10} {:<16} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "workload", "scheme", "faults", "p50", "p99", "p999", "max"
        );
    }
    for &wl_name in PAPER_WORKLOADS {
        let mut scheme_rows: Vec<String> = Vec::new();
        for strategy in CowStrategy::all() {
            let workload = workload_of::<NullProbe>(wl_name, scale)
                .expect("paper workload names are all known");
            // Recorder only — no cycle ledger — so the sweep stays
            // close to the untraced fast path.
            let mut cfg =
                SimConfig::new(strategy, pages).with_tail_recorder().with_tail_top_k(top_k);
            if workers > 0 {
                cfg = cfg.with_parallel(workers);
            }
            let mut sys = System::new(cfg);
            workload.run(&mut sys).unwrap_or_else(|e| {
                eprintln!("simulation failed ({wl_name}/{strategy}): {e}");
                std::process::exit(1);
            });
            let s = sys
                .tail_recorder()
                .map(|t| t.summary())
                .expect("tail recorder was enabled for every sweep run");
            for (metric, value) in
                [("fault_p50", s.p50), ("fault_p99", s.p99), ("fault_p999", s.p999)]
            {
                records.push(Record::with_scheme(
                    format!("{metric}/{wl_name}"),
                    strategy.to_string(),
                    value as f64,
                    "cycles",
                ));
            }
            if json {
                scheme_rows.push(format!("\"{strategy}\":{}", tail_summary_json(&s)));
            } else {
                println!(
                    "  {:<10} {:<16} {:>8} {:>9} {:>9} {:>9} {:>9}",
                    wl_name,
                    strategy.to_string(),
                    s.count,
                    s.p50,
                    s.p99,
                    s.p999,
                    s.max
                );
            }
        }
        if json {
            rows.push(format!("\"{wl_name}\":{{{}}}", scheme_rows.join(",")));
        }
    }
    let wall = started.elapsed().as_secs_f64();
    if json {
        println!(
            "{{\"scale\":\"{scale}\",\"pages\":\"{pages}\",\"wall_clock_s\":{wall:.3},\"workloads\":{{{}}}}}",
            rows.join(","),
        );
    } else {
        println!("  ({wall:.1}s wall clock; percentiles recorded to BENCH_RESULTS.json)");
    }
    emit("tail_latency", wall, &records);
    ExitCode::SUCCESS
}

/// `lelantus storm`: the fork-storm multi-tenant kernel-plane sweep.
/// Runs [`Storm`] at full scale (1024 tenants × 1024-page regions — a
/// million-plus live 4 KB pages) on every scheme with the per-fault
/// span recorder, and records per-scheme kernel-op throughput, fault
/// tail percentiles and resident pages into `BENCH_RESULTS.json`.
fn storm_sweep(flags: &HashMap<String, String>) -> ExitCode {
    let mut storm = if flags.contains_key("small") { Storm::small() } else { Storm::full() };
    let parse_u64 = |key: &str| -> Result<Option<u64>, ExitCode> {
        match flags.get(key) {
            None => Ok(None),
            Some(v) => match v.parse::<u64>() {
                Ok(n) if n > 0 => Ok(Some(n)),
                _ => {
                    eprintln!("error: --{key} needs a positive integer");
                    Err(usage())
                }
            },
        }
    };
    match parse_u64("tenants") {
        Ok(Some(n)) => storm.tenants = n,
        Ok(None) => {}
        Err(e) => return e,
    }
    match parse_u64("depth") {
        Ok(Some(n)) => storm.fork_depth = n,
        Ok(None) => {}
        Err(e) => return e,
    }
    match parse_u64("touched") {
        Ok(Some(n)) => storm.touched_pages_per_child = n,
        Ok(None) => {}
        Err(e) => return e,
    }
    match parse_u64("region-kb") {
        Ok(Some(n)) => storm.region_bytes = n * 1024,
        Ok(None) => {}
        Err(e) => return e,
    }
    let workers: usize = match flags.get("workers").map(String::as_str).unwrap_or("0").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: --workers needs a non-negative worker count (0 = serial engine)");
            return usage();
        }
    };
    let json = flags.contains_key("json");

    let phys = storm.phys_bytes();
    let target_pages = storm.tenants * storm.region_bytes / 4096;
    if !json {
        println!(
            "fork storm: {} tenants × depth {} over {} KB regions \
             ({target_pages} resident 4K pages, {} MB phys)",
            storm.tenants,
            storm.fork_depth,
            storm.region_bytes >> 10,
            phys >> 20
        );
        println!(
            "  {:<16} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9}",
            "scheme", "kernel ops", "ops/s", "p50", "p99", "p999", "live pages"
        );
    }
    let started = std::time::Instant::now();
    let mut records = Vec::new();
    let mut rows: Vec<String> = Vec::new();
    for strategy in CowStrategy::all() {
        let mut cfg = SimConfig::new(strategy, PageSize::Regular4K)
            .with_phys_bytes(phys)
            .with_tail_recorder();
        if workers > 0 {
            cfg = cfg.with_parallel(workers);
        }
        let mut sys = System::new(cfg);
        let fail = |e| -> ! {
            eprintln!("simulation failed (storm/{strategy}): {e}");
            std::process::exit(1);
        };
        let state = storm.setup(&mut sys).unwrap_or_else(|e| fail(e));
        let stats_before = sys.kernel().stats();
        let wall_start = std::time::Instant::now();
        storm.measure(&mut sys, &state).unwrap_or_else(|e| fail(e));
        let wall_s = wall_start.elapsed().as_secs_f64();
        let delta = sys.kernel().stats().delta_since(&stats_before);
        // Kernel-plane operations the storm drives: forks, faults of
        // every kind, and page releases. This is the figure the O(1)
        // structures exist to scale.
        let kernel_ops = delta.forks + delta.cow_faults + delta.reuse_faults + delta.pages_freed;
        let ops_per_s = kernel_ops as f64 / wall_s.max(1e-9);
        let end = sys.kernel().stats();
        let live_pages = end.pages_allocated - end.pages_freed;
        let s = sys
            .tail_recorder()
            .map(|t| t.summary())
            .expect("tail recorder was enabled for every storm run");
        records.push(Record::with_scheme(
            "storm_ops_per_s",
            strategy.to_string(),
            ops_per_s,
            "ops/s",
        ));
        for (metric, value) in
            [("storm_fault_p50", s.p50), ("storm_fault_p99", s.p99), ("storm_fault_p999", s.p999)]
        {
            records.push(Record::with_scheme(metric, strategy.to_string(), value as f64, "cycles"));
        }
        records.push(Record::with_scheme(
            "storm_live_pages",
            strategy.to_string(),
            live_pages as f64,
            "pages",
        ));
        if json {
            rows.push(format!(
                "\"{strategy}\":{{\"kernel_ops\":{kernel_ops},\"ops_per_s\":{ops_per_s:.1},\
                 \"wall_s\":{wall_s:.3},\"live_pages\":{live_pages},\"tail\":{}}}",
                tail_summary_json(&s)
            ));
        } else {
            println!(
                "  {:<16} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9}",
                strategy.to_string(),
                kernel_ops,
                format!("{ops_per_s:.0}"),
                s.p50,
                s.p99,
                s.p999,
                live_pages
            );
        }
    }
    let wall = started.elapsed().as_secs_f64();
    if json {
        println!(
            "{{\"tenants\":{},\"fork_depth\":{},\"region_bytes\":{},\"target_pages\":{target_pages},\
             \"wall_clock_s\":{wall:.3},\"schemes\":{{{}}}}}",
            storm.tenants,
            storm.fork_depth,
            storm.region_bytes,
            rows.join(","),
        );
    } else {
        println!("  ({wall:.1}s wall clock; records written to BENCH_RESULTS.json)");
    }
    emit("storm", wall, &records);
    ExitCode::SUCCESS
}

/// `lelantus heatmap`: the spatial sweep — *where* the work lands,
/// per scheme, on spatially contrasting workloads (forkbench's dense
/// arena, redis's scattered heap, storm's multi-tenant sprawl) with
/// the region heat grid on. Concentration summaries (Gini, top-1 %
/// share, touched extent) are recorded into `BENCH_RESULTS.json` for
/// bench-diff gating.
fn heatmap_sweep(flags: &HashMap<String, String>) -> ExitCode {
    const SPATIAL_WORKLOADS: &[&str] = &["forkbench", "redis", "storm"];
    let scale = if flags.contains_key("small") {
        "small"
    } else {
        flags.get("scale").map(String::as_str).unwrap_or("medium")
    };
    let Some(pages) = pages_of(flags.get("pages").map(String::as_str).unwrap_or("4k")) else {
        eprintln!("error: bad --pages");
        return usage();
    };
    let workers: usize = match flags.get("workers").map(String::as_str).unwrap_or("0").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: --workers needs a non-negative worker count (0 = serial engine)");
            return usage();
        }
    };
    let top: usize = match flags.get("top").map(String::as_str).unwrap_or("5").parse() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("error: --top needs a positive region count");
            return usage();
        }
    };
    let json = flags.contains_key("json");

    let started = std::time::Instant::now();
    let mut records = Vec::new();
    let mut rows: Vec<String> = Vec::new();
    if !json {
        println!("heatmap sweep: {scale} scale, {pages} pages (per-region heat, all lanes)");
        println!(
            "  {:<10} {:<16} {:>8} {:>12} {:>7} {:>7}  hottest",
            "workload", "scheme", "touched", "heat", "gini", "top1%"
        );
    }
    for &wl_name in SPATIAL_WORKLOADS {
        let mut scheme_rows: Vec<String> = Vec::new();
        for strategy in CowStrategy::all() {
            // Storm is always its compact self-scaling instance here —
            // the sweep wants its spatial *shape* (many small tenant
            // regions), not the full million-page scale.
            let storm = Storm::small();
            let workload: Box<dyn Workload<NullProbe>> = if wl_name == "storm" {
                Box::new(storm)
            } else {
                workload_of(wl_name, scale).expect("spatial workload names are all known")
            };
            let mut cfg = SimConfig::new(strategy, pages).with_heatmap();
            if wl_name == "storm" {
                cfg = cfg.with_phys_bytes(storm.phys_bytes());
            }
            if workers > 0 {
                cfg = cfg.with_parallel(workers);
            }
            let mut sys = System::new(cfg);
            workload.run(&mut sys).unwrap_or_else(|e| {
                eprintln!("simulation failed ({wl_name}/{strategy}): {e}");
                std::process::exit(1);
            });
            sys.finish();
            let g = sys.heatmap().expect("heatmap was enabled for every sweep run");
            for (metric, value) in [
                ("heat_gini", g.gini()),
                ("heat_top1pct", g.top_share(0.01)),
                ("heat_touched", g.touched_regions() as f64),
            ] {
                records.push(Record::with_scheme(
                    format!("{metric}/{wl_name}"),
                    strategy.to_string(),
                    value,
                    if metric == "heat_touched" { "regions" } else { "ratio" },
                ));
            }
            let hottest = g.top_regions(top);
            if json {
                let top_body: Vec<String> = hottest
                    .iter()
                    .map(|&(r, t)| format!("{{\"region\":{r},\"total\":{t}}}"))
                    .collect();
                scheme_rows.push(format!(
                    "\"{strategy}\":{{\"touched\":{},\"total\":{},\"gini\":{:.4},\"top_share_1pct\":{:.4},\"top\":[{}]}}",
                    g.touched_regions(),
                    g.total(),
                    g.gini(),
                    g.top_share(0.01),
                    top_body.join(","),
                ));
            } else {
                let head = hottest
                    .iter()
                    .take(3)
                    .map(|(r, t)| format!("{r}:{t}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                println!(
                    "  {:<10} {:<16} {:>8} {:>12} {:>7.3} {:>6.1}%  {head}",
                    wl_name,
                    strategy.to_string(),
                    g.touched_regions(),
                    g.total(),
                    g.gini(),
                    g.top_share(0.01) * 100.0,
                );
            }
        }
        if json {
            rows.push(format!("\"{wl_name}\":{{{}}}", scheme_rows.join(",")));
        }
    }
    let wall = started.elapsed().as_secs_f64();
    if json {
        println!(
            "{{\"scale\":\"{scale}\",\"pages\":\"{pages}\",\"wall_clock_s\":{wall:.3},\"workloads\":{{{}}}}}",
            rows.join(","),
        );
    } else {
        println!("  ({wall:.1}s wall clock; concentration recorded to BENCH_RESULTS.json)");
    }
    emit("heatmap", wall, &records);
    ExitCode::SUCCESS
}

/// One parsed line of the external text-trace format.
struct ExtOp {
    pid: u64,
    write: bool,
    va: u64,
    len: u64,
}

/// Parses the documented `pid,op,va,len` line format: `op` is `r` or
/// `w`, numbers are decimal or `0x`-hex, `#` starts a comment, blank
/// lines are skipped.
fn parse_ext_line(line: &str) -> Result<Option<ExtOp>, String> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    let [pid, op, va, len] = fields.as_slice() else {
        return Err("expected 4 fields: pid,op,va,len".into());
    };
    let num = |s: &str| -> Result<u64, String> {
        match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        }
        .map_err(|_| format!("bad number `{s}`"))
    };
    let write = match *op {
        "w" | "W" | "write" => true,
        "r" | "R" | "read" => false,
        other => return Err(format!("bad op `{other}` (expected r or w)")),
    };
    Ok(Some(ExtOp { pid: num(pid)?, write, va: num(va)?, len: num(len)?.max(1) }))
}

/// Replays the parsed external ops into the simulator, creating one
/// simulated process (with a private arena) per foreign pid; the
/// first foreign pid maps onto `spawn_init`, the rest are forked
/// from it so the trace exercises the CoW machinery.
fn convert_ops(
    sys: &mut System<NullProbe>,
    ext_ops: &[ExtOp],
    arena_bytes: u64,
    procs: &mut HashMap<u64, (u64, u64)>,
) -> Result<(), lelantus::os::OsError> {
    // Cap single accesses: foreign traces can carry huge lengths, and
    // a 1 MiB slice already exercises the full fault/copy path.
    const MAX_OP_BYTES: u64 = 1 << 20;
    let init = sys.spawn_init();
    for (i, op) in ext_ops.iter().enumerate() {
        let (pid, base) = match procs.get(&op.pid) {
            Some(&entry) => entry,
            None => {
                let pid = if procs.is_empty() { init } else { sys.fork(init)? };
                let base = sys.mmap(pid, arena_bytes)?.as_u64();
                procs.insert(op.pid, (pid, base));
                (pid, base)
            }
        };
        // Fold the foreign address into the arena, clamping the
        // length so the access stays inside it.
        let len = op.len.min(MAX_OP_BYTES).min(arena_bytes);
        let off = (op.va % arena_bytes).min(arena_bytes - len);
        let va = lelantus::types::VirtAddr::new(base + off);
        if op.write {
            sys.write_pattern(pid, va, len as usize, i as u8)?;
        } else {
            sys.read_bytes(pid, va, len as usize)?;
        }
    }
    Ok(())
}

/// `lelantus convert <in.csv> -o <out.ltr>`: converts an external
/// `pid,op,va,len` text trace into a replayable binary trace. Each
/// foreign pid gets its own simulated process (the first maps to
/// `spawn_init`, the rest are forked from it) with one private arena;
/// foreign addresses fold into the arena modulo its size, preserving
/// page adjacency and reuse so the replayed heatmap reflects the
/// source's locality.
fn convert_cmd(args: &[String]) -> ExitCode {
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut flag_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("error: {arg} needs a file path");
                    return usage();
                }
            },
            a if !a.starts_with('-') && input.is_none() => input = Some(a.to_string()),
            _ => flag_args.push(arg.clone()),
        }
    }
    let flags = match parse_or_usage(&flag_args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let (Some(input), Some(out)) = (input, out) else {
        eprintln!("error: convert needs <in.csv> and -o <out.ltr>");
        return usage();
    };
    let Some(pages) = pages_of(flags.get("pages").map(String::as_str).unwrap_or("4k")) else {
        eprintln!("error: bad --pages");
        return usage();
    };
    let Some(strategy) = scheme_of(flags.get("scheme").map(String::as_str).unwrap_or("lelantus"))
    else {
        eprintln!("error: bad --scheme");
        return usage();
    };
    let arena_mb: u64 = match flags.get("arena-mb").map(String::as_str).unwrap_or("16").parse() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("error: --arena-mb needs a positive size");
            return usage();
        }
    };
    let arena_bytes = arena_mb << 20;
    let json = flags.contains_key("json");

    let text = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ext_ops = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        match parse_ext_line(line) {
            Ok(Some(op)) => ext_ops.push(op),
            Ok(None) => {}
            Err(e) => {
                eprintln!("error: {input}:{}: {e}", lineno + 1);
                return ExitCode::from(2);
            }
        }
    }
    if ext_ops.is_empty() {
        eprintln!("error: {input} has no operations");
        return ExitCode::from(2);
    }

    let cfg = SimConfig::new(strategy, pages);
    let header = TraceHeader { page_size: pages, phys_bytes: cfg.kernel.phys_bytes };
    let rec = match TraceRecorder::create(&out, header) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot create {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut sys = System::new(cfg);
    sys.record_into(rec.clone());
    let start = std::time::Instant::now();
    // Foreign pid -> (simulated pid, arena base).
    let mut procs: HashMap<u64, (u64, u64)> = HashMap::new();
    if let Err(e) = convert_ops(&mut sys, &ext_ops, arena_bytes, &mut procs) {
        eprintln!("error: converting {input} failed: {e}");
        return ExitCode::FAILURE;
    }
    sys.finish();
    sys.stop_recording();
    let totals = match rec.finish() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: writing {out} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall = start.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    if json {
        println!(
            concat!(
                "{{\"input\":\"{}\",\"out\":\"{}\",\"scheme\":\"{}\",\"pages\":\"{}\",",
                "\"source_ops\":{},\"processes\":{},\"records\":{},\"ops\":{},",
                "\"file_bytes\":{},\"wall_clock_s\":{:.3}}}"
            ),
            input,
            out,
            strategy,
            pages,
            ext_ops.len(),
            procs.len(),
            totals.records,
            totals.ops,
            file_bytes,
            wall,
        );
    } else {
        println!(
            "converted {input} -> {out}: {} source ops across {} processes",
            ext_ops.len(),
            procs.len()
        );
        println!(
            "  {} records, {} ops, {} bytes, {wall:.2}s",
            totals.records, totals.ops, file_bytes
        );
        println!("  replay with: lelantus run --trace {out}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { return usage() };
    match command.as_str() {
        "list" => {
            println!("workloads: {}", WORKLOADS.join(", "));
            println!("schemes:   {}", SCHEMES.join(", "));
            println!("pages:     4k, 2m");
            println!("scales:    small, medium, paper");
            ExitCode::SUCCESS
        }
        "report" => match parse_or_usage(&args[1..]) {
            Ok(flags) => report(&flags),
            Err(code) => code,
        },
        "profile" => match parse_or_usage(&args[1..]) {
            Ok(flags) => profile(&flags),
            Err(code) => code,
        },
        "tail" => match parse_or_usage(&args[1..]) {
            Ok(flags) => tail_sweep(&flags),
            Err(code) => code,
        },
        "storm" => match parse_or_usage(&args[1..]) {
            Ok(flags) => storm_sweep(&flags),
            Err(code) => code,
        },
        "heatmap" => match parse_or_usage(&args[1..]) {
            Ok(flags) => heatmap_sweep(&flags),
            Err(code) => code,
        },
        "bench-diff" => bench_diff(&args[1..]),
        "record" => record_cmd(&args[1..]),
        "convert" => convert_cmd(&args[1..]),
        "run" | "compare" => {
            let flags = match parse_or_usage(&args[1..]) {
                Ok(f) => f,
                Err(code) => return code,
            };
            if let Some(path) = flags.get("trace") {
                return trace_run(command == "run", path, &flags);
            }
            let scale = flags.get("scale").map(String::as_str).unwrap_or("medium");
            let Some(wl_name) = flags.get("workload") else {
                eprintln!("error: --workload is required");
                return usage();
            };
            let Some(workload) = workload_of(wl_name, scale) else {
                eprintln!("error: unknown workload `{wl_name}`");
                return usage();
            };
            let Some(pages) = pages_of(flags.get("pages").map(String::as_str).unwrap_or("4k"))
            else {
                eprintln!("error: bad --pages");
                return usage();
            };
            let json = flags.contains_key("json");
            if command == "run" {
                let Some(strategy) =
                    scheme_of(flags.get("scheme").map(String::as_str).unwrap_or("lelantus"))
                else {
                    eprintln!("error: bad --scheme");
                    return usage();
                };
                let run = run_one(workload.as_ref(), strategy, pages);
                if json {
                    println!(
                        "{{\"workload\":\"{}\",\"scheme\":\"{strategy}\",\"pages\":\"{pages}\",\"metrics\":{},\"trace\":null}}",
                        workload.name(),
                        json_metrics(&run.measured)
                    );
                } else {
                    print_metrics_text(
                        &format!("{} / {strategy} / {pages} pages", workload.name()),
                        &run.measured,
                    );
                }
            } else {
                let base = run_one(workload.as_ref(), CowStrategy::Baseline, pages);
                let mut rows = Vec::new();
                for strategy in CowStrategy::all() {
                    let run = if strategy == CowStrategy::Baseline {
                        base.measured
                    } else {
                        run_one(workload.as_ref(), strategy, pages).measured
                    };
                    rows.push((
                        strategy.to_string(),
                        run.cycles.as_u64(),
                        run.speedup_vs(&base.measured),
                        run.nvm.line_writes,
                        run.write_fraction_vs(&base.measured),
                    ));
                }
                if json {
                    let body: Vec<String> = rows
                        .iter()
                        .map(|(s, c, sp, w, wf)| {
                            format!(
                                "{{\"scheme\":\"{s}\",\"cycles\":{c},\"speedup\":{sp:.4},\"nvm_writes\":{w},\"write_fraction\":{wf:.4}}}"
                            )
                        })
                        .collect();
                    println!(
                        "{{\"workload\":\"{}\",\"pages\":\"{pages}\",\"schemes\":[{}]}}",
                        workload.name(),
                        body.join(",")
                    );
                } else {
                    println!("{} / {pages} pages", workload.name());
                    println!(
                        "{:>16}  {:>12}  {:>8}  {:>12}  {:>8}",
                        "scheme", "cycles", "speedup", "NVM writes", "writes%"
                    );
                    for (s, c, sp, w, wf) in rows {
                        println!(
                            "{s:>16}  {c:>12}  {:>8}  {w:>12}  {:>8}",
                            format!("{sp:.2}x"),
                            format!("{:.1}%", wf * 100.0)
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
