//! Minimal, dependency-free stand-in for the subset of `proptest` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim and maps the `proptest` dependency name onto it
//! (see the root `Cargo.toml`). It keeps the same *test-author* API —
//! `proptest! { fn f(x in strategy) { ... } }`, `any::<T>()`, integer
//! ranges, `prop::collection::vec`, `prop::array::uniform32`,
//! `prop_assert*!`, `prop_assume!`, `ProptestConfig::with_cases` — but
//! the execution model is simpler than real proptest:
//!
//! * cases are generated from a deterministic per-test seed (derived
//!   from the test's name), so failures reproduce exactly;
//! * there is **no shrinking** — a failing case panics with the normal
//!   assertion message, and the case index is printed so it can be
//!   replayed;
//! * `.proptest-regressions` files are ignored.
//!
//! The default case count is 64 (override with the `PROPTEST_CASES`
//! environment variable, like real proptest honours).

use rand::{Rng as _, SeedableRng as _};

pub use rand::rngs::StdRng;

/// Runner configuration (only the `cases` knob is modelled).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Effective case count, honouring `PROPTEST_CASES`.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
    }
}

/// Derives a stable 64-bit seed from a test's name (FNV-1a).
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Builds the deterministic generator for one test case (used by the
/// [`proptest!`] expansion; callers never need it directly).
pub fn rng_for(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name, case))
}

/// A value generator (real proptest's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (real proptest's `prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Constant strategy (real proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice over boxed strategies; built by [`prop_oneof!`].
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Default for OneOf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OneOf<T> {
    /// An empty choice; sampling panics until an arm is added.
    pub fn new() -> Self {
        Self { arms: Vec::new() }
    }

    /// Adds an arm with relative `weight`.
    pub fn or(mut self, weight: u32, s: impl Strategy<Value = T> + 'static) -> Self {
        assert!(weight > 0, "prop_oneof! weights must be positive");
        self.arms.push((weight, Box::new(s)));
        self
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= *w;
        }
        unreachable!("weights sum covers the sampled range")
    }
}

/// `prop_oneof! { w1 => s1, w2 => s2, ... }` (or unweighted arms):
/// picks one arm per sample, weighted (real proptest's macro, minus
/// shrinking across arms).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new()$(.or($weight, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new()$(.or(1, $strat))+
    };
}

// ---- integer / bool strategies ----------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T` (`any::<u8>()`, `any::<bool>()`, ...).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

// ---- tuple strategies --------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---- collection / array strategies ------------------------------------

/// `prop::collection` equivalents.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng as _;

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::array` equivalents.
pub mod array {
    use super::{StdRng, Strategy};

    /// Strategy for `[T; 32]`.
    pub struct Uniform32<S>(S);

    /// `prop::array::uniform32(element)`.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    /// Strategy for `[T; 16]`.
    pub struct Uniform16<S>(S);

    /// `prop::array::uniform16(element)`.
    pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
        Uniform16(element)
    }

    impl<S: Strategy> Strategy for Uniform16<S> {
        type Value = [S::Value; 16];
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

/// The `prop` path alias (`prop::collection::vec`, `prop::array::...`).
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

/// Everything a test module imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy,
    };
}

// ---- macros ------------------------------------------------------------

/// `proptest! { ... }` — generates one `#[test]` fn per body fn; each
/// runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                for case in 0..cases {
                    let mut __proptest_rng =
                        $crate::rng_for(concat!(module_path!(), "::", stringify!($name)), case);
                    // One closure per case so `prop_assume!` can skip it
                    // with an early return.
                    let mut one_case = || {
                        $crate::__proptest_bind!(__proptest_rng, $($args)*);
                        $body
                    };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut one_case));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {case}/{cases} of {} failed (deterministic seed; \
                             rerun reproduces it)",
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: binds `pat in strategy` args.
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::Strategy::sample(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Assertion macros — plain `assert*!` (no shrinking to report back to).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_domain() {
        let mut rng = crate::rng_for("strategies_sample_in_domain", 0);
        for _ in 0..100 {
            let v = (0u64..10).sample(&mut rng);
            assert!(v < 10);
            let t = (0u8..4, any::<bool>()).sample(&mut rng);
            assert!(t.0 < 4);
            let xs = prop::collection::vec(0u32..7, 1..9).sample(&mut rng);
            assert!((1..9).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 7));
            let arr = prop::array::uniform32(0u8..=63).sample(&mut rng);
            assert!(arr.iter().all(|&x| x <= 63));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro surface itself: bindings, assume, asserts.
        #[test]
        fn macro_roundtrip(x in 1u64..100, (a, b) in (0u8..10, 0u8..10), v in prop::collection::vec(any::<u8>(), 0..5)) {
            prop_assume!(x != 99);
            prop_assert!(x >= 1 && x < 100);
            prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16, "commutativity {} {}", a, b);
            prop_assert_ne!(x, 0);
            prop_assert!(v.len() < 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(y in any::<u64>()) {
            let _ = y;
        }
    }
}
