//! Page-size definitions.
//!
//! The paper evaluates 4 KB regular pages and 2 MB huge pages
//! (Table III). A 2 MB huge page spans 512 counter *regions* of 4 KB —
//! the kernel translates huge-page operations into per-region commands
//! (paper §IV-C) — and 32 768 cachelines.

use crate::{LINE_BYTES, REGION_BYTES};
use std::fmt;

/// Page granularity managed by the simulated OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// A 4 KB base page.
    Regular4K,
    /// A 2 MB huge page.
    Huge2M,
}

impl PageSize {
    /// Page size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Regular4K => 4096,
            PageSize::Huge2M => 2 * 1024 * 1024,
        }
    }

    /// Number of 64-byte cachelines in the page.
    pub const fn lines(self) -> usize {
        (self.bytes() as usize) / LINE_BYTES
    }

    /// Number of 4 KB counter regions the page spans.
    pub const fn regions(self) -> usize {
        (self.bytes() / REGION_BYTES) as usize
    }

    /// Both supported sizes, in ascending order.
    pub const fn all() -> [PageSize; 2] {
        [PageSize::Regular4K, PageSize::Huge2M]
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Regular4K => write!(f, "4KB"),
            PageSize::Huge2M => write!(f, "2MB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(PageSize::Regular4K.bytes(), 4096);
        assert_eq!(PageSize::Regular4K.lines(), 64);
        assert_eq!(PageSize::Regular4K.regions(), 1);
        assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Huge2M.lines(), 32768);
        assert_eq!(PageSize::Huge2M.regions(), 512);
    }

    #[test]
    fn display() {
        assert_eq!(PageSize::Regular4K.to_string(), "4KB");
        assert_eq!(PageSize::Huge2M.to_string(), "2MB");
    }
}
