//! Shared foundational types for the Lelantus reproduction.
//!
//! Every other crate in the workspace speaks in terms of these
//! newtypes: [`PhysAddr`]/[`VirtAddr`] byte addresses, [`PageSize`]s
//! (4 KB regular and 2 MB huge pages, paper Table III), and [`Cycles`]
//! of the 1 GHz simulated clock (so 1 cycle = 1 ns).
//!
//! # Examples
//!
//! ```
//! use lelantus_types::{PhysAddr, PageSize, LINE_BYTES};
//!
//! let addr = PhysAddr::new(0x1234);
//! assert_eq!(addr.line_align().as_u64(), 0x1200 | 0x00); // 64B-aligned
//! assert_eq!(PageSize::Regular4K.lines(), 64);
//! assert_eq!(PageSize::Huge2M.bytes() / LINE_BYTES as u64, 32768);
//! ```

pub mod addr;
pub mod cycles;
pub mod page;

pub use addr::{PhysAddr, VirtAddr};
pub use cycles::Cycles;
pub use page::PageSize;

/// Cacheline size in bytes (paper Table III: 64 B blocks everywhere).
pub const LINE_BYTES: usize = 64;

/// Bytes covered by one split-counter block: a 4 KB region (paper §II-B).
pub const REGION_BYTES: u64 = 4096;

/// Cachelines per 4 KB counter region.
pub const LINES_PER_REGION: usize = (REGION_BYTES as usize) / LINE_BYTES;
