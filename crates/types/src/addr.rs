//! Physical and virtual byte-address newtypes.
//!
//! Keeping the two address spaces as distinct types prevents the
//! classic simulator bug of handing a virtual address to the memory
//! controller (which must only ever see physical addresses — all of
//! Lelantus' CoW metadata is keyed by *physical* page, paper §III-A).

use crate::{LINE_BYTES, REGION_BYTES};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw byte address.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw byte address.
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Rounds down to the containing 64-byte line.
            pub const fn line_align(self) -> Self {
                Self(self.0 & !(LINE_BYTES as u64 - 1))
            }

            /// Byte offset within the containing 64-byte line.
            pub const fn line_offset(self) -> usize {
                (self.0 & (LINE_BYTES as u64 - 1)) as usize
            }

            /// Index of the containing line within its 4 KB region.
            pub const fn line_in_region(self) -> usize {
                ((self.0 % REGION_BYTES) / LINE_BYTES as u64) as usize
            }

            /// Rounds down to the containing 4 KB counter region.
            pub const fn region_align(self) -> Self {
                Self(self.0 & !(REGION_BYTES - 1))
            }

            /// Rounds down to the given page-size boundary.
            pub const fn align_to(self, bytes: u64) -> Self {
                Self(self.0 & !(bytes - 1))
            }

            /// True if aligned to `bytes` (a power of two).
            pub const fn is_aligned_to(self, bytes: u64) -> bool {
                self.0 & (bytes - 1) == 0
            }

            /// Address advanced by `delta` bytes.
            ///
            /// # Panics
            ///
            /// Panics on address-space overflow.
            pub fn checked_add(self, delta: u64) -> Self {
                Self(self.0.checked_add(delta).expect("address overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.0
            }
        }

        impl Add<u64> for $name {
            type Output = Self;
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $name {
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }
    };
}

addr_newtype! {
    /// A physical byte address in the simulated NVM.
    PhysAddr
}

addr_newtype! {
    /// A virtual byte address within one simulated process.
    VirtAddr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        let a = PhysAddr::new(0x1234);
        assert_eq!(a.line_align(), PhysAddr::new(0x1200));
        assert_eq!(a.line_offset(), 0x34);
        assert!(a.line_align().is_aligned_to(64));
    }

    #[test]
    fn region_helpers() {
        let a = PhysAddr::new(0x2345);
        assert_eq!(a.region_align(), PhysAddr::new(0x2000));
        assert_eq!(a.line_in_region(), (0x345 / 64) as usize);
    }

    #[test]
    fn arithmetic() {
        let a = VirtAddr::new(0x1000);
        assert_eq!((a + 0x40).as_u64(), 0x1040);
        assert_eq!((a + 0x40) - a, 0x40);
        let mut b = a;
        b += 64;
        assert_eq!(b.as_u64(), 0x1040);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PhysAddr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:?}", PhysAddr::new(16)), "PhysAddr(0x10)");
    }

    #[test]
    #[should_panic(expected = "address overflow")]
    fn checked_add_overflow_panics() {
        let _ = PhysAddr::new(u64::MAX).checked_add(1);
    }

    #[test]
    fn conversions() {
        let a: PhysAddr = 0x80u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0x80);
    }
}
