//! Simulated-time newtype.
//!
//! The paper's system (Table III) runs an 8-core 1 GHz processor, so
//! one core cycle equals one nanosecond; NVM latencies (60 ns read,
//! 150 ns write) convert to cycles with no scaling. All simulator
//! components account time in [`Cycles`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A duration or instant measured in 1 GHz core cycles (= nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Wraps a raw cycle count.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Equivalent nanoseconds at the 1 GHz clock.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The later of two instants.
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Saturating difference (useful for "time until" computations).
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(50);
        assert_eq!(a + b, Cycles::new(150));
        assert_eq!(a - b, Cycles::new(50));
        assert_eq!(b * 3, Cycles::new(150));
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
    }

    #[test]
    fn sum_and_display() {
        let total: Cycles = [Cycles::new(1), Cycles::new(2), Cycles::new(3)].into_iter().sum();
        assert_eq!(total, Cycles::new(6));
        assert_eq!(total.to_string(), "6 cyc");
        assert_eq!(total.as_nanos(), 6);
    }
}
