//! Spatial heat grids: where in the physical address space the work
//! lands.
//!
//! The temporal observability layers (events, ledger, tail spans) say
//! *when* and *how much*; the [`HeatGrid`] says *where*. It keeps one
//! dense, saturating `u32` counter per 4 KB device region per
//! [`HeatLane`] — faults by action, CoW redirects, implicit copies,
//! counter fills and overflows, Merkle walk touches per tree level,
//! MAC-line writebacks, bank array accesses, and the parallel
//! engine's data-plane work. Lanes are lazily grown on first touch,
//! so an idle lane costs nothing and a grid over a mostly-cold
//! address space stays small.
//!
//! Every lane shadows an aggregate counter the simulator already
//! keeps (see each variant's doc), so a grid can be *reconciled*: the
//! sum over regions of a lane must equal the aggregate it shadows.
//! The reconciliation table is enforced in `tests/heatmap.rs`.
//!
//! Grids form a commutative monoid under [`HeatGrid::merge`] (the
//! per-shard grids of the parallel engine merge in any order) and
//! support [`HeatGrid::delta_since`] so the epoch sampler can carve
//! per-epoch spatial deltas that sum back to the full-run grid.

/// One kind of spatially-attributed work.
///
/// Each variant names the aggregate counter its lane total must
/// reconcile with exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeatLane {
    /// Write fault serviced by an eager source copy
    /// (`FaultAction::EagerCopy`; fault lanes together reconcile with
    /// `kernel.cow_faults + kernel.reuse_faults`).
    FaultEagerCopy,
    /// Write fault on a zero-fill page (`FaultAction::DemandZero`).
    FaultDemandZero,
    /// Write fault resolved lazily via an MMIO copy/phyc command
    /// (`FaultAction::LazyCow`).
    FaultLazyCow,
    /// Write-protect fault resolved by in-place reuse
    /// (`FaultAction::Reuse`).
    FaultReuse,
    /// Fault that early-reclaimed a page with live dependents
    /// (`FaultAction::EarlyReclaim`).
    FaultEarlyReclaim,
    /// Read resolved through a lazy-copy redirect chain (reconciles
    /// with `controller.redirected_reads`).
    CowRedirect,
    /// Store that completed a deferred copy inline (reconciles with
    /// `controller.implicit_copies`).
    ImplicitCopy,
    /// Counter-cache miss filled from NVM (reconciles with
    /// `controller.counter_fetches`).
    CounterFill,
    /// Minor-counter overflow forcing a region re-encryption
    /// (reconciles with `controller.minor_overflows`).
    CounterOverflow,
    /// MAC-line writeback to NVM (reconciles with
    /// `controller.mac_writebacks`).
    MacWrite,
    /// NVM array line read at this region's device address (reconciles
    /// with `nvm.line_reads`; metadata-area regions light up here).
    BankRead,
    /// NVM array line write at this region's device address
    /// (reconciles with `nvm.line_writes`).
    BankWrite,
    /// Merkle node fetched at tree level 0 while walking for this
    /// region (all Merkle lanes together reconcile with
    /// `controller.merkle_fetches`).
    MerkleL0,
    /// Merkle node fetched at tree level 1.
    MerkleL1,
    /// Merkle node fetched at tree level 2.
    MerkleL2,
    /// Merkle node fetched at tree level 3.
    MerkleL3,
    /// Merkle node fetched at tree level 4.
    MerkleL4,
    /// Merkle node fetched at tree level 5.
    MerkleL5,
    /// Merkle node fetched at tree level 6.
    MerkleL6,
    /// Merkle node fetched at tree level 7 or deeper.
    MerkleDeep,
    /// Data-plane line store applied by a shard worker (parallel
    /// engine only; reconciles with the sum of shard `stores`).
    DpStore,
    /// Data-plane leaf digest computed by a shard worker (parallel
    /// engine only; reconciles with the sum of shard `leaf_hashes`).
    DpLeaf,
}

impl HeatLane {
    /// Number of lanes.
    pub const COUNT: usize = 22;

    /// All lanes, in dense-index order.
    pub const ALL: [HeatLane; Self::COUNT] = [
        HeatLane::FaultEagerCopy,
        HeatLane::FaultDemandZero,
        HeatLane::FaultLazyCow,
        HeatLane::FaultReuse,
        HeatLane::FaultEarlyReclaim,
        HeatLane::CowRedirect,
        HeatLane::ImplicitCopy,
        HeatLane::CounterFill,
        HeatLane::CounterOverflow,
        HeatLane::MacWrite,
        HeatLane::BankRead,
        HeatLane::BankWrite,
        HeatLane::MerkleL0,
        HeatLane::MerkleL1,
        HeatLane::MerkleL2,
        HeatLane::MerkleL3,
        HeatLane::MerkleL4,
        HeatLane::MerkleL5,
        HeatLane::MerkleL6,
        HeatLane::MerkleDeep,
        HeatLane::DpStore,
        HeatLane::DpLeaf,
    ];

    /// The five explicit-fault lanes, in `FaultAction` index order.
    pub const FAULTS: [HeatLane; 5] = [
        HeatLane::FaultEagerCopy,
        HeatLane::FaultDemandZero,
        HeatLane::FaultLazyCow,
        HeatLane::FaultReuse,
        HeatLane::FaultEarlyReclaim,
    ];

    /// The per-level Merkle lanes, shallow to deep.
    pub const MERKLE: [HeatLane; 8] = [
        HeatLane::MerkleL0,
        HeatLane::MerkleL1,
        HeatLane::MerkleL2,
        HeatLane::MerkleL3,
        HeatLane::MerkleL4,
        HeatLane::MerkleL5,
        HeatLane::MerkleL6,
        HeatLane::MerkleDeep,
    ];

    /// Dense index for array storage.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The Merkle lane for a tree level (levels ≥ 7 share
    /// [`HeatLane::MerkleDeep`]).
    pub fn merkle(level: usize) -> HeatLane {
        Self::MERKLE[level.min(Self::MERKLE.len() - 1)]
    }

    /// Stable snake_case name (JSON keys, tables).
    pub fn name(self) -> &'static str {
        match self {
            HeatLane::FaultEagerCopy => "fault_eager_copy",
            HeatLane::FaultDemandZero => "fault_demand_zero",
            HeatLane::FaultLazyCow => "fault_lazy_cow",
            HeatLane::FaultReuse => "fault_reuse",
            HeatLane::FaultEarlyReclaim => "fault_early_reclaim",
            HeatLane::CowRedirect => "cow_redirect",
            HeatLane::ImplicitCopy => "implicit_copy",
            HeatLane::CounterFill => "counter_fill",
            HeatLane::CounterOverflow => "counter_overflow",
            HeatLane::MacWrite => "mac_write",
            HeatLane::BankRead => "bank_read",
            HeatLane::BankWrite => "bank_write",
            HeatLane::MerkleL0 => "merkle_l0",
            HeatLane::MerkleL1 => "merkle_l1",
            HeatLane::MerkleL2 => "merkle_l2",
            HeatLane::MerkleL3 => "merkle_l3",
            HeatLane::MerkleL4 => "merkle_l4",
            HeatLane::MerkleL5 => "merkle_l5",
            HeatLane::MerkleL6 => "merkle_l6",
            HeatLane::MerkleDeep => "merkle_deep",
            HeatLane::DpStore => "dp_store",
            HeatLane::DpLeaf => "dp_leaf",
        }
    }
}

/// A region-granular spatial histogram: one saturating `u32` per
/// 4 KB device region per [`HeatLane`], lanes grown lazily on first
/// touch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HeatGrid {
    lanes: [Vec<u32>; HeatLane::COUNT],
}

impl HeatGrid {
    /// An empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one count to `lane` at `region`.
    #[inline]
    pub fn record(&mut self, lane: HeatLane, region: u64) {
        self.record_n(lane, region, 1);
    }

    /// Adds `n` counts to `lane` at `region` (saturating).
    #[inline]
    pub fn record_n(&mut self, lane: HeatLane, region: u64, n: u32) {
        let v = &mut self.lanes[lane.index()];
        let i = region as usize;
        if v.len() <= i {
            v.resize(i + 1, 0);
        }
        v[i] = v[i].saturating_add(n);
    }

    /// Count recorded in `lane` at `region` (0 past the lane's end).
    pub fn get(&self, lane: HeatLane, region: u64) -> u32 {
        self.lanes[lane.index()].get(region as usize).copied().unwrap_or(0)
    }

    /// The raw per-region counts of one lane (dense prefix; regions
    /// past the end are zero).
    pub fn lane(&self, lane: HeatLane) -> &[u32] {
        &self.lanes[lane.index()]
    }

    /// Sum of one lane over all regions.
    pub fn lane_total(&self, lane: HeatLane) -> u64 {
        self.lanes[lane.index()].iter().map(|&c| c as u64).sum()
    }

    /// Sum over every lane and region.
    pub fn total(&self) -> u64 {
        HeatLane::ALL.iter().map(|&l| self.lane_total(l)).sum()
    }

    /// Sum over all lanes at one region.
    pub fn region_total(&self, region: u64) -> u64 {
        self.lanes.iter().map(|v| v.get(region as usize).copied().unwrap_or(0) as u64).sum()
    }

    /// Number of regions the grid spans (the longest lane; untouched
    /// tail regions are not represented).
    pub fn regions(&self) -> usize {
        self.lanes.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether no count was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|v| v.iter().all(|&c| c == 0))
    }

    /// Number of regions with any heat at all.
    pub fn touched_regions(&self) -> usize {
        (0..self.regions() as u64).filter(|&r| self.region_total(r) > 0).count()
    }

    /// Folds `other` into `self`, cell-wise saturating. Commutative
    /// and associative (up to saturation), so per-shard grids merge in
    /// any order.
    pub fn merge(&mut self, other: &HeatGrid) {
        for (dst, src) in self.lanes.iter_mut().zip(other.lanes.iter()) {
            if dst.len() < src.len() {
                dst.resize(src.len(), 0);
            }
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = d.saturating_add(s);
            }
        }
    }

    /// Cell-wise `self - earlier` (saturating): the heat added since
    /// `earlier` was cloned from this grid's past. Deltas over a
    /// monotone history sum back to the final grid (exactly, below
    /// saturation).
    pub fn delta_since(&self, earlier: &HeatGrid) -> HeatGrid {
        let mut out = HeatGrid::new();
        for (lane, (cur, old)) in self.lanes.iter().zip(earlier.lanes.iter()).enumerate() {
            if cur.iter().zip(old.iter().chain(std::iter::repeat(&0))).all(|(c, o)| c == o) {
                continue; // lane unchanged: keep the delta lane empty
            }
            let v = &mut out.lanes[lane];
            v.resize(cur.len(), 0);
            for (i, (d, &c)) in v.iter_mut().zip(cur.iter()).enumerate() {
                *d = c.saturating_sub(old.get(i).copied().unwrap_or(0));
            }
        }
        out
    }

    /// The `n` hottest regions as `(region, total_heat)`, hottest
    /// first; ties break toward the lower region so the order is
    /// deterministic.
    pub fn top_regions(&self, n: usize) -> Vec<(u64, u64)> {
        let mut rows: Vec<(u64, u64)> = (0..self.regions() as u64)
            .filter_map(|r| {
                let t = self.region_total(r);
                (t > 0).then_some((r, t))
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Gini coefficient of per-region heat over the *touched* regions
    /// (0 = perfectly even, → 1 = all heat on one region). Untouched
    /// regions are excluded so a mostly-cold address space does not
    /// trivially report 1.
    pub fn gini(&self) -> f64 {
        let mut totals: Vec<u64> =
            (0..self.regions() as u64).map(|r| self.region_total(r)).filter(|&t| t > 0).collect();
        let n = totals.len();
        if n < 2 {
            return 0.0;
        }
        totals.sort_unstable();
        let sum: u64 = totals.iter().sum();
        if sum == 0 {
            return 0.0;
        }
        // Gini = (2 * sum_i(i * x_i) / (n * sum)) - (n + 1) / n, with
        // x ascending and i starting at 1.
        let weighted: f64 =
            totals.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum();
        (2.0 * weighted) / (n as f64 * sum as f64) - (n as f64 + 1.0) / n as f64
    }

    /// Fraction of all heat carried by the hottest
    /// `ceil(frac * touched)` regions (the "top-1 %" concentration
    /// number; 1.0 when the grid is empty-of-heat-free).
    pub fn top_share(&self, frac: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let touched = self.touched_regions();
        let k = ((frac * touched as f64).ceil() as usize).clamp(1, touched);
        let top: u64 = self.top_regions(k).iter().map(|&(_, t)| t).sum();
        top as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_densely_indexed_and_named() {
        for (i, lane) in HeatLane::ALL.iter().enumerate() {
            assert_eq!(lane.index(), i);
        }
        let mut names: Vec<&str> = HeatLane::ALL.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HeatLane::COUNT, "lane names must be unique");
        assert_eq!(HeatLane::merkle(0), HeatLane::MerkleL0);
        assert_eq!(HeatLane::merkle(6), HeatLane::MerkleL6);
        assert_eq!(HeatLane::merkle(7), HeatLane::MerkleDeep);
        assert_eq!(HeatLane::merkle(40), HeatLane::MerkleDeep);
    }

    #[test]
    fn record_and_totals() {
        let mut g = HeatGrid::new();
        assert!(g.is_empty());
        g.record(HeatLane::CounterFill, 3);
        g.record_n(HeatLane::CounterFill, 3, 2);
        g.record(HeatLane::BankRead, 100);
        assert_eq!(g.get(HeatLane::CounterFill, 3), 3);
        assert_eq!(g.get(HeatLane::CounterFill, 4), 0);
        assert_eq!(g.lane_total(HeatLane::CounterFill), 3);
        assert_eq!(g.region_total(3), 3);
        assert_eq!(g.total(), 4);
        assert_eq!(g.regions(), 101);
        assert_eq!(g.touched_regions(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut g = HeatGrid::new();
        g.record_n(HeatLane::BankWrite, 0, u32::MAX);
        g.record(HeatLane::BankWrite, 0);
        assert_eq!(g.get(HeatLane::BankWrite, 0), u32::MAX);
    }

    #[test]
    fn merge_is_commutative_across_different_extents() {
        let mut a = HeatGrid::new();
        a.record_n(HeatLane::MacWrite, 1, 5);
        a.record(HeatLane::BankRead, 9);
        let mut b = HeatGrid::new();
        b.record_n(HeatLane::MacWrite, 1, 2);
        b.record(HeatLane::DpStore, 40);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.get(HeatLane::MacWrite, 1), 7);
        assert_eq!(ab.lane_total(HeatLane::DpStore), 1);
        assert_eq!(ab.total(), ba.total());
        for lane in HeatLane::ALL {
            for r in 0..ab.regions().max(ba.regions()) as u64 {
                assert_eq!(ab.get(lane, r), ba.get(lane, r), "{lane:?}@{r}");
            }
        }
    }

    #[test]
    fn delta_since_recovers_increments() {
        let mut g = HeatGrid::new();
        g.record_n(HeatLane::CowRedirect, 2, 4);
        let base = g.clone();
        g.record(HeatLane::CowRedirect, 2);
        g.record(HeatLane::CounterOverflow, 7);
        let d = g.delta_since(&base);
        assert_eq!(d.get(HeatLane::CowRedirect, 2), 1);
        assert_eq!(d.get(HeatLane::CounterOverflow, 7), 1);
        assert_eq!(d.total(), 2);
        // base + delta == current
        let mut rebuilt = base.clone();
        rebuilt.merge(&d);
        assert_eq!(rebuilt.total(), g.total());
        assert_eq!(rebuilt.get(HeatLane::CowRedirect, 2), g.get(HeatLane::CowRedirect, 2));
        // delta against itself is empty
        assert!(g.delta_since(&g).is_empty());
    }

    #[test]
    fn top_regions_and_concentration() {
        let mut g = HeatGrid::new();
        g.record_n(HeatLane::BankWrite, 0, 1);
        g.record_n(HeatLane::BankWrite, 5, 10);
        g.record_n(HeatLane::BankWrite, 9, 10);
        let top = g.top_regions(2);
        assert_eq!(top, vec![(5, 10), (9, 10)], "ties break toward the lower region");
        assert_eq!(g.top_regions(100).len(), 3);
        assert!(g.gini() > 0.0 && g.gini() < 1.0);
        let even = {
            let mut e = HeatGrid::new();
            for r in 0..8 {
                e.record_n(HeatLane::BankWrite, r, 3);
            }
            e
        };
        assert!(even.gini().abs() < 1e-9, "uniform heat has Gini 0");
        assert!((g.top_share(1.0) - 1.0).abs() < 1e-9);
        assert!(g.top_share(0.3) >= 10.0 / 21.0);
        assert_eq!(HeatGrid::new().top_share(0.5), 0.0);
        assert_eq!(HeatGrid::new().gini(), 0.0);
    }
}
