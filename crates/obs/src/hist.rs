//! Log2-bucket histograms for latency and occupancy distributions.
//!
//! Aggregate means hide the shape that matters for tail analysis (a
//! write queue that is empty 99 % of the time and full 1 % of the time
//! averages to "shallow"). Power-of-two buckets cover the full `u64`
//! range in 66 slots with one `leading_zeros` per record, cheap enough
//! for the simulator's hot paths when a recording probe is attached.

use std::fmt;

/// Bucket count: value 0, then one bucket per power of two.
pub const BUCKETS: usize = 66;

/// Which distribution a recorded sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// NVM write-queue depth after each admission.
    WriteQueueDepth,
    /// CoW chain hops followed by a redirected read.
    CopyChainDepth,
    /// Counter-cache resident blocks after each fill.
    CounterCacheOccupancy,
    /// Cycles a page fault stalled the faulting core (trap plus
    /// copy/zero/command work).
    FaultServiceCycles,
    /// Cycles an MMIO page command (init/copy/phyc/free) occupied the
    /// controller, from acceptance to completion.
    CmdServiceCycles,
}

impl HistKind {
    /// Number of distinct kinds.
    pub const COUNT: usize = 5;

    /// All kinds, in index order.
    pub const ALL: [HistKind; Self::COUNT] = [
        HistKind::WriteQueueDepth,
        HistKind::CopyChainDepth,
        HistKind::CounterCacheOccupancy,
        HistKind::FaultServiceCycles,
        HistKind::CmdServiceCycles,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        match self {
            HistKind::WriteQueueDepth => 0,
            HistKind::CopyChainDepth => 1,
            HistKind::CounterCacheOccupancy => 2,
            HistKind::FaultServiceCycles => 3,
            HistKind::CmdServiceCycles => 4,
        }
    }

    /// Snake-case name (report labels, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            HistKind::WriteQueueDepth => "write_queue_depth",
            HistKind::CopyChainDepth => "copy_chain_depth",
            HistKind::CounterCacheOccupancy => "counter_cache_occupancy",
            HistKind::FaultServiceCycles => "fault_service_cycles",
            HistKind::CmdServiceCycles => "cmd_service_cycles",
        }
    }
}

/// A log2-bucket histogram: bucket 0 counts zeros, bucket `i` counts
/// values in `[2^(i-1), 2^i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (for the exact mean).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

/// Bucket index of `value`: 0 for 0, else `floor(log2(value)) + 1`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (all counters saturating).
    pub fn record(&mut self, value: u64) {
        let slot = &mut self.buckets[bucket_of(value)];
        *slot = slot.saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Exact mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`p` in `[0, 1]`): a conservative percentile estimate at log2
    /// resolution. Returns 0 when empty.
    pub fn quantile_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * p).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other`'s samples into `self` (all counters saturating).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Interval histogram: the samples recorded since `earlier`, an
    /// older snapshot of this same histogram. Bucket counts subtract
    /// exactly; the interval `max` is not recoverable from deltas, so
    /// it is the conservative `bucket_upper` of the highest bucket
    /// that gained samples, clamped to the running max.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        let mut highest = None;
        for (i, (now, then)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            let d = now.saturating_sub(*then);
            out.buckets[i] = d;
            if d > 0 {
                highest = Some(i);
            }
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out.max = highest.map(|i| bucket_upper(i).min(self.max)).unwrap_or(0);
        out
    }

    /// Occupied buckets as `(lower, upper_inclusive, count)` rows.
    pub fn rows(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lower(i), bucket_upper(i), n))
            .collect()
    }
}

/// Smallest value landing in bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Largest value landing in bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        65 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl fmt::Display for Histogram {
    /// Compact textual rendering: one `[lo, hi] count |bar|` row per
    /// occupied bucket.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "(no samples)");
        }
        writeln!(f, "n={} mean={:.1} max={}", self.count, self.mean(), self.max)?;
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (lo, hi, n) in self.rows() {
            let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
            let range = if lo == hi { format!("{lo}") } else { format!("{lo}..{hi}") };
            writeln!(f, "  {range:>16}  {n:>10}  {bar}")?;
        }
        Ok(())
    }
}

/// One histogram per [`HistKind`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSet {
    hists: [Histogram; HistKind::COUNT],
}

impl HistogramSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The histogram for `kind`.
    pub fn get(&self, kind: HistKind) -> &Histogram {
        &self.hists[kind.index()]
    }

    /// Mutable access (recording).
    pub fn get_mut(&mut self, kind: HistKind) -> &mut Histogram {
        &mut self.hists[kind.index()]
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSet) {
        for kind in HistKind::ALL {
            self.hists[kind.index()].merge(other.get(kind));
        }
    }

    /// Per-kind [`Histogram::delta_since`] against an older snapshot
    /// of this same set.
    pub fn delta_since(&self, earlier: &HistogramSet) -> HistogramSet {
        let mut out = HistogramSet::new();
        for kind in HistKind::ALL {
            out.hists[kind.index()] = self.get(kind).delta_since(earlier.get(kind));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.buckets[0], 1, "zero bucket");
        assert_eq!(h.buckets[1], 1, "value 1");
        assert_eq!(h.buckets[2], 2, "values 2..=3");
        assert_eq!(h.buckets[3], 2, "values 4..=7");
        assert_eq!(h.buckets[4], 1, "value 8");
        assert_eq!(h.buckets[10], 1, "value 1023");
        assert_eq!(h.buckets[11], 1, "value 1024");
        assert_eq!(h.buckets[64], 1, "u64::MAX");
        assert_eq!(h.count, 10);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn mean_and_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.quantile_bound(0.0), 1);
        // The median of 1..=100 lies in bucket [64, 127] -> capped at max.
        assert!(h.quantile_bound(0.5) >= 50);
        assert_eq!(h.quantile_bound(1.0), 100, "p100 capped at the max");
        assert_eq!(Histogram::new().quantile_bound(0.5), 0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 505);
        assert_eq!(a.max, 500);
        assert_eq!(a.rows().len(), 3);
    }

    #[test]
    fn display_renders_rows() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        let s = h.to_string();
        assert!(s.contains("n=2"), "{s}");
        assert!(s.contains("2..3"), "{s}");
        assert_eq!(Histogram::new().to_string(), "(no samples)");
    }

    #[test]
    fn saturating_counts_pin_at_max() {
        let mut a = Histogram::new();
        a.record(9);
        a.count = u64::MAX - 1;
        a.buckets[bucket_of(9)] = u64::MAX - 1;
        a.sum = u64::MAX - 2;
        let mut b = Histogram::new();
        b.record(9);
        b.record(9);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count, u64::MAX, "count saturates");
        assert_eq!(a.buckets[bucket_of(9)], u64::MAX, "bucket saturates");
        assert_eq!(a.sum, u64::MAX, "sum saturates");
        a.record(9);
        assert_eq!(a.count, u64::MAX, "record on a saturated histogram stays pinned");
    }

    #[test]
    fn merge_is_associative() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (mk(&[0, 3, 900]), mk(&[u64::MAX, 1]), mk(&[17, 17, 64]));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "(a+b)+c == a+(b+c)");
    }

    #[test]
    fn delta_since_subtracts_and_bounds_max() {
        let mut h = Histogram::new();
        h.record(10);
        let snap = h.clone();
        h.record(100);
        h.record(0);
        let d = h.delta_since(&snap);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 100);
        assert_eq!(d.buckets[0], 1, "zero bucket delta");
        assert!(d.max >= 100 && d.max <= 127, "conservative bucket-bound max, got {}", d.max);
        let e = h.delta_since(&h);
        assert_eq!((e.count, e.max), (0, 0), "self-delta is empty");
        // Set-level deltas apply per kind.
        let mut set = HistogramSet::new();
        set.get_mut(HistKind::CmdServiceCycles).record(5);
        let before = set.clone();
        set.get_mut(HistKind::CmdServiceCycles).record(6);
        set.get_mut(HistKind::WriteQueueDepth).record(1);
        let ds = set.delta_since(&before);
        assert_eq!(ds.get(HistKind::CmdServiceCycles).count, 1);
        assert_eq!(ds.get(HistKind::WriteQueueDepth).count, 1);
        assert_eq!(ds.get(HistKind::CopyChainDepth).count, 0);
    }

    #[test]
    fn set_indexing_round_trips() {
        let mut set = HistogramSet::new();
        set.get_mut(HistKind::CopyChainDepth).record(2);
        assert_eq!(set.get(HistKind::CopyChainDepth).count, 1);
        assert_eq!(set.get(HistKind::WriteQueueDepth).count, 0);
        for (i, kind) in HistKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }
}
