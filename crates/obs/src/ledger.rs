//! Cycle-attribution ledger: charges every simulated cycle to exactly
//! one component category.
//!
//! The paper's evaluation (§6) decomposes secure-NVM overhead into its
//! mechanisms — counter fetches, Merkle walks, MAC checks, AES pads,
//! CoW redirects, implicit copies — to show where Lelantus wins over
//! Linux CoW and Silent Shredder. The event stream ([`crate::Event`])
//! records *what happened*; the ledger answers *which component
//! consumed the cycles*.
//!
//! # Attribution model
//!
//! Simulated time is the maximum over the per-core clocks, so the
//! ledger attributes the **critical path**: a charge site that advances
//! the global maximum by `d` cycles books `d` into exactly one
//! category, and a charge that is hidden behind another core's clock
//! books nothing. This makes the hard invariant
//!
//! ```text
//! sum over categories == SimMetrics.cycles
//! ```
//!
//! hold exactly on every workload and scheme, including multi-core
//! ones, without double counting.
//!
//! Fine-grained attribution inside a memory operation uses
//! [`Segment`]s: the controller and the NVM device record
//! `[start, end)` intervals tagged with a category while they service a
//! request; the system layer then splits the observed critical-path
//! advance across the recorded segments (clipped to the advance
//! window, overlaps resolved by [`CycleCategory::priority`], residue
//! charged to the call site's default category) via [`attribute`].

/// Where a simulated cycle was spent.
///
/// Categories follow the paper's overhead decomposition plus the
/// simulator-level buckets needed to make the sum exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CycleCategory {
    /// Core-local instruction cost (`op_cost` per access/op).
    CpuOp,
    /// Address translation: TLB L2 hits and page walks.
    Translation,
    /// Kernel fault service: CoW/reuse faults, mmap/fork/exit
    /// bookkeeping, shootdowns.
    PageFault,
    /// MMIO command issue latency (`page_copy`/`page_phyc`/
    /// `page_free`/`page_init` doorbells).
    MmioCmd,
    /// On-chip SRAM hierarchy: cache hit/fill latencies not overlapped
    /// with any NVM component below.
    CacheSram,
    /// Counter-cache miss fills and counter writebacks (§4.1).
    CounterFill,
    /// Bonsai Merkle tree verification walks and flushes (§2.3).
    MerkleWalk,
    /// AES counter-mode pad generation on the critical path (§2.2).
    AesPad,
    /// Data-MAC fetch/verify/writeback traffic.
    Mac,
    /// CoW metadata lookups and lazy-copy chain walks (§4.3).
    CowRedirect,
    /// Implicit copies: first-write source reads under Lelantus-CoW
    /// (§4.4).
    ImplicitCopy,
    /// Write-queue admission stalls (queue full).
    QueueWait,
    /// NVM bank/bus service time for reads and durable writes.
    BankService,
    /// Bulk page copies and zeroing done by the in-memory engine.
    BulkCopy,
    /// Crash-recovery verification sweeps.
    Recovery,
    /// Residue that no finer category claims (ack cycles, zero-area
    /// shortcuts).
    Other,
}

impl CycleCategory {
    /// Number of categories (array dimension of [`CycleLedger`]).
    pub const COUNT: usize = 16;

    /// All categories, in display order.
    pub const ALL: [CycleCategory; CycleCategory::COUNT] = [
        CycleCategory::CpuOp,
        CycleCategory::Translation,
        CycleCategory::PageFault,
        CycleCategory::MmioCmd,
        CycleCategory::CacheSram,
        CycleCategory::CounterFill,
        CycleCategory::MerkleWalk,
        CycleCategory::AesPad,
        CycleCategory::Mac,
        CycleCategory::CowRedirect,
        CycleCategory::ImplicitCopy,
        CycleCategory::QueueWait,
        CycleCategory::BankService,
        CycleCategory::BulkCopy,
        CycleCategory::Recovery,
        CycleCategory::Other,
    ];

    /// Stable snake_case name (used by `lelantus profile` output,
    /// folded stacks and JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            CycleCategory::CpuOp => "cpu_op",
            CycleCategory::Translation => "translation",
            CycleCategory::PageFault => "page_fault",
            CycleCategory::MmioCmd => "mmio_cmd",
            CycleCategory::CacheSram => "cache_sram",
            CycleCategory::CounterFill => "counter_fill",
            CycleCategory::MerkleWalk => "merkle_walk",
            CycleCategory::AesPad => "aes_pad",
            CycleCategory::Mac => "mac",
            CycleCategory::CowRedirect => "cow_redirect",
            CycleCategory::ImplicitCopy => "implicit_copy",
            CycleCategory::QueueWait => "queue_wait",
            CycleCategory::BankService => "bank_service",
            CycleCategory::BulkCopy => "bulk_copy",
            CycleCategory::Recovery => "recovery",
            CycleCategory::Other => "other",
        }
    }

    /// Overlap-resolution priority: when two recorded segments cover
    /// the same instant, the higher priority wins the cycles. Rarer,
    /// more specific mechanisms outrank the generic service they ride
    /// on (an implicit-copy source read *is* a bank access — it is
    /// booked as the implicit copy, not the bank). The one inversion is
    /// the AES pad: pad generation overlaps the data fetch by design
    /// (§II-B, Figure 1), so bank service wins the overlap and only the
    /// pad's *exposed tail* is booked as AES time — matching how the
    /// paper reasons about encryption latency.
    pub fn priority(self) -> u8 {
        match self {
            CycleCategory::BulkCopy => 100,
            CycleCategory::ImplicitCopy => 90,
            CycleCategory::CowRedirect => 80,
            CycleCategory::MerkleWalk => 70,
            CycleCategory::CounterFill => 60,
            CycleCategory::Mac => 50,
            CycleCategory::QueueWait => 30,
            CycleCategory::BankService => 20,
            CycleCategory::AesPad => 15,
            _ => 10,
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A half-open interval `[start, end)` of simulated cycles tagged with
/// the component that was busy during it. Recorded by the controller
/// and NVM device while servicing a request, consumed by the system
/// layer's [`attribute`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First cycle of the interval.
    pub start: u64,
    /// One past the last cycle of the interval.
    pub end: u64,
    /// Component busy during the interval.
    pub cat: CycleCategory,
}

/// Per-category cycle totals. Plain owned data (`Copy`, no interior
/// mutability) so `System` stays `Send + Sync` and snapshots clone it
/// for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleLedger {
    counts: [u64; CycleCategory::COUNT],
}

impl CycleLedger {
    /// Books `cycles` to `cat`.
    pub fn charge(&mut self, cat: CycleCategory, cycles: u64) {
        self.counts[cat.index()] += cycles;
    }

    /// Cycles booked to `cat`.
    pub fn get(&self, cat: CycleCategory) -> u64 {
        self.counts[cat.index()]
    }

    /// Sum over all categories. Equals `SimMetrics.cycles` when the
    /// ledger is enabled for the whole run.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-category difference vs an earlier snapshot of the same
    /// ledger (used by the epoch sampler).
    ///
    /// # Panics
    /// Debug-panics if `earlier` is not a prefix state (a category ran
    /// backwards).
    pub fn delta_since(&self, earlier: &CycleLedger) -> CycleLedger {
        let mut out = CycleLedger::default();
        for (i, (now, then)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            debug_assert!(now >= then, "ledger category {i} ran backwards");
            out.counts[i] = now - then;
        }
        out
    }

    /// `(category, cycles)` pairs in display order, including zeros.
    pub fn iter(&self) -> impl Iterator<Item = (CycleCategory, u64)> + '_ {
        CycleCategory::ALL.iter().map(|&c| (c, self.get(c)))
    }

    /// Adds every category of `other` into this ledger. The parallel
    /// engine merges per-shard ledgers in stable shard order with this
    /// (addition commutes, so the merged totals are order-independent
    /// regardless).
    pub fn merge(&mut self, other: &CycleLedger) {
        for (i, v) in other.counts.iter().enumerate() {
            self.counts[i] += v;
        }
    }
}

/// Splits the critical-path advance `[start, end)` across the recorded
/// `segments` and books the result into `ledger`.
///
/// Each segment is clipped to the window; instants covered by several
/// segments go to the highest [`CycleCategory::priority`]; instants no
/// segment covers go to `default`. Exactly `end - start` cycles are
/// booked in total.
pub fn attribute(
    start: u64,
    end: u64,
    segments: &[Segment],
    default: CycleCategory,
    ledger: &mut CycleLedger,
) {
    if end <= start {
        return;
    }
    if segments.is_empty() {
        ledger.charge(default, end - start);
        return;
    }
    // Elementary-interval sweep over the cut points that fall inside
    // the window. Segment counts per memory operation are small
    // (single digits), so the quadratic probe is cheaper than sorting
    // events.
    let mut cuts: Vec<u64> = Vec::with_capacity(2 + segments.len() * 2);
    cuts.push(start);
    cuts.push(end);
    for s in segments {
        if s.end > start && s.start < end {
            cuts.push(s.start.max(start));
            cuts.push(s.end.min(end));
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    for pair in cuts.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let mut best: Option<CycleCategory> = None;
        for s in segments {
            if s.start <= a && s.end >= b {
                best = Some(match best {
                    Some(cur) if cur.priority() >= s.cat.priority() => cur,
                    _ => s.cat,
                });
            }
        }
        ledger.charge(best.unwrap_or(default), b - a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_table_is_consistent() {
        assert_eq!(CycleCategory::ALL.len(), CycleCategory::COUNT);
        for (i, c) in CycleCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{}", c.name());
        }
        // Names are unique (JSON keys / folded-stack frames).
        let mut names: Vec<&str> = CycleCategory::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CycleCategory::COUNT);
    }

    #[test]
    fn charge_total_delta_roundtrip() {
        let mut l = CycleLedger::default();
        l.charge(CycleCategory::AesPad, 40);
        l.charge(CycleCategory::Mac, 2);
        let snap = l;
        l.charge(CycleCategory::AesPad, 10);
        assert_eq!(l.total(), 52);
        let d = l.delta_since(&snap);
        assert_eq!(d.get(CycleCategory::AesPad), 10);
        assert_eq!(d.get(CycleCategory::Mac), 0);
        assert_eq!(d.total(), 10);
    }

    #[test]
    fn merge_adds_per_category() {
        let mut a = CycleLedger::default();
        a.charge(CycleCategory::Mac, 5);
        let mut b = CycleLedger::default();
        b.charge(CycleCategory::Mac, 7);
        b.charge(CycleCategory::AesPad, 1);
        a.merge(&b);
        assert_eq!(a.get(CycleCategory::Mac), 12);
        assert_eq!(a.get(CycleCategory::AesPad), 1);
        assert_eq!(a.total(), 13);
    }

    #[test]
    fn attribute_books_window_exactly() {
        let segs = [
            Segment { start: 10, end: 20, cat: CycleCategory::BankService },
            Segment { start: 15, end: 30, cat: CycleCategory::AesPad },
        ];
        let mut l = CycleLedger::default();
        attribute(0, 40, &segs, CycleCategory::Other, &mut l);
        assert_eq!(l.total(), 40);
        assert_eq!(l.get(CycleCategory::BankService), 10); // [10,20): bank outranks pad
        assert_eq!(l.get(CycleCategory::AesPad), 10); // [20,30): exposed pad tail
        assert_eq!(l.get(CycleCategory::Other), 20); // [0,10) + [30,40)
    }

    #[test]
    fn attribute_clips_segments_to_window() {
        let segs = [Segment { start: 0, end: 100, cat: CycleCategory::CounterFill }];
        let mut l = CycleLedger::default();
        attribute(90, 95, &segs, CycleCategory::Other, &mut l);
        assert_eq!(l.get(CycleCategory::CounterFill), 5);
        assert_eq!(l.total(), 5);
    }

    #[test]
    fn attribute_overlap_resolved_by_priority() {
        // An implicit-copy overlay outranks the bank access it rides on.
        let segs = [
            Segment { start: 0, end: 50, cat: CycleCategory::BankService },
            Segment { start: 0, end: 50, cat: CycleCategory::ImplicitCopy },
        ];
        let mut l = CycleLedger::default();
        attribute(0, 50, &segs, CycleCategory::Other, &mut l);
        assert_eq!(l.get(CycleCategory::ImplicitCopy), 50);
        assert_eq!(l.get(CycleCategory::BankService), 0);
    }

    #[test]
    fn attribute_empty_window_and_out_of_window_segments() {
        let segs = [Segment { start: 0, end: 10, cat: CycleCategory::Mac }];
        let mut l = CycleLedger::default();
        attribute(20, 20, &segs, CycleCategory::Other, &mut l);
        assert_eq!(l.total(), 0);
        attribute(20, 25, &segs, CycleCategory::Other, &mut l);
        assert_eq!(l.get(CycleCategory::Other), 5);
        assert_eq!(l.total(), 5);
    }
}
