//! The event taxonomy: everything the simulator can attribute.
//!
//! One [`Event`] is a cycle stamp plus an [`EventKind`] payload. The
//! kinds mirror the paper's mechanisms one-to-one so per-event counts
//! reconcile exactly with the aggregate statistics structs: each
//! emission site sits next to the counter it shadows (e.g. a
//! `CounterFetch` event is emitted exactly where
//! `ControllerStats::counter_fetches` is incremented).

use lelantus_types::Cycles;
use std::fmt::Write as _;

/// What happened (see the variant docs for the aggregate counter each
/// kind reconciles with).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// MMIO `page_copy src, dst` (== `ControllerStats::cmd_page_copy`).
    CmdPageCopy {
        /// Source 4 KB region base (byte address).
        src: u64,
        /// Destination 4 KB region base.
        dst: u64,
    },
    /// MMIO `page_phyc src, dst`. Accepted commands count toward
    /// `cmd_page_phyc`, stale ones toward `cmd_page_phyc_rejected`
    /// (the §III-D re-check).
    CmdPagePhyc {
        /// Expected source region base.
        src: u64,
        /// Destination region base.
        dst: u64,
        /// Whether the metadata still recorded `src` and the copy ran.
        accepted: bool,
    },
    /// MMIO `page_free dst` (== `cmd_page_free`).
    CmdPageFree {
        /// Freed region base.
        dst: u64,
    },
    /// Silent Shredder MMIO `page_init dst` (== `cmd_page_init`).
    CmdPageInit {
        /// Initialized region base.
        dst: u64,
    },
    /// Kernel CoW copy fault (== `KernelStats::cow_faults`; the
    /// `from_zero` subset == `zero_faults`).
    CowFault {
        /// Faulting process.
        pid: u64,
        /// Faulting virtual address.
        va: u64,
        /// Demand-zero allocation rather than a private copy.
        from_zero: bool,
    },
    /// Kernel `wp_page_reuse` fault (== `reuse_faults`; the
    /// `early_reclaim` subset also bumps `early_reclaims`).
    ReuseFault {
        /// Faulting process.
        pid: u64,
        /// Faulting virtual address.
        va: u64,
        /// Lelantus deferred reuse ran early reclamation first.
        early_reclaim: bool,
    },
    /// A fork completed (== `KernelStats::forks`).
    Fork {
        /// Parent process.
        parent: u64,
        /// New child process.
        child: u64,
    },
    /// A read chased a CoW chain to another region
    /// (== `ControllerStats::redirected_reads`).
    RedirectedRead {
        /// Line address of the logical read.
        addr: u64,
        /// Chain hops followed to the backing data.
        hops: u32,
    },
    /// First write to an uncopied line completed the copy implicitly
    /// (== `implicit_copies`, paper §III-B).
    ImplicitCopy {
        /// Line address written.
        addr: u64,
    },
    /// Counter-cache miss fetched a counter block from NVM
    /// (== `counter_fetches`).
    CounterFetch {
        /// 4 KB region index.
        region: u64,
    },
    /// A counter block was written back to NVM (== `counter_writebacks`).
    CounterWriteback {
        /// 4 KB region index.
        region: u64,
    },
    /// Minor-counter overflow re-encrypted the region
    /// (== `minor_overflows`, paper §V-A).
    CounterOverflow {
        /// Re-encrypted region index.
        region: u64,
    },
    /// Bonsai Merkle Tree nodes fetched while verifying or updating a
    /// counter block (the `nodes` fields sum to `merkle_fetches`).
    MerkleFetch {
        /// Region whose leaf was verified/updated.
        region: u64,
        /// Tree nodes fetched before hitting a cached (trusted) one.
        nodes: u64,
    },
    /// Lelantus-CoW mapping-table read on a CoW-cache miss
    /// (== `cow_meta_reads`).
    CowMetaRead {
        /// Region looked up.
        region: u64,
    },
    /// Lelantus-CoW mapping-table slot write (== `cow_meta_writes`).
    CowMetaWrite {
        /// Region whose slot was rewritten.
        region: u64,
    },
    /// A line write entered the NVM write queue. `merged` admissions
    /// coalesced into an existing same-line entry
    /// (== `NvmStats::merged_writes`).
    QueueAdmit {
        /// Line address admitted.
        addr: u64,
        /// Queue depth after the admit.
        depth: u32,
        /// Whether the write merged into a pending entry.
        merged: bool,
    },
    /// A queued write drained to the NVM array (overflow or flush).
    QueueDrain {
        /// Line address drained.
        addr: u64,
        /// Queue depth after the drain.
        depth: u32,
    },
}

impl EventKind {
    /// Number of distinct kinds (array-size constant for counters).
    pub const COUNT: usize = 17;

    /// Dense indices, in declaration order (for per-kind count arrays).
    pub const CMD_PAGE_COPY: usize = 0;
    /// Index of [`EventKind::CmdPagePhyc`].
    pub const CMD_PAGE_PHYC: usize = 1;
    /// Index of [`EventKind::CmdPageFree`].
    pub const CMD_PAGE_FREE: usize = 2;
    /// Index of [`EventKind::CmdPageInit`].
    pub const CMD_PAGE_INIT: usize = 3;
    /// Index of [`EventKind::CowFault`].
    pub const COW_FAULT: usize = 4;
    /// Index of [`EventKind::ReuseFault`].
    pub const REUSE_FAULT: usize = 5;
    /// Index of [`EventKind::Fork`].
    pub const FORK: usize = 6;
    /// Index of [`EventKind::RedirectedRead`].
    pub const REDIRECTED_READ: usize = 7;
    /// Index of [`EventKind::ImplicitCopy`].
    pub const IMPLICIT_COPY: usize = 8;
    /// Index of [`EventKind::CounterFetch`].
    pub const COUNTER_FETCH: usize = 9;
    /// Index of [`EventKind::CounterWriteback`].
    pub const COUNTER_WRITEBACK: usize = 10;
    /// Index of [`EventKind::CounterOverflow`].
    pub const COUNTER_OVERFLOW: usize = 11;
    /// Index of [`EventKind::MerkleFetch`].
    pub const MERKLE_FETCH: usize = 12;
    /// Index of [`EventKind::CowMetaRead`].
    pub const COW_META_READ: usize = 13;
    /// Index of [`EventKind::CowMetaWrite`].
    pub const COW_META_WRITE: usize = 14;
    /// Index of [`EventKind::QueueAdmit`].
    pub const QUEUE_ADMIT: usize = 15;
    /// Index of [`EventKind::QueueDrain`].
    pub const QUEUE_DRAIN: usize = 16;

    /// Dense index of this kind (stable, declaration order).
    pub fn index(&self) -> usize {
        match self {
            EventKind::CmdPageCopy { .. } => Self::CMD_PAGE_COPY,
            EventKind::CmdPagePhyc { .. } => Self::CMD_PAGE_PHYC,
            EventKind::CmdPageFree { .. } => Self::CMD_PAGE_FREE,
            EventKind::CmdPageInit { .. } => Self::CMD_PAGE_INIT,
            EventKind::CowFault { .. } => Self::COW_FAULT,
            EventKind::ReuseFault { .. } => Self::REUSE_FAULT,
            EventKind::Fork { .. } => Self::FORK,
            EventKind::RedirectedRead { .. } => Self::REDIRECTED_READ,
            EventKind::ImplicitCopy { .. } => Self::IMPLICIT_COPY,
            EventKind::CounterFetch { .. } => Self::COUNTER_FETCH,
            EventKind::CounterWriteback { .. } => Self::COUNTER_WRITEBACK,
            EventKind::CounterOverflow { .. } => Self::COUNTER_OVERFLOW,
            EventKind::MerkleFetch { .. } => Self::MERKLE_FETCH,
            EventKind::CowMetaRead { .. } => Self::COW_META_READ,
            EventKind::CowMetaWrite { .. } => Self::COW_META_WRITE,
            EventKind::QueueAdmit { .. } => Self::QUEUE_ADMIT,
            EventKind::QueueDrain { .. } => Self::QUEUE_DRAIN,
        }
    }

    /// Snake-case kind name (JSONL `kind` field, chrome-trace `name`).
    pub fn name(&self) -> &'static str {
        Self::name_of(self.index())
    }

    /// Name of the kind at dense index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= EventKind::COUNT`.
    pub fn name_of(index: usize) -> &'static str {
        const NAMES: [&str; EventKind::COUNT] = [
            "cmd_page_copy",
            "cmd_page_phyc",
            "cmd_page_free",
            "cmd_page_init",
            "cow_fault",
            "reuse_fault",
            "fork",
            "redirected_read",
            "implicit_copy",
            "counter_fetch",
            "counter_writeback",
            "counter_overflow",
            "merkle_fetch",
            "cow_meta_read",
            "cow_meta_write",
            "queue_admit",
            "queue_drain",
        ];
        NAMES[index]
    }

    /// Renders the payload fields as JSON members (no braces), e.g.
    /// `"src":4096,"dst":8192`. Used by both the JSONL and the
    /// chrome-trace writers.
    pub fn json_fields(&self) -> String {
        let mut s = String::new();
        match *self {
            EventKind::CmdPageCopy { src, dst } => {
                let _ = write!(s, "\"src\":{src},\"dst\":{dst}");
            }
            EventKind::CmdPagePhyc { src, dst, accepted } => {
                let _ = write!(s, "\"src\":{src},\"dst\":{dst},\"accepted\":{accepted}");
            }
            EventKind::CmdPageFree { dst } | EventKind::CmdPageInit { dst } => {
                let _ = write!(s, "\"dst\":{dst}");
            }
            EventKind::CowFault { pid, va, from_zero } => {
                let _ = write!(s, "\"pid\":{pid},\"va\":{va},\"from_zero\":{from_zero}");
            }
            EventKind::ReuseFault { pid, va, early_reclaim } => {
                let _ = write!(s, "\"pid\":{pid},\"va\":{va},\"early_reclaim\":{early_reclaim}");
            }
            EventKind::Fork { parent, child } => {
                let _ = write!(s, "\"parent\":{parent},\"child\":{child}");
            }
            EventKind::RedirectedRead { addr, hops } => {
                let _ = write!(s, "\"addr\":{addr},\"hops\":{hops}");
            }
            EventKind::ImplicitCopy { addr } => {
                let _ = write!(s, "\"addr\":{addr}");
            }
            EventKind::CounterFetch { region }
            | EventKind::CounterWriteback { region }
            | EventKind::CounterOverflow { region }
            | EventKind::CowMetaRead { region }
            | EventKind::CowMetaWrite { region } => {
                let _ = write!(s, "\"region\":{region}");
            }
            EventKind::MerkleFetch { region, nodes } => {
                let _ = write!(s, "\"region\":{region},\"nodes\":{nodes}");
            }
            EventKind::QueueAdmit { addr, depth, merged } => {
                let _ = write!(s, "\"addr\":{addr},\"depth\":{depth},\"merged\":{merged}");
            }
            EventKind::QueueDrain { addr, depth } => {
                let _ = write!(s, "\"addr\":{addr},\"depth\":{depth}");
            }
        }
        s
    }
}

/// One traced occurrence: a cycle stamp plus the kind payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle the event was observed at.
    pub cycle: Cycles,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// One JSONL line (no trailing newline), e.g.
    /// `{"cycle":42,"kind":"counter_fetch","region":7}`.
    pub fn to_jsonl(&self) -> String {
        let fields = self.kind.json_fields();
        format!("{{\"cycle\":{},\"kind\":\"{}\",{fields}}}", self.cycle.as_u64(), self.kind.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_of_each() -> Vec<EventKind> {
        vec![
            EventKind::CmdPageCopy { src: 0, dst: 4096 },
            EventKind::CmdPagePhyc { src: 0, dst: 4096, accepted: true },
            EventKind::CmdPageFree { dst: 4096 },
            EventKind::CmdPageInit { dst: 4096 },
            EventKind::CowFault { pid: 1, va: 2, from_zero: false },
            EventKind::ReuseFault { pid: 1, va: 2, early_reclaim: true },
            EventKind::Fork { parent: 1, child: 2 },
            EventKind::RedirectedRead { addr: 64, hops: 2 },
            EventKind::ImplicitCopy { addr: 64 },
            EventKind::CounterFetch { region: 3 },
            EventKind::CounterWriteback { region: 3 },
            EventKind::CounterOverflow { region: 3 },
            EventKind::MerkleFetch { region: 3, nodes: 4 },
            EventKind::CowMetaRead { region: 3 },
            EventKind::CowMetaWrite { region: 3 },
            EventKind::QueueAdmit { addr: 64, depth: 5, merged: false },
            EventKind::QueueDrain { addr: 64, depth: 4 },
        ]
    }

    #[test]
    fn indices_are_dense_and_names_distinct() {
        let kinds = one_of_each();
        assert_eq!(kinds.len(), EventKind::COUNT);
        let mut names = std::collections::HashSet::new();
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(k.index(), i, "{k:?} out of declaration order");
            assert!(names.insert(k.name()), "duplicate name {}", k.name());
        }
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        for kind in one_of_each() {
            let line = Event { cycle: Cycles::new(9), kind }.to_jsonl();
            assert!(line.starts_with("{\"cycle\":9,\"kind\":\""), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), 1, "flat object: {line}");
            // Balanced quotes (all keys/values are unquoted numbers or
            // booleans except the kind name).
            assert_eq!(line.matches('"').count() % 2, 0, "{line}");
        }
    }

    #[test]
    fn jsonl_payload_fields() {
        let e = Event {
            cycle: Cycles::new(100),
            kind: EventKind::QueueAdmit { addr: 128, depth: 3, merged: true },
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"cycle\":100,\"kind\":\"queue_admit\",\"addr\":128,\"depth\":3,\"merged\":true}"
        );
    }
}
