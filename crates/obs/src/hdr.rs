//! HDR-style log-linear histogram: exact-count percentiles at bounded
//! relative error.
//!
//! The log2 [`crate::Histogram`] answers "what shape is this
//! distribution" in 66 buckets, but its power-of-two resolution makes
//! a p999 estimate off by up to 2x — useless for comparing schemes
//! whose tails differ by tens of percent. [`HdrHistogram`] keeps the
//! same full-`u64` range and O(1) `leading_zeros` recording, but
//! subdivides every power of two into [`SUB_BUCKETS`] linear
//! sub-buckets, so any percentile query is exact to within
//! `1/SUB_BUCKETS` relative error (and *exact* below
//! `2 * SUB_BUCKETS`).
//!
//! # Bucket math
//!
//! With `SUB_BUCKETS = 32` (5 mantissa bits):
//!
//! * values `0..64` are their own bucket: `index = v` (two exact
//!   rows — the sub-linear range where log-linear bucketing would
//!   waste slots);
//! * for `v >= 64`, let `exp = 63 - v.leading_zeros()` (so
//!   `2^exp <= v < 2^(exp+1)`, `exp >= 6`) and
//!   `shift = exp - 5`; then `index = 64 + (exp - 6) * 32 +
//!   ((v >> shift) & 31)`.
//!
//! Each row of 32 buckets spans one power of two with bucket width
//! `2^shift`; the bucket holding `v` has lower bound
//! `(32 + mantissa) << shift >= 32 << shift`, so the width-to-lower
//! ratio — and hence the percentile error — is below `1/32`. Rows for
//! `exp = 6..=63` plus the 64 exact slots give
//! `64 + 58 * 32 = 1856 + 64 = 1920` buckets (15 KB of `u64` counts);
//! the top bucket's inclusive upper bound is exactly `u64::MAX`.
//!
//! All counters saturate instead of wrapping: a histogram fed more
//! than `u64::MAX` samples (or an astronomically large `sum`) pins at
//! the maximum rather than corrupting percentile ranks.

/// Sub-buckets per power of two (the mantissa resolution).
pub const SUB_BUCKETS: u64 = 32;

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 5;

/// Total bucket count: `2 * SUB_BUCKETS` exact values plus one
/// `SUB_BUCKETS`-wide row per exponent `6..=63`.
pub const HDR_BUCKETS: usize = 64 + 58 * SUB_BUCKETS as usize;

/// Bucket index of `value`.
#[inline]
fn index_of(value: u64) -> usize {
    if value < 2 * SUB_BUCKETS {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let shift = exp - SUB_BITS;
    let mantissa = (value >> shift) & (SUB_BUCKETS - 1);
    (2 * SUB_BUCKETS) as usize
        + (exp as usize - (SUB_BITS as usize + 1)) * SUB_BUCKETS as usize
        + mantissa as usize
}

/// Smallest value landing in bucket `i`.
#[inline]
fn lower_of(i: usize) -> u64 {
    if i < (2 * SUB_BUCKETS) as usize {
        return i as u64;
    }
    let row = (i - (2 * SUB_BUCKETS) as usize) / SUB_BUCKETS as usize;
    let mantissa = (i - (2 * SUB_BUCKETS) as usize) % SUB_BUCKETS as usize;
    let shift = row as u32 + 1;
    (SUB_BUCKETS + mantissa as u64) << shift
}

/// Largest value landing in bucket `i` (inclusive; `u64::MAX` for the
/// top bucket).
#[inline]
fn upper_of(i: usize) -> u64 {
    if i < (2 * SUB_BUCKETS) as usize {
        return i as u64;
    }
    let row = (i - (2 * SUB_BUCKETS) as usize) / SUB_BUCKETS as usize;
    let shift = row as u32 + 1;
    let width = 1u64 << shift;
    lower_of(i).saturating_add(width - 1)
}

/// A log-linear histogram over the full `u64` range with
/// `1/SUB_BUCKETS` relative-error percentile queries.
///
/// # Examples
///
/// ```
/// use lelantus_obs::HdrHistogram;
///
/// let mut h = HdrHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p999 = h.percentile(0.999);
/// assert!((999..=1000 + 1000 / 32).contains(&p999));
/// assert_eq!(h.percentile(1.0), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdrHistogram {
    /// Per-bucket sample counts (saturating).
    counts: Box<[u64; HDR_BUCKETS]>,
    /// Total samples (saturating).
    count: u64,
    /// Sum of all samples (saturating; for the mean).
    sum: u64,
    /// Largest sample seen.
    max: u64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        Self { counts: Box::new([0; HDR_BUCKETS]), count: 0, sum: 0, max: 0 }
    }
}

impl HdrHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let slot = &mut self.counts[index_of(value)];
        *slot = slot.saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-percentile (`p` in `[0, 1]`) of the recorded samples:
    /// the upper bound of the bucket holding the rank-`ceil(p * n)`
    /// sample, clamped to the observed maximum. Exact for values below
    /// `2 * SUB_BUCKETS`; within `1/SUB_BUCKETS` relative error above.
    /// Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * p).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return upper_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other`'s samples into `self` (all counters saturating).
    pub fn merge(&mut self, other: &HdrHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Interval histogram: the samples recorded since `earlier`, an
    /// older snapshot of this same histogram. Per-bucket counts
    /// subtract exactly; the interval `max` is not recoverable from
    /// bucket deltas, so it is the conservative bound `upper_of` the
    /// highest bucket that gained samples, clamped to the running max.
    pub fn delta_since(&self, earlier: &HdrHistogram) -> HdrHistogram {
        let mut out = HdrHistogram::new();
        let mut highest = None;
        for (i, (now, then)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            let d = now.saturating_sub(*then);
            out.counts[i] = d;
            if d > 0 {
                highest = Some(i);
            }
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out.max = highest.map(|i| upper_of(i).min(self.max)).unwrap_or(0);
        out
    }

    /// Occupied buckets as `(lower, upper_inclusive, count)` rows.
    pub fn rows(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (lower_of(i), upper_of(i), n))
            .collect()
    }

    /// The fixed percentile summary the epoch sampler and reports
    /// carry.
    pub fn summary(&self) -> TailSummary {
        TailSummary {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
        }
    }
}

/// A compact, `Copy` percentile snapshot of an [`HdrHistogram`] —
/// what gets stored per epoch and printed per scheme.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailSummary {
    /// Samples in the window.
    pub count: u64,
    /// Sum of the samples (saturating).
    pub sum: u64,
    /// Largest sample (conservative bucket bound for interval
    /// summaries; see [`HdrHistogram::delta_since`]).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl TailSummary {
    /// Mean of the summarized samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG for oracle sampling (no external RNG).
    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state
    }

    #[test]
    fn indexing_round_trips_every_bucket() {
        for i in 0..HDR_BUCKETS {
            let lo = lower_of(i);
            let hi = upper_of(i);
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(index_of(lo), i, "lower bound of bucket {i}");
            assert_eq!(index_of(hi), i, "upper bound of bucket {i}");
            if i + 1 < HDR_BUCKETS {
                assert_eq!(hi + 1, lower_of(i + 1), "buckets {i},{} must tile", i + 1);
            }
        }
        assert_eq!(lower_of(0), 0);
        assert_eq!(upper_of(HDR_BUCKETS - 1), u64::MAX, "top bucket reaches u64::MAX");
        assert_eq!(index_of(u64::MAX), HDR_BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for i in (2 * SUB_BUCKETS) as usize..HDR_BUCKETS {
            let lo = lower_of(i);
            let width = upper_of(i) - lo + 1;
            assert!(
                width <= lo / SUB_BUCKETS,
                "bucket {i}: width {width} vs lower {lo} breaks the 1/{SUB_BUCKETS} bound"
            );
        }
    }

    #[test]
    fn zero_and_max_edge_values() {
        let mut h = HdrHistogram::new();
        h.record(0);
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(0.5), 0, "median of {{0, 0, MAX}}");
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(HdrHistogram::new().percentile(0.999), 0, "empty histogram");
        assert_eq!(HdrHistogram::new().max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = HdrHistogram::new();
        for v in 0..2 * SUB_BUCKETS {
            h.record(v);
        }
        for (i, (lo, hi, n)) in h.rows().into_iter().enumerate() {
            assert_eq!((lo, hi, n), (i as u64, i as u64, 1));
        }
        assert_eq!(h.percentile(0.5), SUB_BUCKETS - 1, "exact median in the linear range");
    }

    #[test]
    fn saturating_counts_pin_at_max() {
        let mut a = HdrHistogram::new();
        a.record(7);
        a.count = u64::MAX - 1;
        a.counts[index_of(7)] = u64::MAX - 1;
        a.sum = u64::MAX - 2;
        let mut b = HdrHistogram::new();
        b.record(7);
        b.record(7);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX, "count saturates");
        assert_eq!(a.counts[index_of(7)], u64::MAX, "bucket saturates");
        assert_eq!(a.sum(), u64::MAX, "sum saturates");
        a.record(7);
        assert_eq!(a.count(), u64::MAX, "record on a saturated histogram stays pinned");
        assert_eq!(a.percentile(0.999), 7, "percentiles still answer after saturation");
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let mut h = HdrHistogram::new();
            let mut s = seed;
            for _ in 0..n {
                h.record(lcg(&mut s) >> (s % 60) as u32);
            }
            h
        };
        let (a, b, c) = (mk(1, 500), mk(2, 300), mk(3, 700));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "(a+b)+c == a+(b+c)");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "a+b == b+a");
    }

    /// The headline guarantee: p50/p99/p999 against an exact
    /// sorted-sample oracle, within `1/SUB_BUCKETS` relative error, on
    /// several distribution shapes.
    #[test]
    fn percentiles_match_sorted_oracle_within_one_thirtysecond() {
        let shapes: [(&str, Box<dyn Fn(&mut u64) -> u64>); 4] = [
            ("uniform_small", Box::new(|s| lcg(s) % 5_000)),
            ("uniform_wide", Box::new(|s| lcg(s) % (1 << 40))),
            // Heavy tail: mostly small, occasional huge (the fault-
            // latency shape this histogram exists for).
            (
                "heavy_tail",
                Box::new(|s| {
                    let v = lcg(s);
                    if v % 1000 == 0 {
                        1_000_000 + v % 9_000_000
                    } else {
                        600 + v % 400
                    }
                }),
            ),
            ("exponentialish", Box::new(|s| 1 + (lcg(s) >> (lcg(s) % 50) as u32))),
        ];
        for (name, gen) in shapes {
            let mut h = HdrHistogram::new();
            let mut oracle = Vec::with_capacity(20_000);
            let mut s = 0xC0FFEE;
            for _ in 0..20_000 {
                let v = gen(&mut s);
                h.record(v);
                oracle.push(v);
            }
            oracle.sort_unstable();
            for p in [0.50, 0.90, 0.99, 0.999, 1.0] {
                let rank = ((oracle.len() as f64 * p).ceil() as usize).clamp(1, oracle.len());
                let exact = oracle[rank - 1];
                let est = h.percentile(p);
                assert!(est >= exact, "{name} p{p}: estimate {est} below exact {exact}");
                assert!(
                    est - exact <= exact / SUB_BUCKETS,
                    "{name} p{p}: estimate {est} vs exact {exact} breaks 1/{SUB_BUCKETS}"
                );
            }
        }
    }

    #[test]
    fn delta_since_subtracts_and_bounds_max() {
        let mut h = HdrHistogram::new();
        h.record(100);
        h.record(200);
        let snap = h.clone();
        h.record(5_000);
        h.record(5_100);
        let d = h.delta_since(&snap);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 10_100);
        assert!(d.max() >= 5_100 && d.max() <= 5_100 + 5_100 / SUB_BUCKETS, "max {}", d.max());
        assert_eq!(
            d.percentile(0.5),
            d.percentile(0.0).max(upper_of(index_of(5_000))).min(d.max())
        );
        // Self-delta is empty; empty delta has max 0.
        let e = h.delta_since(&h);
        assert_eq!((e.count(), e.max()), (0, 0));
    }

    #[test]
    fn summary_carries_the_fixed_percentiles() {
        let mut h = HdrHistogram::new();
        for v in 1..=1000 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert!(s.p50 >= 500 && s.p50 <= 500 + 500 / SUB_BUCKETS);
        assert!(s.p999 >= 999 && s.p999 <= 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
        assert_eq!(TailSummary::default().mean(), 0.0);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
    }
}
