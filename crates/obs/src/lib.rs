//! Observability layer: structured event tracing for the simulator.
//!
//! The paper's analysis (Figs. 2–11, Table V) is about *when* and
//! *why* copy traffic happens — CoW faults, redirected reads, implicit
//! copies, counter overflows — but aggregate counters cannot attribute
//! a regression to a phase or a page. This crate adds a tracing seam
//! that every component of the stack (`NvmDevice`, the secure memory
//! controller, the `System` wrapper) is generic over:
//!
//! * [`Probe`] — the sink trait. Components carry a `P: Probe` type
//!   parameter defaulting to [`NullProbe`], whose associated
//!   `const ENABLED: bool = false` lets every call site guard with
//!   `if P::ENABLED { ... }`; the branch and the event construction
//!   monomorphize away, so the untraced simulator is bit- and
//!   cycle-identical to one with no tracing code at all.
//! * [`Event`]/[`EventKind`] — the event taxonomy: MMIO CoW commands,
//!   kernel faults, redirected reads, implicit copies, counter and
//!   Merkle metadata traffic, and NVM write-queue activity, each
//!   stamped with the simulated cycle.
//! * [`Histogram`]/[`HistKind`] — log2-bucket distributions (write
//!   queue depth, copy-chain depth, counter-cache occupancy, per-fault
//!   and per-command service cycles) recorded alongside the events.
//! * [`HdrHistogram`]/[`TailSummary`] — log-linear high-resolution
//!   histogram (32 sub-buckets per power of two) whose percentile
//!   queries are exact to within 1/32 relative error; the backbone of
//!   tail-latency reporting (see [`hdr`]).
//! * [`TailRecorder`]/[`FaultSpan`]/[`FaultAction`] — per-fault span
//!   recording with per-action histograms and a bounded top-K
//!   worst-offender reservoir (see [`span`]).
//! * Sinks: [`RingProbe`] (bounded in-memory ring + per-kind counts),
//!   [`JsonlProbe`] (streaming JSONL file), [`TeeProbe`] (fan-out),
//!   and `Option<P>` (runtime-optional sink).
//! * [`chrome_trace`] — renders captured events and counter series as
//!   a chrome://tracing / Perfetto-compatible JSON document
//!   ([`chrome_trace_with_spans`] adds per-category duration lanes).
//! * [`HeatGrid`]/[`HeatLane`] — the *spatial* axis: region-granular
//!   heat lanes (faults by action, CoW redirects, counter/Merkle/MAC
//!   metadata traffic, bank array accesses) whose lane totals
//!   reconcile exactly with the aggregate counters (see [`heatmap`]).
//! * [`CycleLedger`]/[`CycleCategory`] — the cycle-attribution ledger:
//!   charges every simulated cycle to exactly one component category
//!   so `lelantus profile` can reproduce the paper's overhead
//!   breakdown (see [`ledger`]).
//! * [`selfprof`] — a wall-clock self-profiler (scoped timers per
//!   component) that compiles away without the `selfprof` feature.
//!
//! # Examples
//!
//! ```
//! use lelantus_obs::{Event, EventKind, Probe, RingProbe};
//! use lelantus_types::Cycles;
//!
//! let probe = RingProbe::new(16);
//! probe.emit(Event {
//!     cycle: Cycles::new(42),
//!     kind: EventKind::CounterFetch { region: 7 },
//! });
//! assert_eq!(probe.count(EventKind::COUNTER_FETCH), 1);
//! assert_eq!(probe.events()[0].cycle, Cycles::new(42));
//! ```

pub mod event;
pub mod hdr;
pub mod heatmap;
pub mod hist;
pub mod ledger;
pub mod probe;
pub mod selfprof;
pub mod span;
pub mod trace;

pub use event::{Event, EventKind};
pub use hdr::{HdrHistogram, TailSummary};
pub use heatmap::{HeatGrid, HeatLane};
pub use hist::{HistKind, Histogram, HistogramSet};
pub use ledger::{attribute, CycleCategory, CycleLedger, Segment};
pub use probe::{JsonlProbe, NullProbe, Probe, RingProbe, TeeProbe};
pub use span::{FaultAction, FaultSpan, TailRecorder};
pub use trace::{chrome_trace, chrome_trace_with_spans, CounterSeries, Span};
