//! Probe sinks: where emitted events and histogram samples go.
//!
//! Components are generic over `P: Probe` with [`NullProbe`] as the
//! default. Emission sites guard on the associated constant:
//!
//! ```ignore
//! if P::ENABLED {
//!     self.probe.emit(Event { cycle: now, kind: EventKind::Fork { .. } });
//! }
//! ```
//!
//! With `P = NullProbe` the guard is a compile-time `false`, so the
//! event construction and the call vanish under monomorphization — the
//! disabled path costs nothing and perturbs nothing.
//!
//! Recording sinks are cheap-clone *handles* around `Rc<RefCell<..>>`
//! state: the `System` clones its probe into the controller, which
//! clones it into the NVM device, so the whole stack shares one
//! ordered event stream. The simulator is single-threaded per
//! `System`, which is what makes `Rc` the right tool.

use crate::event::{Event, EventKind};
use crate::hist::{HistKind, HistogramSet};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// An event/histogram sink the simulator stack is generic over.
pub trait Probe: Clone + fmt::Debug {
    /// Whether this probe observes anything. Guard emission sites with
    /// `if P::ENABLED` so the disabled path compiles away.
    const ENABLED: bool = true;

    /// Consumes one event.
    fn emit(&self, event: Event);

    /// Records one histogram sample.
    fn record(&self, kind: HistKind, value: u64);

    /// Snapshot of the histograms this probe has accumulated, if it
    /// keeps any. Lets generic code (the epoch sampler) read
    /// histogram state back without knowing the concrete sink type;
    /// write-only sinks return `None`.
    fn histogram_snapshot(&self) -> Option<HistogramSet> {
        None
    }
}

/// The zero-sized do-nothing probe (the default everywhere).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&self, _event: Event) {}

    #[inline(always)]
    fn record(&self, _kind: HistKind, _value: u64) {}
}

/// A runtime-optional sink: `None` observes nothing (but, unlike
/// [`NullProbe`], decides so per call at runtime — the type still
/// counts as enabled).
impl<P: Probe> Probe for Option<P> {
    const ENABLED: bool = P::ENABLED;

    fn emit(&self, event: Event) {
        if let Some(p) = self {
            p.emit(event);
        }
    }

    fn record(&self, kind: HistKind, value: u64) {
        if let Some(p) = self {
            p.record(kind, value);
        }
    }

    fn histogram_snapshot(&self) -> Option<HistogramSet> {
        self.as_ref().and_then(Probe::histogram_snapshot)
    }
}

#[derive(Debug, Default)]
struct RingInner {
    events: VecDeque<Event>,
    capacity: usize,
    /// Per-kind totals — exact even when the ring wrapped.
    counts: [u64; EventKind::COUNT],
    /// Events pushed out of the ring by newer ones.
    dropped: u64,
    hists: HistogramSet,
}

/// Bounded in-memory ring of events plus exact per-kind counts and
/// histograms. Cloning shares the underlying buffer.
///
/// # Examples
///
/// ```
/// use lelantus_obs::{Event, EventKind, Probe, RingProbe};
/// use lelantus_types::Cycles;
///
/// let ring = RingProbe::new(2);
/// for i in 0..3 {
///     ring.emit(Event { cycle: Cycles::new(i), kind: EventKind::Fork { parent: 1, child: 2 } });
/// }
/// assert_eq!(ring.count(EventKind::FORK), 3, "counts survive wrapping");
/// assert_eq!(ring.events().len(), 2);
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RingProbe {
    inner: Rc<RefCell<RingInner>>,
}

impl RingProbe {
    /// A ring keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring probe needs capacity");
        Self {
            inner: Rc::new(RefCell::new(RingInner {
                events: VecDeque::with_capacity(capacity.min(1 << 16)),
                capacity,
                ..RingInner::default()
            })),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.borrow().events.iter().copied().collect()
    }

    /// Exact total of events of `kind_index` (see the `EventKind`
    /// index constants), including any that wrapped out of the ring.
    pub fn count(&self, kind_index: usize) -> u64 {
        self.inner.borrow().counts[kind_index]
    }

    /// Exact per-kind totals, indexed by `EventKind` dense index.
    pub fn counts(&self) -> [u64; EventKind::COUNT] {
        self.inner.borrow().counts
    }

    /// Total events emitted (sum of all kinds).
    pub fn total(&self) -> u64 {
        self.inner.borrow().counts.iter().sum()
    }

    /// Events lost to ring wrapping.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Snapshot of the recorded histograms.
    pub fn histograms(&self) -> HistogramSet {
        self.inner.borrow().hists.clone()
    }
}

impl Probe for RingProbe {
    fn emit(&self, event: Event) {
        let mut inner = self.inner.borrow_mut();
        inner.counts[event.kind.index()] += 1;
        if inner.events.len() >= inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    fn record(&self, kind: HistKind, value: u64) {
        self.inner.borrow_mut().hists.get_mut(kind).record(value);
    }

    fn histogram_snapshot(&self) -> Option<HistogramSet> {
        Some(self.histograms())
    }
}

/// Events between automatic flushes of a [`JsonlProbe`]: a killed or
/// panicking run loses at most this many trailing lines, and whatever
/// is on disk is whole lines (flushes land on line boundaries).
const JSONL_FLUSH_EVERY: u32 = 1024;

struct JsonlInner {
    out: BufWriter<File>,
    path: PathBuf,
    counts: [u64; EventKind::COUNT],
    hists: HistogramSet,
    since_flush: u32,
}

impl Drop for JsonlInner {
    fn drop(&mut self) {
        // Flush on drop (including unwinds) so truncated runs still
        // leave a parseable JSONL tail; errors are unreportable here.
        let _ = self.out.flush();
    }
}

/// Streaming JSONL sink: every event becomes one line in a file as it
/// is emitted (unbounded, unlike [`RingProbe`]). Cloning shares the
/// underlying writer.
#[derive(Clone)]
pub struct JsonlProbe {
    inner: Rc<RefCell<JsonlInner>>,
}

impl fmt::Debug for JsonlProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("JsonlProbe")
            .field("path", &inner.path)
            .field("events", &inner.counts.iter().sum::<u64>())
            .finish()
    }
}

impl JsonlProbe {
    /// Creates (truncating) the sink file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let out = BufWriter::new(File::create(&path)?);
        Ok(Self {
            inner: Rc::new(RefCell::new(JsonlInner {
                out,
                path,
                counts: [0; EventKind::COUNT],
                hists: HistogramSet::new(),
                since_flush: 0,
            })),
        })
    }

    /// Flushes buffered lines to disk. Call once the run is over;
    /// dropping the last handle also flushes (via `BufWriter`), but
    /// silently.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.borrow_mut().out.flush()
    }

    /// Exact per-kind totals, indexed by `EventKind` dense index.
    pub fn counts(&self) -> [u64; EventKind::COUNT] {
        self.inner.borrow().counts
    }

    /// Snapshot of the recorded histograms.
    pub fn histograms(&self) -> HistogramSet {
        self.inner.borrow().hists.clone()
    }

    /// The sink file's path.
    pub fn path(&self) -> PathBuf {
        self.inner.borrow().path.clone()
    }
}

impl Probe for JsonlProbe {
    fn emit(&self, event: Event) {
        let mut inner = self.inner.borrow_mut();
        inner.counts[event.kind.index()] += 1;
        let line = event.to_jsonl();
        // A full disk mid-trace should not abort the simulation; the
        // final `flush` surfaces the error.
        let _ = writeln!(inner.out, "{line}");
        inner.since_flush += 1;
        if inner.since_flush >= JSONL_FLUSH_EVERY {
            inner.since_flush = 0;
            let _ = inner.out.flush();
        }
    }

    fn record(&self, kind: HistKind, value: u64) {
        self.inner.borrow_mut().hists.get_mut(kind).record(value);
    }

    fn histogram_snapshot(&self) -> Option<HistogramSet> {
        Some(self.histograms())
    }
}

/// Forwards every event and sample to two probes (e.g. a ring for the
/// in-process summary plus a JSONL file for offline analysis).
#[derive(Debug, Clone)]
pub struct TeeProbe<A: Probe, B: Probe> {
    a: A,
    b: B,
}

impl<A: Probe, B: Probe> TeeProbe<A, B> {
    /// Fans out to `a` then `b`.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }

    /// The first branch.
    pub fn first(&self) -> &A {
        &self.a
    }

    /// The second branch.
    pub fn second(&self) -> &B {
        &self.b
    }
}

impl<A: Probe, B: Probe> Probe for TeeProbe<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn emit(&self, event: Event) {
        self.a.emit(event);
        self.b.emit(event);
    }

    fn record(&self, kind: HistKind, value: u64) {
        self.a.record(kind, value);
        self.b.record(kind, value);
    }

    fn histogram_snapshot(&self) -> Option<HistogramSet> {
        self.a.histogram_snapshot().or_else(|| self.b.histogram_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lelantus_types::Cycles;

    fn ev(cycle: u64) -> Event {
        Event { cycle: Cycles::new(cycle), kind: EventKind::CounterFetch { region: cycle } }
    }

    #[test]
    fn null_probe_is_disabled_and_zero_sized() {
        assert!(!NullProbe::ENABLED);
        assert_eq!(std::mem::size_of::<NullProbe>(), 0);
        NullProbe.emit(ev(1));
        NullProbe.record(HistKind::CopyChainDepth, 3);
    }

    #[test]
    fn ring_wraps_but_counts_exactly() {
        let ring = RingProbe::new(3);
        for i in 0..10 {
            ring.emit(ev(i));
        }
        assert_eq!(ring.count(EventKind::COUNTER_FETCH), 10);
        assert_eq!(ring.total(), 10);
        assert_eq!(ring.dropped(), 7);
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].cycle, Cycles::new(7), "oldest surviving event");
    }

    #[test]
    fn ring_clones_share_state() {
        let ring = RingProbe::new(8);
        let handle = ring.clone();
        handle.emit(ev(1));
        handle.record(HistKind::WriteQueueDepth, 4);
        assert_eq!(ring.total(), 1);
        assert_eq!(ring.histograms().get(HistKind::WriteQueueDepth).count, 1);
    }

    #[test]
    fn option_probe_forwards_when_some() {
        let ring = RingProbe::new(4);
        let some: Option<RingProbe> = Some(ring.clone());
        let none: Option<RingProbe> = None;
        some.emit(ev(1));
        none.emit(ev(2));
        assert_eq!(ring.total(), 1);
        assert!(<Option<RingProbe> as Probe>::ENABLED);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let path = std::env::temp_dir().join("lelantus_obs_jsonl_test.jsonl");
        let probe = JsonlProbe::create(&path).unwrap();
        probe.emit(ev(5));
        probe.emit(Event { cycle: Cycles::new(6), kind: EventKind::Fork { parent: 1, child: 2 } });
        probe.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"counter_fetch\""));
        assert!(lines[1].contains("\"child\":2"));
        assert_eq!(probe.counts()[EventKind::FORK], 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_flushes_on_drop_without_explicit_flush() {
        let path = std::env::temp_dir().join("lelantus_obs_jsonl_drop_test.jsonl");
        {
            let probe = JsonlProbe::create(&path).unwrap();
            probe.emit(ev(7));
            // No flush(): the drop must leave a parseable tail.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.lines().next().unwrap().ends_with('}'), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_flushes_periodically_for_truncated_runs() {
        let path = std::env::temp_dir().join("lelantus_obs_jsonl_periodic_test.jsonl");
        let probe = JsonlProbe::create(&path).unwrap();
        for i in 0..u64::from(JSONL_FLUSH_EVERY) {
            probe.emit(ev(i));
        }
        // Without flush() or drop: the periodic flush already left all
        // complete lines on disk (a SIGKILLed run would too).
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), JSONL_FLUSH_EVERY as usize);
        assert!(text.ends_with('\n'), "flush lands on a line boundary");
        drop(probe);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tee_reaches_both_branches() {
        let a = RingProbe::new(4);
        let b = RingProbe::new(4);
        let tee = TeeProbe::new(a.clone(), b.clone());
        tee.emit(ev(1));
        tee.record(HistKind::FaultServiceCycles, 600);
        assert_eq!(a.total(), 1);
        assert_eq!(b.total(), 1);
        assert_eq!(b.histograms().get(HistKind::FaultServiceCycles).count, 1);
        assert!(<TeeProbe<RingProbe, RingProbe> as Probe>::ENABLED);
    }

    #[test]
    fn histogram_snapshot_reads_back_through_any_shape() {
        assert!(NullProbe.histogram_snapshot().is_none(), "write-only default");
        let ring = RingProbe::new(4);
        ring.record(HistKind::CmdServiceCycles, 42);
        let snap = ring.histogram_snapshot().expect("ring keeps histograms");
        assert_eq!(snap.get(HistKind::CmdServiceCycles).count, 1);
        let opt: Option<RingProbe> = Some(ring.clone());
        assert!(opt.histogram_snapshot().is_some());
        let none: Option<RingProbe> = None;
        assert!(none.histogram_snapshot().is_none());
        let tee = TeeProbe::new(NullProbe, ring);
        assert!(tee.histogram_snapshot().is_some(), "tee falls through to the recording branch");
    }
}
