//! chrome://tracing (Trace Event Format) export.
//!
//! The "JSON Array Format" subset understood by chrome://tracing and
//! Perfetto: instant events (`"ph":"i"`) for the traced [`Event`]s and
//! counter events (`"ph":"C"`) for epoch time series. Timestamps are
//! microseconds; at the simulator's 1 GHz clock one cycle is 1 ns, so
//! `ts = cycle / 1000`.

use crate::event::Event;
use std::fmt::Write as _;

/// One named time series rendered as a chrome-trace counter track.
#[derive(Debug, Clone)]
pub struct CounterSeries {
    /// Track name (e.g. `nvm_writes_per_epoch`).
    pub name: String,
    /// `(cycle, value)` points, in cycle order.
    pub points: Vec<(u64, f64)>,
}

/// Microsecond timestamp of a cycle (1 cycle = 1 ns).
fn ts_us(cycle: u64) -> f64 {
    cycle as f64 / 1000.0
}

/// Renders events and counter series as one chrome://tracing JSON
/// document (`{"traceEvents":[...]}`). Events become instant events on
/// tid 0 of pid 1; each series becomes a counter track.
pub fn chrome_trace(events: &[Event], series: &[CounterSeries]) -> String {
    let mut entries: Vec<String> =
        Vec::with_capacity(events.len() + series.iter().map(|s| s.points.len()).sum::<usize>() + 1);
    entries.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"lelantus-sim\"}}"
            .to_string(),
    );
    for e in events {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\
             \"ts\":{:.3},\"args\":{{{}}}}}",
            e.kind.name(),
            ts_us(e.cycle.as_u64()),
            e.kind.json_fields(),
        );
        entries.push(s);
    }
    for track in series {
        for &(cycle, value) in &track.points {
            let mut s = String::new();
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":1,\"ts\":{:.3},\
                 \"args\":{{\"value\":{}}}}}",
                track.name,
                ts_us(cycle),
                if value.is_finite() { format!("{value}") } else { "0".into() },
            );
            entries.push(s);
        }
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", entries.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use lelantus_types::Cycles;

    #[test]
    fn trace_document_shape() {
        let events = [
            Event { cycle: Cycles::new(1000), kind: EventKind::Fork { parent: 1, child: 2 } },
            Event {
                cycle: Cycles::new(2500),
                kind: EventKind::RedirectedRead { addr: 4096, hops: 1 },
            },
        ];
        let series =
            [CounterSeries { name: "nvm_writes".into(), points: vec![(1000, 3.0), (2000, 7.0)] }];
        let doc = chrome_trace(&events, &series);
        assert!(doc.starts_with("{\"traceEvents\":[\n"), "{doc}");
        assert!(doc.trim_end().ends_with("]}"), "{doc}");
        assert!(doc.contains("\"name\":\"fork\""));
        assert!(doc.contains("\"ts\":1.000"), "cycle 1000 is 1 us: {doc}");
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"value\":7"));
        // Braces balance (no serde to parse, so count them).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = chrome_trace(&[], &[]);
        assert!(doc.contains("process_name"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
