//! chrome://tracing (Trace Event Format) export.
//!
//! The "JSON Array Format" subset understood by chrome://tracing and
//! Perfetto: instant events (`"ph":"i"`) for the traced [`Event`]s and
//! counter events (`"ph":"C"`) for epoch time series. Timestamps are
//! microseconds; at the simulator's 1 GHz clock one cycle is 1 ns, so
//! `ts = cycle / 1000`.

use crate::event::Event;
use std::fmt::Write as _;

/// One named time series rendered as a chrome-trace counter track.
#[derive(Debug, Clone)]
pub struct CounterSeries {
    /// Track name (e.g. `nvm_writes_per_epoch`).
    pub name: String,
    /// `(cycle, value)` points, in cycle order.
    pub points: Vec<(u64, f64)>,
}

/// One duration span rendered as a chrome-trace complete event
/// (`"ph":"X"`). Spans on the same `tid` render as one lane, so
/// `lelantus profile` gives each cycle category its own lane.
#[derive(Debug, Clone)]
pub struct Span {
    /// Span (and lane) name, e.g. a `CycleCategory` name.
    pub name: String,
    /// Lane id within pid 1 (tid 0 is the instant-event lane).
    pub tid: u32,
    /// First cycle of the span.
    pub start_cycle: u64,
    /// Span length in cycles.
    pub dur_cycles: u64,
}

/// Microsecond timestamp of a cycle (1 cycle = 1 ns).
fn ts_us(cycle: u64) -> f64 {
    cycle as f64 / 1000.0
}

/// Renders events and counter series as one chrome://tracing JSON
/// document (`{"traceEvents":[...]}`). Events become instant events on
/// tid 0 of pid 1; each series becomes a counter track.
pub fn chrome_trace(events: &[Event], series: &[CounterSeries]) -> String {
    chrome_trace_with_spans(events, series, &[])
}

/// [`chrome_trace`] plus duration spans: each [`Span`] becomes a
/// complete event on its own lane, with a one-time `thread_name`
/// metadata record naming the lane after the first span seen on it.
pub fn chrome_trace_with_spans(
    events: &[Event],
    series: &[CounterSeries],
    spans: &[Span],
) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(
        events.len() + series.iter().map(|s| s.points.len()).sum::<usize>() + spans.len() * 2 + 1,
    );
    entries.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"lelantus-sim\"}}"
            .to_string(),
    );
    for e in events {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\
             \"ts\":{:.3},\"args\":{{{}}}}}",
            e.kind.name(),
            ts_us(e.cycle.as_u64()),
            e.kind.json_fields(),
        );
        entries.push(s);
    }
    for track in series {
        for &(cycle, value) in &track.points {
            let mut s = String::new();
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":1,\"ts\":{:.3},\
                 \"args\":{{\"value\":{}}}}}",
                track.name,
                ts_us(cycle),
                if value.is_finite() { format!("{value}") } else { "0".into() },
            );
            entries.push(s);
        }
    }
    let mut named_lanes: Vec<u32> = Vec::new();
    for span in spans {
        if !named_lanes.contains(&span.tid) {
            named_lanes.push(span.tid);
            let mut s = String::new();
            let _ = write!(
                s,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                span.tid, span.name,
            );
            entries.push(s);
        }
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3}}}",
            span.name,
            span.tid,
            ts_us(span.start_cycle),
            ts_us(span.dur_cycles),
        );
        entries.push(s);
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", entries.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use lelantus_types::Cycles;

    #[test]
    fn trace_document_shape() {
        let events = [
            Event { cycle: Cycles::new(1000), kind: EventKind::Fork { parent: 1, child: 2 } },
            Event {
                cycle: Cycles::new(2500),
                kind: EventKind::RedirectedRead { addr: 4096, hops: 1 },
            },
        ];
        let series =
            [CounterSeries { name: "nvm_writes".into(), points: vec![(1000, 3.0), (2000, 7.0)] }];
        let doc = chrome_trace(&events, &series);
        assert!(doc.starts_with("{\"traceEvents\":[\n"), "{doc}");
        assert!(doc.trim_end().ends_with("]}"), "{doc}");
        assert!(doc.contains("\"name\":\"fork\""));
        assert!(doc.contains("\"ts\":1.000"), "cycle 1000 is 1 us: {doc}");
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"value\":7"));
        // Braces balance (no serde to parse, so count them).
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn spans_render_as_named_lanes() {
        let spans = [
            Span { name: "aes_pad".into(), tid: 3, start_cycle: 1000, dur_cycles: 500 },
            Span { name: "aes_pad".into(), tid: 3, start_cycle: 4000, dur_cycles: 250 },
            Span { name: "mac".into(), tid: 4, start_cycle: 1000, dur_cycles: 40 },
        ];
        let doc = chrome_trace_with_spans(&[], &[], &spans);
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 3, "{doc}");
        // One thread_name metadata record per lane, not per span.
        assert_eq!(doc.matches("thread_name").count(), 2, "{doc}");
        assert!(doc.contains("\"dur\":0.500"), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = chrome_trace(&[], &[]);
        assert!(doc.contains("process_name"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
