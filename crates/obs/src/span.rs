//! Per-fault spans and the tail recorder.
//!
//! A [`FaultSpan`] is one serviced page fault (or one implicit copy
//! triggered by a store) on the sequential timing plane: begin/end
//! cycles, the faulting address, the action the scheme took, and a
//! per-span [`CycleLedger`] breakdown carved from the same `Segment`
//! stream the global cycle ledger consumes. [`TailRecorder`]
//! aggregates spans into an overall [`HdrHistogram`], one histogram
//! per [`FaultAction`], and a bounded top-K worst-offender reservoir
//! that keeps the K slowest spans with their full causal context.
//!
//! The recorder is pure observation: it is only allocated when
//! `SimConfig::with_tail_recorder()` is set, and recording never
//! touches simulated clocks, metrics, probe streams, or Merkle state.

use crate::hdr::{HdrHistogram, TailSummary};
use crate::ledger::CycleLedger;

/// What the scheme did to service a fault (or store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Write fault resolved by copying the source page eagerly at
    /// fault time (conventional CoW, or Lelantus falling back).
    EagerCopy,
    /// Write fault on a zero-fill page: allocate + zero, no source
    /// copy.
    DemandZero,
    /// Write fault resolved lazily via an MMIO copy/phyc command —
    /// Lelantus's deferred copy-on-write.
    LazyCow,
    /// Write-protect fault resolved by reusing the page in place
    /// (sole owner; no copy at all).
    Reuse,
    /// Fault that early-reclaimed a page with live dependents.
    EarlyReclaim,
    /// Not a fault: a store hit a lazily-shared page and the
    /// controller performed the deferred (implicit) copy inline.
    ImplicitCopy,
}

impl FaultAction {
    /// Number of variants.
    pub const COUNT: usize = 6;

    /// All variants, in display order.
    pub const ALL: [FaultAction; Self::COUNT] = [
        FaultAction::EagerCopy,
        FaultAction::DemandZero,
        FaultAction::LazyCow,
        FaultAction::Reuse,
        FaultAction::EarlyReclaim,
        FaultAction::ImplicitCopy,
    ];

    /// Dense index for array storage.
    pub fn index(self) -> usize {
        match self {
            FaultAction::EagerCopy => 0,
            FaultAction::DemandZero => 1,
            FaultAction::LazyCow => 2,
            FaultAction::Reuse => 3,
            FaultAction::EarlyReclaim => 4,
            FaultAction::ImplicitCopy => 5,
        }
    }

    /// Stable snake_case name (JSON keys, tables).
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::EagerCopy => "eager_copy",
            FaultAction::DemandZero => "demand_zero",
            FaultAction::LazyCow => "lazy_cow",
            FaultAction::Reuse => "reuse",
            FaultAction::EarlyReclaim => "early_reclaim",
            FaultAction::ImplicitCopy => "implicit_copy",
        }
    }
}

/// One serviced fault (or implicit copy) with full causal context.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpan {
    /// Cycle the fault began (entry to the fault path).
    pub start: u64,
    /// Cycle the fault completed.
    pub end: u64,
    /// Faulting process.
    pub pid: u64,
    /// Faulting virtual address.
    pub va: u64,
    /// Physical address the access resolved to.
    pub pa: u64,
    /// What the scheme did.
    pub action: FaultAction,
    /// Per-span cycle breakdown (zero unless the cycle ledger is also
    /// enabled — the span recorder reuses its `Segment` stream rather
    /// than duplicating attribution).
    pub ledger: CycleLedger,
}

impl FaultSpan {
    /// Span latency in cycles.
    pub fn latency(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Aggregates [`FaultSpan`]s: overall + per-action HDR histograms and
/// a bounded reservoir of the K worst offenders.
#[derive(Debug, Clone, PartialEq)]
pub struct TailRecorder {
    hist: HdrHistogram,
    by_action: [HdrHistogram; FaultAction::COUNT],
    top_k: usize,
    /// Worst spans, sorted by descending latency (ties: earlier start
    /// first), truncated to `top_k`.
    worst: Vec<FaultSpan>,
}

impl TailRecorder {
    /// A recorder keeping the `top_k` slowest spans as exemplars.
    pub fn new(top_k: usize) -> Self {
        Self {
            hist: HdrHistogram::new(),
            by_action: Default::default(),
            top_k,
            worst: Vec::with_capacity(top_k.min(64)),
        }
    }

    /// Records one span.
    pub fn record(&mut self, span: FaultSpan) {
        let lat = span.latency();
        self.hist.record(lat);
        self.by_action[span.action.index()].record(lat);
        if self.top_k == 0 {
            return;
        }
        if self.worst.len() == self.top_k {
            // Cheap reject: full reservoir and not slower than the
            // current floor.
            let floor = self.worst.last().expect("top_k > 0").latency();
            if lat <= floor {
                return;
            }
        }
        let pos = self.worst.partition_point(|w| {
            w.latency() > lat || (w.latency() == lat && w.start <= span.start)
        });
        self.worst.insert(pos, span);
        self.worst.truncate(self.top_k);
    }

    /// Overall latency histogram (faults + implicit copies).
    pub fn histogram(&self) -> &HdrHistogram {
        &self.hist
    }

    /// Latency histogram for one action.
    pub fn action_histogram(&self, action: FaultAction) -> &HdrHistogram {
        &self.by_action[action.index()]
    }

    /// The K slowest spans, worst first.
    pub fn worst(&self) -> &[FaultSpan] {
        &self.worst
    }

    /// Reservoir capacity.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Percentile summary of the overall histogram.
    pub fn summary(&self) -> TailSummary {
        self.hist.summary()
    }

    /// Folds `other` into `self`: histograms merge, reservoirs merge
    /// and re-truncate to `self`'s capacity.
    pub fn merge(&mut self, other: &TailRecorder) {
        self.hist.merge(&other.hist);
        for (a, b) in self.by_action.iter_mut().zip(other.by_action.iter()) {
            a.merge(b);
        }
        for span in &other.worst {
            self.record_into_reservoir(span.clone());
        }
    }

    fn record_into_reservoir(&mut self, span: FaultSpan) {
        if self.top_k == 0 {
            return;
        }
        let lat = span.latency();
        let pos = self.worst.partition_point(|w| {
            w.latency() > lat || (w.latency() == lat && w.start <= span.start)
        });
        self.worst.insert(pos, span);
        self.worst.truncate(self.top_k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: u64, end: u64, action: FaultAction) -> FaultSpan {
        FaultSpan {
            start,
            end,
            pid: 1,
            va: start,
            pa: start,
            action,
            ledger: CycleLedger::default(),
        }
    }

    #[test]
    fn records_split_by_action() {
        let mut r = TailRecorder::new(4);
        r.record(span(0, 100, FaultAction::LazyCow));
        r.record(span(10, 20, FaultAction::Reuse));
        r.record(span(30, 430, FaultAction::LazyCow));
        assert_eq!(r.histogram().count(), 3);
        assert_eq!(r.action_histogram(FaultAction::LazyCow).count(), 2);
        assert_eq!(r.action_histogram(FaultAction::Reuse).count(), 1);
        assert_eq!(r.action_histogram(FaultAction::EagerCopy).count(), 0);
        let total: u64 = FaultAction::ALL.iter().map(|&a| r.action_histogram(a).count()).sum();
        assert_eq!(total, r.histogram().count(), "per-action histograms partition the overall");
    }

    #[test]
    fn reservoir_keeps_k_slowest_in_order() {
        let mut r = TailRecorder::new(3);
        for (s, e) in [(0, 50), (100, 900), (1000, 1010), (2000, 2500), (3000, 3700)] {
            r.record(span(s, e, FaultAction::EagerCopy));
        }
        let lats: Vec<u64> = r.worst().iter().map(FaultSpan::latency).collect();
        assert_eq!(lats, vec![800, 700, 500], "three slowest, worst first");
        // Ties keep the earlier span first.
        let mut t = TailRecorder::new(2);
        t.record(span(500, 600, FaultAction::Reuse));
        t.record(span(0, 100, FaultAction::Reuse));
        assert_eq!(t.worst()[0].start, 0, "equal latency: earlier start wins");
        assert_eq!(t.worst()[1].start, 500);
    }

    #[test]
    fn zero_capacity_reservoir_still_counts() {
        let mut r = TailRecorder::new(0);
        r.record(span(0, 10, FaultAction::Reuse));
        assert!(r.worst().is_empty());
        assert_eq!(r.histogram().count(), 1);
    }

    #[test]
    fn merge_combines_histograms_and_reservoirs() {
        let mut a = TailRecorder::new(2);
        a.record(span(0, 100, FaultAction::LazyCow));
        a.record(span(10, 30, FaultAction::Reuse));
        let mut b = TailRecorder::new(2);
        b.record(span(50, 550, FaultAction::EagerCopy));
        a.merge(&b);
        assert_eq!(a.histogram().count(), 3);
        assert_eq!(a.worst().len(), 2);
        assert_eq!(a.worst()[0].latency(), 500, "merged reservoir re-ranks");
        assert_eq!(a.worst()[1].latency(), 100);
    }
}
