//! Wall-clock self-profiler: scoped timers aggregated per component.
//!
//! Complements the simulated-cycle ledger ([`crate::ledger`]) with
//! *host* time: where does the simulator itself spend wall-clock while
//! producing those cycles? Sites are coarse (a whole `run_batch`, a
//! bulk page copy, a metadata flush) so the timers never sit on the
//! per-line hot path that the `micro_probe` gate protects.
//!
//! Like `NullProbe`, the profiler compiles away: with the `selfprof`
//! feature disabled (`--no-default-features`), [`scope`] is a
//! `const`-foldable `None` and the registry does not exist. With the
//! feature on (the default), the cost when not [`enable`]d is a single
//! relaxed atomic load per site entry.
//!
//! ```
//! lelantus_obs::selfprof::enable();
//! {
//!     let _t = lelantus_obs::selfprof::scope("doc::work");
//!     // ... timed region ...
//! }
//! let report = lelantus_obs::selfprof::report();
//! assert!(report.iter().any(|s| s.site == "doc::work" && s.calls == 1));
//! lelantus_obs::selfprof::disable();
//! lelantus_obs::selfprof::reset();
//! ```

/// Aggregated wall-clock statistics for one instrumented site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteReport {
    /// Static site label, e.g. `"sim::run_batch"`.
    pub site: &'static str,
    /// Number of completed scopes.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all scopes.
    pub total_ns: u128,
}

impl SiteReport {
    /// Mean nanoseconds per call (0 when never called).
    pub fn mean_ns(&self) -> u128 {
        if self.calls == 0 {
            0
        } else {
            self.total_ns / u128::from(self.calls)
        }
    }
}

#[cfg(feature = "selfprof")]
mod imp {
    use super::SiteReport;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(false);

    #[derive(Default, Clone, Copy)]
    struct SiteStats {
        calls: u64,
        total_ns: u128,
    }

    fn registry() -> MutexGuard<'static, HashMap<&'static str, SiteStats>> {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, SiteStats>>> = OnceLock::new();
        // A poisoned registry only loses profiling data, never
        // correctness: keep going with the inner value.
        match REGISTRY.get_or_init(Mutex::default).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Live timer for one scope; records into the registry on drop.
    pub struct ScopeTimer {
        site: &'static str,
        start: Instant,
    }

    impl Drop for ScopeTimer {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos();
            let mut reg = registry();
            let stats = reg.entry(self.site).or_default();
            stats.calls += 1;
            stats.total_ns += ns;
        }
    }

    /// Starts a scoped timer for `site`, or returns `None` when the
    /// profiler is disabled. Bind the result (`let _t = scope(..)`);
    /// the scope ends when the guard drops.
    #[inline]
    pub fn scope(site: &'static str) -> Option<ScopeTimer> {
        if ENABLED.load(Ordering::Relaxed) {
            Some(ScopeTimer { site, start: Instant::now() })
        } else {
            None
        }
    }

    /// Turns the profiler on (scopes start recording).
    pub fn enable() {
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Turns the profiler off (already-open scopes still record).
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Whether the profiler is currently recording.
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Clears all aggregated statistics.
    pub fn reset() {
        registry().clear();
    }

    /// Snapshot of all sites, sorted by descending total time.
    pub fn report() -> Vec<SiteReport> {
        let reg = registry();
        let mut out: Vec<SiteReport> = reg
            .iter()
            .map(|(site, s)| SiteReport { site, calls: s.calls, total_ns: s.total_ns })
            .collect();
        drop(reg);
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.site.cmp(b.site)));
        out
    }
}

#[cfg(not(feature = "selfprof"))]
mod imp {
    use super::SiteReport;

    /// Compiled-out timer: never constructed.
    pub struct ScopeTimer {
        _never: std::convert::Infallible,
    }

    /// Compiled-out profiler: always `None`, folds away entirely.
    #[inline(always)]
    pub fn scope(_site: &'static str) -> Option<ScopeTimer> {
        None
    }

    /// No-op without the `selfprof` feature.
    pub fn enable() {}

    /// No-op without the `selfprof` feature.
    pub fn disable() {}

    /// Always `false` without the `selfprof` feature.
    pub fn is_enabled() -> bool {
        false
    }

    /// No-op without the `selfprof` feature.
    pub fn reset() {}

    /// Always empty without the `selfprof` feature.
    pub fn report() -> Vec<SiteReport> {
        Vec::new()
    }
}

pub use imp::{disable, enable, is_enabled, report, reset, scope, ScopeTimer};

#[cfg(all(test, feature = "selfprof"))]
mod tests {
    use super::*;

    #[test]
    fn records_only_when_enabled_and_resets() {
        // Single test exercising the global registry end-to-end (tests
        // in this module would otherwise race on the shared state).
        reset();
        disable();
        {
            let _t = scope("test::off");
        }
        assert!(report().iter().all(|s| s.site != "test::off"));

        enable();
        assert!(is_enabled());
        for _ in 0..3 {
            let _t = scope("test::on");
        }
        disable();
        let rep = report();
        let site = rep.iter().find(|s| s.site == "test::on").expect("site recorded");
        assert_eq!(site.calls, 3);
        assert!(site.mean_ns() <= site.total_ns);

        reset();
        assert!(report().iter().all(|s| s.site != "test::on"));
    }
}
