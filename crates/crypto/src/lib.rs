//! Cryptographic substrate for the Lelantus secure-NVM reproduction.
//!
//! Secure NVM controllers pair counter-mode encryption with integrity
//! protection (ISCA 2020 Lelantus paper, §II-B). This crate provides the
//! primitives that the simulated memory controller uses *functionally*
//! (the data stored in the simulated NVM really is ciphertext, and
//! tampering really is detected), independent of any timing model:
//!
//! * [`aes`] — a from-scratch AES-128 block cipher (FIPS-197),
//! * [`ctr`] — counter-mode one-time-pad construction with the paper's
//!   initialization vector layout (padding ‖ address ‖ major ‖ minor),
//! * [`siphash`] — a from-scratch SipHash-2-4 keyed hash,
//! * [`merkle`] — a Bonsai-style Merkle tree over counter blocks with a
//!   node cache.
//!
//! # Examples
//!
//! Encrypt and decrypt one 64-byte cacheline the way the secure memory
//! controller does:
//!
//! ```
//! use lelantus_crypto::ctr::{CtrEngine, IvSpec};
//!
//! let engine = CtrEngine::new([0x42; 16]);
//! let iv = IvSpec { line_addr: 0x1000, major: 7, minor: 3 };
//! let plain = [0xABu8; 64];
//! let cipher = engine.encrypt_line(&plain, iv);
//! assert_ne!(cipher, plain);
//! assert_eq!(engine.decrypt_line(&cipher, iv), plain);
//! ```

pub mod aes;
pub mod ctr;
pub mod merkle;
pub mod siphash;

pub use aes::Aes128;
pub use ctr::{CtrEngine, IvSpec};
pub use merkle::{empty_leaf_digest, leaf_digest, root_over_digests, MerkleTree, TamperError};
pub use siphash::SipHash24;
