//! A from-scratch SipHash-2-4 keyed hash.
//!
//! The Bonsai Merkle Tree (paper §II-B, [`crate::merkle`]) needs a keyed
//! short-input MAC over counter blocks. Production designs use
//! HMAC/GMAC engines; for the reproduction a 64-bit SipHash-2-4 keeps
//! tree nodes compact while still making *undetected* tampering require
//! forging a keyed hash. The implementation follows the reference
//! description by Aumasson & Bernstein and is validated against the
//! reference test vector.

/// SipHash-2-4 keyed hasher over byte slices.
///
/// # Examples
///
/// ```
/// use lelantus_crypto::SipHash24;
///
/// let mac = SipHash24::new(0xdead_beef, 0xfeed_face);
/// let a = mac.hash(b"counter block A");
/// let b = mac.hash(b"counter block B");
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

impl SipHash24 {
    /// Creates a hasher keyed with the 128-bit key `(k0, k1)`.
    pub fn new(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    /// Hashes `data`, returning the 64-bit tag.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v0 = 0x736f6d6570736575u64 ^ self.k0;
        let mut v1 = 0x646f72616e646f6du64 ^ self.k1;
        let mut v2 = 0x6c7967656e657261u64 ^ self.k0;
        let mut v3 = 0x7465646279746573u64 ^ self.k1;

        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            v3 ^= m;
            for _ in 0..2 {
                sipround(&mut v0, &mut v1, &mut v2, &mut v3);
            }
            v0 ^= m;
        }

        // Final block: remaining bytes plus the length in the top byte.
        let rem = chunks.remainder();
        let mut last = (data.len() as u64) << 56;
        for (i, &b) in rem.iter().enumerate() {
            last |= (b as u64) << (8 * i);
        }
        v3 ^= last;
        for _ in 0..2 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^= last;

        v2 ^= 0xff;
        for _ in 0..4 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^ v1 ^ v2 ^ v3
    }

    /// Hashes a sequence of 64-bit words (convenience for tree nodes).
    ///
    /// Produces exactly the tag of [`SipHash24::hash`] over the words'
    /// little-endian concatenation, but feeds each word straight into
    /// the compression rounds — no intermediate byte buffer, so the
    /// Merkle tree's per-node hashing does not allocate. Because the
    /// input length is a whole number of 8-byte blocks, the final
    /// block is just the length tag.
    pub fn hash_words(&self, words: &[u64]) -> u64 {
        let mut v0 = 0x736f6d6570736575u64 ^ self.k0;
        let mut v1 = 0x646f72616e646f6du64 ^ self.k1;
        let mut v2 = 0x6c7967656e657261u64 ^ self.k0;
        let mut v3 = 0x7465646279746573u64 ^ self.k1;

        for &m in words {
            v3 ^= m;
            for _ in 0..2 {
                sipround(&mut v0, &mut v1, &mut v2, &mut v3);
            }
            v0 ^= m;
        }

        let last = (words.len() as u64 * 8) << 56;
        v3 ^= last;
        for _ in 0..2 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^= last;

        v2 ^= 0xff;
        for _ in 0..4 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^ v1 ^ v2 ^ v3
    }
}

#[inline]
fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // Reference test vector from the SipHash paper: key =
        // 000102...0f, message = 00 01 02 ... 0e (15 bytes).
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let msg: Vec<u8> = (0u8..15).collect();
        let tag = SipHash24::new(k0, k1).hash(&msg);
        assert_eq!(tag, 0xa129ca6149be45e5);
    }

    #[test]
    fn empty_input_is_stable_and_keyed() {
        let a = SipHash24::new(1, 2).hash(b"");
        let b = SipHash24::new(1, 2).hash(b"");
        let c = SipHash24::new(3, 4).hash(b"");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn single_bit_flip_changes_tag() {
        let mac = SipHash24::new(11, 22);
        let mut data = [0u8; 64];
        let base = mac.hash(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(mac.hash(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn hash_words_matches_bytes() {
        let mac = SipHash24::new(5, 6);
        // Every length a tree node can have (1..=ARITY children), plus
        // the empty input, must match the byte-wise hash exactly.
        let words: Vec<u64> = (0..9).map(|i| 0x1122334455667788u64.wrapping_mul(i + 1)).collect();
        for n in 0..=words.len() {
            let mut bytes = Vec::new();
            for w in &words[..n] {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            assert_eq!(mac.hash_words(&words[..n]), mac.hash(&bytes), "n = {n}");
        }
    }
}
