//! A from-scratch AES-128 block cipher (FIPS-197).
//!
//! The Lelantus paper assumes a hardware AES engine with a 24-cycle
//! latency whose output pad is XOR-ed with data (§II-B, Figure 1). The
//! *timing* of that engine is modelled by the memory controller; this
//! module supplies the *function* so that the simulated NVM genuinely
//! holds ciphertext and so decryption with the wrong counter visibly
//! produces garbage — which is exactly the failure mode Lelantus' CoW
//! redirection must avoid by fetching the source page's counters.
//!
//! Three implementations live here:
//!
//! * [`ni::Aes128Ni`] — the paper's assumption made literal: hardware
//!   AES via the x86-64 `aesenc` instructions, used for pad generation
//!   whenever the host CPU supports it (runtime-detected).
//! * [`Aes128`] — the portable fast path: a precomputed 32-bit T-table
//!   encryptor (four 1 KB tables generated at compile time, rounds
//!   fully unrolled). Every simulated 64-byte line access costs four
//!   block encryptions, so pad generation is the single hottest
//!   function in the simulator; the T-table form is several times
//!   faster than the byte-oriented cipher it replaced.
//! * [`reference::Aes128`] — the original byte-oriented S-box/xtime
//!   implementation, kept verbatim as the obviously-correct reference.
//!   All implementations are proven equal on the FIPS-197 appendix
//!   vectors and on random keys/blocks (see the tests here and
//!   `tests/fastpath_equivalence.rs` at the workspace root).
//!
//! Neither implementation is side-channel resistant; the simulator
//! never handles real secrets.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse AES S-box, inverted from [`SBOX`] at compile time.
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Round constants for the AES-128 key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by `x` (i.e. `{02}`) in GF(2^8) with the AES polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// Multiply two field elements in GF(2^8).
#[inline]
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// Expands `key` into the 11 × 16-byte round-key schedule (FIPS-197
/// §5.2), shared by both implementations.
fn expand_key_bytes(key: [u8; 16]) -> [[u8; 16]; 11] {
    let mut w = [[0u8; 4]; 44];
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        w[i].copy_from_slice(chunk);
    }
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for byte in &mut temp {
                *byte = SBOX[*byte as usize];
            }
            temp[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ temp[j];
        }
    }
    let mut round_keys = [[0u8; 16]; 11];
    for (r, rk) in round_keys.iter_mut().enumerate() {
        for c in 0..4 {
            rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
        }
    }
    round_keys
}

// ---------------------------------------------------------------------
// T-table fast path
// ---------------------------------------------------------------------

/// `TE[0]` maps an S-box input to its MixColumns column contribution
/// `(2·s, s, s, 3·s)` packed big-endian; `TE[1..=3]` are byte rotations
/// of it, so one full AES round is 16 table loads and 16 XORs.
static TE: [[u32; 256]; 4] = {
    let mut te = [[0u32; 256]; 4];
    let mut x = 0;
    while x < 256 {
        let s = SBOX[x];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        let w = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        te[0][x] = w;
        te[1][x] = w.rotate_right(8);
        te[2][x] = w.rotate_right(16);
        te[3][x] = w.rotate_right(24);
        x += 1;
    }
    te
};

/// An AES-128 block cipher with a pre-expanded key schedule.
///
/// Encryption runs on the compile-time T-tables; decryption (only used
/// by tests and diagnostics — counter mode XORs with *encrypted* pads
/// in both directions) delegates to the byte-oriented
/// [`reference::Aes128`] inverse cipher.
///
/// # Examples
///
/// ```
/// use lelantus_crypto::Aes128;
///
/// let aes = Aes128::new([0u8; 16]);
/// let block = [0u8; 16];
/// let ct = aes.encrypt_block(block);
/// assert_eq!(aes.decrypt_block(ct), block);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    /// Round keys as 44 big-endian words (4 per round), the layout the
    /// T-table rounds consume directly.
    enc: [u32; 44],
    /// Byte-oriented schedule for the inverse cipher.
    inv: reference::Aes128,
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").field("round_keys", &"<redacted>").finish()
    }
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule.
    pub fn new(key: [u8; 16]) -> Self {
        let inv = reference::Aes128::new(key);
        let mut enc = [0u32; 44];
        for (r, rk) in inv.round_keys().iter().enumerate() {
            for c in 0..4 {
                enc[r * 4 + c] =
                    u32::from_be_bytes([rk[c * 4], rk[c * 4 + 1], rk[c * 4 + 2], rk[c * 4 + 3]]);
            }
        }
        Self { enc, inv }
    }

    /// Encrypts one 16-byte block.
    #[inline]
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let rk = &self.enc;
        let mut s0 = u32::from_be_bytes([block[0], block[1], block[2], block[3]]) ^ rk[0];
        let mut s1 = u32::from_be_bytes([block[4], block[5], block[6], block[7]]) ^ rk[1];
        let mut s2 = u32::from_be_bytes([block[8], block[9], block[10], block[11]]) ^ rk[2];
        let mut s3 = u32::from_be_bytes([block[12], block[13], block[14], block[15]]) ^ rk[3];

        // Rounds 1..=9: SubBytes+ShiftRows+MixColumns+AddRoundKey fused
        // into four table lookups per output word.
        macro_rules! full_round {
            ($r:expr) => {{
                let t0 = TE[0][(s0 >> 24) as usize]
                    ^ TE[1][((s1 >> 16) & 0xff) as usize]
                    ^ TE[2][((s2 >> 8) & 0xff) as usize]
                    ^ TE[3][(s3 & 0xff) as usize]
                    ^ rk[$r * 4];
                let t1 = TE[0][(s1 >> 24) as usize]
                    ^ TE[1][((s2 >> 16) & 0xff) as usize]
                    ^ TE[2][((s3 >> 8) & 0xff) as usize]
                    ^ TE[3][(s0 & 0xff) as usize]
                    ^ rk[$r * 4 + 1];
                let t2 = TE[0][(s2 >> 24) as usize]
                    ^ TE[1][((s3 >> 16) & 0xff) as usize]
                    ^ TE[2][((s0 >> 8) & 0xff) as usize]
                    ^ TE[3][(s1 & 0xff) as usize]
                    ^ rk[$r * 4 + 2];
                let t3 = TE[0][(s3 >> 24) as usize]
                    ^ TE[1][((s0 >> 16) & 0xff) as usize]
                    ^ TE[2][((s1 >> 8) & 0xff) as usize]
                    ^ TE[3][(s2 & 0xff) as usize]
                    ^ rk[$r * 4 + 3];
                (s0, s1, s2, s3) = (t0, t1, t2, t3);
            }};
        }
        full_round!(1);
        full_round!(2);
        full_round!(3);
        full_round!(4);
        full_round!(5);
        full_round!(6);
        full_round!(7);
        full_round!(8);
        full_round!(9);

        // Final round: SubBytes+ShiftRows+AddRoundKey (no MixColumns).
        let sb = |b: u32| SBOX[b as usize] as u32;
        let t0 = (sb(s0 >> 24) << 24)
            | (sb((s1 >> 16) & 0xff) << 16)
            | (sb((s2 >> 8) & 0xff) << 8)
            | sb(s3 & 0xff);
        let t1 = (sb(s1 >> 24) << 24)
            | (sb((s2 >> 16) & 0xff) << 16)
            | (sb((s3 >> 8) & 0xff) << 8)
            | sb(s0 & 0xff);
        let t2 = (sb(s2 >> 24) << 24)
            | (sb((s3 >> 16) & 0xff) << 16)
            | (sb((s0 >> 8) & 0xff) << 8)
            | sb(s1 & 0xff);
        let t3 = (sb(s3 >> 24) << 24)
            | (sb((s0 >> 16) & 0xff) << 16)
            | (sb((s1 >> 8) & 0xff) << 8)
            | sb(s2 & 0xff);

        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&(t0 ^ rk[40]).to_be_bytes());
        out[4..8].copy_from_slice(&(t1 ^ rk[41]).to_be_bytes());
        out[8..12].copy_from_slice(&(t2 ^ rk[42]).to_be_bytes());
        out[12..16].copy_from_slice(&(t3 ^ rk[43]).to_be_bytes());
        out
    }

    /// Encrypts four independent 16-byte blocks in one interleaved
    /// pass.
    ///
    /// A 64-byte line's one-time pad is four independent AES
    /// invocations (one per 16-byte pad block); running their rounds
    /// interleaved lets the four dependency chains overlap in the
    /// pipeline instead of serializing, which is where most of the
    /// line-encryption speedup over the reference cipher comes from.
    /// Bit-identical to four [`encrypt_block`](Self::encrypt_block)
    /// calls.
    pub fn encrypt_blocks4(&self, blocks: [[u8; 16]; 4]) -> [[u8; 16]; 4] {
        let rk = &self.enc;
        let load = |block: &[u8; 16], w: usize| {
            u32::from_be_bytes([block[w * 4], block[w * 4 + 1], block[w * 4 + 2], block[w * 4 + 3]])
                ^ rk[w]
        };
        // Four independent states, two u32 columns named per macro use;
        // rounds fully unrolled so every round-key index is a constant.
        let mut a =
            [load(&blocks[0], 0), load(&blocks[0], 1), load(&blocks[0], 2), load(&blocks[0], 3)];
        let mut b =
            [load(&blocks[1], 0), load(&blocks[1], 1), load(&blocks[1], 2), load(&blocks[1], 3)];
        let mut c =
            [load(&blocks[2], 0), load(&blocks[2], 1), load(&blocks[2], 2), load(&blocks[2], 3)];
        let mut d =
            [load(&blocks[3], 0), load(&blocks[3], 1), load(&blocks[3], 2), load(&blocks[3], 3)];

        macro_rules! round_one {
            ($s:ident, $r:expr) => {{
                let [s0, s1, s2, s3] = $s;
                $s = [
                    TE[0][(s0 >> 24) as usize]
                        ^ TE[1][((s1 >> 16) & 0xff) as usize]
                        ^ TE[2][((s2 >> 8) & 0xff) as usize]
                        ^ TE[3][(s3 & 0xff) as usize]
                        ^ rk[$r * 4],
                    TE[0][(s1 >> 24) as usize]
                        ^ TE[1][((s2 >> 16) & 0xff) as usize]
                        ^ TE[2][((s3 >> 8) & 0xff) as usize]
                        ^ TE[3][(s0 & 0xff) as usize]
                        ^ rk[$r * 4 + 1],
                    TE[0][(s2 >> 24) as usize]
                        ^ TE[1][((s3 >> 16) & 0xff) as usize]
                        ^ TE[2][((s0 >> 8) & 0xff) as usize]
                        ^ TE[3][(s1 & 0xff) as usize]
                        ^ rk[$r * 4 + 2],
                    TE[0][(s3 >> 24) as usize]
                        ^ TE[1][((s0 >> 16) & 0xff) as usize]
                        ^ TE[2][((s1 >> 8) & 0xff) as usize]
                        ^ TE[3][(s2 & 0xff) as usize]
                        ^ rk[$r * 4 + 3],
                ];
            }};
        }
        macro_rules! round_all {
            ($($r:expr),*) => {$(
                round_one!(a, $r);
                round_one!(b, $r);
                round_one!(c, $r);
                round_one!(d, $r);
            )*};
        }
        round_all!(1, 2, 3, 4, 5, 6, 7, 8, 9);

        let sb = |v: u32| SBOX[v as usize] as u32;
        let mut out = [[0u8; 16]; 4];
        for (o, st) in out.iter_mut().zip([a, b, c, d]) {
            let [s0, s1, s2, s3] = st;
            let t = [
                (sb(s0 >> 24) << 24)
                    | (sb((s1 >> 16) & 0xff) << 16)
                    | (sb((s2 >> 8) & 0xff) << 8)
                    | sb(s3 & 0xff),
                (sb(s1 >> 24) << 24)
                    | (sb((s2 >> 16) & 0xff) << 16)
                    | (sb((s3 >> 8) & 0xff) << 8)
                    | sb(s0 & 0xff),
                (sb(s2 >> 24) << 24)
                    | (sb((s3 >> 16) & 0xff) << 16)
                    | (sb((s0 >> 8) & 0xff) << 8)
                    | sb(s1 & 0xff),
                (sb(s3 >> 24) << 24)
                    | (sb((s0 >> 16) & 0xff) << 16)
                    | (sb((s1 >> 8) & 0xff) << 8)
                    | sb(s2 & 0xff),
            ];
            for w in 0..4 {
                o[w * 4..w * 4 + 4].copy_from_slice(&(t[w] ^ rk[40 + w]).to_be_bytes());
            }
        }
        out
    }

    /// Decrypts one 16-byte block.
    ///
    /// Counter-mode encryption never uses block decryption (both
    /// directions XOR with an *encrypted* pad), so the inverse cipher
    /// stays byte-oriented; it exists for completeness and to
    /// cross-check the implementation in tests.
    pub fn decrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        self.inv.decrypt_block(block)
    }
}

// ---------------------------------------------------------------------
// Hardware AES (AES-NI)
// ---------------------------------------------------------------------

/// Hardware AES-128 encryption on the x86-64 `AES-NI` instructions.
///
/// The paper's memory controller *contains* a hardware AES engine
/// (§II-B); when the host CPU has one too, `CtrEngine` runs the pad
/// generation on it. Encrypt-only, like the T-table path — counter
/// mode XORs with encrypted pads in both directions. Bit-identical to
/// [`Aes128`](super::Aes128) and [`reference::Aes128`](super::reference::Aes128):
/// it is the same cipher, checked against both in the tests.
#[cfg(target_arch = "x86_64")]
pub mod ni {
    use super::expand_key_bytes;
    use std::arch::x86_64::{
        __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_storeu_si128,
        _mm_xor_si128,
    };

    /// Whether the running CPU supports the AES instructions.
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("aes")
    }

    /// Loads 16 bytes into a vector register (unaligned).
    #[inline]
    fn load16(bytes: &[u8; 16]) -> __m128i {
        // SAFETY: the reference guarantees 16 readable bytes; loadu has
        // no alignment requirement, and SSE2 is baseline on x86-64.
        unsafe { _mm_loadu_si128(bytes.as_ptr().cast()) }
    }

    /// AES-128 encryption through `aesenc`/`aesenclast`.
    #[derive(Clone)]
    pub struct Aes128Ni {
        /// Round keys in byte order; AES-NI consumes the FIPS-197 byte
        /// layout directly (no endianness massaging).
        rk: [[u8; 16]; 11],
    }

    impl std::fmt::Debug for Aes128Ni {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Never print key material.
            f.debug_struct("Aes128Ni").field("round_keys", &"<redacted>").finish()
        }
    }

    impl Aes128Ni {
        /// Expands `key`, or returns `None` when the CPU lacks AES-NI.
        pub fn try_new(key: [u8; 16]) -> Option<Self> {
            available().then(|| Self { rk: expand_key_bytes(key) })
        }

        /// Encrypts one 16-byte block.
        #[inline]
        pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
            // SAFETY: construction via `try_new` proved the feature.
            unsafe { self.encrypt_block_aesni(block) }
        }

        /// Encrypts four independent blocks with their rounds
        /// interleaved; `aesenc` pipelines one round per cycle, so the
        /// four dependency chains overlap almost perfectly.
        #[inline]
        pub fn encrypt_blocks4(&self, blocks: [[u8; 16]; 4]) -> [[u8; 16]; 4] {
            // SAFETY: construction via `try_new` proved the feature.
            unsafe { self.encrypt_blocks4_aesni(blocks) }
        }

        /// # Safety
        /// The CPU must support the `aes` target feature.
        #[target_feature(enable = "aes")]
        unsafe fn encrypt_block_aesni(&self, block: [u8; 16]) -> [u8; 16] {
            let mut s = _mm_xor_si128(load16(&block), load16(&self.rk[0]));
            for rk in &self.rk[1..10] {
                s = _mm_aesenc_si128(s, load16(rk));
            }
            s = _mm_aesenclast_si128(s, load16(&self.rk[10]));
            let mut out = [0u8; 16];
            _mm_storeu_si128(out.as_mut_ptr().cast(), s);
            out
        }

        /// # Safety
        /// The CPU must support the `aes` target feature.
        #[target_feature(enable = "aes")]
        unsafe fn encrypt_blocks4_aesni(&self, blocks: [[u8; 16]; 4]) -> [[u8; 16]; 4] {
            let k0 = load16(&self.rk[0]);
            let mut a = _mm_xor_si128(load16(&blocks[0]), k0);
            let mut b = _mm_xor_si128(load16(&blocks[1]), k0);
            let mut c = _mm_xor_si128(load16(&blocks[2]), k0);
            let mut d = _mm_xor_si128(load16(&blocks[3]), k0);
            for rk in &self.rk[1..10] {
                let k = load16(rk);
                a = _mm_aesenc_si128(a, k);
                b = _mm_aesenc_si128(b, k);
                c = _mm_aesenc_si128(c, k);
                d = _mm_aesenc_si128(d, k);
            }
            let k10 = load16(&self.rk[10]);
            let mut out = [[0u8; 16]; 4];
            _mm_storeu_si128(out[0].as_mut_ptr().cast(), _mm_aesenclast_si128(a, k10));
            _mm_storeu_si128(out[1].as_mut_ptr().cast(), _mm_aesenclast_si128(b, k10));
            _mm_storeu_si128(out[2].as_mut_ptr().cast(), _mm_aesenclast_si128(c, k10));
            _mm_storeu_si128(out[3].as_mut_ptr().cast(), _mm_aesenclast_si128(d, k10));
            out
        }
    }
}

// ---------------------------------------------------------------------
// Byte-oriented reference implementation
// ---------------------------------------------------------------------

/// The original byte-oriented AES-128: S-box lookups plus xtime-based
/// MixColumns, exactly as FIPS-197 writes it down. Not fast — kept as
/// the obviously-correct reference the T-table cipher is differentially
/// tested against, and as the inverse cipher.
pub mod reference {
    use super::{expand_key_bytes, gmul, xtime, INV_SBOX, SBOX};

    /// Byte-oriented AES-128 with a pre-expanded key schedule.
    #[derive(Clone)]
    pub struct Aes128 {
        /// 11 round keys of 16 bytes each.
        round_keys: [[u8; 16]; 11],
    }

    impl std::fmt::Debug for Aes128 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Never print key material.
            f.debug_struct("Aes128").field("round_keys", &"<redacted>").finish()
        }
    }

    impl Aes128 {
        /// Expands `key` into the full round-key schedule.
        pub fn new(key: [u8; 16]) -> Self {
            Self { round_keys: expand_key_bytes(key) }
        }

        /// The expanded schedule (consumed by the T-table constructor).
        pub(crate) fn round_keys(&self) -> &[[u8; 16]; 11] {
            &self.round_keys
        }

        /// Encrypts one 16-byte block.
        pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
            let mut state = block;
            add_round_key(&mut state, &self.round_keys[0]);
            for round in 1..10 {
                sub_bytes(&mut state);
                shift_rows(&mut state);
                mix_columns(&mut state);
                add_round_key(&mut state, &self.round_keys[round]);
            }
            sub_bytes(&mut state);
            shift_rows(&mut state);
            add_round_key(&mut state, &self.round_keys[10]);
            state
        }

        /// Decrypts one 16-byte block.
        pub fn decrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
            let mut state = block;
            add_round_key(&mut state, &self.round_keys[10]);
            for round in (1..10).rev() {
                inv_shift_rows(&mut state);
                inv_sub_bytes(&mut state);
                add_round_key(&mut state, &self.round_keys[round]);
                inv_mix_columns(&mut state);
            }
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
            add_round_key(&mut state, &self.round_keys[0]);
            state
        }
    }

    // The state is stored column-major as in FIPS-197: state[r + 4c].

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // Row r is bytes state[r], state[r+4], state[r+8], state[r+12].
        for r in 1..4 {
            let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
            for c in 0..4 {
                state[r + 4 * c] = row[(c + r) % 4];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
            for c in 0..4 {
                state[r + 4 * c] = row[(c + 4 - r) % 4];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] = xtime(col[0]) ^ xtime(col[1]) ^ col[1] ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ xtime(col[2]) ^ col[2] ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ xtime(col[3]) ^ col[3];
            state[4 * c + 3] = xtime(col[0]) ^ col[0] ^ col[1] ^ col[2] ^ xtime(col[3]);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] =
                gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
            state[4 * c + 1] =
                gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
            state[4 * c + 2] =
                gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
            state[4 * c + 3] =
                gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: single-block example.
        let key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        let expected = hex16("3925841d02dc09fbdc118597196a0b32");
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt), expected);
        assert_eq!(aes.decrypt_block(expected), pt);
        let reference = reference::Aes128::new(key);
        assert_eq!(reference.encrypt_block(pt), expected);
        assert_eq!(reference.decrypt_block(expected), pt);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 Appendix C.1: AES-128 example vectors.
        let key = hex16("000102030405060708090a0b0c0d0e0f");
        let pt = hex16("00112233445566778899aabbccddeeff");
        let expected = hex16("69c4e0d86a7b0430d8cdb78070b4c55a");
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt), expected);
        assert_eq!(aes.decrypt_block(expected), pt);
        let reference = reference::Aes128::new(key);
        assert_eq!(reference.encrypt_block(pt), expected);
        assert_eq!(reference.decrypt_block(expected), pt);
    }

    #[test]
    fn table_and_reference_ciphers_agree() {
        // Pseudo-random keys and blocks; the dedicated equivalence
        // suite at the workspace root drives many more.
        let mut x = 0x0123_4567_89ab_cdefu64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..512 {
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&next().to_le_bytes());
            key[8..].copy_from_slice(&next().to_le_bytes());
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&next().to_le_bytes());
            block[8..].copy_from_slice(&next().to_le_bytes());
            let fast = Aes128::new(key);
            let slow = reference::Aes128::new(key);
            let ct = fast.encrypt_block(block);
            assert_eq!(ct, slow.encrypt_block(block));
            assert_eq!(fast.decrypt_block(ct), block);
        }
    }

    #[test]
    fn encrypt_blocks4_matches_four_single_calls() {
        let aes = Aes128::new(*b"interleave-key-4");
        let mut x = 0x9e37_79b9u64;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x
        };
        for _ in 0..128 {
            let mut blocks = [[0u8; 16]; 4];
            for b in blocks.iter_mut() {
                b[..8].copy_from_slice(&next().to_le_bytes());
                b[8..].copy_from_slice(&next().to_le_bytes());
            }
            let batched = aes.encrypt_blocks4(blocks);
            for (i, block) in blocks.iter().enumerate() {
                assert_eq!(batched[i], aes.encrypt_block(*block));
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hardware_aes_matches_reference_when_available() {
        let Some(hw) = ni::Aes128Ni::try_new(hex16("000102030405060708090a0b0c0d0e0f")) else {
            eprintln!("AES-NI not available; skipping hardware cipher test");
            return;
        };
        // FIPS-197 Appendix C.1 first, then random agreement.
        let pt = hex16("00112233445566778899aabbccddeeff");
        assert_eq!(hw.encrypt_block(pt), hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        let mut x = 0xdead_beef_cafe_f00du64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..512 {
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&next().to_le_bytes());
            key[8..].copy_from_slice(&next().to_le_bytes());
            let hw = ni::Aes128Ni::try_new(key).unwrap();
            let sw = reference::Aes128::new(key);
            let mut blocks = [[0u8; 16]; 4];
            for b in blocks.iter_mut() {
                b[..8].copy_from_slice(&next().to_le_bytes());
                b[8..].copy_from_slice(&next().to_le_bytes());
            }
            let batched = hw.encrypt_blocks4(blocks);
            for (i, block) in blocks.iter().enumerate() {
                assert_eq!(hw.encrypt_block(*block), sw.encrypt_block(*block));
                assert_eq!(batched[i], sw.encrypt_block(*block));
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hardware_aes_debug_does_not_leak_key() {
        if let Some(hw) = ni::Aes128Ni::try_new([0x42; 16]) {
            let dbg = format!("{hw:?}");
            assert!(dbg.contains("redacted"));
            assert!(!dbg.contains("42"));
        }
    }

    #[test]
    fn encrypt_then_decrypt_roundtrips_many_blocks() {
        let aes = Aes128::new([0x5a; 16]);
        for i in 0u64..256 {
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&i.to_le_bytes());
            block[8..].copy_from_slice(&(i.wrapping_mul(0x9e3779b97f4a7c15)).to_le_bytes());
            assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes128::new([1; 16]);
        let b = Aes128::new([2; 16]);
        let block = [0u8; 16];
        assert_ne!(a.encrypt_block(block), b.encrypt_block(block));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new([7; 16]);
        let s = format!("{aes:?}");
        assert!(s.contains("redacted"));
        assert!(!s.contains('7'));
        let r = reference::Aes128::new([7; 16]);
        let s = format!("{r:?}");
        assert!(s.contains("redacted"));
    }

    #[test]
    fn gmul_matches_xtime() {
        for b in 0..=255u8 {
            assert_eq!(gmul(b, 2), xtime(b));
            assert_eq!(gmul(b, 1), b);
            assert_eq!(gmul(b, 0), 0);
        }
    }

    #[test]
    fn inv_sbox_is_the_inverse() {
        for b in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[b as usize] as usize], b);
            assert_eq!(SBOX[INV_SBOX[b as usize] as usize], b);
        }
    }
}
