//! Counter-mode encryption of 64-byte cachelines.
//!
//! Following the paper's Figure 1, the initialization vector (IV) for a
//! cacheline is built from *padding ‖ line address ‖ major counter ‖
//! minor counter*. The IV is encrypted with AES-128 to produce a
//! one-time pad (OTP) which is XOR-ed with the plaintext/ciphertext.
//!
//! * **Spatial uniqueness** comes from the line address inside the IV —
//!   two lines holding identical data at different addresses encrypt to
//!   different ciphertexts.
//! * **Temporal uniqueness** comes from the (major, minor) counter pair
//!   that the controller increments on every write.
//!
//! A 64-byte line needs four 16-byte pads; a 2-bit block index inside
//! the padding differentiates them.

use crate::aes::Aes128;

/// The cacheline size used throughout the reproduction (bytes).
pub const LINE_BYTES: usize = 64;

/// Everything that parameterizes the one-time pad of a single line.
///
/// The same `IvSpec` must be presented for decryption that was used for
/// encryption; Lelantus' CoW redirection works precisely by rebuilding
/// the *source page's* `IvSpec` for not-yet-copied lines (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IvSpec {
    /// Physical address of the 64-byte line (byte address, line-aligned).
    pub line_addr: u64,
    /// Major counter shared by the 4 KB region (paper: 64-bit, or 63-bit
    /// in the resized-counter CoW layout).
    pub major: u64,
    /// Per-line minor counter (7-bit regular / 6-bit CoW layout).
    pub minor: u8,
}

/// A counter-mode encryption engine for 64-byte cachelines.
///
/// # Examples
///
/// ```
/// use lelantus_crypto::ctr::{CtrEngine, IvSpec};
///
/// let engine = CtrEngine::new([9; 16]);
/// let iv = IvSpec { line_addr: 0x40, major: 1, minor: 1 };
/// let line = [7u8; 64];
/// let ct = engine.encrypt_line(&line, iv);
/// // Decrypting with the wrong counter yields garbage, not the data:
/// let wrong = IvSpec { minor: 2, ..iv };
/// assert_ne!(engine.decrypt_line(&ct, wrong), line);
/// assert_eq!(engine.decrypt_line(&ct, iv), line);
/// ```
#[derive(Debug, Clone)]
pub struct CtrEngine {
    aes: Aes128,
}

impl CtrEngine {
    /// Creates an engine keyed with `key`.
    pub fn new(key: [u8; 16]) -> Self {
        Self { aes: Aes128::new(key) }
    }

    /// Builds the 16-byte IV for pad block `block_idx` (0..4) of a line.
    fn iv_bytes(iv: IvSpec, block_idx: u8) -> [u8; 16] {
        debug_assert!(block_idx < 4, "a 64B line has four 16B pad blocks");
        let mut bytes = [0u8; 16];
        // padding: constant domain tag plus the 2-bit block index.
        bytes[0] = 0x4C; // 'L' — domain separation for line encryption
        bytes[1] = block_idx;
        // line address (48 bits are plenty; we store all 64).
        bytes[2..10].copy_from_slice(&iv.line_addr.to_le_bytes());
        // major counter (low 40 bits) and minor counter.
        let major = iv.major.to_le_bytes();
        bytes[10..15].copy_from_slice(&major[..5]);
        bytes[15] = iv.minor;
        bytes
    }

    /// Generates the full 64-byte one-time pad for `iv`.
    ///
    /// Exposed so the memory controller can model pad *pre-generation*
    /// (the paper overlaps pad generation with the data fetch).
    pub fn one_time_pad(&self, iv: IvSpec) -> [u8; LINE_BYTES] {
        let mut pad = [0u8; LINE_BYTES];
        for blk in 0..4u8 {
            let ct = self.aes.encrypt_block(Self::iv_bytes(iv, blk));
            pad[blk as usize * 16..(blk as usize + 1) * 16].copy_from_slice(&ct);
        }
        pad
    }

    /// Encrypts a 64-byte line under `iv`.
    pub fn encrypt_line(&self, plaintext: &[u8; LINE_BYTES], iv: IvSpec) -> [u8; LINE_BYTES] {
        self.xor_pad(plaintext, iv)
    }

    /// Decrypts a 64-byte line under `iv`.
    pub fn decrypt_line(&self, ciphertext: &[u8; LINE_BYTES], iv: IvSpec) -> [u8; LINE_BYTES] {
        self.xor_pad(ciphertext, iv)
    }

    fn xor_pad(&self, data: &[u8; LINE_BYTES], iv: IvSpec) -> [u8; LINE_BYTES] {
        let pad = self.one_time_pad(iv);
        let mut out = [0u8; LINE_BYTES];
        for i in 0..LINE_BYTES {
            out[i] = data[i] ^ pad[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn engine() -> CtrEngine {
        CtrEngine::new(*b"lelantus-key-16B")
    }

    #[test]
    fn roundtrip() {
        let e = engine();
        let iv = IvSpec { line_addr: 0x1000, major: 42, minor: 9 };
        let data = [0x5a; LINE_BYTES];
        assert_eq!(e.decrypt_line(&e.encrypt_line(&data, iv), iv), data);
    }

    #[test]
    fn spatial_uniqueness_same_data_different_address() {
        let e = engine();
        let data = [0u8; LINE_BYTES];
        let a = e.encrypt_line(&data, IvSpec { line_addr: 0x0, major: 1, minor: 1 });
        let b = e.encrypt_line(&data, IvSpec { line_addr: 0x40, major: 1, minor: 1 });
        assert_ne!(a, b, "same plaintext at different addresses must differ");
    }

    #[test]
    fn temporal_uniqueness_same_address_different_counter() {
        let e = engine();
        let data = [0u8; LINE_BYTES];
        let base = IvSpec { line_addr: 0x40, major: 1, minor: 1 };
        let a = e.encrypt_line(&data, base);
        let b = e.encrypt_line(&data, IvSpec { minor: 2, ..base });
        let c = e.encrypt_line(&data, IvSpec { major: 2, ..base });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn pad_blocks_are_distinct() {
        let e = engine();
        let pad = e.one_time_pad(IvSpec { line_addr: 0, major: 0, minor: 0 });
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(pad[i * 16..(i + 1) * 16], pad[j * 16..(j + 1) * 16]);
            }
        }
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let a = CtrEngine::new([1; 16]);
        let b = CtrEngine::new([2; 16]);
        let iv = IvSpec { line_addr: 0x80, major: 3, minor: 4 };
        let data = [0xEE; LINE_BYTES];
        assert_ne!(b.decrypt_line(&a.encrypt_line(&data, iv), iv), data);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in prop::array::uniform32(any::<u8>()),
                          addr in any::<u64>(), major in any::<u64>(), minor in any::<u8>()) {
            let e = engine();
            let mut line = [0u8; LINE_BYTES];
            line[..32].copy_from_slice(&data);
            line[32..].copy_from_slice(&data);
            let iv = IvSpec { line_addr: addr & !0x3f, major, minor };
            prop_assert_eq!(e.decrypt_line(&e.encrypt_line(&line, iv), iv), line);
        }

        #[test]
        fn prop_wrong_minor_garbles(addr in any::<u64>(), major in any::<u64>(),
                                    minor in 0u8..=254) {
            let e = engine();
            let line = [0x11u8; LINE_BYTES];
            let iv = IvSpec { line_addr: addr & !0x3f, major, minor };
            let wrong = IvSpec { minor: minor + 1, ..iv };
            prop_assert_ne!(e.decrypt_line(&e.encrypt_line(&line, iv), wrong), line);
        }
    }
}
