//! Counter-mode encryption of 64-byte cachelines.
//!
//! Following the paper's Figure 1, the initialization vector (IV) for a
//! cacheline is built from *padding ‖ line address ‖ major counter ‖
//! minor counter*. The IV is encrypted with AES-128 to produce a
//! one-time pad (OTP) which is XOR-ed with the plaintext/ciphertext.
//!
//! * **Spatial uniqueness** comes from the line address inside the IV —
//!   two lines holding identical data at different addresses encrypt to
//!   different ciphertexts.
//! * **Temporal uniqueness** comes from the (major, minor) counter pair
//!   that the controller increments on every write.
//!
//! A 64-byte line needs four 16-byte pads; a 2-bit block index inside
//! the padding differentiates them.

#[cfg(target_arch = "x86_64")]
use crate::aes::ni;
use crate::aes::{reference, Aes128};

/// The cacheline size used throughout the reproduction (bytes).
///
/// Re-exported from `lelantus-types` so the whole workspace shares one
/// definition.
pub use lelantus_types::LINE_BYTES;

/// Everything that parameterizes the one-time pad of a single line.
///
/// The same `IvSpec` must be presented for decryption that was used for
/// encryption; Lelantus' CoW redirection works precisely by rebuilding
/// the *source page's* `IvSpec` for not-yet-copied lines (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IvSpec {
    /// Physical address of the 64-byte line (byte address, line-aligned).
    pub line_addr: u64,
    /// Major counter shared by the 4 KB region (paper: 64-bit, or 63-bit
    /// in the resized-counter CoW layout).
    pub major: u64,
    /// Per-line minor counter (7-bit regular / 6-bit CoW layout).
    pub minor: u8,
}

/// A counter-mode encryption engine for 64-byte cachelines.
///
/// # Examples
///
/// ```
/// use lelantus_crypto::ctr::{CtrEngine, IvSpec};
///
/// let engine = CtrEngine::new([9; 16]);
/// let iv = IvSpec { line_addr: 0x40, major: 1, minor: 1 };
/// let line = [7u8; 64];
/// let ct = engine.encrypt_line(&line, iv);
/// // Decrypting with the wrong counter yields garbage, not the data:
/// let wrong = IvSpec { minor: 2, ..iv };
/// assert_ne!(engine.decrypt_line(&ct, wrong), line);
/// assert_eq!(engine.decrypt_line(&ct, iv), line);
/// ```
#[derive(Debug, Clone)]
pub struct CtrEngine {
    aes: AesBackend,
}

/// Which AES implementation a [`CtrEngine`] runs on.
///
/// Production engines use hardware AES when the CPU has it (the paper
/// assumes a hardware AES engine in the controller) and the T-table
/// cipher otherwise; the byte-oriented reference backend exists so
/// equivalence tests can run the *whole simulator* on the reference
/// cipher and check that every ciphertext and statistic is
/// bit-identical. All three compute the same function.
#[derive(Debug, Clone)]
enum AesBackend {
    #[cfg(target_arch = "x86_64")]
    Ni(ni::Aes128Ni),
    Table(Aes128),
    Reference(reference::Aes128),
}

impl AesBackend {
    #[inline]
    fn encrypt_blocks4(&self, blocks: [[u8; 16]; 4]) -> [[u8; 16]; 4] {
        match self {
            #[cfg(target_arch = "x86_64")]
            AesBackend::Ni(aes) => aes.encrypt_blocks4(blocks),
            AesBackend::Table(aes) => aes.encrypt_blocks4(blocks),
            AesBackend::Reference(aes) => blocks.map(|b| aes.encrypt_block(b)),
        }
    }
}

impl CtrEngine {
    /// Creates an engine keyed with `key`: hardware AES when the CPU
    /// supports it, the T-table cipher otherwise.
    pub fn new(key: [u8; 16]) -> Self {
        #[cfg(target_arch = "x86_64")]
        if let Some(aes) = ni::Aes128Ni::try_new(key) {
            return Self { aes: AesBackend::Ni(aes) };
        }
        Self::new_table(key)
    }

    /// Creates an engine on the portable T-table cipher, even when
    /// hardware AES is available. Used by the micro-benchmarks to
    /// attribute the software-path speedup.
    pub fn new_table(key: [u8; 16]) -> Self {
        Self { aes: AesBackend::Table(Aes128::new(key)) }
    }

    /// Creates an engine on the byte-oriented reference cipher.
    /// Functionally identical to [`new`](Self::new), several times
    /// slower; exists for differential testing.
    pub fn new_reference(key: [u8; 16]) -> Self {
        Self { aes: AesBackend::Reference(reference::Aes128::new(key)) }
    }

    /// Builds the 16-byte IV for pad block `block_idx` (0..4) of a line.
    fn iv_bytes(iv: IvSpec, block_idx: u8) -> [u8; 16] {
        debug_assert!(block_idx < 4, "a 64B line has four 16B pad blocks");
        let mut bytes = [0u8; 16];
        // padding: constant domain tag plus the 2-bit block index.
        bytes[0] = 0x4C; // 'L' — domain separation for line encryption
        bytes[1] = block_idx;
        // line address (48 bits are plenty; we store all 64).
        bytes[2..10].copy_from_slice(&iv.line_addr.to_le_bytes());
        // major counter (low 40 bits) and minor counter.
        let major = iv.major.to_le_bytes();
        bytes[10..15].copy_from_slice(&major[..5]);
        bytes[15] = iv.minor;
        bytes
    }

    /// Generates the full 64-byte one-time pad for `iv`.
    ///
    /// Exposed so the memory controller can model pad *pre-generation*
    /// (the paper overlaps pad generation with the data fetch).
    pub fn one_time_pad(&self, iv: IvSpec) -> [u8; LINE_BYTES] {
        // The four pad blocks are independent AES invocations; the
        // interleaved 4-block encryptor overlaps their rounds.
        let cts = self.aes.encrypt_blocks4([
            Self::iv_bytes(iv, 0),
            Self::iv_bytes(iv, 1),
            Self::iv_bytes(iv, 2),
            Self::iv_bytes(iv, 3),
        ]);
        let mut pad = [0u8; LINE_BYTES];
        for (blk, ct) in cts.iter().enumerate() {
            pad[blk * 16..(blk + 1) * 16].copy_from_slice(ct);
        }
        pad
    }

    /// Encrypts a 64-byte line under `iv`.
    pub fn encrypt_line(&self, plaintext: &[u8; LINE_BYTES], iv: IvSpec) -> [u8; LINE_BYTES] {
        self.xor_pad(plaintext, iv)
    }

    /// Decrypts a 64-byte line under `iv`.
    pub fn decrypt_line(&self, ciphertext: &[u8; LINE_BYTES], iv: IvSpec) -> [u8; LINE_BYTES] {
        self.xor_pad(ciphertext, iv)
    }

    fn xor_pad(&self, data: &[u8; LINE_BYTES], iv: IvSpec) -> [u8; LINE_BYTES] {
        xor_line(data, &self.one_time_pad(iv))
    }

    /// Generates the one-time pads for `count` consecutive lines
    /// starting at `base_addr`, all sharing the same `(major, minor)`
    /// counter pair.
    ///
    /// This is the page-copy fast path: materializing or re-encrypting
    /// a 4 KB region stamps every destination line with `minor = 1`
    /// under one major counter (paper §III-D/§III-E), so the controller
    /// can batch all 64 × 4 AES block invocations into one sweep
    /// instead of rebuilding an [`IvSpec`] and dispatching per line.
    /// Pad `i` equals `one_time_pad` of
    /// `IvSpec { line_addr: base_addr + i·64, major, minor }` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `base_addr` is not 64-byte aligned.
    pub fn page_pads(
        &self,
        base_addr: u64,
        major: u64,
        minor: u8,
        count: usize,
    ) -> Vec<[u8; LINE_BYTES]> {
        assert_eq!(base_addr % LINE_BYTES as u64, 0, "page_pads needs a line-aligned base");
        let mut pads = Vec::with_capacity(count);
        // One template IV per sweep: only the block index (byte 1) and
        // the line address (bytes 2..10) change between AES calls.
        let mut iv = Self::iv_bytes(IvSpec { line_addr: base_addr, major, minor }, 0);
        for i in 0..count {
            let line_addr = base_addr + (i * LINE_BYTES) as u64;
            iv[2..10].copy_from_slice(&line_addr.to_le_bytes());
            let mut ivs = [iv; 4];
            for (blk, iv) in ivs.iter_mut().enumerate() {
                iv[1] = blk as u8;
            }
            let cts = self.aes.encrypt_blocks4(ivs);
            let mut pad = [0u8; LINE_BYTES];
            for (blk, ct) in cts.iter().enumerate() {
                pad[blk * 16..(blk + 1) * 16].copy_from_slice(ct);
            }
            pads.push(pad);
        }
        pads
    }

    /// Encrypts the lines of a page copy in one sweep: line `i` of
    /// `plains` is encrypted for address `base_addr + i·64` under the
    /// shared `(major, minor)` pair. Equivalent to per-line
    /// [`encrypt_line`](Self::encrypt_line) calls, batched.
    ///
    /// # Panics
    ///
    /// Panics if `base_addr` is not 64-byte aligned.
    pub fn copy_page(
        &self,
        plains: &[[u8; LINE_BYTES]],
        base_addr: u64,
        major: u64,
        minor: u8,
    ) -> Vec<[u8; LINE_BYTES]> {
        let pads = self.page_pads(base_addr, major, minor, plains.len());
        plains.iter().zip(&pads).map(|(p, pad)| xor_line(p, pad)).collect()
    }
}

/// XORs a 64-byte line with a one-time pad.
#[inline]
pub fn xor_line(data: &[u8; LINE_BYTES], pad: &[u8; LINE_BYTES]) -> [u8; LINE_BYTES] {
    let mut out = [0u8; LINE_BYTES];
    for i in 0..LINE_BYTES {
        out[i] = data[i] ^ pad[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn engine() -> CtrEngine {
        CtrEngine::new(*b"lelantus-key-16B")
    }

    #[test]
    fn roundtrip() {
        let e = engine();
        let iv = IvSpec { line_addr: 0x1000, major: 42, minor: 9 };
        let data = [0x5a; LINE_BYTES];
        assert_eq!(e.decrypt_line(&e.encrypt_line(&data, iv), iv), data);
    }

    #[test]
    fn spatial_uniqueness_same_data_different_address() {
        let e = engine();
        let data = [0u8; LINE_BYTES];
        let a = e.encrypt_line(&data, IvSpec { line_addr: 0x0, major: 1, minor: 1 });
        let b = e.encrypt_line(&data, IvSpec { line_addr: 0x40, major: 1, minor: 1 });
        assert_ne!(a, b, "same plaintext at different addresses must differ");
    }

    #[test]
    fn temporal_uniqueness_same_address_different_counter() {
        let e = engine();
        let data = [0u8; LINE_BYTES];
        let base = IvSpec { line_addr: 0x40, major: 1, minor: 1 };
        let a = e.encrypt_line(&data, base);
        let b = e.encrypt_line(&data, IvSpec { minor: 2, ..base });
        let c = e.encrypt_line(&data, IvSpec { major: 2, ..base });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn pad_blocks_are_distinct() {
        let e = engine();
        let pad = e.one_time_pad(IvSpec { line_addr: 0, major: 0, minor: 0 });
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(pad[i * 16..(i + 1) * 16], pad[j * 16..(j + 1) * 16]);
            }
        }
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let a = CtrEngine::new([1; 16]);
        let b = CtrEngine::new([2; 16]);
        let iv = IvSpec { line_addr: 0x80, major: 3, minor: 4 };
        let data = [0xEE; LINE_BYTES];
        assert_ne!(b.decrypt_line(&a.encrypt_line(&data, iv), iv), data);
    }

    #[test]
    fn page_pads_matches_per_line_pads() {
        let e = engine();
        let base = 0x7000u64;
        let pads = e.page_pads(base, 17, 3, 64);
        assert_eq!(pads.len(), 64);
        for (i, pad) in pads.iter().enumerate() {
            let iv = IvSpec { line_addr: base + (i * LINE_BYTES) as u64, major: 17, minor: 3 };
            assert_eq!(*pad, e.one_time_pad(iv), "pad {i} diverges from the per-line path");
        }
    }

    #[test]
    fn copy_page_matches_per_line_encrypt() {
        let e = engine();
        let base = 0x4000u64;
        let plains: Vec<[u8; LINE_BYTES]> =
            (0..64u8).map(|i| [i.wrapping_mul(37); LINE_BYTES]).collect();
        let ciphers = e.copy_page(&plains, base, 9, 1);
        for (i, (plain, cipher)) in plains.iter().zip(&ciphers).enumerate() {
            let iv = IvSpec { line_addr: base + (i * LINE_BYTES) as u64, major: 9, minor: 1 };
            assert_eq!(*cipher, e.encrypt_line(plain, iv));
            assert_eq!(e.decrypt_line(cipher, iv), *plain);
        }
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn page_pads_rejects_unaligned_base() {
        let _ = engine().page_pads(0x123, 1, 1, 4);
    }

    #[test]
    fn all_backends_are_functionally_identical() {
        // `new` resolves to hardware AES where available, so comparing
        // it against the forced-table and reference engines covers
        // every backend the platform can build.
        let default = CtrEngine::new([0xAB; 16]);
        let table = CtrEngine::new_table([0xAB; 16]);
        let slow = CtrEngine::new_reference([0xAB; 16]);
        for minor in 0..8u8 {
            let iv = IvSpec { line_addr: 0x40 * minor as u64, major: 100 + minor as u64, minor };
            let line = [minor.wrapping_mul(91); LINE_BYTES];
            assert_eq!(default.encrypt_line(&line, iv), slow.encrypt_line(&line, iv));
            assert_eq!(table.encrypt_line(&line, iv), slow.encrypt_line(&line, iv));
            assert_eq!(default.one_time_pad(iv), slow.one_time_pad(iv));
            assert_eq!(table.one_time_pad(iv), slow.one_time_pad(iv));
        }
        assert_eq!(default.page_pads(0, 5, 1, 64), slow.page_pads(0, 5, 1, 64));
        assert_eq!(table.page_pads(0, 5, 1, 64), slow.page_pads(0, 5, 1, 64));
    }

    proptest! {
        #[test]
        fn prop_page_pads_equivalence(base in 0u64..1_000_000, major in any::<u64>(),
                                      minor in any::<u8>(), count in 1usize..=64) {
            let e = engine();
            let base = base * LINE_BYTES as u64;
            let pads = e.page_pads(base, major, minor, count);
            for (i, pad) in pads.iter().enumerate() {
                let iv = IvSpec { line_addr: base + (i * LINE_BYTES) as u64, major, minor };
                prop_assert_eq!(*pad, e.one_time_pad(iv));
            }
        }

        #[test]
        fn prop_roundtrip(data in prop::array::uniform32(any::<u8>()),
                          addr in any::<u64>(), major in any::<u64>(), minor in any::<u8>()) {
            let e = engine();
            let mut line = [0u8; LINE_BYTES];
            line[..32].copy_from_slice(&data);
            line[32..].copy_from_slice(&data);
            let iv = IvSpec { line_addr: addr & !0x3f, major, minor };
            prop_assert_eq!(e.decrypt_line(&e.encrypt_line(&line, iv), iv), line);
        }

        #[test]
        fn prop_wrong_minor_garbles(addr in any::<u64>(), major in any::<u64>(),
                                    minor in 0u8..=254) {
            let e = engine();
            let line = [0x11u8; LINE_BYTES];
            let iv = IvSpec { line_addr: addr & !0x3f, major, minor };
            let wrong = IvSpec { minor: minor + 1, ..iv };
            prop_assert_ne!(e.decrypt_line(&e.encrypt_line(&line, iv), wrong), line);
        }
    }
}
