//! A Bonsai-style Merkle tree protecting counter-block integrity.
//!
//! Counter-mode encryption is only secure if counters cannot be rolled
//! back or tampered with (paper §II-B); state-of-the-art secure NVMs
//! protect the counters with a Bonsai Merkle Tree (BMT) whose root
//! lives on-chip. The paper (and prior work it cites) measures the BMT
//! overhead at under 2 % because verification stops at the first
//! *trusted ancestor* — any tree node currently held in the on-chip
//! node cache.
//!
//! This module implements an 8-ary hash tree over counter-block
//! digests, with an LRU node cache modelling the trusted on-chip
//! copies, and reports how many node fetches each verify/update needed
//! so the memory controller can charge the corresponding traffic.
//!
//! # Deferred maintenance (host-side write combining)
//!
//! The *simulated* cost model walks leaf-to-root on every update — that
//! is what the paper charges and what [`WalkStats`] reports. The
//! *host-side* hash recomputation, however, does not have to happen per
//! walk: with [`MerkleTree::with_deferred_maintenance`] an update marks
//! its leaf dirty and ancestors are rehashed once per
//! [`MerkleTree::flush`] point, so a page sweep that bumps 64
//! neighbouring counters recomputes their shared ancestors once instead
//! of 64 times. The cache-model walk (LRU ticks, hits, `WalkStats`) is
//! performed identically in both modes, and verification force-flushes
//! pending subtrees first, so nothing simulated can observe the
//! difference.

use crate::siphash::SipHash24;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Tree fan-out. Eight 64-bit child digests fit one 64-byte metadata
/// line, mirroring how BMT nodes are laid out in NVM.
pub const ARITY: usize = 8;

/// Digest function for tree nodes.
///
/// The tree's *cost model* (walks, node cache, `WalkStats`) never looks
/// at digest values — it only compares them for equality — so a cheap
/// self-consistent mix can stand in for SipHash when the real digests
/// are recomputed elsewhere (the parallel engine's shard workers).
#[derive(Debug, Clone, Copy)]
enum NodeHasher {
    /// Keyed SipHash-2-4 (the real integrity-tree digests).
    Sip(SipHash24),
    /// Cheap non-cryptographic mix. Self-consistent: verify still
    /// detects any byte that differs from what was last updated.
    Stub,
}

impl NodeHasher {
    fn leaf(&self, data: &[u8]) -> u64 {
        match self {
            NodeHasher::Sip(mac) => mac.hash(data),
            NodeHasher::Stub => {
                // FNV-1a: one multiply per byte instead of SipHash's
                // four rounds per word.
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for &b in data {
                    h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            }
        }
    }

    fn node(&self, children: &[u64]) -> u64 {
        match self {
            NodeHasher::Sip(mac) => mac.hash_words(children),
            NodeHasher::Stub => {
                let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ children.len() as u64;
                for &w in children {
                    h = (h ^ w).wrapping_mul(0xbf58_476d_1ce4_e5b9).rotate_left(31);
                }
                h
            }
        }
    }
}

/// Error returned when verification fails: the stored data does not
/// hash to the trusted digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamperError {
    /// Index of the leaf whose verification failed.
    pub leaf: usize,
    /// Tree level (0 = leaf digests) where the mismatch was detected.
    pub level: usize,
}

impl std::fmt::Display for TamperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "integrity violation for leaf {} detected at tree level {}",
            self.leaf, self.level
        )
    }
}

impl std::error::Error for TamperError {}

/// Traffic incurred by one verify or update walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Metadata lines fetched from NVM (node-cache misses).
    pub nodes_fetched: u64,
    /// Metadata lines written back to NVM (updates only).
    pub nodes_written: u64,
    /// Tree levels climbed before a trusted ancestor was found.
    pub levels_walked: u64,
}

/// An 8-ary Merkle tree over `num_leaves` counter blocks.
///
/// # Examples
///
/// ```
/// use lelantus_crypto::MerkleTree;
///
/// let mut tree = MerkleTree::new(64, (1, 2), 16);
/// tree.update_leaf(3, b"counter block contents");
/// assert!(tree.verify_leaf(3, b"counter block contents").is_ok());
/// assert!(tree.verify_leaf(3, b"tampered contents").is_err());
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    hasher: NodeHasher,
    /// levels[0] = leaf digests, last level = [root].
    levels: Vec<Vec<u64>>,
    /// LRU node cache: maps (level, index) -> lru tick. Nodes present
    /// here are trusted on-chip copies.
    cache: HashMap<(usize, usize), u64>,
    /// Reverse index tick -> node for O(log n) eviction. Ticks are
    /// unique (strictly monotonic), so the smallest key is exactly the
    /// node a linear min-scan would have picked.
    lru: BTreeMap<u64, (usize, usize)>,
    cache_capacity: usize,
    tick: u64,
    /// When set, interior-node hashing is deferred to [`Self::flush`];
    /// `dirty_leaves` holds the leaves whose ancestor paths are stale.
    deferred: bool,
    dirty_leaves: BTreeSet<usize>,
    /// When set, every node-cache miss appends the tree level of the
    /// fetched node line to `touches` (drained by the controller's
    /// spatial heatmap; see [`Self::with_touch_log`]).
    record_touches: bool,
    touches: Vec<u8>,
}

impl MerkleTree {
    /// Creates a tree over `num_leaves` leaves (rounded up to a full
    /// 8-ary tree), keyed by `key`, with an on-chip node cache holding
    /// `cache_capacity` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_leaves` is zero.
    pub fn new(num_leaves: usize, key: (u64, u64), cache_capacity: usize) -> Self {
        assert!(num_leaves > 0, "tree must cover at least one counter block");
        let hasher = NodeHasher::Sip(SipHash24::new(key.0, key.1));
        let levels = Self::build_from_leaves(hasher, vec![hasher.leaf(b""); num_leaves]);
        Self {
            hasher,
            levels,
            cache: HashMap::new(),
            lru: BTreeMap::new(),
            cache_capacity,
            tick: 0,
            deferred: false,
            dirty_leaves: BTreeSet::new(),
            record_touches: false,
            touches: Vec::new(),
        }
    }

    /// Builds every interior level above the given leaf digests. The
    /// single construction shared by [`Self::new`],
    /// [`Self::with_stub_hasher`] and [`root_over_digests`], so a root
    /// recomputed from a digest slice is bit-identical to one grown
    /// update-by-update.
    fn build_from_leaves(hasher: NodeHasher, leaves: Vec<u64>) -> Vec<Vec<u64>> {
        let mut levels = vec![leaves];
        while levels.last().expect("nonempty").len() > 1 {
            let below = levels.last().expect("nonempty");
            let parent_len = below.len().div_ceil(ARITY);
            let mut parents = Vec::with_capacity(parent_len);
            for p in 0..parent_len {
                parents.push(hasher.node(Self::sibling_group(below, p)));
            }
            levels.push(parents);
        }
        levels
    }

    /// Enables the per-walk touch log: every node-cache miss (exactly
    /// the fetches counted in [`WalkStats::nodes_fetched`]) appends the
    /// tree level of the fetched node line, for the caller to drain
    /// with [`Self::drain_touches_into`] after each walk. Purely
    /// host-side bookkeeping — walks, stats and the cache model are
    /// unaffected.
    pub fn with_touch_log(mut self) -> Self {
        self.record_touches = true;
        self
    }

    /// Appends the touch-log entries recorded since the last drain to
    /// `out` and empties the log (capacity is retained, so steady-state
    /// walks never allocate).
    pub fn drain_touches_into(&mut self, out: &mut Vec<u8>) {
        out.append(&mut self.touches);
    }

    /// The touch-log entries pending since the last drain/discard
    /// (always empty unless [`Self::with_touch_log`] was applied).
    pub fn touches(&self) -> &[u8] {
        &self.touches
    }

    /// Discards pending touch-log entries (used around walks whose
    /// traffic is deliberately not charged, e.g. boot-time region
    /// initialization).
    pub fn discard_touches(&mut self) {
        self.touches.clear();
    }

    /// Switches the tree to deferred interior-node maintenance (see the
    /// module docs): updates mark leaves dirty, ancestors are rehashed
    /// at [`Self::flush`] / verify time. `WalkStats` and the node-cache
    /// model are unaffected.
    pub fn with_deferred_maintenance(mut self) -> Self {
        self.deferred = true;
        self
    }

    /// Replaces the keyed SipHash digests with a cheap self-consistent
    /// stub and rebuilds the tree's digests under it.
    ///
    /// Walks, `WalkStats`, the node-cache model and tamper detection
    /// against *subsequently updated* leaves behave identically — only
    /// the digest values change. Used by the deferred data-plane mode,
    /// where the real SipHash leaf digests are recomputed by shard
    /// workers and the real root by [`root_over_digests`].
    pub fn with_stub_hasher(mut self) -> Self {
        self.hasher = NodeHasher::Stub;
        self.levels = Self::build_from_leaves(
            NodeHasher::Stub,
            vec![NodeHasher::Stub.leaf(b""); self.num_leaves()],
        );
        self.dirty_leaves.clear();
        self
    }

    /// The parent's 8-ary child group — exactly the one metadata line a
    /// hardware walk would fetch, so hashing it is O(arity), never
    /// O(level width).
    fn sibling_group(below: &[u64], parent_idx: usize) -> &[u64] {
        let start = parent_idx * ARITY;
        &below[start..(start + ARITY).min(below.len())]
    }

    /// Number of counter-block leaves covered.
    pub fn num_leaves(&self) -> usize {
        self.levels[0].len()
    }

    /// The on-chip root digest.
    ///
    /// Under deferred maintenance the caller must [`Self::flush`]
    /// first; a debug build asserts there is nothing pending.
    pub fn root(&self) -> u64 {
        debug_assert!(
            self.dirty_leaves.is_empty(),
            "flush deferred Merkle updates before reading the root"
        );
        *self.levels.last().expect("nonempty").last().expect("root")
    }

    /// Number of leaves whose ancestor hashes are pending a
    /// [`Self::flush`] (always 0 in eager mode).
    pub fn pending_dirty_leaves(&self) -> usize {
        self.dirty_leaves.len()
    }

    /// Moves a node to the LRU front under a fresh tick.
    fn lru_bump(&mut self, level: usize, idx: usize) {
        self.tick += 1;
        if let Some(old) = self.cache.insert((level, idx), self.tick) {
            self.lru.remove(&old);
        }
        self.lru.insert(self.tick, (level, idx));
    }

    fn cache_touch(&mut self, level: usize, idx: usize) {
        // The root is always trusted; do not occupy cache space for it.
        if level + 1 == self.levels.len() {
            return;
        }
        self.lru_bump(level, idx);
        if self.cache.len() > self.cache_capacity {
            // Smallest tick = least recently used.
            if let Some((_, victim)) = self.lru.pop_first() {
                self.cache.remove(&victim);
            }
        }
    }

    fn cache_hit(&mut self, level: usize, idx: usize) -> bool {
        if level + 1 == self.levels.len() {
            return true; // root: always on-chip
        }
        if self.cache.contains_key(&(level, idx)) {
            self.lru_bump(level, idx);
            true
        } else {
            false
        }
    }

    /// Recomputes the digest path after `data` was written to leaf
    /// `leaf`, returning the metadata traffic incurred.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn update_leaf(&mut self, leaf: usize, data: &[u8]) -> WalkStats {
        assert!(leaf < self.num_leaves(), "leaf {leaf} out of range");
        let hasher = self.hasher;
        let mut stats = WalkStats::default();
        self.levels[0][leaf] = hasher.leaf(data);
        self.cache_touch(0, leaf);
        stats.nodes_written += 1;
        if self.deferred {
            self.dirty_leaves.insert(leaf);
        }
        let mut idx = leaf;
        for level in 0..self.levels.len() - 1 {
            let parent = idx / ARITY;
            if !self.deferred {
                self.levels[level + 1][parent] =
                    hasher.node(Self::sibling_group(&self.levels[level], parent));
            }
            // Updating a parent requires its children; charge a fetch if
            // the node was not cached. This cost-model walk runs the
            // same in both modes — deferral skips only the host-side
            // hashing above.
            if !self.cache_hit(level + 1, parent) {
                stats.nodes_fetched += 1;
                if self.record_touches {
                    self.touches.push((level + 1).min(u8::MAX as usize) as u8);
                }
            }
            self.cache_touch(level + 1, parent);
            stats.nodes_written += 1;
            stats.levels_walked += 1;
            idx = parent;
        }
        stats
    }

    /// Recomputes every interior node made stale by deferred updates,
    /// bottom-up and each node once, and returns how many node hashes
    /// that took. A no-op (returning 0) in eager mode or when nothing
    /// is dirty; purely host-side, so it touches neither the node
    /// cache nor any statistic.
    pub fn flush(&mut self) -> u64 {
        if self.dirty_leaves.is_empty() {
            return 0;
        }
        let hasher = self.hasher;
        let mut recomputed = 0;
        // BTreeSet iterates ascending, so each level's parent list is
        // sorted and plain dedup coalesces shared ancestors.
        let mut dirty: Vec<usize> = std::mem::take(&mut self.dirty_leaves).into_iter().collect();
        for level in 0..self.levels.len() - 1 {
            let mut parents: Vec<usize> = dirty.iter().map(|&i| i / ARITY).collect();
            parents.dedup();
            for &p in &parents {
                self.levels[level + 1][p] =
                    hasher.node(Self::sibling_group(&self.levels[level], p));
                recomputed += 1;
            }
            dirty = parents;
        }
        recomputed
    }

    /// Verifies that `data` is the authentic content of leaf `leaf`.
    ///
    /// Walks toward the root, stopping at the first trusted (cached)
    /// ancestor, exactly like a hardware BMT walk.
    ///
    /// # Errors
    ///
    /// Returns [`TamperError`] if any digest on the path mismatches.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn verify_leaf(&mut self, leaf: usize, data: &[u8]) -> Result<WalkStats, TamperError> {
        assert!(leaf < self.num_leaves(), "leaf {leaf} out of range");
        // Deferred updates leave interior nodes stale; bring the whole
        // tree current before comparing digests. Flushing is host-side
        // only, so the walk below still sees the exact cache state and
        // reports the exact stats an eager tree would.
        self.flush();
        let mut stats = WalkStats::default();
        let digest = self.hasher.leaf(data);
        if self.cache_hit(0, leaf) {
            // Leaf digest itself is on-chip: compare directly.
            return if digest == self.levels[0][leaf] {
                Ok(stats)
            } else {
                Err(TamperError { leaf, level: 0 })
            };
        }
        if digest != self.levels[0][leaf] {
            return Err(TamperError { leaf, level: 0 });
        }
        let mut idx = leaf;
        for level in 0..self.levels.len() - 1 {
            let parent = idx / ARITY;
            stats.levels_walked += 1;
            // Fetch the 7 siblings (one metadata line) to recompute the
            // parent digest.
            stats.nodes_fetched += 1;
            if self.record_touches {
                self.touches.push(level.min(u8::MAX as usize) as u8);
            }
            let recomputed = self.hasher.node(Self::sibling_group(&self.levels[level], parent));
            if recomputed != self.levels[level + 1][parent] {
                return Err(TamperError { leaf, level: level + 1 });
            }
            let trusted = self.cache_hit(level + 1, parent);
            self.cache_touch(level + 1, parent);
            if trusted {
                break;
            }
            idx = parent;
        }
        self.cache_touch(0, leaf);
        Ok(stats)
    }

    /// Deliberately corrupts the stored digest of `leaf` (test hook for
    /// fault-injection; models an attacker flipping NVM bits).
    pub fn corrupt_leaf_digest(&mut self, leaf: usize) {
        self.levels[0][leaf] ^= 0xdead_beef;
        if let Some(t) = self.cache.remove(&(0, leaf)) {
            self.lru.remove(&t);
        }
    }
}

/// The keyed digest a tree under `key` stores for a leaf holding
/// `data` — what shard workers compute for the counter blocks they
/// own.
pub fn leaf_digest(key: (u64, u64), data: &[u8]) -> u64 {
    SipHash24::new(key.0, key.1).hash(data)
}

/// The digest of a never-updated leaf under `key`.
pub fn empty_leaf_digest(key: (u64, u64)) -> u64 {
    leaf_digest(key, b"")
}

/// Recomputes the root a [`MerkleTree`] keyed by `key` would hold if
/// its leaf digests were exactly `leaves`, using the identical level
/// construction (partial-width tail groups and all). This is the
/// deterministic root-merge of the parallel engine: each shard
/// contributes the [`leaf_digest`]s of the counter blocks it owns, the
/// merge assembles them in leaf order and rebuilds the interior.
///
/// # Panics
///
/// Panics if `leaves` is empty.
pub fn root_over_digests(key: (u64, u64), leaves: &[u64]) -> u64 {
    assert!(!leaves.is_empty(), "tree must cover at least one counter block");
    let hasher = NodeHasher::Sip(SipHash24::new(key.0, key.1));
    let levels = MerkleTree::build_from_leaves(hasher, leaves.to_vec());
    *levels.last().expect("nonempty").last().expect("root")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tree(leaves: usize) -> MerkleTree {
        MerkleTree::new(leaves, (0x1234, 0x5678), 32)
    }

    #[test]
    fn fresh_tree_verifies_empty_leaves() {
        let mut t = tree(100);
        for leaf in [0, 1, 50, 99] {
            assert!(t.verify_leaf(leaf, b"").is_ok());
        }
    }

    #[test]
    fn update_then_verify() {
        let mut t = tree(64);
        t.update_leaf(7, b"hello");
        assert!(t.verify_leaf(7, b"hello").is_ok());
        assert!(t.verify_leaf(7, b"HELLO").is_err());
    }

    #[test]
    fn updates_change_root() {
        let mut t = tree(64);
        let r0 = t.root();
        t.update_leaf(0, b"x");
        assert_ne!(t.root(), r0);
    }

    #[test]
    fn detects_corrupted_digest() {
        let mut t = tree(64);
        t.update_leaf(9, b"data");
        t.corrupt_leaf_digest(9);
        assert!(t.verify_leaf(9, b"data").is_err());
    }

    #[test]
    fn cached_walks_are_cheaper() {
        let mut t = MerkleTree::new(4096, (1, 2), 64);
        t.update_leaf(1234, b"d");
        let first = t.verify_leaf(1234, b"d").unwrap();
        let second = t.verify_leaf(1234, b"d").unwrap();
        assert!(second.nodes_fetched <= first.nodes_fetched);
        assert_eq!(second.nodes_fetched, 0, "leaf digest should be cached");
    }

    #[test]
    fn single_leaf_tree() {
        let mut t = tree(1);
        t.update_leaf(0, b"only");
        assert!(t.verify_leaf(0, b"only").is_ok());
        assert!(t.verify_leaf(0, b"not").is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_leaf_panics() {
        let mut t = tree(8);
        let _ = t.update_leaf(8, b"x");
    }

    #[test]
    fn non_power_of_arity_sizes() {
        for n in [1usize, 7, 8, 9, 63, 65, 100, 513] {
            let mut t = tree(n);
            t.update_leaf(n - 1, b"edge");
            assert!(t.verify_leaf(n - 1, b"edge").is_ok());
        }
    }

    #[test]
    fn deferred_flush_converges_to_eager_root() {
        let mut eager = tree(512);
        let mut deferred = tree(512).with_deferred_maintenance();
        for leaf in [0usize, 1, 2, 63, 64, 200, 511, 2, 0] {
            eager.update_leaf(leaf, b"payload");
            deferred.update_leaf(leaf, b"payload");
        }
        assert!(deferred.pending_dirty_leaves() > 0);
        let recomputed = deferred.flush();
        assert!(recomputed > 0);
        assert_eq!(deferred.pending_dirty_leaves(), 0);
        assert_eq!(deferred.root(), eager.root());
        // Flushing again is free: nothing is dirty.
        assert_eq!(deferred.flush(), 0);
    }

    #[test]
    fn deferred_walkstats_match_eager_exactly() {
        // The paper-model traffic must be bit-identical in both modes,
        // across update and verify walks, including cache evictions
        // (tiny capacity forces plenty).
        let mut eager = MerkleTree::new(4096, (7, 8), 8);
        let mut deferred = MerkleTree::new(4096, (7, 8), 8).with_deferred_maintenance();
        let leaves = [5usize, 13, 5, 4090, 77, 78, 79, 80, 5, 1024, 2048, 13];
        for (i, &leaf) in leaves.iter().enumerate() {
            let data = [i as u8; 17];
            assert_eq!(
                eager.update_leaf(leaf, &data),
                deferred.update_leaf(leaf, &data),
                "update walk {i} diverged"
            );
            if i % 3 == 0 {
                assert_eq!(
                    eager.verify_leaf(leaf, &data).unwrap(),
                    deferred.verify_leaf(leaf, &data).unwrap(),
                    "verify walk {i} diverged"
                );
            }
        }
        deferred.flush();
        assert_eq!(eager.root(), deferred.root());
    }

    #[test]
    fn flush_coalesces_shared_ancestors() {
        // A 64-leaf sweep over one 8-ary subtree shares all interior
        // nodes: the combiner recomputes each once. 512 leaves = 4
        // levels (512/64/8/1); leaves 0..64 dirty 8 + 1 + 1 interior
        // nodes, versus 64 × 3 = 192 hashes walked eagerly.
        let mut t = tree(512).with_deferred_maintenance();
        for leaf in 0..64 {
            t.update_leaf(leaf, b"sweep");
        }
        assert_eq!(t.flush(), 10);
    }

    #[test]
    fn verify_force_flushes_pending_updates() {
        let mut t = tree(256).with_deferred_maintenance();
        t.update_leaf(9, b"new contents");
        assert_eq!(t.pending_dirty_leaves(), 1);
        // Interior nodes are stale here; verify must flush, then pass.
        assert!(t.verify_leaf(9, b"new contents").is_ok());
        assert_eq!(t.pending_dirty_leaves(), 0);
        assert!(t.verify_leaf(9, b"other contents").is_err());
    }

    #[test]
    fn verify_walkstats_pinned() {
        // Pins the exact cold-walk traffic so the sibling-group hashing
        // rework stays cost-model neutral: 4096 leaves = 5 levels, so a
        // cold verify climbs 4 levels fetching one metadata line each.
        let mut t = MerkleTree::new(4096, (1, 2), 64);
        let stats = t.verify_leaf(1234, b"").unwrap();
        assert_eq!(stats, WalkStats { nodes_fetched: 4, nodes_written: 0, levels_walked: 4 });
        // A cold update additionally writes the leaf plus one node per
        // level, and finds the three upper ancestors cached by the
        // verify above (leaf group 154's path was just touched).
        let stats = t.update_leaf(1234, b"x");
        assert_eq!(stats.levels_walked, 4);
        assert_eq!(stats.nodes_written, 5);
        // Cached re-verify is free.
        let stats = t.verify_leaf(1234, b"x").unwrap();
        assert_eq!(stats, WalkStats::default());
    }

    #[test]
    fn root_over_digests_matches_incremental_tree() {
        // Non-power-of-arity widths exercise the partial tail groups,
        // where naive sub-root composition would break
        // (hash_words([x]) != x).
        for n in [1usize, 7, 8, 9, 63, 64, 65, 100, 513] {
            let key = (0xabc, 0xdef);
            let mut t = MerkleTree::new(n, key, 16);
            let mut digests = vec![empty_leaf_digest(key); n];
            for (i, leaf) in [0usize, n / 2, n - 1].into_iter().enumerate() {
                let data = [i as u8 + 1; 24];
                t.update_leaf(leaf, &data);
                digests[leaf] = leaf_digest(key, &data);
            }
            assert_eq!(root_over_digests(key, &digests), t.root(), "n={n}");
        }
    }

    #[test]
    fn stub_hasher_tree_is_self_consistent() {
        let mut t = MerkleTree::new(256, (1, 2), 16).with_stub_hasher().with_deferred_maintenance();
        t.update_leaf(9, b"contents");
        assert!(t.verify_leaf(9, b"contents").is_ok());
        assert!(t.verify_leaf(9, b"tampered").is_err());
        assert!(t.verify_leaf(10, b"").is_ok());
        t.flush();
        let r = t.root();
        t.update_leaf(10, b"more");
        t.flush();
        assert_ne!(t.root(), r);
    }

    #[test]
    fn touch_log_matches_nodes_fetched_and_never_perturbs() {
        let mut plain = MerkleTree::new(4096, (7, 8), 8);
        let mut logged = MerkleTree::new(4096, (7, 8), 8).with_touch_log();
        let mut touches = Vec::new();
        let depth = 5u8; // 4096 leaves = 5 levels
        for (i, leaf) in [5usize, 13, 5, 4090, 77, 78, 79, 80, 5, 1024].into_iter().enumerate() {
            let data = [i as u8; 17];
            let (pu, lu) = (plain.update_leaf(leaf, &data), logged.update_leaf(leaf, &data));
            assert_eq!(pu, lu, "touch log perturbed an update walk");
            let before = touches.len();
            logged.drain_touches_into(&mut touches);
            assert_eq!((touches.len() - before) as u64, lu.nodes_fetched);
            let (pv, lv) =
                (plain.verify_leaf(leaf, &data).unwrap(), logged.verify_leaf(leaf, &data).unwrap());
            assert_eq!(pv, lv, "touch log perturbed a verify walk");
            let before = touches.len();
            logged.drain_touches_into(&mut touches);
            assert_eq!((touches.len() - before) as u64, lv.nodes_fetched);
        }
        assert!(touches.iter().all(|&l| l < depth), "touch levels must lie inside the tree");
        assert!(!touches.is_empty());
        // An untouched-log tree records nothing, and discard empties.
        plain.update_leaf(0, b"x");
        let mut none = Vec::new();
        plain.drain_touches_into(&mut none);
        assert!(none.is_empty());
        logged.update_leaf(4000, b"y");
        logged.discard_touches();
        logged.drain_touches_into(&mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn stub_hasher_walkstats_match_sip() {
        // The cost model never looks at digest values, so walks must be
        // bit-identical across hashers (tiny cache forces evictions).
        let mut sip = MerkleTree::new(4096, (7, 8), 8);
        let mut stub = MerkleTree::new(4096, (7, 8), 8).with_stub_hasher();
        for (i, leaf) in [5usize, 13, 5, 4090, 77, 78, 79, 80, 5, 1024].into_iter().enumerate() {
            let data = [i as u8; 17];
            assert_eq!(sip.update_leaf(leaf, &data), stub.update_leaf(leaf, &data));
            assert_eq!(
                sip.verify_leaf(leaf, &data).unwrap(),
                stub.verify_leaf(leaf, &data).unwrap()
            );
        }
    }

    proptest! {
        #[test]
        fn prop_updates_verify_and_tampering_detected(
            ops in prop::collection::vec((0usize..256, prop::collection::vec(any::<u8>(), 0..64)), 1..40)
        ) {
            let mut t = MerkleTree::new(256, (9, 9), 16);
            let mut shadow: std::collections::HashMap<usize, Vec<u8>> = Default::default();
            for (leaf, data) in &ops {
                t.update_leaf(*leaf, data);
                shadow.insert(*leaf, data.clone());
            }
            for (leaf, data) in &shadow {
                prop_assert!(t.verify_leaf(*leaf, data).is_ok());
                let mut wrong = data.clone();
                wrong.push(0xFF);
                prop_assert!(t.verify_leaf(*leaf, &wrong).is_err());
            }
        }

        /// Eager and deferred trees see identical walks and roots for
        /// arbitrary op interleavings (flush at arbitrary points).
        #[test]
        fn prop_deferred_mode_equivalent(
            ops in prop::collection::vec((0usize..256, any::<u8>(), any::<bool>()), 1..60)
        ) {
            let mut eager = MerkleTree::new(256, (3, 4), 16);
            let mut deferred = MerkleTree::new(256, (3, 4), 16).with_deferred_maintenance();
            for (leaf, byte, and_verify) in &ops {
                let data = [*byte; 9];
                prop_assert_eq!(eager.update_leaf(*leaf, &data), deferred.update_leaf(*leaf, &data));
                if *and_verify {
                    prop_assert_eq!(
                        eager.verify_leaf(*leaf, &data).unwrap(),
                        deferred.verify_leaf(*leaf, &data).unwrap()
                    );
                }
            }
            deferred.flush();
            prop_assert_eq!(eager.root(), deferred.root());
        }
    }
}
