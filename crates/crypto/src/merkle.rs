//! A Bonsai-style Merkle tree protecting counter-block integrity.
//!
//! Counter-mode encryption is only secure if counters cannot be rolled
//! back or tampered with (paper §II-B); state-of-the-art secure NVMs
//! protect the counters with a Bonsai Merkle Tree (BMT) whose root
//! lives on-chip. The paper (and prior work it cites) measures the BMT
//! overhead at under 2 % because verification stops at the first
//! *trusted ancestor* — any tree node currently held in the on-chip
//! node cache.
//!
//! This module implements an 8-ary hash tree over counter-block
//! digests, with an LRU node cache modelling the trusted on-chip
//! copies, and reports how many node fetches each verify/update needed
//! so the memory controller can charge the corresponding traffic.

use crate::siphash::SipHash24;
use std::collections::HashMap;

/// Tree fan-out. Eight 64-bit child digests fit one 64-byte metadata
/// line, mirroring how BMT nodes are laid out in NVM.
pub const ARITY: usize = 8;

/// Error returned when verification fails: the stored data does not
/// hash to the trusted digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamperError {
    /// Index of the leaf whose verification failed.
    pub leaf: usize,
    /// Tree level (0 = leaf digests) where the mismatch was detected.
    pub level: usize,
}

impl std::fmt::Display for TamperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "integrity violation for leaf {} detected at tree level {}", self.leaf, self.level)
    }
}

impl std::error::Error for TamperError {}

/// Traffic incurred by one verify or update walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Metadata lines fetched from NVM (node-cache misses).
    pub nodes_fetched: u64,
    /// Metadata lines written back to NVM (updates only).
    pub nodes_written: u64,
    /// Tree levels climbed before a trusted ancestor was found.
    pub levels_walked: u64,
}

/// An 8-ary Merkle tree over `num_leaves` counter blocks.
///
/// # Examples
///
/// ```
/// use lelantus_crypto::MerkleTree;
///
/// let mut tree = MerkleTree::new(64, (1, 2), 16);
/// tree.update_leaf(3, b"counter block contents");
/// assert!(tree.verify_leaf(3, b"counter block contents").is_ok());
/// assert!(tree.verify_leaf(3, b"tampered contents").is_err());
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    mac: SipHash24,
    /// levels[0] = leaf digests, last level = [root].
    levels: Vec<Vec<u64>>,
    /// LRU node cache: maps (level, index) -> lru tick. Nodes present
    /// here are trusted on-chip copies.
    cache: HashMap<(usize, usize), u64>,
    cache_capacity: usize,
    tick: u64,
}

impl MerkleTree {
    /// Creates a tree over `num_leaves` leaves (rounded up to a full
    /// 8-ary tree), keyed by `key`, with an on-chip node cache holding
    /// `cache_capacity` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_leaves` is zero.
    pub fn new(num_leaves: usize, key: (u64, u64), cache_capacity: usize) -> Self {
        assert!(num_leaves > 0, "tree must cover at least one counter block");
        let mac = SipHash24::new(key.0, key.1);
        let empty = mac.hash(b"");
        let mut levels = vec![vec![empty; num_leaves]];
        while levels.last().expect("nonempty").len() > 1 {
            let below = levels.last().expect("nonempty");
            let parent_len = below.len().div_ceil(ARITY);
            let mut parents = Vec::with_capacity(parent_len);
            for p in 0..parent_len {
                parents.push(Self::node_hash(&mac, below, p));
            }
            levels.push(parents);
        }
        Self { mac, levels, cache: HashMap::new(), cache_capacity, tick: 0 }
    }

    fn node_hash(mac: &SipHash24, below: &[u64], parent_idx: usize) -> u64 {
        let start = parent_idx * ARITY;
        let end = (start + ARITY).min(below.len());
        mac.hash_words(&below[start..end])
    }

    /// Number of counter-block leaves covered.
    pub fn num_leaves(&self) -> usize {
        self.levels[0].len()
    }

    /// The on-chip root digest.
    pub fn root(&self) -> u64 {
        *self.levels.last().expect("nonempty").last().expect("root")
    }

    fn cache_touch(&mut self, level: usize, idx: usize) {
        // The root is always trusted; do not occupy cache space for it.
        if level + 1 == self.levels.len() {
            return;
        }
        self.tick += 1;
        self.cache.insert((level, idx), self.tick);
        if self.cache.len() > self.cache_capacity {
            if let Some((&victim, _)) = self.cache.iter().min_by_key(|(_, &t)| t) {
                self.cache.remove(&victim);
            }
        }
    }

    fn cache_hit(&mut self, level: usize, idx: usize) -> bool {
        if level + 1 == self.levels.len() {
            return true; // root: always on-chip
        }
        if self.cache.contains_key(&(level, idx)) {
            self.tick += 1;
            self.cache.insert((level, idx), self.tick);
            true
        } else {
            false
        }
    }

    /// Recomputes the digest path after `data` was written to leaf
    /// `leaf`, returning the metadata traffic incurred.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn update_leaf(&mut self, leaf: usize, data: &[u8]) -> WalkStats {
        assert!(leaf < self.num_leaves(), "leaf {leaf} out of range");
        let mut stats = WalkStats::default();
        self.levels[0][leaf] = self.mac.hash(data);
        self.cache_touch(0, leaf);
        stats.nodes_written += 1;
        let mut idx = leaf;
        for level in 0..self.levels.len() - 1 {
            let parent = idx / ARITY;
            let h = Self::node_hash(&self.mac, &self.levels[level], parent);
            self.levels[level + 1][parent] = h;
            // Updating a parent requires its children; charge a fetch if
            // the node was not cached.
            if !self.cache_hit(level + 1, parent) {
                stats.nodes_fetched += 1;
            }
            self.cache_touch(level + 1, parent);
            stats.nodes_written += 1;
            stats.levels_walked += 1;
            idx = parent;
        }
        stats
    }

    /// Verifies that `data` is the authentic content of leaf `leaf`.
    ///
    /// Walks toward the root, stopping at the first trusted (cached)
    /// ancestor, exactly like a hardware BMT walk.
    ///
    /// # Errors
    ///
    /// Returns [`TamperError`] if any digest on the path mismatches.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn verify_leaf(&mut self, leaf: usize, data: &[u8]) -> Result<WalkStats, TamperError> {
        assert!(leaf < self.num_leaves(), "leaf {leaf} out of range");
        let mut stats = WalkStats::default();
        let digest = self.mac.hash(data);
        if self.cache_hit(0, leaf) {
            // Leaf digest itself is on-chip: compare directly.
            return if digest == self.levels[0][leaf] {
                Ok(stats)
            } else {
                Err(TamperError { leaf, level: 0 })
            };
        }
        if digest != self.levels[0][leaf] {
            return Err(TamperError { leaf, level: 0 });
        }
        let mut idx = leaf;
        for level in 0..self.levels.len() - 1 {
            let parent = idx / ARITY;
            stats.levels_walked += 1;
            // Fetch the 7 siblings (one metadata line) to recompute the
            // parent digest.
            stats.nodes_fetched += 1;
            let recomputed = Self::node_hash(&self.mac, &self.levels[level], parent);
            if recomputed != self.levels[level + 1][parent] {
                return Err(TamperError { leaf, level: level + 1 });
            }
            let trusted = self.cache_hit(level + 1, parent);
            self.cache_touch(level + 1, parent);
            if trusted {
                break;
            }
            idx = parent;
        }
        self.cache_touch(0, leaf);
        Ok(stats)
    }

    /// Deliberately corrupts the stored digest of `leaf` (test hook for
    /// fault-injection; models an attacker flipping NVM bits).
    pub fn corrupt_leaf_digest(&mut self, leaf: usize) {
        self.levels[0][leaf] ^= 0xdead_beef;
        self.cache.remove(&(0, leaf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tree(leaves: usize) -> MerkleTree {
        MerkleTree::new(leaves, (0x1234, 0x5678), 32)
    }

    #[test]
    fn fresh_tree_verifies_empty_leaves() {
        let mut t = tree(100);
        for leaf in [0, 1, 50, 99] {
            assert!(t.verify_leaf(leaf, b"").is_ok());
        }
    }

    #[test]
    fn update_then_verify() {
        let mut t = tree(64);
        t.update_leaf(7, b"hello");
        assert!(t.verify_leaf(7, b"hello").is_ok());
        assert!(t.verify_leaf(7, b"HELLO").is_err());
    }

    #[test]
    fn updates_change_root() {
        let mut t = tree(64);
        let r0 = t.root();
        t.update_leaf(0, b"x");
        assert_ne!(t.root(), r0);
    }

    #[test]
    fn detects_corrupted_digest() {
        let mut t = tree(64);
        t.update_leaf(9, b"data");
        t.corrupt_leaf_digest(9);
        assert!(t.verify_leaf(9, b"data").is_err());
    }

    #[test]
    fn cached_walks_are_cheaper() {
        let mut t = MerkleTree::new(4096, (1, 2), 64);
        t.update_leaf(1234, b"d");
        let first = t.verify_leaf(1234, b"d").unwrap();
        let second = t.verify_leaf(1234, b"d").unwrap();
        assert!(second.nodes_fetched <= first.nodes_fetched);
        assert_eq!(second.nodes_fetched, 0, "leaf digest should be cached");
    }

    #[test]
    fn single_leaf_tree() {
        let mut t = tree(1);
        t.update_leaf(0, b"only");
        assert!(t.verify_leaf(0, b"only").is_ok());
        assert!(t.verify_leaf(0, b"not").is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_leaf_panics() {
        let mut t = tree(8);
        let _ = t.update_leaf(8, b"x");
    }

    #[test]
    fn non_power_of_arity_sizes() {
        for n in [1usize, 7, 8, 9, 63, 65, 100, 513] {
            let mut t = tree(n);
            t.update_leaf(n - 1, b"edge");
            assert!(t.verify_leaf(n - 1, b"edge").is_ok());
        }
    }

    proptest! {
        #[test]
        fn prop_updates_verify_and_tampering_detected(
            ops in prop::collection::vec((0usize..256, prop::collection::vec(any::<u8>(), 0..64)), 1..40)
        ) {
            let mut t = MerkleTree::new(256, (9, 9), 16);
            let mut shadow: std::collections::HashMap<usize, Vec<u8>> = Default::default();
            for (leaf, data) in &ops {
                t.update_leaf(*leaf, data);
                shadow.insert(*leaf, data.clone());
            }
            for (leaf, data) in &shadow {
                prop_assert!(t.verify_leaf(*leaf, data).is_ok());
                let mut wrong = data.clone();
                wrong.push(0xFF);
                prop_assert!(t.verify_leaf(*leaf, &wrong).is_err());
            }
        }
    }
}
