//! The Lelantus secure memory controller.
//!
//! This crate is the paper's primary contribution: a secure-NVM memory
//! controller whose counter-mode security metadata doubles as
//! fine-granularity copy-on-write state (ISCA 2020, §III–IV).
//!
//! The [`SecureMemoryController`] sits between the CPU cache hierarchy
//! (it implements [`lelantus_cache::LineBackend`]) and the
//! [`lelantus_nvm::NvmDevice`]. Every 64-byte line it stores is really
//! encrypted with AES counter mode; counters are integrity-protected
//! by a Bonsai Merkle Tree; and the controller exposes the paper's
//! three memory-mapped CoW commands (Table II):
//!
//! | command     | semantics                                             |
//! |-------------|-------------------------------------------------------|
//! | `page_copy` | record `dst` as a lazy copy of `src` (metadata only)  |
//! | `page_phyc` | physically copy `dst`'s still-uncopied lines, if its metadata still names `src` |
//! | `page_free` | drop `dst`'s CoW metadata; abandon pending copies     |
//!
//! Four [`SchemeKind`]s select the behaviour compared in the paper's
//! evaluation: the conventional `Baseline`, `SilentShredder` (zeroing
//! elision only), `LelantusResized` (Solution 1: the source address is
//! carried in a resized counter block) and `LelantusCow` (Solution 2:
//! a supplementary CoW-metadata table).
//!
//! # Examples
//!
//! A lazy page copy whose lines materialize on first write:
//!
//! ```
//! use lelantus_core::{ControllerConfig, SchemeKind, SecureMemoryController};
//! use lelantus_types::{Cycles, PhysAddr};
//!
//! let mut ctrl = SecureMemoryController::new(
//!     ControllerConfig::for_scheme(SchemeKind::LelantusResized));
//! let src = PhysAddr::new(0x20_0000); // outside the zero area
//! let dst = PhysAddr::new(0x30_0000);
//! ctrl.write_data_line(src, [7; 64], Cycles::ZERO);
//!
//! // Lazy copy: one metadata write instead of 64 line copies.
//! ctrl.cmd_page_copy(src, dst, Cycles::ZERO);
//! let (data, _) = ctrl.read_data_line(dst, Cycles::ZERO);
//! assert_eq!(data, [7; 64], "read redirected to the source page");
//! ```

pub mod config;
pub mod controller;
pub mod data_plane;
pub mod footprint;
pub mod stats;

pub use config::{ControllerConfig, SchemeKind};
pub use controller::SecureMemoryController;
pub use data_plane::{DataPlaneOp, DATA_MAC_KEY, DEFERRED_MAC_TAG, MERKLE_KEY};
pub use footprint::FootprintTracker;
pub use stats::ControllerStats;

#[cfg(test)]
mod tests;
