//! Per-region access footprints (paper Fig 10c/d).
//!
//! The paper visualizes which cachelines of a CoW page are physically
//! touched: the baseline's `page_copy` initializes the whole page
//! before any other access, while Lelantus touches only the scattered
//! lines the application actually uses. This tracker records, per 4 KB
//! region, a 64-bit bitmap of lines physically read and written.

use lelantus_types::{PhysAddr, LINE_BYTES, REGION_BYTES};
use std::collections::HashMap;

/// Which direction an access was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDir {
    /// A physical line read.
    Read,
    /// A physical line write.
    Write,
}

/// Footprint bitmaps for one region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionFootprint {
    /// Bit *i* set ⇔ line *i* was physically read.
    pub reads: u64,
    /// Bit *i* set ⇔ line *i* was physically written.
    pub writes: u64,
}

impl RegionFootprint {
    /// Number of distinct lines read.
    pub fn lines_read(&self) -> u32 {
        self.reads.count_ones()
    }

    /// Number of distinct lines written.
    pub fn lines_written(&self) -> u32 {
        self.writes.count_ones()
    }

    /// Number of distinct lines touched either way.
    pub fn lines_touched(&self) -> u32 {
        (self.reads | self.writes).count_ones()
    }
}

/// Tracks footprints for every region that sees traffic.
///
/// # Examples
///
/// ```
/// use lelantus_core::footprint::{AccessDir, FootprintTracker};
/// use lelantus_types::PhysAddr;
///
/// let mut fp = FootprintTracker::new(true);
/// fp.record(PhysAddr::new(0x1040), AccessDir::Write); // region 1, line 1
/// assert_eq!(fp.region(1).unwrap().lines_written(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FootprintTracker {
    enabled: bool,
    regions: HashMap<u64, RegionFootprint>,
}

impl FootprintTracker {
    /// Creates a tracker; a disabled tracker records nothing.
    pub fn new(enabled: bool) -> Self {
        Self { enabled, regions: HashMap::new() }
    }

    /// Records a physical access at `addr`.
    pub fn record(&mut self, addr: PhysAddr, dir: AccessDir) {
        if !self.enabled {
            return;
        }
        let region = addr.as_u64() / REGION_BYTES;
        let line = (addr.as_u64() % REGION_BYTES) / LINE_BYTES as u64;
        let fp = self.regions.entry(region).or_default();
        match dir {
            AccessDir::Read => fp.reads |= 1 << line,
            AccessDir::Write => fp.writes |= 1 << line,
        }
    }

    /// Footprint of `region`, if any traffic was seen.
    pub fn region(&self, region: u64) -> Option<RegionFootprint> {
        self.regions.get(&region).copied()
    }

    /// Iterates over all `(region, footprint)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, RegionFootprint)> + '_ {
        self.regions.iter().map(|(r, f)| (*r, *f))
    }

    /// Mean fraction of lines written per touched region, in [0, 1].
    pub fn mean_write_density(&self) -> f64 {
        if self.regions.is_empty() {
            return 0.0;
        }
        let total: u32 = self.regions.values().map(RegionFootprint::lines_written).sum();
        total as f64 / (self.regions.len() as f64 * 64.0)
    }

    /// Clears all recorded footprints.
    pub fn reset(&mut self) {
        self.regions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_distinct_lines() {
        let mut fp = FootprintTracker::new(true);
        fp.record(PhysAddr::new(0x0), AccessDir::Read);
        fp.record(PhysAddr::new(0x40), AccessDir::Read);
        fp.record(PhysAddr::new(0x40), AccessDir::Write);
        let r = fp.region(0).unwrap();
        assert_eq!(r.lines_read(), 2);
        assert_eq!(r.lines_written(), 1);
        assert_eq!(r.lines_touched(), 2);
    }

    #[test]
    fn disabled_tracker_records_nothing() {
        let mut fp = FootprintTracker::new(false);
        fp.record(PhysAddr::new(0x0), AccessDir::Write);
        assert!(fp.region(0).is_none());
        assert_eq!(fp.mean_write_density(), 0.0);
    }

    #[test]
    fn density_and_reset() {
        let mut fp = FootprintTracker::new(true);
        for line in 0..32u64 {
            fp.record(PhysAddr::new(line * 64), AccessDir::Write);
        }
        assert!((fp.mean_write_density() - 0.5).abs() < 1e-12);
        fp.reset();
        assert_eq!(fp.iter().count(), 0);
    }

    #[test]
    fn regions_are_separate() {
        let mut fp = FootprintTracker::new(true);
        fp.record(PhysAddr::new(0x0), AccessDir::Write);
        fp.record(PhysAddr::new(4096), AccessDir::Write);
        assert_eq!(fp.region(0).unwrap().lines_written(), 1);
        assert_eq!(fp.region(1).unwrap().lines_written(), 1);
        assert_eq!(fp.iter().count(), 2);
    }
}
