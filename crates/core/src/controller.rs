//! The secure memory controller datapath and CoW commands.
//!
//! Implementation notes (all paper references are to the ISCA 2020
//! Lelantus paper):
//!
//! * **Datapath.** Every data line in NVM is AES counter-mode
//!   ciphertext. Reads fetch the region's counter block (through the
//!   counter cache) and the data line in parallel; the pad is ready
//!   `aes_latency` after the counters arrive (§II-B, Figure 1).
//! * **Uncopied lines.** Under a Lelantus scheme, a minor counter of 0
//!   on a CoW region redirects the read along the source chain
//!   (§III-C, Figure 6); writes complete the copy implicitly by
//!   incrementing the minor from 0 (§III-B).
//! * **Chain shortening.** `page_copy` of a fully-unmodified CoW page
//!   records the *grandparent* instead (§III-E), so unmodified
//!   fork-of-fork chains stay one hop deep.
//! * **Integrity.** Counter blocks are protected by a Bonsai Merkle
//!   Tree; verification stops at the first cached (trusted) node. Node
//!   fetches are charged at row-buffer-hit latency because tree levels
//!   are contiguous in the metadata area — a simplification that
//!   matches the paper's "<2 % overhead" observation.
//! * **Zero pages.** Reads that land in (or chain-resolve to) the OS
//!   zero area return zeros without touching NVM data, which is how
//!   lazy zeroing (`page_copy` from the zero page) and Silent
//!   Shredder's zero elision cost nothing.

use crate::config::{ControllerConfig, SchemeKind};
use crate::data_plane::{DataPlaneOp, DATA_MAC_KEY, DEFERRED_MAC_TAG, MERKLE_KEY};
use crate::footprint::{AccessDir, FootprintTracker};
use crate::stats::ControllerStats;
use lelantus_cache::LineBackend;
use lelantus_crypto::ctr::{xor_line, CtrEngine, IvSpec};
use lelantus_crypto::merkle::MerkleTree;
use lelantus_crypto::siphash::SipHash24;
use lelantus_metadata::counter_block::{CounterBlock, CounterCodec, CounterEncoding, MINORS};
use lelantus_metadata::counter_cache::{CounterCache, WritePolicy};
use lelantus_metadata::cow_meta::{CowCache, CowMetaTable};
use lelantus_metadata::layout::MetadataLayout;
use lelantus_metadata::mac::{decode_mac_line, encode_mac_line, MacCache};
use lelantus_nvm::{NvmDevice, NvmStats};
use lelantus_obs::{
    selfprof, CycleCategory, Event, EventKind, HeatGrid, HeatLane, HistKind, NullProbe, Probe,
    Segment,
};
use lelantus_types::{Cycles, PhysAddr, LINE_BYTES, REGION_BYTES};
use std::collections::HashSet;

/// What a crash-recovery pass found (see
/// [`SecureMemoryController::crash_and_recover`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Counter blocks re-read and re-verified from NVM.
    pub regions_verified: u64,
    /// CoW mappings recovered from the persisted table (Lelantus-CoW).
    pub cow_mappings_recovered: u64,
}

/// The secure NVM memory controller.
///
/// See the crate-level docs for an overview and example.
#[derive(Debug, Clone)]
pub struct SecureMemoryController<P: Probe = NullProbe> {
    config: ControllerConfig,
    nvm: NvmDevice<P>,
    engine: CtrEngine,
    merkle: MerkleTree,
    counter_cache: CounterCache,
    cow_cache: CowCache,
    cow_table: CowMetaTable,
    mac_cache: MacCache,
    /// MAC write combiner: the line index currently being swept plus
    /// the `(slot, tag)` updates buffered for it. Holds only
    /// resident-path updates and is flushed (replayed tick-exactly via
    /// [`MacCache::update_tags`]) before any other MAC-cache access,
    /// so nothing simulated can observe the buffering.
    mac_wc: Option<(u64, Vec<(usize, u64)>)>,
    mac_key: SipHash24,
    layout: MetadataLayout,
    initialized_regions: HashSet<u64>,
    /// The Merkle root as persisted in the controller's small
    /// battery/NVM register domain — the trust anchor recovery
    /// verifies against.
    persisted_root: u64,
    stats: ControllerStats,
    footprint: FootprintTracker,
    probe: P,
    /// Cycle-attribution segments recorded while servicing requests
    /// (only when `config.cycle_ledger`; drained by the system layer).
    segments: Vec<Segment>,
    /// Elided crypto operations, in issue order (only when
    /// `config.defer_data_plane`; drained by the parallel engine).
    dp_log: Vec<DataPlaneOp>,
    /// Spatial heat of metadata traffic, attributed to the data region
    /// that caused it (only when `config.heatmap`; merged by the
    /// system layer).
    heat: Option<Box<HeatGrid>>,
}

impl SecureMemoryController {
    /// Builds an unobserved controller (and its NVM device) from
    /// `config` (the [`NullProbe`] path: tracing compiles away).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ControllerConfig) -> Self {
        Self::with_probe(config, NullProbe)
    }
}

impl<P: Probe> SecureMemoryController<P> {
    /// Builds a controller (and its NVM device) from `config`, with
    /// datapath events reported to `probe` (which is cloned into the
    /// NVM device so the whole stack shares one event stream).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_probe(config: ControllerConfig, probe: P) -> Self {
        config.validate().expect("invalid controller config");
        let layout = MetadataLayout::for_data_bytes(config.data_bytes);
        let mut merkle =
            MerkleTree::new(layout.regions() as usize, MERKLE_KEY, config.merkle_cache_nodes);
        if config.defer_data_plane {
            merkle = merkle.with_stub_hasher();
        }
        if !config.use_eager_merkle {
            merkle = merkle.with_deferred_maintenance();
        }
        if config.heatmap {
            merkle = merkle.with_touch_log();
        }
        let persisted_root = merkle.root();
        Self {
            nvm: NvmDevice::with_probe(config.nvm.clone(), probe.clone()),
            engine: if config.use_reference_aes {
                CtrEngine::new_reference(config.key)
            } else {
                CtrEngine::new(config.key)
            },
            merkle,
            counter_cache: CounterCache::new(config.counter_cache),
            cow_cache: CowCache::new(config.cow_cache_entries),
            cow_table: CowMetaTable::new(),
            mac_cache: MacCache::new(config.mac_cache_lines.max(1)),
            mac_wc: None,
            mac_key: SipHash24::new(DATA_MAC_KEY.0, DATA_MAC_KEY.1),
            layout,
            initialized_regions: HashSet::new(),
            persisted_root,
            stats: ControllerStats::default(),
            footprint: FootprintTracker::new(config.track_footprint),
            heat: config.heatmap.then(Box::<HeatGrid>::default),
            config,
            probe,
            segments: Vec::new(),
            dp_log: Vec::new(),
        }
    }

    /// Records one metadata-traffic count against a data region (no-op
    /// when the heatmap is off).
    #[inline]
    fn heat(&mut self, lane: HeatLane, region: u64) {
        if let Some(h) = self.heat.as_mut() {
            h.record(lane, region);
        }
    }

    /// Drains the Merkle touch log, attributing each fetched node line
    /// (at its tree level) to the data region whose walk fetched it.
    fn heat_merkle_touches(&mut self, region: u64) {
        let Some(h) = self.heat.as_mut() else { return };
        for &level in self.merkle.touches() {
            h.record(HeatLane::merkle(level as usize), region);
        }
        self.merkle.discard_touches();
    }

    /// The metadata-traffic heat grid recorded so far (None when off).
    pub fn heatmap(&self) -> Option<&HeatGrid> {
        self.heat.as_deref()
    }

    /// The backing device's bank-access heat grid (None when off).
    pub fn nvm_heatmap(&self) -> Option<&HeatGrid> {
        self.nvm.heatmap()
    }

    /// Records a cycle-attribution segment when the ledger is enabled.
    /// Purely observational: never affects timing, stats or contents.
    fn seg(&mut self, start: Cycles, end: Cycles, cat: CycleCategory) {
        if self.config.cycle_ledger && end > start {
            self.segments.push(Segment { start: start.as_u64(), end: end.as_u64(), cat });
        }
    }

    /// Moves the device's recorded segments into the controller buffer
    /// (ordering them before anything recorded after this call).
    fn pull_device_segments(&mut self) {
        if self.config.cycle_ledger {
            self.nvm.drain_segments_into(&mut self.segments);
        }
    }

    /// Moves all recorded attribution segments (controller + device)
    /// into `out`. The system layer calls this at every clock-advance
    /// site and feeds the result to `lelantus_obs::attribute`.
    pub fn drain_segments_into(&mut self, out: &mut Vec<Segment>) {
        self.nvm.drain_segments_into(&mut self.segments);
        out.append(&mut self.segments);
    }

    /// Number of elided crypto operations waiting in the data-plane
    /// log (always 0 unless `config.defer_data_plane`).
    pub fn data_plane_pending(&self) -> usize {
        self.dp_log.len()
    }

    /// Moves the logged data-plane operations into `out`, preserving
    /// issue order. The parallel engine drains this at every epoch
    /// barrier and fans the batch out to its shard workers.
    pub fn drain_data_plane_into(&mut self, out: &mut Vec<DataPlaneOp>) {
        out.append(&mut self.dp_log);
    }

    /// The metadata layout (shared with the shard workers so both
    /// sides agree on region/MAC-slot geometry).
    pub fn layout(&self) -> MetadataLayout {
        self.layout
    }

    /// Discards recorded attribution segments. The system layer calls
    /// this after operations whose charges do not advance its clocks
    /// (MMIO commands billed at a flat latency, KSM fingerprinting,
    /// crash recovery) so their segments cannot leak into the next
    /// attribution window.
    pub fn discard_segments(&mut self) {
        self.nvm.discard_segments();
        self.segments.clear();
    }

    /// Marks the start of a bulk operation whose entire segment output
    /// should be relabelled (see [`Self::seg_relabel_from`]).
    fn seg_mark(&mut self) -> Option<usize> {
        if self.config.cycle_ledger {
            self.pull_device_segments();
            Some(self.segments.len())
        } else {
            None
        }
    }

    /// Relabels every segment recorded since `mark` to `cat`: a bulk
    /// page copy is *all* bulk-copy time in the paper's breakdown, even
    /// though it decomposes into fills, pads and bank accesses.
    fn seg_relabel_from(&mut self, mark: Option<usize>, cat: CycleCategory) {
        if let Some(mark) = mark {
            self.pull_device_segments();
            for s in &mut self.segments[mark..] {
                s.cat = cat;
            }
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Controller event counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Implicit (deferred) copies performed so far — cheap single-field
    /// read for per-store span detection on the tail-recorder path.
    pub fn implicit_copies(&self) -> u64 {
        self.stats.implicit_copies
    }

    /// Backing-device counters (physical reads/writes, row hits...).
    pub fn nvm_stats(&self) -> NvmStats {
        self.nvm.stats()
    }

    /// Wear tracker of the backing device.
    pub fn wear(&self) -> &lelantus_nvm::WearTracker {
        self.nvm.wear()
    }

    /// Counter-cache statistics.
    pub fn counter_cache_stats(&self) -> lelantus_metadata::counter_cache::CounterCacheStats {
        self.counter_cache.stats()
    }

    /// CoW-cache statistics (meaningful for Lelantus-CoW).
    pub fn cow_cache_stats(&self) -> lelantus_metadata::cow_meta::CowCacheStats {
        self.cow_cache.stats()
    }

    /// MAC-cache statistics.
    pub fn mac_cache_stats(&self) -> lelantus_metadata::mac::MacCacheStats {
        self.mac_cache.stats()
    }

    /// Test hook: corrupts a stored data line in NVM (attacker flips
    /// bits in the array); the next MAC-verified read panics.
    pub fn tamper_data_for_test(&mut self, addr: PhysAddr) {
        let line = addr.line_align();
        let mut bytes = self.nvm.peek_line(line);
        bytes[0] ^= 0x01;
        self.nvm.poke_line(line, bytes);
    }

    /// Diagnostics: latest bank-busy instant and queued write count.
    pub fn device_pressure(&self) -> (lelantus_types::Cycles, usize) {
        (self.nvm.max_bank_busy(), self.nvm.queued_writes())
    }

    /// Diagnostics: per-bank busy profile.
    pub fn bank_busy_profile(&self) -> Vec<u64> {
        self.nvm.bank_busy_profile()
    }

    /// Per-region physical access footprints (Fig 10c/d).
    pub fn footprint(&self) -> &FootprintTracker {
        &self.footprint
    }

    /// Clears recorded footprints (start of a measured phase).
    pub fn reset_footprint(&mut self) {
        self.footprint.reset();
    }

    /// Drains every buffered write (CPU-side counter state and the
    /// device write queue) to the NVM array; returns the completion
    /// instant. Call at simulation end so write counts are exact.
    pub fn flush_all(&mut self, now: Cycles) -> Cycles {
        let _prof = selfprof::scope("ctrl::flush_all");
        self.mac_wc_flush();
        let encoding = self.encoding();
        let mut done = now;
        for ev in self.counter_cache.drain_dirty() {
            let t = self.counter_nvm_write(ev.region, &ev.block, encoding, now, false);
            done = done.max(t);
        }
        for ev in self.mac_cache.drain_dirty() {
            self.writeback_mac_line(ev.index, &ev.macs, now);
        }
        let done = done.max(self.nvm.flush(now));
        self.flush_metadata();
        done
    }

    /// Flushes deferred host-side metadata maintenance — pending
    /// combined MAC updates and stale Merkle interior nodes — and
    /// re-syncs the persisted root register. Purely host-side: no
    /// simulated traffic, cache tick, or statistic moves. Called at the
    /// controller's flush points (writeback drains, page-copy
    /// commands, epoch boundaries).
    pub fn flush_metadata(&mut self) {
        self.mac_wc_flush();
        self.merkle.flush();
        self.persisted_root = self.merkle.root();
    }

    /// The current Merkle root over the counter blocks, flushing any
    /// deferred maintenance first (equivalence-test observability).
    pub fn merkle_root(&mut self) -> u64 {
        self.merkle.flush();
        self.merkle.root()
    }

    fn encoding(&self) -> CounterEncoding {
        self.config.scheme.encoding()
    }

    fn codec(&self) -> CounterCodec {
        if self.config.use_reference_codec {
            CounterCodec::Reference
        } else {
            CounterCodec::Word
        }
    }

    fn is_zero_region(&self, region: u64) -> bool {
        region < self.config.zero_area_bytes / REGION_BYTES
    }

    fn region_of(&self, addr: PhysAddr) -> u64 {
        self.layout.region_of(addr)
    }

    fn line_addr(&self, region: u64, line: usize) -> PhysAddr {
        self.layout.region_base(region) + (line * LINE_BYTES) as u64
    }

    /// Deterministic pseudo-random initial minor value in `1..=max`
    /// (the paper randomizes initial counters to model overflow §V-A).
    fn initial_minor(&self, region: u64, line: usize) -> u8 {
        if !self.config.randomize_counters {
            return 1;
        }
        let max = self.encoding().minor_max(false) as u64;
        let mut x = region
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(line as u64)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 31;
        (x % max + 1) as u8
    }

    /// Lazily materializes the boot-time counter block of `region`
    /// (free of charge: this models factory/boot initialization).
    fn ensure_region_init(&mut self, region: u64) {
        if !self.initialized_regions.insert(region) {
            return;
        }
        let mut block = CounterBlock::fresh_regular(1);
        for line in 0..MINORS {
            block.minors[line] = self.initial_minor(region, line);
        }
        let bytes = block.encode_with(self.encoding(), self.codec());
        self.nvm.poke_line(self.layout.counter_addr_of_region(region), bytes);
        self.merkle.update_leaf(region as usize, &bytes);
        // Boot-time initialization is free of charge: its walk stats
        // are dropped above, so its touch log must be dropped too.
        self.merkle.discard_touches();
        if self.config.defer_data_plane {
            self.dp_log.push(DataPlaneOp::Leaf { region, bytes });
        }
    }

    /// Fetches the counter block of `region` through the counter
    /// cache, verifying integrity on a miss.
    ///
    /// # Panics
    ///
    /// Panics on an integrity violation — a real controller would halt
    /// the machine.
    fn fetch_counter(&mut self, region: u64, now: Cycles) -> (CounterBlock, Cycles) {
        if let Some(block) = self.counter_cache.get(region) {
            return (block, now + Cycles::new(1));
        }
        self.stats.counter_fetches += 1;
        self.heat(HeatLane::CounterFill, region);
        if P::ENABLED {
            self.probe.emit(Event { cycle: now, kind: EventKind::CounterFetch { region } });
        }
        self.ensure_region_init(region);
        let caddr = self.layout.counter_addr_of_region(region);
        let (bytes, t) = self.nvm.read_line(caddr, now);
        let walk = self
            .merkle
            .verify_leaf(region as usize, &bytes)
            .expect("counter-block integrity violation");
        self.stats.merkle_fetches += walk.nodes_fetched;
        self.heat_merkle_touches(region);
        if P::ENABLED && walk.nodes_fetched > 0 {
            self.probe.emit(Event {
                cycle: now,
                kind: EventKind::MerkleFetch { region, nodes: walk.nodes_fetched },
            });
        }
        // Tree nodes are contiguous: charge row-hit latency per fetch.
        let t_read = t;
        let t = t + Cycles::new(walk.nodes_fetched * self.config.nvm.row_hit_latency);
        self.seg(now, t_read, CycleCategory::CounterFill);
        self.seg(t_read, t, CycleCategory::MerkleWalk);
        let block = CounterBlock::decode_with(&bytes, self.encoding(), self.codec());
        if let Some(ev) = self.counter_cache.insert(region, block, false) {
            let encoding = self.encoding();
            self.counter_nvm_write(ev.region, &ev.block, encoding, now, false);
        }
        if P::ENABLED {
            self.probe
                .record(HistKind::CounterCacheOccupancy, self.counter_cache.resident() as u64);
        }
        (block, t)
    }

    fn counter_nvm_write(
        &mut self,
        region: u64,
        block: &CounterBlock,
        encoding: CounterEncoding,
        now: Cycles,
        durable: bool,
    ) -> Cycles {
        self.stats.counter_writebacks += 1;
        if P::ENABLED {
            self.probe.emit(Event { cycle: now, kind: EventKind::CounterWriteback { region } });
        }
        let bytes = block.encode_with(encoding, self.codec());
        let caddr = self.layout.counter_addr_of_region(region);
        // Write-through counter management exists for persistence, so
        // its writes bypass the volatile queue (paper §V-E); ordinary
        // write-back evictions are posted like any other write.
        let t = if durable {
            self.nvm.write_line_durable(caddr, bytes, now)
        } else {
            self.nvm.write_line(caddr, bytes, now)
        };
        self.seg(now, t, CycleCategory::CounterFill);
        let walk = self.merkle.update_leaf(region as usize, &bytes);
        if self.config.defer_data_plane {
            self.dp_log.push(DataPlaneOp::Leaf { region, bytes });
        }
        self.stats.merkle_fetches += walk.nodes_fetched;
        self.heat_merkle_touches(region);
        if P::ENABLED && walk.nodes_fetched > 0 {
            self.probe.emit(Event {
                cycle: now,
                kind: EventKind::MerkleFetch { region, nodes: walk.nodes_fetched },
            });
        }
        // The persisted-root register re-syncs at flush points
        // (`flush_metadata`) instead of per write; it is only ever read
        // after a flush, so recovery sees the same value either way.
        t
    }

    /// Installs an updated counter block, honouring the write policy.
    fn update_counter(&mut self, region: u64, block: CounterBlock, now: Cycles) -> Cycles {
        if !self.counter_cache.update(region, block) {
            if let Some(ev) = self.counter_cache.insert(region, block, true) {
                let encoding = self.encoding();
                self.counter_nvm_write(ev.region, &ev.block, encoding, now, false);
            }
        }
        match self.counter_cache.config().policy {
            WritePolicy::WriteBack => now + Cycles::new(1),
            WritePolicy::WriteThrough => {
                let encoding = self.encoding();
                let t = self.counter_nvm_write(region, &block, encoding, now, true);
                self.counter_cache.mark_clean(region);
                t
            }
        }
    }

    /// Looks up the CoW source of `region` given its (already fetched)
    /// counter block. Charges a CoW-table read on a CoW-cache miss
    /// (Lelantus-CoW only).
    fn source_of(
        &mut self,
        region: u64,
        block: &CounterBlock,
        now: Cycles,
    ) -> (Option<u64>, Cycles) {
        match self.config.scheme {
            SchemeKind::LelantusResized => (block.cow_source(), now),
            SchemeKind::LelantusCow => {
                if let Some(mapping) = self.cow_cache.lookup(region) {
                    (mapping, now + Cycles::new(1))
                } else {
                    self.stats.cow_meta_reads += 1;
                    if P::ENABLED {
                        self.probe
                            .emit(Event { cycle: now, kind: EventKind::CowMetaRead { region } });
                    }
                    let (slot_line, _off) = self.layout.cow_meta_slot_of_region(region);
                    let (_bytes, t) = self.nvm.read_line(slot_line, now);
                    self.seg(now, t, CycleCategory::CowRedirect);
                    let mapping = self.cow_table.get(region);
                    self.cow_cache.fill(region, mapping);
                    (mapping, t)
                }
            }
            _ => (None, now),
        }
    }

    /// Writes `region`'s CoW-table slot (Lelantus-CoW), charging one
    /// metadata line write, and keeps the CoW cache coherent.
    fn write_cow_mapping(&mut self, region: u64, src: Option<u64>, now: Cycles) -> Cycles {
        self.cow_table.set(region, src);
        self.cow_cache.fill(region, src);
        self.stats.cow_meta_writes += 1;
        if P::ENABLED {
            self.probe.emit(Event { cycle: now, kind: EventKind::CowMetaWrite { region } });
        }
        let (slot_line, off) = self.layout.cow_meta_slot_of_region(region);
        // Read-modify-write of the 64 B metadata line, functionally.
        let mut line = self.nvm.peek_line(slot_line);
        line[off..off + 8].copy_from_slice(&self.cow_table.slot_bytes(region));
        let t = self.nvm.write_line(slot_line, line, now);
        self.seg(now, t, CycleCategory::CowRedirect);
        t
    }

    /// Keyed tag binding a ciphertext line to its address and counter
    /// (Rogers et al.: replaying stale data then requires forging this).
    fn data_mac(
        &self,
        line_addr: PhysAddr,
        cipher: &[u8; LINE_BYTES],
        major: u64,
        minor: u8,
    ) -> u64 {
        if self.config.defer_data_plane {
            // Shard workers recompute the real tag from the logged
            // Store op; the constant keeps verification self-consistent
            // (nonzero, so the stored-tag-of-0 "never written" sentinel
            // still works).
            return DEFERRED_MAC_TAG;
        }
        let mut buf = [0u8; LINE_BYTES + 17];
        buf[..LINE_BYTES].copy_from_slice(cipher);
        buf[LINE_BYTES..LINE_BYTES + 8].copy_from_slice(&line_addr.as_u64().to_le_bytes());
        buf[LINE_BYTES + 8..LINE_BYTES + 16].copy_from_slice(&major.to_le_bytes());
        buf[LINE_BYTES + 16] = minor;
        self.mac_key.hash(&buf)
    }

    /// Applies the buffered combined MAC-line updates to the cache in
    /// one batched access with exact LRU ticks. Must run before any
    /// other MAC-cache access.
    fn mac_wc_flush(&mut self) {
        if let Some((index, pending)) = self.mac_wc.take() {
            if !pending.is_empty() {
                let resident = self.mac_cache.update_tags(index, &pending);
                debug_assert!(resident, "combined MAC line evicted while buffered");
            }
        }
    }

    /// Fetches the MAC line covering `line_addr` through the MAC cache.
    fn fetch_mac_line(&mut self, line_addr: PhysAddr, now: Cycles) -> ([u64; 8], Cycles) {
        self.mac_wc_flush();
        let index = self.layout.mac_line_index(line_addr);
        if let Some(line) = self.mac_cache.get(index) {
            return (line, now + Cycles::new(1));
        }
        self.stats.mac_fetches += 1;
        let (addr, _slot) = self.layout.mac_slot_of_line(line_addr);
        let (bytes, t) = self.nvm.read_line(addr, now);
        self.seg(now, t, CycleCategory::Mac);
        let line = decode_mac_line(&bytes);
        if let Some(ev) = self.mac_cache.fill(index, line, false) {
            self.writeback_mac_line(ev.index, &ev.macs, now);
        }
        (line, t)
    }

    fn writeback_mac_line(&mut self, index: u64, macs: &[u64; 8], now: Cycles) {
        self.stats.mac_writebacks += 1;
        // One MAC line holds 8 tags for 8 consecutive data lines; 8 MAC
        // lines cover one 64-line data region.
        self.heat(HeatLane::MacWrite, index / 8);
        let addr = PhysAddr::new(self.layout.mac_base + index * LINE_BYTES as u64);
        let t = self.nvm.write_line(addr, encode_mac_line(macs), now);
        self.seg(now, t, CycleCategory::Mac);
    }

    /// Verifies a fetched ciphertext line against its stored MAC. A
    /// stored tag of 0 means the line was never written (fresh NVM) —
    /// nothing to check yet.
    ///
    /// # Panics
    ///
    /// Panics on a mismatch: the data was tampered with or replayed.
    fn verify_data_mac(
        &mut self,
        line_addr: PhysAddr,
        cipher: &[u8; LINE_BYTES],
        major: u64,
        minor: u8,
        now: Cycles,
    ) -> Cycles {
        if !self.config.data_macs {
            return now;
        }
        self.stats.mac_verifications += 1;
        let (line, t) = self.fetch_mac_line(line_addr, now);
        let (_, slot) = self.layout.mac_slot_of_line(line_addr);
        let stored = line[slot];
        if stored != 0 {
            let computed = self.data_mac(line_addr, cipher, major, minor);
            assert_eq!(
                stored, computed,
                "data-MAC integrity violation at {line_addr} (tampered or replayed line)"
            );
        }
        t
    }

    /// Installs the MAC for a freshly written ciphertext line.
    fn update_data_mac(
        &mut self,
        line_addr: PhysAddr,
        cipher: &[u8; LINE_BYTES],
        major: u64,
        minor: u8,
        now: Cycles,
    ) -> Cycles {
        if !self.config.data_macs {
            return now;
        }
        let tag = self.data_mac(line_addr, cipher, major, minor);
        let index = self.layout.mac_line_index(line_addr);
        let (_, slot) = self.layout.mac_slot_of_line(line_addr);
        if self.config.mac_write_combining {
            if let Some((wc_index, pending)) = &mut self.mac_wc {
                if *wc_index == index {
                    // Same-line streak: the line is resident (its first
                    // touch below established that, and every other
                    // cache access flushes the buffer first), so this
                    // is the resident update path — buffer it and let
                    // `mac_wc_flush` replay the batch tick-exactly.
                    pending.push((slot, tag));
                    return now + Cycles::new(1);
                }
            }
            self.mac_wc_flush();
        }
        if !self.mac_cache.update_tag(index, slot, tag) {
            // Fill-then-update keeps sibling tags intact.
            let (mut line, t) = self.fetch_mac_line(line_addr, now);
            line[slot] = tag;
            if let Some(ev) = self.mac_cache.fill(index, line, true) {
                self.writeback_mac_line(ev.index, &ev.macs, now);
            }
            if self.config.mac_write_combining {
                self.mac_wc = Some((index, Vec::new()));
            }
            return t;
        }
        if self.config.mac_write_combining {
            self.mac_wc = Some((index, Vec::new()));
        }
        now + Cycles::new(1)
    }

    /// Resolves the plaintext of logical line `line` of `region`,
    /// following CoW chains. Returns the data, completion time, and
    /// the number of chain hops followed (0 when direct).
    ///
    /// Does **not** bump `logical_reads` — callers decide whether this
    /// is an application read or controller-internal traffic.
    fn resolve_line_plain(
        &mut self,
        region: u64,
        block: CounterBlock,
        line: usize,
        issue_at: Cycles,
        counters_ready: Cycles,
    ) -> ([u8; LINE_BYTES], Cycles, u32) {
        let mut cur_region = region;
        let mut cur_block = block;
        let mut t = counters_ready;
        let mut hops = 0u32;
        if self.config.scheme == SchemeKind::SilentShredder && cur_block.minors[line] == 0 {
            self.stats.zero_reads += 1;
            return ([0; LINE_BYTES], t + Cycles::new(1), 0);
        }
        if self.config.scheme.supports_lazy_copy() {
            loop {
                if cur_block.minors[line] != 0 {
                    break;
                }
                let (src, t2) = self.source_of(cur_region, &cur_block, t);
                t = t2;
                let Some(src) = src else {
                    // Scrubbed/freed region with no mapping: zeros.
                    self.stats.zero_reads += 1;
                    self.seg(counters_ready, t, CycleCategory::CowRedirect);
                    return ([0; LINE_BYTES], t + Cycles::new(1), hops);
                };
                hops += 1;
                if self.is_zero_region(src) {
                    self.stats.zero_reads += 1;
                    self.seg(counters_ready, t, CycleCategory::CowRedirect);
                    return ([0; LINE_BYTES], t + Cycles::new(1), hops);
                }
                cur_region = src;
                let (b, t3) = self.fetch_counter(src, t);
                cur_block = b;
                t = t3;
            }
            if hops > 0 {
                // The whole chain walk — source lookups plus the
                // ancestors' counter fetches — is redirect overhead
                // (outranks the CounterFill/MerkleWalk segments the
                // nested fetches recorded inside this window).
                self.seg(counters_ready, t, CycleCategory::CowRedirect);
            }
        }
        let data_addr = self.line_addr(cur_region, line);
        // Redirected fetches cannot overlap with the original counter
        // fetch; direct ones can.
        let data_issue = if hops > 0 { t } else { issue_at };
        let (cipher, t_data) = self.nvm.read_line(data_addr, data_issue);
        // The MAC fetch overlaps the data fetch; verification gates
        // delivery like the pad does.
        let t_mac = self.verify_data_mac(
            data_addr,
            &cipher,
            cur_block.major,
            cur_block.minors[line],
            data_issue,
        );
        let pad_ready = t + Cycles::new(self.config.aes_latency);
        // Low priority: the pad overlaps the data fetch, so only its
        // exposed tail ends up booked as AES time.
        self.seg(t, pad_ready, CycleCategory::AesPad);
        let plain = if self.config.defer_data_plane {
            // Deferred mode stores plaintext: the fetched "cipher" is
            // already the data.
            cipher
        } else {
            let iv = IvSpec {
                line_addr: data_addr.as_u64(),
                major: cur_block.major,
                minor: cur_block.minors[line],
            };
            self.engine.decrypt_line(&cipher, iv)
        };
        (plain, t_data.max(pad_ready).max(t_mac), hops)
    }

    /// Reads the 64-byte line containing `addr` through the secure
    /// datapath. Returns plaintext and completion time.
    pub fn read_data_line(&mut self, addr: PhysAddr, now: Cycles) -> ([u8; LINE_BYTES], Cycles) {
        let line_addr = addr.line_align();
        self.stats.logical_reads += 1;
        if line_addr.as_u64() < self.config.zero_area_bytes {
            self.stats.zero_reads += 1;
            return ([0; LINE_BYTES], now + Cycles::new(1));
        }
        self.footprint.record(line_addr, AccessDir::Read);
        let region = self.region_of(line_addr);
        let line = line_addr.line_in_region();
        let (block, t_ctr) = self.fetch_counter(region, now);
        let (data, done, hops) = self.resolve_line_plain(region, block, line, now, t_ctr);
        if hops > 0 {
            self.stats.redirected_reads += 1;
            self.heat(HeatLane::CowRedirect, region);
            if P::ENABLED {
                self.probe.emit(Event {
                    cycle: now,
                    kind: EventKind::RedirectedRead { addr: line_addr.as_u64(), hops },
                });
                self.probe.record(HistKind::CopyChainDepth, hops as u64);
            }
        }
        (data, done)
    }

    /// Writes the 64-byte line containing `addr` through the secure
    /// datapath. Returns the acknowledgement time.
    ///
    /// # Panics
    ///
    /// Panics on a write to the reserved zero area (the OS never maps
    /// it writable).
    pub fn write_data_line(
        &mut self,
        addr: PhysAddr,
        data: [u8; LINE_BYTES],
        now: Cycles,
    ) -> Cycles {
        let line_addr = addr.line_align();
        assert!(
            line_addr.as_u64() >= self.config.zero_area_bytes,
            "write to the read-only zero area at {line_addr}"
        );
        self.stats.logical_writes += 1;
        self.footprint.record(line_addr, AccessDir::Write);
        let region = self.region_of(line_addr);
        let line = line_addr.line_in_region();
        let (mut block, mut t) = self.fetch_counter(region, now);

        // First write to an uncopied CoW line completes the copy
        // implicitly (paper §III-B).
        if self.config.scheme.supports_lazy_copy() && block.minors[line] == 0 {
            let t_src = t;
            let (src, t2) = self.source_of(region, &block, t);
            t = t2;
            if src.is_some() {
                self.seg(t_src, t, CycleCategory::ImplicitCopy);
                self.stats.implicit_copies += 1;
                self.heat(HeatLane::ImplicitCopy, region);
                if P::ENABLED {
                    self.probe.emit(Event {
                        cycle: now,
                        kind: EventKind::ImplicitCopy { addr: line_addr.as_u64() },
                    });
                }
            }
        }

        self.stats.minor_increments += 1;
        let encoding = self.encoding();
        if block.increment_minor(line, encoding).is_err() {
            let (newblock, t2) = self.reencrypt_region(region, block, t);
            block = newblock;
            t = t2;
            block.increment_minor(line, encoding).expect("fresh epoch cannot overflow");
        }

        let cipher = if self.config.defer_data_plane {
            self.dp_log.push(DataPlaneOp::Store {
                addr: line_addr.as_u64(),
                plain: data,
                major: block.major,
                minor: block.minors[line],
                src_region: None,
            });
            data
        } else {
            let iv = IvSpec {
                line_addr: line_addr.as_u64(),
                major: block.major,
                minor: block.minors[line],
            };
            self.engine.encrypt_line(&data, iv)
        };
        let t_write = self.nvm.write_line(line_addr, cipher, t);
        self.update_data_mac(line_addr, &cipher, block.major, block.minors[line], t);
        let t_meta = self.update_counter(region, block, t);
        t_write.max(t_meta)
    }

    /// Handles a minor-counter overflow: re-encrypts every line of the
    /// region under a bumped major counter, materializing any pending
    /// lazy copies first (a CoW region becomes a regular one).
    fn reencrypt_region(
        &mut self,
        region: u64,
        block: CounterBlock,
        now: Cycles,
    ) -> (CounterBlock, Cycles) {
        self.stats.minor_overflows += 1;
        self.heat(HeatLane::CounterOverflow, region);
        if P::ENABLED {
            self.probe.emit(Event { cycle: now, kind: EventKind::CounterOverflow { region } });
        }
        // Gather all plaintexts under the old epoch first.
        let mut plains = Vec::with_capacity(MINORS);
        let mut t = now;
        for line in 0..MINORS {
            let (data, t2, _) = self.resolve_line_plain(region, block, line, t, t);
            plains.push(data);
            t = t2;
        }
        let mut newblock = block;
        if block.is_cow() || self.lelantus_cow_mapping(region) {
            newblock.materialize_to_regular();
            if self.config.scheme == SchemeKind::LelantusCow {
                t = self.write_cow_mapping(region, None, t);
            }
        } else {
            newblock.reencrypt_epoch();
        }
        let mut done = t;
        // All 64 lines re-encrypt under (new major, minor = 1) at
        // consecutive addresses: one batched pad sweep replaces 64
        // per-line engine dispatches. Device call order is unchanged.
        let base = self.line_addr(region, 0);
        let ciphers = if self.config.defer_data_plane {
            for (line, plain) in plains.iter().enumerate() {
                self.dp_log.push(DataPlaneOp::Store {
                    addr: base.as_u64() + (line * LINE_BYTES) as u64,
                    plain: *plain,
                    major: newblock.major,
                    minor: 1,
                    src_region: None,
                });
            }
            plains
        } else {
            self.engine.copy_page(&plains, base.as_u64(), newblock.major, 1)
        };
        for (line, cipher) in ciphers.iter().enumerate() {
            let data_addr = self.line_addr(region, line);
            done = done.max(self.nvm.write_line(data_addr, *cipher, t));
            self.update_data_mac(data_addr, cipher, newblock.major, 1, t);
            self.stats.reencrypted_lines += 1;
        }
        // Re-encryption sweeps are a Merkle flush point too.
        self.merkle.flush();
        (newblock, done)
    }

    /// Whether `region` currently has a Lelantus-CoW table mapping
    /// (functional check, no traffic).
    fn lelantus_cow_mapping(&self, region: u64) -> bool {
        self.config.scheme == SchemeKind::LelantusCow && self.cow_table.get(region).is_some()
    }

    // ------------------------------------------------------------------
    // CoW commands (paper Table II)
    // ------------------------------------------------------------------

    /// `page_copy src, dst` — records `dst` (one 4 KB region) as a lazy
    /// copy of `src`. Applies the recursive-chain shortening of §III-E.
    ///
    /// # Panics
    ///
    /// Panics if the scheme has no lazy-copy support or the addresses
    /// are not region-aligned.
    pub fn cmd_page_copy(&mut self, src: PhysAddr, dst: PhysAddr, now: Cycles) -> Cycles {
        assert!(self.config.scheme.supports_lazy_copy(), "page_copy needs a Lelantus scheme");
        assert!(src.is_aligned_to(REGION_BYTES) && dst.is_aligned_to(REGION_BYTES));
        self.stats.cmd_page_copy += 1;
        if P::ENABLED {
            self.probe.emit(Event {
                cycle: now,
                kind: EventKind::CmdPageCopy { src: src.as_u64(), dst: dst.as_u64() },
            });
        }
        let t = now + Cycles::new(self.config.cmd_latency);
        let src_region = self.region_of(src);
        let dst_region = self.region_of(dst);

        // Chain shortening: copying a fully-unmodified CoW page records
        // its source instead (§III-E).
        let effective_src = if self.is_zero_region(src_region) || !self.config.chain_shortening {
            src_region
        } else {
            let (src_block, t2) = self.fetch_counter(src_region, t);
            let unmodified = src_block.uncopied_lines() == MINORS
                || (self.config.scheme == SchemeKind::LelantusCow
                    && src_block.minors.iter().all(|&m| m == 0));
            if unmodified {
                let (grand, _t3) = self.source_of(src_region, &src_block, t2);
                grand.unwrap_or(src_region)
            } else {
                src_region
            }
        };

        let (old, t4) = self.fetch_counter(dst_region, t);
        let mut t = t4;
        let newblock = match self.config.scheme {
            SchemeKind::LelantusResized => {
                let mut b = CounterBlock::fresh_cow(effective_src);
                b.major = old.major + 1;
                b
            }
            SchemeKind::LelantusCow => {
                t = self.write_cow_mapping(dst_region, Some(effective_src), t);
                let mut b = CounterBlock::fresh_regular(0);
                b.minors = [0; MINORS];
                b.major = old.major + 1;
                b
            }
            _ => unreachable!("guarded above"),
        };
        let done = self.update_counter(dst_region, newblock, t);
        // Page-copy commands are a Merkle flush point: coalesce the
        // ancestor recomputations this command queued up.
        self.merkle.flush();
        if P::ENABLED {
            self.probe.record(HistKind::CmdServiceCycles, (done - now).as_u64());
        }
        done
    }

    /// `page_phyc src, dst` — if `dst`'s metadata still records `src`
    /// as its source, physically copies the remaining uncopied lines
    /// (issued in parallel across banks) and detaches `dst` from the
    /// chain. Otherwise a no-op (the §III-D re-check).
    ///
    /// # Panics
    ///
    /// Panics if the scheme has no lazy-copy support or the addresses
    /// are not region-aligned.
    pub fn cmd_page_phyc(&mut self, src: PhysAddr, dst: PhysAddr, now: Cycles) -> Cycles {
        let _prof = selfprof::scope("ctrl::cmd_page_phyc");
        assert!(self.config.scheme.supports_lazy_copy(), "page_phyc needs a Lelantus scheme");
        assert!(src.is_aligned_to(REGION_BYTES) && dst.is_aligned_to(REGION_BYTES));
        let t = now + Cycles::new(self.config.cmd_latency);
        let dst_region = self.region_of(dst);
        let src_region = self.region_of(src);
        let (mut block, t2) = self.fetch_counter(dst_region, t);
        let (recorded, mut t) = self.source_of(dst_region, &block, t2);
        if recorded != Some(src_region) {
            self.stats.cmd_page_phyc_rejected += 1;
            if P::ENABLED {
                self.probe.emit(Event {
                    cycle: now,
                    kind: EventKind::CmdPagePhyc {
                        src: src.as_u64(),
                        dst: dst.as_u64(),
                        accepted: false,
                    },
                });
                self.probe.record(HistKind::CmdServiceCycles, (t - now).as_u64());
            }
            return t;
        }
        self.stats.cmd_page_phyc += 1;
        if P::ENABLED {
            self.probe.emit(Event {
                cycle: now,
                kind: EventKind::CmdPagePhyc {
                    src: src.as_u64(),
                    dst: dst.as_u64(),
                    accepted: true,
                },
            });
        }
        let issue = t;
        let mut done = t;
        // Every materialized line lands at (major, minor = 1) on a
        // consecutive address, so generate the pads for the whole page
        // in one sweep up front; the per-line loop below only resolves
        // sources and XORs. Device call order is unchanged. In defer
        // mode there are no pads (the shard workers encrypt later), so
        // the lookup below falls through to logging the op.
        let base = self.line_addr(dst_region, 0);
        let pads = if self.config.defer_data_plane {
            Vec::new()
        } else {
            self.engine.page_pads(base.as_u64(), block.major, 1, MINORS)
        };
        for line in 0..MINORS {
            if block.minors[line] != 0 {
                continue;
            }
            let (plain, t3, _) = self.resolve_line_plain(dst_region, block, line, issue, issue);
            block.minors[line] = 1;
            let data_addr = self.line_addr(dst_region, line);
            let cipher = if let Some(pad) = pads.get(line) {
                xor_line(&plain, pad)
            } else {
                self.dp_log.push(DataPlaneOp::Store {
                    addr: data_addr.as_u64(),
                    plain,
                    major: block.major,
                    minor: 1,
                    src_region: Some(src_region),
                });
                plain
            };
            // Copies proceed in parallel, bounded by bank availability
            // (§III-E: "safely done in parallel to leverage row buffers").
            done = done.max(self.nvm.write_line(data_addr, cipher, t3));
            self.update_data_mac(data_addr, &cipher, block.major, 1, t3);
            self.stats.materialized_lines += 1;
        }
        // Detach from the chain, keeping major/minors valid.
        block.cow_src = None;
        if self.config.scheme == SchemeKind::LelantusCow {
            t = self.write_cow_mapping(dst_region, None, t);
        }
        let done = done.max(self.update_counter(dst_region, block, t));
        // Page-copy commands are a Merkle flush point (see
        // `cmd_page_copy`).
        self.merkle.flush();
        if P::ENABLED {
            self.probe.record(HistKind::CmdServiceCycles, (done - now).as_u64());
        }
        done
    }

    /// `page_free dst` — drops `dst`'s CoW metadata; pending lazy
    /// copies are abandoned (the page is being freed, paper §IV-C).
    ///
    /// # Panics
    ///
    /// Panics if the scheme has no lazy-copy support or the address is
    /// not region-aligned.
    pub fn cmd_page_free(&mut self, dst: PhysAddr, now: Cycles) -> Cycles {
        assert!(self.config.scheme.supports_lazy_copy(), "page_free needs a Lelantus scheme");
        assert!(dst.is_aligned_to(REGION_BYTES));
        self.stats.cmd_page_free += 1;
        if P::ENABLED {
            self.probe
                .emit(Event { cycle: now, kind: EventKind::CmdPageFree { dst: dst.as_u64() } });
        }
        let t = now + Cycles::new(self.config.cmd_latency);
        let dst_region = self.region_of(dst);
        let (mut block, mut t) = self.fetch_counter(dst_region, t);
        block.cow_src = None;
        if self.config.scheme == SchemeKind::LelantusCow && self.cow_table.get(dst_region).is_some()
        {
            t = self.write_cow_mapping(dst_region, None, t);
        }
        let done = self.update_counter(dst_region, block, t);
        if P::ENABLED {
            self.probe.record(HistKind::CmdServiceCycles, (done - now).as_u64());
        }
        done
    }

    /// Silent Shredder `page_init dst` — marks every line of the
    /// region all-zero by zeroing its minor counters under a fresh
    /// major epoch: old data is unreadable ("shredded") and zeroing
    /// costs one counter update instead of 64 data writes.
    ///
    /// # Panics
    ///
    /// Panics unless the scheme is Silent Shredder, or if the address
    /// is not region-aligned.
    pub fn cmd_page_init(&mut self, dst: PhysAddr, now: Cycles) -> Cycles {
        assert_eq!(
            self.config.scheme,
            SchemeKind::SilentShredder,
            "page_init is Silent Shredder's"
        );
        assert!(dst.is_aligned_to(REGION_BYTES));
        self.stats.cmd_page_init += 1;
        if P::ENABLED {
            self.probe
                .emit(Event { cycle: now, kind: EventKind::CmdPageInit { dst: dst.as_u64() } });
        }
        let t = now + Cycles::new(self.config.cmd_latency);
        let dst_region = self.region_of(dst);
        let (mut block, t2) = self.fetch_counter(dst_region, t);
        block.major += 1;
        block.minors = [0; MINORS];
        let done = self.update_counter(dst_region, block, t2);
        if P::ENABLED {
            self.probe.record(HistKind::CmdServiceCycles, (done - now).as_u64());
        }
        done
    }

    // ------------------------------------------------------------------
    // Bulk engines (baseline kernel paths)
    // ------------------------------------------------------------------

    /// Baseline whole-page copy: streams every line through the secure
    /// datapath with non-temporal semantics (no CPU cache involvement).
    pub fn copy_page_bulk(
        &mut self,
        src: PhysAddr,
        dst: PhysAddr,
        bytes: u64,
        now: Cycles,
    ) -> Cycles {
        let _prof = selfprof::scope("ctrl::copy_page_bulk");
        let lines = bytes / LINE_BYTES as u64;
        let mark = self.seg_mark();
        let mut done = now;
        for i in 0..lines {
            let offset = i * LINE_BYTES as u64;
            // Issue back-to-back; bank timing provides the real
            // serialization.
            let (data, t_read) = self.read_data_line(src + offset, now + Cycles::new(i));
            done = done.max(self.write_data_line(dst + offset, data, t_read));
            self.stats.bulk_copied_lines += 1;
        }
        self.seg_relabel_from(mark, CycleCategory::BulkCopy);
        done
    }

    /// Baseline whole-page zeroing (the kernel `memset` on first
    /// touch), non-temporal.
    pub fn zero_page_bulk(&mut self, base: PhysAddr, bytes: u64, now: Cycles) -> Cycles {
        let _prof = selfprof::scope("ctrl::zero_page_bulk");
        let lines = bytes / LINE_BYTES as u64;
        let mark = self.seg_mark();
        let mut done = now;
        for i in 0..lines {
            let offset = i * LINE_BYTES as u64;
            done = done.max(self.write_data_line(
                base + offset,
                [0; LINE_BYTES],
                now + Cycles::new(i),
            ));
            self.stats.bulk_zeroed_lines += 1;
        }
        self.seg_relabel_from(mark, CycleCategory::BulkCopy);
        done
    }

    /// Functional plaintext view of a line (for assertions and KSM
    /// fingerprinting). Charges the datapath like a real read — a KSM
    /// scan is real traffic.
    pub fn peek_plaintext(&mut self, addr: PhysAddr) -> [u8; LINE_BYTES] {
        self.read_data_line(addr, Cycles::ZERO).0
    }

    /// Simulates a power failure followed by recovery.
    ///
    /// Crash semantics match a battery/ADR-equipped platform (paper
    /// §V-A's "battery-backed write-back scheme"):
    ///
    /// * the NVM write queue drains (ADR flush domain),
    /// * dirty counter blocks flush (battery-backed counter cache),
    /// * then **all volatile state is lost**: counter cache, CoW cache
    ///   and Merkle node caches come up cold.
    ///
    /// Recovery re-reads every materialized counter block from NVM,
    /// rebuilds the integrity tree, and verifies the recomputed root
    /// against the persisted on-chip root; the CoW-metadata table
    /// (Lelantus-CoW) is recovered from its persisted NVM slots.
    ///
    /// # Errors
    ///
    /// Returns [`TamperError`] if the rebuilt tree does not match the
    /// persisted root — NVM was modified while powered down.
    pub fn crash_and_recover(&mut self) -> Result<RecoveryReport, lelantus_crypto::TamperError> {
        let _prof = selfprof::scope("ctrl::crash_and_recover");
        // --- power fails ---
        self.mac_wc_flush();
        // ADR: drain the device write queue.
        self.nvm.flush(Cycles::ZERO);
        // Battery: flush dirty counter blocks.
        let encoding = self.encoding();
        for ev in self.counter_cache.drain_dirty() {
            self.counter_nvm_write(ev.region, &ev.block, encoding, Cycles::ZERO, true);
        }
        for ev in self.mac_cache.drain_dirty() {
            self.writeback_mac_line(ev.index, &ev.macs, Cycles::ZERO);
        }
        self.nvm.flush(Cycles::ZERO);
        self.flush_metadata();
        let saved_root = self.persisted_root;

        // --- volatile state is gone ---
        self.counter_cache = CounterCache::new(self.config.counter_cache);
        self.cow_cache = CowCache::new(self.config.cow_cache_entries);
        self.cow_table = CowMetaTable::new();
        self.mac_cache.clear();

        // --- recovery: rebuild the tree from NVM ---
        let mut rebuilt = MerkleTree::new(
            self.layout.regions() as usize,
            MERKLE_KEY,
            self.config.merkle_cache_nodes,
        );
        if self.config.defer_data_plane {
            // The persisted root came from the stub-hashed tree; the
            // rebuilt tree must use the same digests to compare equal.
            rebuilt = rebuilt.with_stub_hasher();
        }
        let mut report = RecoveryReport::default();
        let mut regions: Vec<u64> = self.initialized_regions.iter().copied().collect();
        regions.sort_unstable();
        for region in regions {
            let bytes = self.nvm.peek_line(self.layout.counter_addr_of_region(region));
            rebuilt.update_leaf(region as usize, &bytes);
            report.regions_verified += 1;
            // Lelantus-CoW: recover the mapping from its NVM slot.
            if self.config.scheme == SchemeKind::LelantusCow {
                let (slot_line, off) = self.layout.cow_meta_slot_of_region(region);
                let line = self.nvm.peek_line(slot_line);
                let slot: [u8; 8] = line[off..off + 8].try_into().expect("8-byte slot");
                if let Some(src) = CowMetaTable::decode_slot(slot) {
                    self.cow_table.set(region, Some(src));
                    report.cow_mappings_recovered += 1;
                }
            }
        }
        if rebuilt.root() != saved_root {
            return Err(lelantus_crypto::TamperError { leaf: 0, level: usize::MAX });
        }
        if self.config.heatmap {
            // Recovery itself is free of charge (the rebuild above ran
            // without a touch log); walks after recovery record again.
            rebuilt = rebuilt.with_touch_log();
        }
        self.merkle = rebuilt;
        self.persisted_root = saved_root;
        Ok(report)
    }

    /// Raw (encrypted) contents of a line as stored in NVM — what an
    /// attacker with physical access would see. Un-timed diagnostics.
    pub fn peek_raw_line(&self, addr: PhysAddr) -> [u8; LINE_BYTES] {
        self.nvm.peek_line(addr)
    }

    /// Test hook: corrupts the stored counter block of the region
    /// containing `addr`, modelling an attacker flipping NVM bits. The
    /// next verified fetch will panic.
    pub fn tamper_counter_for_test(&mut self, addr: PhysAddr) {
        let region = self.region_of(addr.line_align());
        self.ensure_region_init(region);
        // Make sure the block is not cached (on-chip copies are trusted).
        self.counter_cache.evict(region);
        let caddr = self.layout.counter_addr_of_region(region);
        let mut bytes = self.nvm.peek_line(caddr);
        bytes[7] ^= 0x80;
        self.nvm.poke_line(caddr, bytes);
    }
}

impl<P: Probe> LineBackend for SecureMemoryController<P> {
    fn read_line(&mut self, addr: PhysAddr, now: Cycles) -> ([u8; LINE_BYTES], Cycles) {
        self.read_data_line(addr, now)
    }

    fn write_line(&mut self, addr: PhysAddr, data: [u8; LINE_BYTES], now: Cycles) -> Cycles {
        self.write_data_line(addr, data, now)
    }
}
