//! Controller statistics.
//!
//! These counters feed every results table and figure: logical versus
//! physical writes (Figs 2, 9, 11), counter-overflow rates (Fig 10a),
//! CoW-cache miss rates (Fig 10b), and the command mix (Table V's
//! copy/initialization traffic share).

/// Event counters maintained by the secure memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Line reads requested by the cache hierarchy / copy engine.
    pub logical_reads: u64,
    /// Line writes requested by the cache hierarchy / copy engine.
    pub logical_writes: u64,
    /// Reads satisfied with zeros (zero area or Silent Shredder state)
    /// without touching NVM data.
    pub zero_reads: u64,
    /// Reads redirected to a CoW source page (paper §III-C).
    pub redirected_reads: u64,
    /// First writes to uncopied CoW lines — copies completed implicitly.
    pub implicit_copies: u64,
    /// Counter blocks fetched from NVM (counter-cache misses).
    pub counter_fetches: u64,
    /// Counter blocks written to NVM (evictions / write-through).
    pub counter_writebacks: u64,
    /// Merkle-tree nodes fetched during counter verification.
    pub merkle_fetches: u64,
    /// CoW-metadata table lines read from NVM (Lelantus-CoW misses).
    pub cow_meta_reads: u64,
    /// CoW-metadata table lines written to NVM (Lelantus-CoW updates).
    pub cow_meta_writes: u64,
    /// Minor-counter increments performed.
    pub minor_increments: u64,
    /// Minor-counter overflows (region re-encryptions).
    pub minor_overflows: u64,
    /// Lines re-encrypted by overflow handling.
    pub reencrypted_lines: u64,
    /// `page_copy` commands accepted.
    pub cmd_page_copy: u64,
    /// `page_phyc` commands accepted.
    pub cmd_page_phyc: u64,
    /// `page_phyc` commands rejected by the source re-check (§III-D).
    pub cmd_page_phyc_rejected: u64,
    /// `page_free` commands accepted.
    pub cmd_page_free: u64,
    /// `page_init` commands (Silent Shredder).
    pub cmd_page_init: u64,
    /// Lines physically copied by `page_phyc` materialization.
    pub materialized_lines: u64,
    /// Lines copied by the baseline bulk-copy engine.
    pub bulk_copied_lines: u64,
    /// Lines zeroed by the baseline bulk-zero engine.
    pub bulk_zeroed_lines: u64,
    /// Data-MAC lines fetched from NVM (MAC-cache misses).
    pub mac_fetches: u64,
    /// Data-MAC lines written back to NVM.
    pub mac_writebacks: u64,
    /// Data-MAC verifications performed.
    pub mac_verifications: u64,
}

impl ControllerStats {
    /// Minor-counter overflow rate: overflows per increment (Fig 10a).
    pub fn overflow_rate(&self) -> f64 {
        if self.minor_increments == 0 {
            0.0
        } else {
            self.minor_overflows as f64 / self.minor_increments as f64
        }
    }

    /// Fraction of reads that were redirected to a source page.
    pub fn redirect_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.redirected_reads as f64 / self.logical_reads as f64
        }
    }

    /// Component-wise difference (`self - earlier`) for interval
    /// measurement.
    pub fn delta_since(&self, earlier: &ControllerStats) -> ControllerStats {
        macro_rules! sub {
            ($($f:ident),+ $(,)?) => {
                ControllerStats { $($f: self.$f - earlier.$f),+ }
            };
        }
        sub!(
            logical_reads,
            logical_writes,
            zero_reads,
            redirected_reads,
            implicit_copies,
            counter_fetches,
            counter_writebacks,
            merkle_fetches,
            cow_meta_reads,
            cow_meta_writes,
            minor_increments,
            minor_overflows,
            reencrypted_lines,
            cmd_page_copy,
            cmd_page_phyc,
            cmd_page_phyc_rejected,
            cmd_page_free,
            cmd_page_init,
            materialized_lines,
            bulk_copied_lines,
            bulk_zeroed_lines,
            mac_fetches,
            mac_writebacks,
            mac_verifications,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = ControllerStats {
            minor_increments: 1000,
            minor_overflows: 1,
            logical_reads: 10,
            redirected_reads: 4,
            ..Default::default()
        };
        assert!((s.overflow_rate() - 0.001).abs() < 1e-12);
        assert!((s.redirect_rate() - 0.4).abs() < 1e-12);
        assert_eq!(ControllerStats::default().overflow_rate(), 0.0);
    }

    #[test]
    fn delta() {
        let a = ControllerStats { logical_writes: 5, cmd_page_copy: 2, ..Default::default() };
        let b = ControllerStats { logical_writes: 12, cmd_page_copy: 3, ..Default::default() };
        let d = b.delta_since(&a);
        assert_eq!(d.logical_writes, 7);
        assert_eq!(d.cmd_page_copy, 1);
        assert_eq!(d.zero_reads, 0);
    }
}
