//! Controller configuration and scheme selection.

use lelantus_metadata::counter_block::CounterEncoding;
use lelantus_metadata::counter_cache::CounterCacheConfig;
use lelantus_nvm::NvmConfig;

/// The four CoW schemes compared in the paper's evaluation (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Conventional secure NVM controller: no CoW support; the kernel
    /// performs full page copies and zeroing.
    Baseline,
    /// Silent Shredder (Awad et al.): a counter state marks all-zero
    /// lines so zero-initialization needs no data writes; page copies
    /// remain full-cost.
    SilentShredder,
    /// Lelantus Solution 1: resized counter blocks carry a `CoW_Flag`,
    /// a 63-bit major, 6-bit minors and the 64-bit source address.
    LelantusResized,
    /// Lelantus Solution 2 (Lelantus-CoW): classic 7-bit minors plus a
    /// supplementary 8 B/region CoW-metadata table with its own cache.
    LelantusCow,
}

impl SchemeKind {
    /// The counter-block wire format this scheme uses.
    pub fn encoding(self) -> CounterEncoding {
        match self {
            SchemeKind::LelantusResized => CounterEncoding::Resized,
            _ => CounterEncoding::Classic,
        }
    }

    /// Whether the scheme supports the lazy-copy commands.
    pub fn supports_lazy_copy(self) -> bool {
        matches!(self, SchemeKind::LelantusResized | SchemeKind::LelantusCow)
    }

    /// All schemes in the paper's comparison order.
    pub fn all() -> [SchemeKind; 4] {
        [
            SchemeKind::Baseline,
            SchemeKind::SilentShredder,
            SchemeKind::LelantusResized,
            SchemeKind::LelantusCow,
        ]
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SchemeKind::Baseline => "Baseline",
            SchemeKind::SilentShredder => "SilentShredder",
            SchemeKind::LelantusResized => "Lelantus",
            SchemeKind::LelantusCow => "Lelantus-CoW",
        };
        f.write_str(name)
    }
}

/// Construction parameters for the controller.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// CoW scheme.
    pub scheme: SchemeKind,
    /// The backing NVM device.
    pub nvm: NvmConfig,
    /// OS-visible data bytes (metadata is placed above this).
    pub data_bytes: u64,
    /// Counter-cache geometry and write policy (Table III / Fig 12).
    pub counter_cache: CounterCacheConfig,
    /// Entries in the CoW cache (Lelantus-CoW only; the paper reserves
    /// 32 KB = 4096 × 8 B of counter-cache capacity).
    pub cow_cache_entries: usize,
    /// AES pad-generation latency in cycles, overlapped with the data
    /// fetch (paper §V-A: 24 cycles).
    pub aes_latency: u64,
    /// Processor→controller transfer latency charged per MMIO command
    /// (paper §IV-A: same as a write transfer).
    pub cmd_latency: u64,
    /// Merkle-tree node-cache capacity (nodes).
    pub merkle_cache_nodes: usize,
    /// Bytes at the bottom of the data area that are the OS zero pages:
    /// reads resolving there return zeros without an NVM data access.
    pub zero_area_bytes: u64,
    /// Randomize initial minor counters (the paper initializes counter
    /// blocks randomly to model realistic overflow rates, §V-A).
    pub randomize_counters: bool,
    /// Apply the §III-E recursive-chain shortening rule in `page_copy`
    /// (copying an unmodified CoW page records its grandparent).
    /// Disable only for the ablation study.
    pub chain_shortening: bool,
    /// Verify per-line data MACs (the Rogers et al. substrate: data is
    /// MAC-protected, counters are tree-protected). Adds MAC metadata
    /// traffic on cache misses.
    pub data_macs: bool,
    /// On-chip MAC cache capacity in 64-byte MAC lines (8 tags each).
    pub mac_cache_lines: usize,
    /// Track per-region access footprints (Fig 10c/d).
    pub track_footprint: bool,
    /// AES-128 key for the counter-mode engine.
    pub key: [u8; 16],
    /// Run the counter-mode engine on the byte-oriented reference AES
    /// instead of the T-table cipher. Functionally identical and much
    /// slower; only equivalence tests turn this on.
    pub use_reference_aes: bool,
    /// Serialize counter blocks with the original bit-by-bit codec
    /// instead of the word-packing one. Byte-identical output and much
    /// slower; only equivalence tests turn this on.
    pub use_reference_codec: bool,
    /// Recompute Merkle interior nodes on every counter write instead
    /// of deferring to flush points. The simulated walk model is
    /// identical either way; only equivalence tests turn this on.
    pub use_eager_merkle: bool,
    /// Combine consecutive same-line MAC updates through a one-line
    /// buffer so page sweeps touch each MAC line once (host-side only;
    /// cache ticks and stats are exact). On by default.
    pub mac_write_combining: bool,
    /// Record cycle-attribution segments (counter fills, Merkle walks,
    /// MAC traffic, AES pads, CoW redirects, implicit copies) for the
    /// system layer's [`CycleLedger`](lelantus_obs::CycleLedger). Off
    /// by default; enable through `SimConfig::with_cycle_ledger` so the
    /// segments are actually drained. Purely observational: timing,
    /// stats and contents are bit-identical either way.
    pub cycle_ledger: bool,
    /// Defer the crypto data plane to shard workers (the parallel
    /// engine): data lines are stored as plaintext with a constant
    /// stand-in MAC tag, the integrity tree runs on a stub hasher, and
    /// every elided operation is logged as a
    /// [`DataPlaneOp`](crate::DataPlaneOp) for the workers to apply.
    /// The timing/control plane — counters, caches, device timing,
    /// stats, events — is bit-identical to the serial engine; crypto
    /// *values* never feed back into it. Off by default; enable only
    /// through `SimConfig::with_parallel` so the log is actually
    /// drained.
    pub defer_data_plane: bool,
    /// Record a spatial [`HeatGrid`](lelantus_obs::HeatGrid)
    /// attributing metadata traffic (counter fills/overflows, Merkle
    /// walk touches per level, MAC writebacks, redirected reads,
    /// implicit copies) to the data region that caused it. Off by
    /// default; enable through `SimConfig::with_heatmap` so the system
    /// layer merges the grid. Purely observational.
    pub heatmap: bool,
}

impl ControllerConfig {
    /// Paper-default configuration for `scheme` over a 256 MB data
    /// area (the kernel's default arena).
    pub fn for_scheme(scheme: SchemeKind) -> Self {
        let cow_reserved = scheme == SchemeKind::LelantusCow;
        Self {
            scheme,
            nvm: NvmConfig::default(),
            data_bytes: 256 << 20,
            counter_cache: CounterCacheConfig {
                // Lelantus-CoW gives up 32 KB of the 256 KB counter
                // cache to CoW mappings (§V-A): 2 of the 16 ways of
                // every set (2 × 256 sets × 64 B = 32 KB).
                entries: if cow_reserved { 4096 - 512 } else { 4096 },
                ways: if cow_reserved { 14 } else { 16 },
                ..CounterCacheConfig::default()
            },
            cow_cache_entries: 4096,
            aes_latency: 24,
            cmd_latency: 30,
            merkle_cache_nodes: 512,
            zero_area_bytes: 2 << 20,
            randomize_counters: true,
            chain_shortening: true,
            data_macs: true,
            mac_cache_lines: 1024,
            track_footprint: true,
            key: *b"lelantus-aes-key",
            use_reference_aes: false,
            use_reference_codec: false,
            use_eager_merkle: false,
            mac_write_combining: true,
            cycle_ledger: false,
            defer_data_plane: false,
            heatmap: false,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        self.nvm.validate()?;
        self.counter_cache.validate()?;
        if self.data_bytes == 0 || !self.data_bytes.is_multiple_of(4096) {
            return Err("data area must be a nonzero multiple of 4 KB".into());
        }
        if !self.zero_area_bytes.is_multiple_of(4096) || self.zero_area_bytes >= self.data_bytes {
            return Err("zero area must be page-aligned and inside the data area".into());
        }
        if self.cow_cache_entries == 0 {
            return Err("CoW cache needs at least one entry".into());
        }
        if self.data_macs && self.mac_cache_lines == 0 {
            return Err("data MACs need a nonzero MAC cache".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_properties() {
        assert_eq!(SchemeKind::LelantusResized.encoding(), CounterEncoding::Resized);
        assert_eq!(SchemeKind::LelantusCow.encoding(), CounterEncoding::Classic);
        assert!(SchemeKind::LelantusCow.supports_lazy_copy());
        assert!(!SchemeKind::Baseline.supports_lazy_copy());
        assert_eq!(SchemeKind::all().len(), 4);
        assert_eq!(SchemeKind::LelantusResized.to_string(), "Lelantus");
    }

    #[test]
    fn defaults_validate() {
        for s in SchemeKind::all() {
            assert!(ControllerConfig::for_scheme(s).validate().is_ok(), "{s}");
        }
    }

    #[test]
    fn cow_scheme_reserves_counter_cache() {
        assert_eq!(
            ControllerConfig::for_scheme(SchemeKind::LelantusCow).counter_cache.entries,
            4096 - 512
        );
        assert_eq!(
            ControllerConfig::for_scheme(SchemeKind::LelantusResized).counter_cache.entries,
            4096
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = ControllerConfig::for_scheme(SchemeKind::Baseline);
        c.data_bytes = 100;
        assert!(c.validate().is_err());
        let mut c = ControllerConfig::for_scheme(SchemeKind::Baseline);
        c.zero_area_bytes = c.data_bytes;
        assert!(c.validate().is_err());
        let mut c = ControllerConfig::for_scheme(SchemeKind::LelantusCow);
        c.cow_cache_entries = 0;
        assert!(c.validate().is_err());
    }
}
