//! Controller behaviour tests: the paper's CoW semantics, command
//! semantics (Table II), overflow handling, and scheme equivalence.

use crate::config::{ControllerConfig, SchemeKind};
use crate::controller::SecureMemoryController;
use lelantus_metadata::counter_cache::WritePolicy;
use lelantus_types::{Cycles, PhysAddr, LINE_BYTES};
use proptest::prelude::*;

const ZERO: Cycles = Cycles::ZERO;

fn small_config(scheme: SchemeKind) -> ControllerConfig {
    ControllerConfig { data_bytes: 16 << 20, ..ControllerConfig::for_scheme(scheme) }
}

fn ctrl(scheme: SchemeKind) -> SecureMemoryController {
    SecureMemoryController::new(small_config(scheme))
}

/// First data region above the 2 MB zero area.
fn page(n: u64) -> PhysAddr {
    PhysAddr::new((2 << 20) + n * 4096)
}

fn line_of(page_base: PhysAddr, line: u64) -> PhysAddr {
    page_base + line * LINE_BYTES as u64
}

fn fill(tag: u8) -> [u8; LINE_BYTES] {
    [tag; LINE_BYTES]
}

#[test]
fn write_read_roundtrip_all_schemes() {
    for scheme in SchemeKind::all() {
        let mut c = ctrl(scheme);
        for l in 0..8u64 {
            c.write_data_line(line_of(page(0), l), fill(l as u8 + 1), ZERO);
        }
        for l in 0..8u64 {
            let (data, _) = c.read_data_line(line_of(page(0), l), ZERO);
            assert_eq!(data, fill(l as u8 + 1), "{scheme} line {l}");
        }
    }
}

#[test]
fn ciphertext_is_actually_stored() {
    let mut c = ctrl(SchemeKind::Baseline);
    let addr = line_of(page(0), 0);
    c.write_data_line(addr, fill(0xAA), ZERO);
    c.flush_all(ZERO);
    // The NVM must not hold the plaintext.
    let (plain, _) = c.read_data_line(addr, ZERO);
    assert_eq!(plain, fill(0xAA));
    assert_ne!(c.nvm_stats().line_writes, 0);
}

#[test]
fn zero_area_reads_are_free_zeros() {
    for scheme in SchemeKind::all() {
        let mut c = ctrl(scheme);
        let before = c.nvm_stats();
        let (data, t) = c.read_data_line(PhysAddr::new(0x100), ZERO);
        assert_eq!(data, [0; 64]);
        assert_eq!(t, Cycles::new(1));
        assert_eq!(c.nvm_stats().line_reads, before.line_reads, "{scheme}: no NVM read");
        assert_eq!(c.stats().zero_reads, 1);
    }
}

#[test]
fn page_copy_redirects_reads() {
    for scheme in [SchemeKind::LelantusResized, SchemeKind::LelantusCow] {
        let mut c = ctrl(scheme);
        for l in 0..64u64 {
            c.write_data_line(line_of(page(0), l), fill((l % 250) as u8 + 1), ZERO);
        }
        c.cmd_page_copy(page(0), page(1), ZERO);
        for l in (0..64u64).step_by(7) {
            let (data, _) = c.read_data_line(line_of(page(1), l), ZERO);
            assert_eq!(data, fill((l % 250) as u8 + 1), "{scheme} line {l}");
        }
        assert!(c.stats().redirected_reads >= 9, "{scheme}");
        assert_eq!(c.stats().cmd_page_copy, 1);
    }
}

#[test]
fn first_write_completes_copy_implicitly() {
    for scheme in [SchemeKind::LelantusResized, SchemeKind::LelantusCow] {
        let mut c = ctrl(scheme);
        c.write_data_line(line_of(page(0), 3), fill(1), ZERO);
        c.cmd_page_copy(page(0), page(1), ZERO);
        // Overwrite one line of the copy.
        c.write_data_line(line_of(page(1), 3), fill(9), ZERO);
        assert_eq!(c.stats().implicit_copies, 1, "{scheme}");
        // The copy diverged; the source did not.
        assert_eq!(c.read_data_line(line_of(page(1), 3), ZERO).0, fill(9));
        assert_eq!(c.read_data_line(line_of(page(0), 3), ZERO).0, fill(1));
        // Unwritten lines still mirror the source.
        assert_eq!(
            c.read_data_line(line_of(page(1), 4), ZERO).0,
            c.read_data_line(line_of(page(0), 4), ZERO).0,
            "{scheme}"
        );
    }
}

#[test]
fn lazy_zeroing_via_zero_page_copy() {
    for scheme in [SchemeKind::LelantusResized, SchemeKind::LelantusCow] {
        let mut c = ctrl(scheme);
        // Dirty the page first (simulating frame reuse).
        c.write_data_line(line_of(page(2), 5), fill(7), ZERO);
        // Lazily zero it by copying from the zero page.
        c.cmd_page_copy(PhysAddr::new(0), page(2), ZERO);
        let reads_before = c.nvm_stats().line_reads;
        let (data, _) = c.read_data_line(line_of(page(2), 5), ZERO);
        assert_eq!(data, [0; 64], "{scheme}: old data shredded");
        let (data, _) = c.read_data_line(line_of(page(2), 63), ZERO);
        assert_eq!(data, [0; 64]);
        // Zero resolution performs no data reads (counter traffic only).
        assert_eq!(c.nvm_stats().line_reads, reads_before, "{scheme}");
    }
}

#[test]
fn page_phyc_materializes_and_detaches() {
    for scheme in [SchemeKind::LelantusResized, SchemeKind::LelantusCow] {
        let mut c = ctrl(scheme);
        for l in 0..64u64 {
            c.write_data_line(line_of(page(0), l), fill(3), ZERO);
        }
        c.cmd_page_copy(page(0), page(1), ZERO);
        c.write_data_line(line_of(page(1), 0), fill(8), ZERO); // one line copied
        c.cmd_page_phyc(page(0), page(1), ZERO);
        assert_eq!(c.stats().cmd_page_phyc, 1, "{scheme}");
        assert_eq!(c.stats().materialized_lines, 63, "{scheme}: only uncopied lines");
        // Source can now change without affecting the copy.
        c.write_data_line(line_of(page(0), 10), fill(99), ZERO);
        assert_eq!(c.read_data_line(line_of(page(1), 10), ZERO).0, fill(3), "{scheme}");
        assert_eq!(c.read_data_line(line_of(page(1), 0), ZERO).0, fill(8));
    }
}

#[test]
fn page_phyc_recheck_rejects_stale_source() {
    for scheme in [SchemeKind::LelantusResized, SchemeKind::LelantusCow] {
        let mut c = ctrl(scheme);
        c.write_data_line(line_of(page(0), 0), fill(1), ZERO);
        c.cmd_page_copy(page(0), page(1), ZERO);
        // Claim page(5) is the source — the §III-D re-check must reject.
        c.cmd_page_phyc(page(5), page(1), ZERO);
        assert_eq!(c.stats().cmd_page_phyc, 0, "{scheme}");
        assert_eq!(c.stats().cmd_page_phyc_rejected, 1);
        assert_eq!(c.stats().materialized_lines, 0);
        // Still lazily attached.
        assert_eq!(c.read_data_line(line_of(page(1), 0), ZERO).0, fill(1));
    }
}

#[test]
fn page_free_abandons_pending_copies() {
    for scheme in [SchemeKind::LelantusResized, SchemeKind::LelantusCow] {
        let mut c = ctrl(scheme);
        c.write_data_line(line_of(page(0), 0), fill(1), ZERO);
        c.cmd_page_copy(page(0), page(1), ZERO);
        c.cmd_page_free(page(1), ZERO);
        assert_eq!(c.stats().cmd_page_free, 1);
        // No more redirection: the freed page reads as scrubbed zeros.
        let (data, _) = c.read_data_line(line_of(page(1), 0), ZERO);
        assert_eq!(data, [0; 64], "{scheme}");
    }
}

#[test]
fn recursive_chain_three_pages() {
    for scheme in [SchemeKind::LelantusResized, SchemeKind::LelantusCow] {
        let mut c = ctrl(scheme);
        for l in 0..4u64 {
            c.write_data_line(line_of(page(0), l), fill(0x10 + l as u8), ZERO);
        }
        // A -> B (B stays unmodified) -> C: C must chain to A directly
        // (§III-E chain shortening).
        c.cmd_page_copy(page(0), page(1), ZERO);
        c.cmd_page_copy(page(1), page(2), ZERO);
        assert_eq!(c.read_data_line(line_of(page(2), 2), ZERO).0, fill(0x12), "{scheme}");
        // Modify B, then copy B -> D: D records B.
        c.write_data_line(line_of(page(1), 0), fill(0xBB), ZERO);
        c.cmd_page_copy(page(1), page(3), ZERO);
        // D line 0 comes from B's modified line; D line 1 chains B -> A.
        assert_eq!(c.read_data_line(line_of(page(3), 0), ZERO).0, fill(0xBB), "{scheme}");
        assert_eq!(c.read_data_line(line_of(page(3), 1), ZERO).0, fill(0x11), "{scheme}");
    }
}

#[test]
fn minor_overflow_triggers_reencryption_and_preserves_data() {
    for scheme in [SchemeKind::LelantusResized, SchemeKind::LelantusCow] {
        let mut c = SecureMemoryController::new(ControllerConfig {
            randomize_counters: false,
            ..small_config(scheme)
        });
        c.write_data_line(line_of(page(0), 1), fill(0x55), ZERO);
        c.cmd_page_copy(page(0), page(1), ZERO);
        // Hammer one line of the CoW page until its minor overflows
        // (6-bit under the resized layout: 63 writes).
        for i in 0..200u64 {
            c.write_data_line(line_of(page(1), 0), fill((i % 251) as u8), ZERO);
        }
        assert!(c.stats().minor_overflows >= 1, "{scheme}");
        assert!(c.stats().reencrypted_lines >= 64);
        // Data integrity across the epoch change, including the lazily
        // copied line that was materialized by the re-encryption.
        assert_eq!(c.read_data_line(line_of(page(1), 0), ZERO).0, fill(199));
        assert_eq!(c.read_data_line(line_of(page(1), 1), ZERO).0, fill(0x55), "{scheme}");
    }
}

#[test]
fn resized_overflows_faster_than_classic() {
    // Table I: the resized layout's 6-bit minors overflow ~2x sooner.
    let mut resized = SecureMemoryController::new(ControllerConfig {
        randomize_counters: false,
        ..small_config(SchemeKind::LelantusResized)
    });
    let mut classic = SecureMemoryController::new(ControllerConfig {
        randomize_counters: false,
        ..small_config(SchemeKind::LelantusCow)
    });
    for c in [&mut resized, &mut classic] {
        c.write_data_line(line_of(page(0), 0), fill(1), ZERO);
        c.cmd_page_copy(page(0), page(1), ZERO);
        for i in 0..120u64 {
            c.write_data_line(line_of(page(1), 0), fill(i as u8), ZERO);
        }
    }
    assert_eq!(resized.stats().minor_overflows, 1, "6-bit minor: 63 writes then overflow");
    assert_eq!(classic.stats().minor_overflows, 0, "7-bit minor survives 120 writes");
}

#[test]
fn silent_shredder_page_init_shreds_and_zeroes() {
    let mut c = ctrl(SchemeKind::SilentShredder);
    c.write_data_line(line_of(page(0), 2), fill(0x77), ZERO);
    let writes_before = c.stats().logical_writes;
    c.cmd_page_init(page(0), ZERO);
    assert_eq!(c.stats().logical_writes, writes_before, "init writes no data");
    let reads_before = c.nvm_stats().line_reads;
    let (data, _) = c.read_data_line(line_of(page(0), 2), ZERO);
    assert_eq!(data, [0; 64], "old data shredded, reads as zero");
    assert_eq!(c.nvm_stats().line_reads, reads_before, "zero reads skip NVM");
    // Writing re-materializes the line.
    c.write_data_line(line_of(page(0), 2), fill(5), ZERO);
    assert_eq!(c.read_data_line(line_of(page(0), 2), ZERO).0, fill(5));
}

#[test]
fn baseline_bulk_copy_costs_a_page_of_traffic() {
    let mut c = ctrl(SchemeKind::Baseline);
    for l in 0..64u64 {
        c.write_data_line(line_of(page(0), l), fill(1), ZERO);
    }
    let before = c.stats();
    c.copy_page_bulk(page(0), page(1), 4096, ZERO);
    let d = c.stats().delta_since(&before);
    assert_eq!(d.bulk_copied_lines, 64);
    assert_eq!(d.logical_writes, 64);
    assert_eq!(d.logical_reads, 64);
    assert_eq!(c.read_data_line(line_of(page(1), 33), ZERO).0, fill(1));
}

#[test]
fn bulk_zero_writes_every_line() {
    let mut c = ctrl(SchemeKind::Baseline);
    c.write_data_line(line_of(page(1), 9), fill(3), ZERO);
    c.zero_page_bulk(page(1), 4096, ZERO);
    assert_eq!(c.stats().bulk_zeroed_lines, 64);
    assert_eq!(c.read_data_line(line_of(page(1), 9), ZERO).0, [0; 64]);
}

#[test]
fn lazy_copy_writes_orders_of_magnitude_fewer_lines() {
    // The headline claim in one assertion: copying a page costs 64 line
    // writes in the baseline but ~1 metadata update under Lelantus.
    let mut base = ctrl(SchemeKind::Baseline);
    let mut lel = ctrl(SchemeKind::LelantusResized);
    for c in [&mut base, &mut lel] {
        for l in 0..64u64 {
            c.write_data_line(line_of(page(0), l), fill(2), ZERO);
        }
        c.flush_all(ZERO);
    }
    let base_before = base.nvm_stats().line_writes;
    let lel_before = lel.nvm_stats().line_writes;
    base.copy_page_bulk(page(0), page(1), 4096, ZERO);
    lel.cmd_page_copy(page(0), page(1), ZERO);
    base.flush_all(ZERO);
    lel.flush_all(ZERO);
    let base_writes = base.nvm_stats().line_writes - base_before;
    let lel_writes = lel.nvm_stats().line_writes - lel_before;
    assert!(base_writes >= 64, "baseline writes the whole page ({base_writes})");
    assert!(lel_writes <= 2, "Lelantus writes metadata only ({lel_writes})");
}

#[test]
fn write_through_counter_cache_writes_more() {
    let mut wb = ctrl(SchemeKind::LelantusResized);
    let mut cfg = small_config(SchemeKind::LelantusResized);
    cfg.counter_cache.policy = WritePolicy::WriteThrough;
    let mut wt = SecureMemoryController::new(cfg);
    for c in [&mut wb, &mut wt] {
        for l in 0..64u64 {
            c.write_data_line(line_of(page(0), l), fill(1), ZERO);
        }
        c.flush_all(ZERO);
    }
    assert!(
        wt.stats().counter_writebacks > wb.stats().counter_writebacks,
        "WT: {} vs WB: {}",
        wt.stats().counter_writebacks,
        wb.stats().counter_writebacks
    );
}

#[test]
#[should_panic(expected = "integrity violation")]
fn tampered_counters_are_detected() {
    let mut c = ctrl(SchemeKind::LelantusResized);
    let addr = line_of(page(0), 0);
    c.write_data_line(addr, fill(1), ZERO);
    c.flush_all(ZERO);
    c.tamper_counter_for_test(addr);
    let _ = c.read_data_line(addr, ZERO);
}

#[test]
#[should_panic(expected = "zero area")]
fn writing_zero_area_panics() {
    let mut c = ctrl(SchemeKind::Baseline);
    c.write_data_line(PhysAddr::new(0x40), fill(1), ZERO);
}

#[test]
#[should_panic(expected = "needs a Lelantus scheme")]
fn baseline_rejects_cow_commands() {
    let mut c = ctrl(SchemeKind::Baseline);
    c.cmd_page_copy(page(0), page(1), ZERO);
}

#[test]
fn cow_cache_miss_rate_tracks_lookups() {
    let mut cfg = small_config(SchemeKind::LelantusCow);
    cfg.cow_cache_entries = 2;
    let mut c = SecureMemoryController::new(cfg);
    c.write_data_line(line_of(page(0), 0), fill(1), ZERO);
    for p in 1..6u64 {
        c.cmd_page_copy(page(0), page(p), ZERO);
    }
    // Touch the copies round-robin to overflow the 2-entry CoW cache.
    for _ in 0..3 {
        for p in 1..6u64 {
            c.read_data_line(line_of(page(p), 7), ZERO);
        }
    }
    let s = c.cow_cache_stats();
    assert!(s.misses > 0, "tiny CoW cache must miss");
    assert!(s.hits + s.misses > 0);
    assert!(c.stats().cow_meta_reads > 0, "misses read the NVM table");
}

#[test]
fn footprint_records_logical_page_usage() {
    let mut c = ctrl(SchemeKind::LelantusResized);
    c.write_data_line(line_of(page(0), 0), fill(1), ZERO);
    c.cmd_page_copy(page(0), page(1), ZERO);
    c.write_data_line(line_of(page(1), 5), fill(2), ZERO);
    c.read_data_line(line_of(page(1), 9), ZERO);
    let region = (page(1).as_u64()) / 4096;
    let fp = c.footprint().region(region).unwrap();
    assert_eq!(fp.lines_written(), 1);
    assert_eq!(fp.lines_read(), 1);
    assert_eq!(fp.lines_touched(), 2, "only the used lines, not the whole page");
}

#[test]
fn timing_read_overlaps_counter_fetch() {
    let mut c = ctrl(SchemeKind::Baseline);
    let addr = line_of(page(0), 0);
    c.write_data_line(addr, fill(1), ZERO);
    c.flush_all(ZERO);
    // Cold counter + cold data: both fetched in parallel; the pad costs
    // aes_latency after the counter arrives.
    let (_, t) = c.read_data_line(addr, Cycles::new(10_000));
    let total = t - Cycles::new(10_000);
    assert!(total.as_u64() < 60 + 60 + 24, "fetches overlap: {total}");
    assert!(total.as_u64() >= 60, "at least one array read: {total}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The paper's central correctness claim: Lelantus "preserves the
    /// software semantics and provides the same guarantees of data
    /// content as if initialization/copying has been done
    /// conventionally" (§I). Random op sequences must read back
    /// identically under all four schemes.
    #[test]
    fn prop_scheme_equivalence(ops in prop::collection::vec(
        (0u64..4, 0u64..64, any::<u8>(), any::<bool>()), 1..120))
    {
        let mut ctrls: Vec<SecureMemoryController> =
            SchemeKind::all().iter().map(|s| ctrl(*s)).collect();
        // The OS contract: while a page serves as a CoW source it is
        // write-protected. Model that discipline here — without it the
        // schemes legitimately diverge (a lazy copy tracks its source,
        // a bulk copy snapshots it).
        let mut frozen = std::collections::HashSet::new();
        for (pg, ln, val, do_copy) in &ops {
            if *do_copy && pg + 1 < 4 && !frozen.contains(&(pg + 1)) {
                // Copy page pg -> pg+1 under every scheme's mechanism.
                for c in &mut ctrls {
                    match c.config().scheme {
                        SchemeKind::Baseline | SchemeKind::SilentShredder => {
                            c.copy_page_bulk(page(*pg), page(pg + 1), 4096, ZERO);
                        }
                        _ => {
                            c.cmd_page_copy(page(*pg), page(pg + 1), ZERO);
                        }
                    }
                }
                frozen.insert(*pg);
            } else if !frozen.contains(pg) {
                for c in &mut ctrls {
                    c.write_data_line(line_of(page(*pg), *ln), fill(*val), ZERO);
                }
            }
        }
        // All four schemes must agree on every line of every page.
        for pg in 0..4u64 {
            for ln in 0..64u64 {
                let expect = ctrls[0].read_data_line(line_of(page(pg), ln), ZERO).0;
                for c in &mut ctrls[1..] {
                    let got = c.read_data_line(line_of(page(pg), ln), ZERO).0;
                    prop_assert_eq!(got, expect, "page {} line {}", pg, ln);
                }
            }
        }
    }
}

#[test]
fn chain_shortening_ablation_keeps_correctness() {
    // With shortening disabled, fork-of-fork chains stay deep but must
    // still resolve to the root's data.
    for scheme in [SchemeKind::LelantusResized, SchemeKind::LelantusCow] {
        let mut c = SecureMemoryController::new(ControllerConfig {
            chain_shortening: false,
            ..small_config(scheme)
        });
        for l in 0..4u64 {
            c.write_data_line(line_of(page(0), l), fill(0x20 + l as u8), ZERO);
        }
        // A -> B -> C -> D, all unmodified intermediates.
        c.cmd_page_copy(page(0), page(1), ZERO);
        c.cmd_page_copy(page(1), page(2), ZERO);
        c.cmd_page_copy(page(2), page(3), ZERO);
        assert_eq!(c.read_data_line(line_of(page(3), 2), ZERO).0, fill(0x22), "{scheme}");
        // Deep chains fetch more counters than shortened ones would.
        assert!(c.stats().redirected_reads >= 1);
    }
}

#[test]
fn chain_shortening_reduces_resolution_work() {
    let run = |shortening: bool| {
        let mut c = SecureMemoryController::new(ControllerConfig {
            chain_shortening: shortening,
            ..small_config(SchemeKind::LelantusResized)
        });
        c.write_data_line(line_of(page(0), 0), fill(1), ZERO);
        // Build a 5-deep chain of unmodified copies.
        for i in 0..5u64 {
            c.cmd_page_copy(page(i), page(i + 1), ZERO);
        }
        let before = c.stats().counter_fetches;
        // Fresh counter-cache state is unrealistic to arrange here, so
        // compare total fetches incurred by a read at the chain tail.
        let (_, t) = c.read_data_line(line_of(page(5), 0), ZERO);
        (c.stats().counter_fetches - before, t)
    };
    let (fetches_on, t_on) = run(true);
    let (fetches_off, t_off) = run(false);
    assert!(fetches_on <= fetches_off);
    assert!(t_on <= t_off, "shortened chains resolve no slower: {t_on} vs {t_off}");
}

#[test]
fn write_through_counter_writes_are_durable() {
    // WT counter updates bypass the volatile write queue: they reach
    // the array immediately (that is the point of write-through).
    let mut cfg = small_config(SchemeKind::Baseline);
    cfg.counter_cache.policy = WritePolicy::WriteThrough;
    let mut c = SecureMemoryController::new(cfg);
    let before = c.nvm_stats().line_writes;
    c.write_data_line(line_of(page(0), 0), fill(1), ZERO);
    // Without any flush, the counter write has already hit the array.
    assert!(c.nvm_stats().line_writes > before, "write-through must persist counters immediately");
}

#[test]
fn controller_composes_with_wear_leveling() {
    // Start-Gap sits below the encryption layer: ciphertext moves with
    // its logical address, so the whole secure datapath (including
    // lazy CoW redirection) must be oblivious to it.
    let mut cfg = small_config(SchemeKind::LelantusResized);
    cfg.nvm.wear_leveling = Some(lelantus_nvm::StartGapConfig { gap_write_interval: 8 });
    let mut c = SecureMemoryController::new(cfg);
    for l in 0..64u64 {
        c.write_data_line(line_of(page(0), l), fill((l % 200) as u8 + 1), ZERO);
    }
    c.cmd_page_copy(page(0), page(1), ZERO);
    c.write_data_line(line_of(page(1), 0), fill(0xEE), ZERO);
    c.flush_all(ZERO);
    assert!(c.nvm_stats().leveling_moves > 0, "gap must have moved");
    // Redirected reads and direct reads both survive relocation.
    assert_eq!(c.read_data_line(line_of(page(1), 5), ZERO).0, fill(6));
    assert_eq!(c.read_data_line(line_of(page(1), 0), ZERO).0, fill(0xEE));
    assert_eq!(c.read_data_line(line_of(page(0), 63), ZERO).0, fill(64));
    // And a crash/recovery cycle on a levelled device still verifies.
    c.crash_and_recover().expect("levelled device recovers");
    assert_eq!(c.read_data_line(line_of(page(1), 5), ZERO).0, fill(6));
}

#[test]
#[should_panic(expected = "data-MAC integrity violation")]
fn tampered_data_is_detected_by_macs() {
    let mut c = ctrl(SchemeKind::Baseline);
    let addr = line_of(page(0), 0);
    c.write_data_line(addr, fill(0x42), ZERO);
    c.flush_all(ZERO);
    c.tamper_data_for_test(addr);
    let _ = c.read_data_line(addr, ZERO);
}

#[test]
fn data_macs_survive_crash_and_catch_offline_tampering() {
    let mut c = ctrl(SchemeKind::LelantusResized);
    let addr = line_of(page(0), 0);
    c.write_data_line(addr, fill(0x42), ZERO);
    c.flush_all(ZERO);
    c.crash_and_recover().unwrap();
    assert_eq!(c.read_data_line(addr, ZERO).0, fill(0x42), "MACs persisted");
    // Flip data bits "while powered off".
    c.tamper_data_for_test(addr);
    c.crash_and_recover().unwrap(); // counters are fine; tree passes
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.read_data_line(addr, ZERO)));
    assert!(result.is_err(), "offline data tampering must be caught on read");
}

#[test]
fn redirected_reads_verify_the_source_mac() {
    let mut c = ctrl(SchemeKind::LelantusResized);
    c.write_data_line(line_of(page(0), 3), fill(7), ZERO);
    c.cmd_page_copy(page(0), page(1), ZERO);
    c.flush_all(ZERO);
    // Tamper with the SOURCE line; a redirected read of the copy must
    // trip the source's MAC.
    c.tamper_data_for_test(line_of(page(0), 3));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.read_data_line(line_of(page(1), 3), ZERO)
    }));
    assert!(result.is_err(), "lazy copies must not launder tampered source data");
}

#[test]
fn disabling_macs_skips_verification_and_traffic() {
    let mut cfg = small_config(SchemeKind::Baseline);
    cfg.data_macs = false;
    let mut c = SecureMemoryController::new(cfg);
    let addr = line_of(page(0), 0);
    c.write_data_line(addr, fill(1), ZERO);
    c.read_data_line(addr, ZERO);
    assert_eq!(c.stats().mac_verifications, 0);
    assert_eq!(c.stats().mac_fetches, 0);
}
