//! Deferred crypto data-plane operations for the parallel engine.
//!
//! The simulator's timing/control plane (counters, caches, bank timing,
//! stats, probe events) has tight feedback loops — every completion
//! time feeds the issuing core's clock — so it cannot be split across
//! threads without changing results. The crypto *data* plane has no
//! such loop: ciphertext bytes, data-MAC tags and integrity-tree
//! digests are produced, stored and only ever compared for equality;
//! their values never influence timing, statistics or control flow.
//!
//! With [`ControllerConfig::defer_data_plane`](crate::ControllerConfig)
//! set, the controller elides that work — lines are stored as
//! plaintext, MAC tags become the constant [`DEFERRED_MAC_TAG`], the
//! Merkle tree runs on a cheap stub hasher — and instead appends one
//! [`DataPlaneOp`] per elided operation to an in-order log. Shard
//! workers drain the log at epoch barriers and redo the real AES /
//! SipHash work, partitioned by region so each worker owns disjoint
//! data lines, MAC slots and tree leaves.

use lelantus_types::LINE_BYTES;

/// Key of the Bonsai Merkle tree over counter blocks (shared between
/// the controller and the shard workers so worker-computed leaf
/// digests splice into the same tree).
pub const MERKLE_KEY: (u64, u64) = (0x6c65_6c61_6e74_7573, 0x6973_6361_3230_3230);

/// Key of the per-line data MACs.
pub const DATA_MAC_KEY: (u64, u64) = (0x6d61_635f_6b65_7931, 0x6d61_635f_6b65_7932);

/// Stand-in tag stored for every line while the data plane is
/// deferred. Any nonzero constant works: a stored tag of 0 means
/// "never written" and skips verification, so the stand-in must be
/// nonzero, and verification then compares the stored constant against
/// the recomputed constant.
pub const DEFERRED_MAC_TAG: u64 = 1;

/// One elided crypto operation, logged in issue order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataPlaneOp {
    /// A data line reached NVM: encrypt `plain` under
    /// `(addr, major, minor)` and compute its data-MAC tag.
    Store {
        /// Line-aligned physical address of the stored line.
        addr: u64,
        /// Plaintext contents (what the scout stored in its place).
        plain: [u8; LINE_BYTES],
        /// Major counter of the line's region at store time.
        major: u64,
        /// Minor counter of the line at store time.
        minor: u8,
        /// For materializations (`page_phyc`), the chain source the
        /// data came from — lets shards count cross-shard traffic.
        src_region: Option<u64>,
    },
    /// A counter block reached NVM: recompute the keyed Merkle leaf
    /// digest of `region` over the encoded `bytes`.
    Leaf {
        /// Region (= tree leaf index) whose counter block was written.
        region: u64,
        /// Encoded counter-block bytes as stored (these are real in
        /// deferred mode — only the digest work is elided).
        bytes: [u8; LINE_BYTES],
    },
}

impl DataPlaneOp {
    /// The region whose shard must apply this operation. Data lines,
    /// MAC slots and the counter-block leaf of one region are co-owned
    /// by one shard, so a region-keyed partition never splits an
    /// operation's state across workers.
    pub fn region(&self, region_bytes: u64) -> u64 {
        match self {
            DataPlaneOp::Store { addr, .. } => addr / region_bytes,
            DataPlaneOp::Leaf { region, .. } => *region,
        }
    }
}
