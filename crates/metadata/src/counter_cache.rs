//! The on-chip counter cache.
//!
//! Table III: 256 KB, 16-way, LRU, 64-byte blocks — 4096 counter
//! blocks. The paper's §V-E compares a battery-backed *write-back*
//! management scheme (default) against *write-through* (every counter
//! update is immediately flushed to NVM); Figure 12 measures the
//! difference. The cache stores decoded [`CounterBlock`]s keyed by
//! region index; the memory controller handles (de)serialization when
//! blocks move to or from NVM.

use crate::counter_block::CounterBlock;

/// Counter-cache write management (paper §V-E, Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Updates complete in the cache; NVM is written on eviction
    /// (battery-backed, the paper's default).
    WriteBack,
    /// Every update is immediately propagated to NVM.
    WriteThrough,
}

/// Counter-cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterCacheConfig {
    /// Capacity in counter blocks (entries).
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Write management policy.
    pub policy: WritePolicy,
}

impl Default for CounterCacheConfig {
    fn default() -> Self {
        // 256 KB of 64 B blocks, 16-way (Table III).
        Self { entries: 4096, ways: 16, policy: WritePolicy::WriteBack }
    }
}

impl CounterCacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.entries / self.ways
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 || self.entries == 0 {
            return Err("counter cache needs entries and ways".into());
        }
        if !self.entries.is_multiple_of(self.ways) {
            return Err("entries must divide evenly into ways".into());
        }
        if !self.sets().is_power_of_two() {
            return Err("set count must be a power of two".into());
        }
        Ok(())
    }
}

/// Counter-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterCacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty blocks evicted (write-back NVM traffic).
    pub dirty_evictions: u64,
}

impl CounterCacheStats {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.misses as f64 / t as f64
        }
    }

    /// Interval counters: `self - earlier` field by field.
    pub fn delta_since(&self, earlier: &CounterCacheStats) -> CounterCacheStats {
        CounterCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            dirty_evictions: self.dirty_evictions - earlier.dirty_evictions,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    region: u64,
    block: CounterBlock,
    dirty: bool,
    lru: u64,
}

/// A dirty counter block evicted from the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedCounter {
    /// Region the block covers.
    pub region: u64,
    /// The block contents to serialize back to NVM.
    pub block: CounterBlock,
}

/// The set-associative counter cache.
///
/// # Examples
///
/// ```
/// use lelantus_metadata::{CounterCache, CounterCacheConfig};
/// use lelantus_metadata::counter_block::CounterBlock;
///
/// let mut cc = CounterCache::new(CounterCacheConfig::default());
/// cc.insert(5, CounterBlock::fresh_regular(1), false);
/// assert!(cc.get(5).is_some());
/// assert!(cc.get(6).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CounterCache {
    config: CounterCacheConfig,
    sets: Vec<Vec<Entry>>,
    tick: u64,
    stats: CounterCacheStats,
}

impl CounterCache {
    /// Builds a counter cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn new(config: CounterCacheConfig) -> Self {
        config.validate().expect("invalid counter cache config");
        Self {
            sets: (0..config.sets()).map(|_| Vec::with_capacity(config.ways)).collect(),
            config,
            tick: 0,
            stats: CounterCacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CounterCacheConfig {
        self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CounterCacheStats {
        self.stats
    }

    fn set_of(&self, region: u64) -> usize {
        (region % self.sets.len() as u64) as usize
    }

    /// Looks up the counter block for `region`, updating LRU and
    /// hit/miss statistics.
    pub fn get(&mut self, region: u64) -> Option<CounterBlock> {
        let set = self.set_of(region);
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.region == region) {
            e.lru = tick;
            self.stats.hits += 1;
            Some(e.block)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Checks for presence without disturbing statistics or LRU.
    pub fn probe(&self, region: u64) -> bool {
        self.sets[self.set_of(region)].iter().any(|e| e.region == region)
    }

    /// Updates a resident block in place, marking it dirty. Returns
    /// false if the block is not resident.
    pub fn update(&mut self, region: u64, block: CounterBlock) -> bool {
        let set = self.set_of(region);
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.region == region) {
            e.block = block;
            e.dirty = true;
            e.lru = tick;
            true
        } else {
            false
        }
    }

    /// Marks a resident block clean (after a write-through or an
    /// explicit flush reached NVM).
    pub fn mark_clean(&mut self, region: u64) {
        let set = self.set_of(region);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.region == region) {
            e.dirty = false;
        }
    }

    /// Inserts a block (on fill), evicting the LRU entry of the set if
    /// full; a dirty victim is returned for write-back.
    pub fn insert(
        &mut self,
        region: u64,
        block: CounterBlock,
        dirty: bool,
    ) -> Option<EvictedCounter> {
        let set = self.set_of(region);
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.region == region) {
            e.block = block;
            e.dirty = e.dirty || dirty;
            e.lru = tick;
            return None;
        }
        let victim = if self.sets[set].len() >= self.config.ways {
            let (idx, _) =
                self.sets[set].iter().enumerate().min_by_key(|(_, e)| e.lru).expect("full set");
            let v = self.sets[set].swap_remove(idx);
            if v.dirty {
                self.stats.dirty_evictions += 1;
                Some(EvictedCounter { region: v.region, block: v.block })
            } else {
                None
            }
        } else {
            None
        };
        self.sets[set].push(Entry { region, block, dirty, lru: tick });
        victim
    }

    /// Removes `region` from the cache, returning its block and dirty
    /// bit if it was resident.
    pub fn evict(&mut self, region: u64) -> Option<(CounterBlock, bool)> {
        let set = self.set_of(region);
        let idx = self.sets[set].iter().position(|e| e.region == region)?;
        let e = self.sets[set].swap_remove(idx);
        Some((e.block, e.dirty))
    }

    /// Drains every dirty block (end-of-simulation flush).
    pub fn drain_dirty(&mut self) -> Vec<EvictedCounter> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for e in set {
                if e.dirty {
                    e.dirty = false;
                    out.push(EvictedCounter { region: e.region, block: e.block });
                }
            }
        }
        out
    }

    /// Number of resident blocks.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter_block::CounterBlock;

    fn tiny() -> CounterCache {
        CounterCache::new(CounterCacheConfig {
            entries: 4,
            ways: 2,
            policy: WritePolicy::WriteBack,
        })
    }

    #[test]
    fn default_config_matches_table3() {
        let c = CounterCacheConfig::default();
        assert_eq!(c.entries, 4096);
        assert_eq!(c.ways, 16);
        assert_eq!(c.sets(), 256);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn get_miss_then_hit() {
        let mut cc = tiny();
        assert!(cc.get(0).is_none());
        cc.insert(0, CounterBlock::fresh_regular(1), false);
        assert!(cc.get(0).is_some());
        let s = cc.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn update_dirties_and_eviction_returns_dirty() {
        let mut cc = tiny();
        // Regions 0 and 2 map to set 0 (2 sets).
        cc.insert(0, CounterBlock::fresh_regular(1), false);
        assert!(cc.update(0, CounterBlock::fresh_regular(2)));
        cc.insert(2, CounterBlock::fresh_regular(1), false);
        let v = cc.insert(4, CounterBlock::fresh_regular(1), false);
        let v = v.expect("dirty LRU victim");
        assert_eq!(v.region, 0);
        assert_eq!(v.block.minors[0], 2);
        assert_eq!(cc.stats().dirty_evictions, 1);
    }

    #[test]
    fn clean_evictions_are_silent() {
        let mut cc = tiny();
        cc.insert(0, CounterBlock::fresh_regular(1), false);
        cc.insert(2, CounterBlock::fresh_regular(1), false);
        assert!(cc.insert(4, CounterBlock::fresh_regular(1), false).is_none());
    }

    #[test]
    fn update_missing_returns_false() {
        let mut cc = tiny();
        assert!(!cc.update(9, CounterBlock::fresh_regular(1)));
    }

    #[test]
    fn mark_clean_prevents_writeback() {
        let mut cc = tiny();
        cc.insert(0, CounterBlock::fresh_regular(1), true);
        cc.mark_clean(0);
        assert!(cc.drain_dirty().is_empty());
    }

    #[test]
    fn drain_dirty_reports_all() {
        let mut cc = tiny();
        cc.insert(0, CounterBlock::fresh_regular(1), true);
        cc.insert(1, CounterBlock::fresh_regular(1), true);
        cc.insert(2, CounterBlock::fresh_regular(1), false);
        assert_eq!(cc.drain_dirty().len(), 2);
        assert!(cc.drain_dirty().is_empty());
    }

    #[test]
    fn evict_removes() {
        let mut cc = tiny();
        cc.insert(3, CounterBlock::fresh_cow(7), true);
        let (block, dirty) = cc.evict(3).unwrap();
        assert!(dirty);
        assert_eq!(block.cow_source(), Some(7));
        assert!(!cc.probe(3));
        assert_eq!(cc.resident(), 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CounterCacheConfig { entries: 0, ways: 1, policy: WritePolicy::WriteBack }
            .validate()
            .is_err());
        assert!(CounterCacheConfig { entries: 10, ways: 4, policy: WritePolicy::WriteBack }
            .validate()
            .is_err());
        assert!(CounterCacheConfig { entries: 24, ways: 8, policy: WritePolicy::WriteBack }
            .validate()
            .is_err());
    }
}
