//! Split-counter security metadata for the Lelantus reproduction.
//!
//! Secure NVM controllers keep one 64-byte *counter block* per 4 KB
//! region: a major counter shared by the region plus 64 per-line minor
//! counters (paper §II-B, Yan et al.'s split-counter scheme). Lelantus
//! repurposes this metadata to encode CoW state. This crate provides:
//!
//! * [`counter_block`] — bit-exact encodings of both layouts from the
//!   paper's Figure 4: the classic layout (64-bit major + 64 × 7-bit
//!   minors) and the resized CoW layout (1-bit `CoW_Flag` + 63-bit
//!   major + 64 × 6-bit minors + 64-bit source address),
//! * [`counter_cache`] — the 256 KB, 16-way counter cache (Table III)
//!   with write-back and write-through policies (Fig 12),
//! * [`cow_meta`] — Solution 2's supplementary CoW-metadata table
//!   (8 B per region in NVM) and its dedicated CoW cache carved out of
//!   counter-cache capacity (paper §III-B),
//! * [`layout`] — where counter blocks and CoW metadata live in
//!   physical NVM, so metadata traffic is charged like any other.
//!
//! # Examples
//!
//! ```
//! use lelantus_metadata::counter_block::{CounterBlock, CounterEncoding};
//!
//! // Mark a region as copied from region 7 without touching its data:
//! let block = CounterBlock::fresh_cow(7);
//! let bytes = block.encode(CounterEncoding::Resized);
//! let back = CounterBlock::decode(&bytes, CounterEncoding::Resized);
//! assert_eq!(back.cow_source(), Some(7));
//! assert!(back.is_line_uncopied(13)); // minor == 0 ⇒ not copied yet
//! ```

pub mod counter_block;
pub mod counter_cache;
pub mod cow_meta;
pub mod layout;
pub mod mac;

pub use counter_block::{CounterBlock, CounterCodec, CounterEncoding, MinorOverflow};
pub use counter_cache::{CounterCache, CounterCacheConfig, WritePolicy};
pub use cow_meta::{CowCache, CowMetaTable};
pub use layout::MetadataLayout;
pub use mac::{MacCache, MacCacheStats};
