//! Solution 2's supplementary CoW metadata (paper §III-B, Figure 5).
//!
//! Lelantus-CoW keeps the classic 7-bit minor counters and stores each
//! region's source-page address in a separate 8-byte slot in NVM
//! (0.02 % space). A minor counter of zero still marks an uncopied
//! line; resolving it requires the source address, fetched through a
//! small dedicated **CoW cache** carved out of counter-cache capacity
//! (the paper reserves 32 KB of the 256 KB counter cache; each 64 B
//! slot hosts eight 8 B mappings). Figure 10b reports this cache's
//! miss rate.
//!
//! [`CowMetaTable`] is the *functional* table (what NVM holds);
//! [`CowCache`] is the on-chip cache in front of it. The memory
//! controller charges NVM traffic for table reads/writes that miss the
//! cache.

use std::collections::HashMap;

/// The in-NVM mapping `region → source region` for CoW pages.
///
/// A slot value of 0 means "no mapping"; stored values are
/// `source_region + 1`. The table is sparse in the simulator but its
/// NVM placement (and hence traffic) is governed by
/// [`crate::MetadataLayout`].
///
/// # Examples
///
/// ```
/// use lelantus_metadata::CowMetaTable;
///
/// let mut table = CowMetaTable::new();
/// table.set(10, Some(3));
/// assert_eq!(table.get(10), Some(3));
/// table.set(10, None);
/// assert_eq!(table.get(10), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CowMetaTable {
    slots: HashMap<u64, u64>,
}

impl CowMetaTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Source region recorded for `region`, if any.
    pub fn get(&self, region: u64) -> Option<u64> {
        self.slots.get(&region).copied()
    }

    /// Sets or clears the mapping of `region`.
    pub fn set(&mut self, region: u64, src: Option<u64>) {
        match src {
            Some(s) => {
                self.slots.insert(region, s);
            }
            None => {
                self.slots.remove(&region);
            }
        }
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Serializes the 8-byte slot value for `region` (wire format used
    /// when the slot's NVM line is written).
    pub fn slot_bytes(&self, region: u64) -> [u8; 8] {
        match self.get(region) {
            Some(src) => (src + 1).to_le_bytes(),
            None => [0; 8],
        }
    }

    /// Decodes an 8-byte slot value.
    pub fn decode_slot(bytes: [u8; 8]) -> Option<u64> {
        let v = u64::from_le_bytes(bytes);
        if v == 0 {
            None
        } else {
            Some(v - 1)
        }
    }
}

/// Statistics for the on-chip CoW cache (Fig 10b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowCacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (require an NVM table read).
    pub misses: u64,
}

impl CowCacheStats {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.misses as f64 / t as f64
        }
    }

    /// Interval counters: `self - earlier` field by field.
    pub fn delta_since(&self, earlier: &CowCacheStats) -> CowCacheStats {
        CowCacheStats { hits: self.hits - earlier.hits, misses: self.misses - earlier.misses }
    }
}

/// The small on-chip cache of CoW mappings.
///
/// Fully associative over `capacity` mappings with LRU replacement;
/// 4096 entries model the paper's 32 KB reservation (8 B each).
/// Entries cache *both* positive and negative results — "this region
/// has no source" is as useful as the source itself.
#[derive(Debug, Clone)]
pub struct CowCache {
    entries: HashMap<u64, (Option<u64>, u64)>,
    capacity: usize,
    tick: u64,
    stats: CowCacheStats,
}

impl CowCache {
    /// Creates a cache holding `capacity` mappings.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CoW cache needs capacity");
        Self { entries: HashMap::new(), capacity, tick: 0, stats: CowCacheStats::default() }
    }

    /// The paper's default: 32 KB of the counter cache, 8 B per entry.
    pub fn paper_default() -> Self {
        Self::new(4096)
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CowCacheStats {
        self.stats
    }

    /// Looks up `region`. `Some(mapping)` on hit (the mapping itself
    /// may be `None` = "known to have no source"), `None` on miss.
    pub fn lookup(&mut self, region: u64) -> Option<Option<u64>> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((mapping, lru)) = self.entries.get_mut(&region) {
            *lru = tick;
            self.stats.hits += 1;
            Some(*mapping)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Fills `region`'s mapping after an NVM table read (or updates it
    /// after a command), evicting LRU if full.
    pub fn fill(&mut self, region: u64, mapping: Option<u64>) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&region) {
            *e = (mapping, tick);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, lru))| *lru) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(region, (mapping, tick));
    }

    /// Drops `region` from the cache (e.g. on `page_free`).
    pub fn invalidate(&mut self, region: u64) {
        self.entries.remove(&region);
    }

    /// Number of cached mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip_and_slot_encoding() {
        let mut t = CowMetaTable::new();
        t.set(1, Some(0));
        assert_eq!(t.get(1), Some(0));
        assert_eq!(t.slot_bytes(1), 1u64.to_le_bytes());
        assert_eq!(CowMetaTable::decode_slot(t.slot_bytes(1)), Some(0));
        assert_eq!(CowMetaTable::decode_slot(t.slot_bytes(2)), None);
        t.set(1, None);
        assert!(t.is_empty());
    }

    #[test]
    fn cache_hit_miss_accounting() {
        let mut c = CowCache::new(8);
        assert_eq!(c.lookup(5), None);
        c.fill(5, Some(2));
        assert_eq!(c.lookup(5), Some(Some(2)));
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_caching() {
        let mut c = CowCache::new(8);
        c.fill(7, None);
        assert_eq!(c.lookup(7), Some(None), "negative entries hit too");
    }

    #[test]
    fn lru_eviction() {
        let mut c = CowCache::new(2);
        c.fill(1, Some(10));
        c.fill(2, Some(20));
        c.lookup(1); // 2 becomes LRU
        c.fill(3, Some(30));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(2).is_none(), "LRU entry evicted");
        assert_eq!(c.lookup(1), Some(Some(10)));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = CowCache::new(4);
        c.fill(9, Some(1));
        c.invalidate(9);
        assert!(c.lookup(9).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn fill_updates_existing() {
        let mut c = CowCache::new(4);
        c.fill(9, Some(1));
        c.fill(9, Some(2));
        assert_eq!(c.lookup(9), Some(Some(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        CowCache::new(0);
    }
}
