//! Per-line data MACs.
//!
//! The paper's substrate (Rogers et al.'s Bonsai Merkle Tree design,
//! its reference [29]) protects *counters* with the Merkle tree and
//! *data* with per-line MACs bound to the counter value — replaying a
//! data line then requires forging a MAC, and replaying a counter is
//! caught by the tree. This module provides the on-chip cache for
//! those MACs; the 8-byte tags themselves live in NVM (eight per
//! 64-byte metadata line, placed by [`crate::MetadataLayout`]) and the
//! memory controller computes them with its keyed hash.

use std::collections::{BTreeMap, HashMap};

/// Number of 8-byte MACs per 64-byte metadata line.
pub const MACS_PER_LINE: usize = 8;

/// Statistics for the MAC cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacCacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (NVM MAC-line fetch).
    pub misses: u64,
    /// Dirty MAC lines written back.
    pub writebacks: u64,
}

impl MacCacheStats {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.misses as f64 / t as f64
        }
    }
}

/// One cached MAC line: eight tags covering eight consecutive data
/// lines. A tag of 0 means "never written" (fresh NVM; no MAC to
/// check).
pub type MacLine = [u64; MACS_PER_LINE];

/// A dirty MAC line evicted from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedMacLine {
    /// Index of the MAC line within the MAC area.
    pub index: u64,
    /// The tags to serialize back to NVM.
    pub macs: MacLine,
}

/// Fully-associative LRU cache of MAC lines.
///
/// # Examples
///
/// ```
/// use lelantus_metadata::mac::MacCache;
///
/// let mut cache = MacCache::new(128);
/// assert!(cache.get(7).is_none());
/// cache.fill(7, [1, 2, 3, 4, 5, 6, 7, 8], false);
/// assert_eq!(cache.get(7).unwrap()[2], 3);
/// ```
#[derive(Debug, Clone)]
pub struct MacCache {
    entries: HashMap<u64, (MacLine, bool, u64)>,
    /// Reverse index lru-tick -> line index for O(log n) eviction.
    /// Ticks are unique (strictly monotonic per assignment), so the
    /// smallest key is exactly the line a linear min-scan would pick.
    lru: BTreeMap<u64, u64>,
    capacity: usize,
    tick: u64,
    stats: MacCacheStats,
}

impl MacCache {
    /// Creates a cache holding `capacity` MAC lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MAC cache needs capacity");
        Self {
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            capacity,
            tick: 0,
            stats: MacCacheStats::default(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> MacCacheStats {
        self.stats
    }

    /// Looks up MAC line `index`, updating LRU and hit/miss counters.
    pub fn get(&mut self, index: u64) -> Option<MacLine> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&index) {
            Some((line, _, lru)) => {
                let line = *line;
                let old = std::mem::replace(lru, tick);
                self.lru.remove(&old);
                self.lru.insert(tick, index);
                self.stats.hits += 1;
                Some(line)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a MAC line (fill after an NVM read, or a fresh update).
    /// Returns a dirty victim that must be written back.
    pub fn fill(&mut self, index: u64, macs: MacLine, dirty: bool) -> Option<EvictedMacLine> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&index) {
            e.0 = macs;
            e.1 |= dirty;
            let old = std::mem::replace(&mut e.2, tick);
            self.lru.remove(&old);
            self.lru.insert(tick, index);
            return None;
        }
        let victim = if self.entries.len() >= self.capacity {
            // Smallest tick = least recently used.
            self.lru.pop_first().and_then(|(_, k)| {
                let (line, was_dirty, _) = self.entries.remove(&k).expect("present");
                if was_dirty {
                    self.stats.writebacks += 1;
                    Some(EvictedMacLine { index: k, macs: line })
                } else {
                    None
                }
            })
        } else {
            None
        };
        self.entries.insert(index, (macs, dirty, tick));
        self.lru.insert(tick, index);
        victim
    }

    /// Updates one tag within a (resident) MAC line, marking it dirty.
    /// Returns false if the line is not resident.
    pub fn update_tag(&mut self, index: u64, slot: usize, tag: u64) -> bool {
        self.update_tags(index, &[(slot, tag)])
    }

    /// Applies a batch of `(slot, tag)` writes to one (resident) MAC
    /// line in order, marking it dirty. Exactly equivalent to that many
    /// sequential [`MacCache::update_tag`] calls — the LRU tick
    /// advances once per buffered write and the entry lands on the
    /// final tick — which is what lets a write combiner replay its
    /// pending updates in one cache access. Returns false (and still
    /// advances the tick) if the line is not resident.
    pub fn update_tags(&mut self, index: u64, updates: &[(usize, u64)]) -> bool {
        self.tick += updates.len() as u64;
        let tick = self.tick;
        match self.entries.get_mut(&index) {
            Some((line, dirty, lru)) => {
                for &(slot, tag) in updates {
                    line[slot] = tag;
                }
                *dirty = true;
                let old = std::mem::replace(lru, tick);
                self.lru.remove(&old);
                self.lru.insert(tick, index);
                true
            }
            None => false,
        }
    }

    /// Drains every dirty MAC line (flush / crash).
    pub fn drain_dirty(&mut self) -> Vec<EvictedMacLine> {
        let mut out = Vec::new();
        for (&index, entry) in self.entries.iter_mut() {
            if entry.1 {
                entry.1 = false;
                out.push(EvictedMacLine { index, macs: entry.0 });
            }
        }
        out.sort_by_key(|e| e.index);
        out
    }

    /// Drops all entries (power loss — MACs persist in NVM).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lru.clear();
    }

    /// Number of resident MAC lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Serializes a MAC line to its 64-byte NVM representation.
pub fn encode_mac_line(macs: &MacLine) -> [u8; 64] {
    let mut out = [0u8; 64];
    for (i, mac) in macs.iter().enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&mac.to_le_bytes());
    }
    out
}

/// Deserializes a MAC line from its 64-byte NVM representation.
pub fn decode_mac_line(bytes: &[u8; 64]) -> MacLine {
    let mut out = [0u64; MACS_PER_LINE];
    for (i, mac) in out.iter_mut().enumerate() {
        *mac = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_get_update() {
        let mut c = MacCache::new(4);
        assert!(c.get(1).is_none());
        c.fill(1, [10; 8], false);
        assert_eq!(c.get(1), Some([10; 8]));
        assert!(c.update_tag(1, 3, 99));
        assert_eq!(c.get(1).unwrap()[3], 99);
        assert!(!c.update_tag(2, 0, 1), "missing line");
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn dirty_eviction() {
        let mut c = MacCache::new(2);
        c.fill(1, [1; 8], true);
        c.fill(2, [2; 8], false);
        c.get(2); // 1 becomes LRU
        let v = c.fill(3, [3; 8], false).expect("dirty victim");
        assert_eq!(v.index, 1);
        assert_eq!(v.macs, [1; 8]);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = MacCache::new(1);
        c.fill(1, [1; 8], false);
        assert!(c.fill(2, [2; 8], false).is_none());
    }

    #[test]
    fn drain_and_clear() {
        let mut c = MacCache::new(4);
        c.fill(1, [1; 8], true);
        c.fill(2, [2; 8], true);
        c.fill(3, [3; 8], false);
        let drained = c.drain_dirty();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].index, 1);
        assert!(c.drain_dirty().is_empty());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn batched_updates_match_sequential() {
        // Two caches, one driven tag-by-tag, one by the batch API: the
        // observable state (contents, LRU victims, stats) must match.
        let mut seq = MacCache::new(2);
        let mut bat = MacCache::new(2);
        for c in [&mut seq, &mut bat] {
            c.fill(1, [0; 8], false);
            c.fill(2, [0; 8], false);
        }
        let updates: Vec<(usize, u64)> = (0..8).map(|s| (s, 100 + s as u64)).collect();
        for &(slot, tag) in &updates {
            assert!(seq.update_tag(1, slot, tag));
        }
        assert!(bat.update_tags(1, &updates));
        assert_eq!(seq.get(1), bat.get(1));
        // Line 2 is now LRU in both; the next fill evicts it, not the
        // freshly-updated line 1.
        let vs = seq.fill(3, [3; 8], false);
        let vb = bat.fill(3, [3; 8], false);
        assert_eq!(vs, vb);
        assert!(seq.get(1).is_some() && bat.get(1).is_some());
        assert_eq!(seq.stats(), bat.stats());
        // A miss still advances the clock but reports false.
        assert!(!bat.update_tags(99, &[(0, 1)]));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let macs = [0x1122334455667788u64, 1, 2, 3, 4, 5, 6, u64::MAX];
        assert_eq!(decode_mac_line(&encode_mac_line(&macs)), macs);
    }
}
