//! Bit-exact counter-block encodings.
//!
//! A counter block is always 64 bytes (512 bits) and covers one 4 KB
//! region (64 cachelines). Two layouts exist:
//!
//! * **Classic** (paper Figure 3/5; used by the baseline, Silent
//!   Shredder, and Lelantus-CoW): `major:64 ‖ minor[0..64]:7 each` —
//!   exactly 512 bits.
//! * **Resized** (paper Figure 4; Lelantus Solution 1): a 1-bit
//!   `CoW_Flag` selects between
//!   `flag=0 ‖ major:63 ‖ minor[0..64]:7 each` (regular page) and
//!   `flag=1 ‖ major:63 ‖ minor[0..64]:6 each ‖ src_addr:64` (CoW
//!   page) — both exactly 512 bits.
//!
//! Minor value **0 is reserved** on CoW pages to mean "this line has
//! not been copied yet"; the first write moves it to 1, which is how a
//! copy completes implicitly (paper §III-B).

/// Number of minor counters (lines) per counter block.
pub const MINORS: usize = 64;

/// Which codec implementation (de)serializes counter blocks.
///
/// Both produce bit-identical wire bytes; [`CounterCodec::Word`] packs
/// minors through u64 shift/mask words (eight 6/7-bit minors per
/// word), while [`CounterCodec::Reference`] is the original
/// bit-by-bit loop kept as the behavioural oracle — the same pattern
/// as the AES `reference` backend behind
/// `SimConfig::with_reference_aes`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CounterCodec {
    /// Word-level bit packing (the fast default).
    #[default]
    Word,
    /// The original bit-by-bit loops (equivalence-test oracle).
    Reference,
}

/// Which wire format a counter block is serialized with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterEncoding {
    /// 64-bit major, 7-bit minors, no CoW fields (baseline /
    /// Silent Shredder / Lelantus-CoW).
    Classic,
    /// 1-bit flag picks regular (63/7) or CoW (63/6 + source address)
    /// layout (Lelantus Solution 1).
    Resized,
}

impl CounterEncoding {
    /// Largest minor-counter value representable for a page of the
    /// given kind under this encoding.
    pub fn minor_max(self, is_cow: bool) -> u8 {
        match (self, is_cow) {
            (CounterEncoding::Classic, _) => 127,
            (CounterEncoding::Resized, false) => 127,
            (CounterEncoding::Resized, true) => 63,
        }
    }

    /// Largest major-counter value representable.
    pub fn major_max(self) -> u64 {
        match self {
            CounterEncoding::Classic => u64::MAX,
            CounterEncoding::Resized => (1u64 << 63) - 1,
        }
    }
}

/// Error: a minor counter reached its ceiling and the region must be
/// re-encrypted under a bumped major counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinorOverflow {
    /// The line whose minor counter overflowed.
    pub line: usize,
}

impl std::fmt::Display for MinorOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "minor counter overflow on line {}", self.line)
    }
}

impl std::error::Error for MinorOverflow {}

/// A decoded counter block.
///
/// `cow_src` is `Some(region)` when the block describes a CoW page
/// copied from `region` (a 4 KB-region index). Under the
/// [`CounterEncoding::Classic`] wire format that field cannot be
/// serialized — Solution 2 stores it in the supplementary table
/// ([`crate::cow_meta`]) instead, and [`CounterBlock::encode`] will
/// panic if asked to serialize a CoW block classically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterBlock {
    /// Region-shared major counter.
    pub major: u64,
    /// Per-line minor counters (semantically 6- or 7-bit).
    pub minors: [u8; MINORS],
    /// Source region index when this covers a CoW page (Solution 1
    /// keeps it in-band; Solution 2 keeps it out-of-band but mirrors it
    /// here in the decoded view for uniform handling).
    pub cow_src: Option<u64>,
}

impl Default for CounterBlock {
    fn default() -> Self {
        Self::fresh_regular(1)
    }
}

impl CounterBlock {
    /// A regular-page block with every minor set to `minor_init`
    /// (use 1 to keep 0 reserved for the CoW marker) and major 1.
    pub fn fresh_regular(minor_init: u8) -> Self {
        Self { major: 1, minors: [minor_init; MINORS], cow_src: None }
    }

    /// A CoW-page block: all minors zero (nothing copied yet), source
    /// region recorded.
    pub fn fresh_cow(src_region: u64) -> Self {
        Self { major: 1, minors: [0; MINORS], cow_src: Some(src_region) }
    }

    /// Whether the block currently describes a CoW page.
    pub fn is_cow(&self) -> bool {
        self.cow_src.is_some()
    }

    /// Source region index for a CoW page.
    pub fn cow_source(&self) -> Option<u64> {
        self.cow_src
    }

    /// True when line `line` of a CoW page has not been copied yet
    /// (reserved minor value 0). Always false on regular pages.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn is_line_uncopied(&self, line: usize) -> bool {
        assert!(line < MINORS, "line index out of range");
        self.is_cow() && self.minors[line] == 0
    }

    /// Number of lines still uncopied (0 on regular pages).
    pub fn uncopied_lines(&self) -> usize {
        if self.is_cow() {
            self.minors.iter().filter(|&&m| m == 0).count()
        } else {
            0
        }
    }

    /// Increments the minor counter of `line` for a write under
    /// `encoding`, reporting overflow when the ceiling is reached.
    ///
    /// # Errors
    ///
    /// Returns [`MinorOverflow`] when the minor counter cannot be
    /// incremented further; the caller must re-encrypt the region with
    /// a bumped major counter.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn increment_minor(
        &mut self,
        line: usize,
        encoding: CounterEncoding,
    ) -> Result<u8, MinorOverflow> {
        assert!(line < MINORS, "line index out of range");
        let max = encoding.minor_max(self.is_cow());
        if self.minors[line] >= max {
            return Err(MinorOverflow { line });
        }
        self.minors[line] += 1;
        Ok(self.minors[line])
    }

    /// Converts a CoW block into a regular block after all its lines
    /// have been physically materialized: the major advances (fresh
    /// encryption epoch) and every minor restarts at 1.
    pub fn materialize_to_regular(&mut self) {
        self.major += 1;
        self.minors = [1; MINORS];
        self.cow_src = None;
    }

    /// Resets after a region re-encryption: bump major, minors to 1.
    pub fn reencrypt_epoch(&mut self) {
        self.major += 1;
        let is_cow = self.is_cow();
        for m in &mut self.minors {
            // Uncopied CoW lines keep their reserved 0 marker.
            if *m != 0 || !is_cow {
                *m = 1;
            }
        }
    }

    /// Serializes to the 64-byte wire format with the fast
    /// [`CounterCodec::Word`] codec.
    ///
    /// # Panics
    ///
    /// Panics if the block is not representable: a CoW block under
    /// [`CounterEncoding::Classic`], a minor or major exceeding the
    /// encoding's ceiling.
    pub fn encode(&self, encoding: CounterEncoding) -> [u8; 64] {
        self.encode_with(encoding, CounterCodec::Word)
    }

    /// Deserializes from the 64-byte wire format with the fast
    /// [`CounterCodec::Word`] codec.
    pub fn decode(bytes: &[u8; 64], encoding: CounterEncoding) -> Self {
        Self::decode_with(bytes, encoding, CounterCodec::Word)
    }

    /// Serializes with an explicit codec (see [`CounterCodec`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`CounterBlock::encode`], with identical
    /// messages under either codec.
    pub fn encode_with(&self, encoding: CounterEncoding, codec: CounterCodec) -> [u8; 64] {
        match codec {
            CounterCodec::Word => self.encode_word(encoding),
            CounterCodec::Reference => self.encode_reference(encoding),
        }
    }

    /// Deserializes with an explicit codec (see [`CounterCodec`]).
    pub fn decode_with(bytes: &[u8; 64], encoding: CounterEncoding, codec: CounterCodec) -> Self {
        match codec {
            CounterCodec::Word => Self::decode_word(bytes, encoding),
            CounterCodec::Reference => Self::decode_reference(bytes, encoding),
        }
    }

    /// Word-level encoder: the major (and flag bit) land as one
    /// little-endian u64; minors pack eight at a time through u64
    /// shifts (8 × 7 bits = 56 bits = 7 bytes for regular minors,
    /// 8 × 6 bits = 48 bits = 6 bytes for CoW minors), branch-free per
    /// group. Bit layout is identical to the reference codec because
    /// the wire format is LSB-first within each byte — exactly the
    /// order a little-endian u64 store produces.
    fn encode_word(&self, encoding: CounterEncoding) -> [u8; 64] {
        let mut buf = [0u8; 64];
        match encoding {
            CounterEncoding::Classic => {
                assert!(
                    !self.is_cow(),
                    "classic encoding has no in-band CoW fields (use the supplementary table)"
                );
                buf[..8].copy_from_slice(&self.major.to_le_bytes());
                pack_minors7(&mut buf, &self.minors, "classic minor is 7-bit");
            }
            CounterEncoding::Resized => {
                assert!(self.major <= encoding.major_max(), "resized major is 63-bit");
                match self.cow_src {
                    None => {
                        buf[..8].copy_from_slice(&(self.major << 1).to_le_bytes());
                        pack_minors7(&mut buf, &self.minors, "regular minor is 7-bit");
                    }
                    Some(src) => {
                        buf[..8].copy_from_slice(&((self.major << 1) | 1).to_le_bytes());
                        pack_minors6(&mut buf, &self.minors);
                        buf[56..64].copy_from_slice(&src.to_le_bytes());
                    }
                }
            }
        }
        buf
    }

    /// Word-level decoder (see [`CounterBlock::encode_word`]).
    fn decode_word(bytes: &[u8; 64], encoding: CounterEncoding) -> Self {
        let word0 = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        match encoding {
            CounterEncoding::Classic => {
                Self { major: word0, minors: unpack_minors7(bytes), cow_src: None }
            }
            CounterEncoding::Resized => {
                let major = word0 >> 1;
                if word0 & 1 == 0 {
                    Self { major, minors: unpack_minors7(bytes), cow_src: None }
                } else {
                    let src = u64::from_le_bytes(bytes[56..64].try_into().expect("8 bytes"));
                    Self { major, minors: unpack_minors6(bytes), cow_src: Some(src) }
                }
            }
        }
    }

    /// The original bit-by-bit encoder, kept as the equivalence oracle.
    fn encode_reference(&self, encoding: CounterEncoding) -> [u8; 64] {
        let mut buf = [0u8; 64];
        match encoding {
            CounterEncoding::Classic => {
                assert!(
                    !self.is_cow(),
                    "classic encoding has no in-band CoW fields (use the supplementary table)"
                );
                write_bits(&mut buf, 0, 64, self.major);
                for (i, &m) in self.minors.iter().enumerate() {
                    assert!(m <= 127, "classic minor is 7-bit");
                    write_bits(&mut buf, 64 + 7 * i, 7, m as u64);
                }
            }
            CounterEncoding::Resized => {
                assert!(self.major <= encoding.major_max(), "resized major is 63-bit");
                match self.cow_src {
                    None => {
                        write_bits(&mut buf, 0, 1, 0);
                        write_bits(&mut buf, 1, 63, self.major);
                        for (i, &m) in self.minors.iter().enumerate() {
                            assert!(m <= 127, "regular minor is 7-bit");
                            write_bits(&mut buf, 64 + 7 * i, 7, m as u64);
                        }
                    }
                    Some(src) => {
                        write_bits(&mut buf, 0, 1, 1);
                        write_bits(&mut buf, 1, 63, self.major);
                        for (i, &m) in self.minors.iter().enumerate() {
                            assert!(m <= 63, "CoW minor is 6-bit");
                            write_bits(&mut buf, 64 + 6 * i, 6, m as u64);
                        }
                        write_bits(&mut buf, 64 + 6 * MINORS, 64, src);
                    }
                }
            }
        }
        buf
    }

    /// The original bit-by-bit decoder, kept as the equivalence oracle.
    fn decode_reference(bytes: &[u8; 64], encoding: CounterEncoding) -> Self {
        match encoding {
            CounterEncoding::Classic => {
                let major = read_bits(bytes, 0, 64);
                let mut minors = [0u8; MINORS];
                for (i, m) in minors.iter_mut().enumerate() {
                    *m = read_bits(bytes, 64 + 7 * i, 7) as u8;
                }
                Self { major, minors, cow_src: None }
            }
            CounterEncoding::Resized => {
                let flag = read_bits(bytes, 0, 1);
                let major = read_bits(bytes, 1, 63);
                if flag == 0 {
                    let mut minors = [0u8; MINORS];
                    for (i, m) in minors.iter_mut().enumerate() {
                        *m = read_bits(bytes, 64 + 7 * i, 7) as u8;
                    }
                    Self { major, minors, cow_src: None }
                } else {
                    let mut minors = [0u8; MINORS];
                    for (i, m) in minors.iter_mut().enumerate() {
                        *m = read_bits(bytes, 64 + 6 * i, 6) as u8;
                    }
                    let src = read_bits(bytes, 64 + 6 * MINORS, 64);
                    Self { major, minors, cow_src: Some(src) }
                }
            }
        }
    }
}

/// Packs 64 seven-bit minors into bytes 8..64: each group of eight
/// minors is exactly 56 bits, built in one u64 and stored as seven
/// little-endian bytes.
fn pack_minors7(buf: &mut [u8; 64], minors: &[u8; MINORS], ceiling_msg: &str) {
    for g in 0..8 {
        let mut w = 0u64;
        for j in 0..8 {
            let m = minors[8 * g + j];
            assert!(m <= 127, "{}", ceiling_msg);
            w |= (m as u64) << (7 * j);
        }
        buf[8 + 7 * g..8 + 7 * g + 7].copy_from_slice(&w.to_le_bytes()[..7]);
    }
}

/// Packs 64 six-bit CoW minors into bytes 8..56: each group of eight
/// minors is 48 bits, stored as six little-endian bytes.
fn pack_minors6(buf: &mut [u8; 64], minors: &[u8; MINORS]) {
    for g in 0..8 {
        let mut w = 0u64;
        for j in 0..8 {
            let m = minors[8 * g + j];
            assert!(m <= 63, "CoW minor is 6-bit");
            w |= (m as u64) << (6 * j);
        }
        buf[8 + 6 * g..8 + 6 * g + 6].copy_from_slice(&w.to_le_bytes()[..6]);
    }
}

/// Inverse of [`pack_minors7`].
fn unpack_minors7(bytes: &[u8; 64]) -> [u8; MINORS] {
    let mut minors = [0u8; MINORS];
    for g in 0..8 {
        let mut word = [0u8; 8];
        word[..7].copy_from_slice(&bytes[8 + 7 * g..8 + 7 * g + 7]);
        let w = u64::from_le_bytes(word);
        for j in 0..8 {
            minors[8 * g + j] = ((w >> (7 * j)) & 0x7f) as u8;
        }
    }
    minors
}

/// Inverse of [`pack_minors6`].
fn unpack_minors6(bytes: &[u8; 64]) -> [u8; MINORS] {
    let mut minors = [0u8; MINORS];
    for g in 0..8 {
        let mut word = [0u8; 8];
        word[..6].copy_from_slice(&bytes[8 + 6 * g..8 + 6 * g + 6]);
        let w = u64::from_le_bytes(word);
        for j in 0..8 {
            minors[8 * g + j] = ((w >> (6 * j)) & 0x3f) as u8;
        }
    }
    minors
}

/// Reads `len` (≤ 64) bits starting at absolute bit `start` (LSB-first
/// within each byte).
fn read_bits(buf: &[u8; 64], start: usize, len: usize) -> u64 {
    debug_assert!(len <= 64 && start + len <= 512);
    let mut out = 0u64;
    for i in 0..len {
        let bit = start + i;
        let byte = bit / 8;
        let off = bit % 8;
        if buf[byte] >> off & 1 == 1 {
            out |= 1 << i;
        }
    }
    out
}

/// Writes `len` (≤ 64) bits of `val` starting at absolute bit `start`.
fn write_bits(buf: &mut [u8; 64], start: usize, len: usize, val: u64) {
    debug_assert!(len <= 64 && start + len <= 512);
    debug_assert!(len == 64 || val < (1u64 << len), "value does not fit field");
    for i in 0..len {
        let bit = start + i;
        let byte = bit / 8;
        let off = bit % 8;
        if val >> i & 1 == 1 {
            buf[byte] |= 1 << off;
        } else {
            buf[byte] &= !(1 << off);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_roundtrip() {
        let mut b = CounterBlock::fresh_regular(1);
        b.major = 0xDEAD_BEEF_CAFE_F00D;
        b.minors[0] = 127;
        b.minors[63] = 99;
        let bytes = b.encode(CounterEncoding::Classic);
        assert_eq!(CounterBlock::decode(&bytes, CounterEncoding::Classic), b);
    }

    #[test]
    fn resized_regular_roundtrip() {
        let mut b = CounterBlock::fresh_regular(3);
        b.major = (1 << 63) - 1;
        b.minors[17] = 127;
        let bytes = b.encode(CounterEncoding::Resized);
        let back = CounterBlock::decode(&bytes, CounterEncoding::Resized);
        assert_eq!(back, b);
        assert!(!back.is_cow());
    }

    #[test]
    fn resized_cow_roundtrip() {
        let mut b = CounterBlock::fresh_cow(0x0123_4567_89AB_CDEF);
        b.minors[5] = 63;
        b.major = 42;
        let bytes = b.encode(CounterEncoding::Resized);
        let back = CounterBlock::decode(&bytes, CounterEncoding::Resized);
        assert_eq!(back, b);
        assert_eq!(back.cow_source(), Some(0x0123_4567_89AB_CDEF));
        assert!(back.is_line_uncopied(4));
        assert!(!back.is_line_uncopied(5));
    }

    #[test]
    fn layouts_occupy_full_block() {
        // The flag bit flips the interpretation of every other field:
        // a CoW block and a regular block with identical counters must
        // serialize differently.
        let cow = CounterBlock::fresh_cow(9).encode(CounterEncoding::Resized);
        let reg = CounterBlock::fresh_regular(0).encode(CounterEncoding::Resized);
        assert_ne!(cow, reg);
        assert_eq!(cow[0] & 1, 1, "CoW flag is bit 0");
        assert_eq!(reg[0] & 1, 0);
    }

    #[test]
    #[should_panic(expected = "classic encoding has no in-band CoW fields")]
    fn classic_cannot_encode_cow() {
        CounterBlock::fresh_cow(1).encode(CounterEncoding::Classic);
    }

    #[test]
    #[should_panic(expected = "CoW minor is 6-bit")]
    fn resized_cow_minor_ceiling_enforced() {
        let mut b = CounterBlock::fresh_cow(1);
        b.minors[0] = 64;
        b.encode(CounterEncoding::Resized);
    }

    #[test]
    fn increment_and_overflow() {
        let mut b = CounterBlock::fresh_cow(1);
        for expected in 1..=63u8 {
            assert_eq!(b.increment_minor(7, CounterEncoding::Resized), Ok(expected));
        }
        assert_eq!(b.increment_minor(7, CounterEncoding::Resized), Err(MinorOverflow { line: 7 }));
        // Classic minors go to 127.
        let mut r = CounterBlock::fresh_regular(1);
        for _ in 0..126 {
            r.increment_minor(0, CounterEncoding::Classic).unwrap();
        }
        assert!(r.increment_minor(0, CounterEncoding::Classic).is_err());
    }

    #[test]
    fn materialize_clears_cow_state() {
        let mut b = CounterBlock::fresh_cow(5);
        b.minors[3] = 2;
        b.materialize_to_regular();
        assert!(!b.is_cow());
        assert_eq!(b.major, 2);
        assert_eq!(b.minors, [1; MINORS]);
        assert_eq!(b.uncopied_lines(), 0);
    }

    #[test]
    fn reencrypt_preserves_uncopied_markers() {
        let mut b = CounterBlock::fresh_cow(5);
        b.minors[0] = 63;
        b.minors[1] = 10;
        b.reencrypt_epoch();
        assert_eq!(b.major, 2);
        assert_eq!(b.minors[0], 1);
        assert_eq!(b.minors[1], 1);
        assert_eq!(b.minors[2], 0, "uncopied marker must survive re-encryption");
        assert!(b.is_line_uncopied(2));
    }

    #[test]
    fn uncopied_count() {
        let mut b = CounterBlock::fresh_cow(1);
        assert_eq!(b.uncopied_lines(), 64);
        b.minors[0] = 1;
        b.minors[1] = 1;
        assert_eq!(b.uncopied_lines(), 62);
        assert_eq!(CounterBlock::fresh_regular(0).uncopied_lines(), 0);
    }

    #[test]
    fn bit_helpers() {
        let mut buf = [0u8; 64];
        write_bits(&mut buf, 3, 13, 0x1ABC & 0x1FFF);
        assert_eq!(read_bits(&buf, 3, 13), 0x1ABC & 0x1FFF);
        write_bits(&mut buf, 448, 64, u64::MAX);
        assert_eq!(read_bits(&buf, 448, 64), u64::MAX);
        // Overwrite with zeros clears.
        write_bits(&mut buf, 448, 64, 0);
        assert_eq!(read_bits(&buf, 448, 64), 0);
    }

    proptest! {
        #[test]
        fn prop_classic_roundtrip(major in any::<u64>(),
                                  minors in prop::array::uniform32(0u8..=127)) {
            let mut b = CounterBlock::fresh_regular(0);
            b.major = major;
            for (i, m) in minors.iter().enumerate() {
                b.minors[i * 2] = *m;
            }
            let bytes = b.encode(CounterEncoding::Classic);
            prop_assert_eq!(CounterBlock::decode(&bytes, CounterEncoding::Classic), b);
        }

        #[test]
        fn prop_resized_cow_roundtrip(major in 0u64..(1 << 63),
                                      src in any::<u64>(),
                                      minors in prop::array::uniform32(0u8..=63)) {
            let mut b = CounterBlock::fresh_cow(src);
            b.major = major;
            for (i, m) in minors.iter().enumerate() {
                b.minors[i * 2 + 1] = *m;
            }
            let bytes = b.encode(CounterEncoding::Resized);
            prop_assert_eq!(CounterBlock::decode(&bytes, CounterEncoding::Resized), b);
        }

        #[test]
        fn prop_bits_roundtrip(start in 0usize..448, len in 1usize..=64, val in any::<u64>()) {
            prop_assume!(start + len <= 512);
            let masked = if len == 64 { val } else { val & ((1u64 << len) - 1) };
            let mut buf = [0xA5u8; 64];
            write_bits(&mut buf, start, len, masked);
            prop_assert_eq!(read_bits(&buf, start, len), masked);
        }
    }

    /// Checks one block against both codecs under one encoding: the
    /// wire bytes must be byte-identical, and all four
    /// (codec × direction) combinations must return the block.
    fn assert_codecs_agree(b: &CounterBlock, encoding: CounterEncoding) {
        let word = b.encode_with(encoding, CounterCodec::Word);
        let reference = b.encode_with(encoding, CounterCodec::Reference);
        assert_eq!(word, reference, "codecs disagree on wire bytes ({encoding:?})");
        assert_eq!(&CounterBlock::decode_with(&word, encoding, CounterCodec::Word), b);
        assert_eq!(&CounterBlock::decode_with(&word, encoding, CounterCodec::Reference), b);
    }

    // Word-codec equivalence: the fast path must be byte-identical to
    // the bit-by-bit reference for every encoding (ISSUE 3 satellite).
    proptest! {
        /// Solution-2 layout (7-bit minors), classic encoding.
        #[test]
        fn prop_word_codec_matches_reference_classic(
            major in any::<u64>(),
            lo in prop::array::uniform32(0u8..=127),
            hi in prop::array::uniform32(0u8..=127),
        ) {
            let mut b = CounterBlock::fresh_regular(0);
            b.major = major;
            b.minors[..32].copy_from_slice(&lo);
            b.minors[32..].copy_from_slice(&hi);
            assert_codecs_agree(&b, CounterEncoding::Classic);
        }

        /// Solution-2 layout (flag = 0, 7-bit minors), resized encoding.
        #[test]
        fn prop_word_codec_matches_reference_resized_regular(
            major in 0u64..(1 << 63),
            lo in prop::array::uniform32(0u8..=127),
            hi in prop::array::uniform32(0u8..=127),
        ) {
            let mut b = CounterBlock::fresh_regular(0);
            b.major = major;
            b.minors[..32].copy_from_slice(&lo);
            b.minors[32..].copy_from_slice(&hi);
            assert_codecs_agree(&b, CounterEncoding::Resized);
        }

        /// Solution-1 layout (flag = 1, 6-bit minors + source address).
        #[test]
        fn prop_word_codec_matches_reference_resized_cow(
            major in 0u64..(1 << 63),
            src in any::<u64>(),
            lo in prop::array::uniform32(0u8..=63),
            hi in prop::array::uniform32(0u8..=63),
        ) {
            let mut b = CounterBlock::fresh_cow(src);
            b.major = major;
            b.minors[..32].copy_from_slice(&lo);
            b.minors[32..].copy_from_slice(&hi);
            assert_codecs_agree(&b, CounterEncoding::Resized);
        }
    }

    #[test]
    fn word_codec_matches_reference_edge_cases() {
        // All-zero minors: the freshly-CoW'd "no line copied yet"
        // block, plus its regular twin.
        assert_codecs_agree(&CounterBlock::fresh_cow(0), CounterEncoding::Resized);
        assert_codecs_agree(&CounterBlock::fresh_cow(u64::MAX), CounterEncoding::Resized);
        let mut zero = CounterBlock::fresh_regular(0);
        zero.minors = [0; MINORS];
        assert_codecs_agree(&zero, CounterEncoding::Classic);
        assert_codecs_agree(&zero, CounterEncoding::Resized);

        // Saturated minors at each encoding's ceiling (the overflow
        // boundary increment_minor stops at).
        let mut sat = CounterBlock::fresh_regular(0);
        sat.major = u64::MAX;
        sat.minors = [127; MINORS];
        assert_codecs_agree(&sat, CounterEncoding::Classic);
        sat.major = (1 << 63) - 1;
        assert_codecs_agree(&sat, CounterEncoding::Resized);
        let mut cow_sat = CounterBlock::fresh_cow(u64::MAX);
        cow_sat.major = (1 << 63) - 1;
        cow_sat.minors = [63; MINORS];
        assert_codecs_agree(&cow_sat, CounterEncoding::Resized);
    }

    #[test]
    #[should_panic(expected = "CoW minor is 6-bit")]
    fn word_codec_enforces_cow_minor_ceiling() {
        let mut b = CounterBlock::fresh_cow(1);
        b.minors[63] = 64;
        b.encode_with(CounterEncoding::Resized, CounterCodec::Word);
    }

    #[test]
    #[should_panic(expected = "classic encoding has no in-band CoW fields")]
    fn word_codec_rejects_classic_cow() {
        CounterBlock::fresh_cow(1).encode_with(CounterEncoding::Classic, CounterCodec::Word);
    }
}
