//! Physical placement of security metadata in NVM.
//!
//! Counter blocks and (for Solution 2) the CoW-metadata table live in
//! NVM like everything else, in reserved areas above the OS-visible
//! data space. Charging their traffic through the same device is what
//! makes the "extra RW traffic" column of the paper's Table I and
//! Lelantus-CoW's ~5 % extra writes (§V-C) measurable.

use lelantus_types::{PhysAddr, LINE_BYTES, REGION_BYTES};

/// Address map: `[0, data_bytes)` is ordinary data, followed by the
/// counter-block area (64 B per 4 KB region, i.e. 1.5625 % overhead),
/// the CoW-metadata table (8 B per region, 0.02 % — Table I), and the
/// per-line data-MAC area (8 B per 64 B line, the Rogers et al. [29]
/// substrate the paper assumes).
///
/// # Examples
///
/// ```
/// use lelantus_metadata::MetadataLayout;
/// use lelantus_types::PhysAddr;
///
/// let layout = MetadataLayout::for_data_bytes(1 << 30);
/// let ctr = layout.counter_addr_of(PhysAddr::new(0x1234));
/// assert!(ctr.as_u64() >= 1 << 30, "metadata lives above the data area");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetadataLayout {
    /// Size of the OS-visible data area in bytes.
    pub data_bytes: u64,
    /// Base of the counter-block area.
    pub counter_base: u64,
    /// Base of the supplementary CoW-metadata table.
    pub cow_meta_base: u64,
    /// Base of the per-line data-MAC area.
    pub mac_base: u64,
}

impl MetadataLayout {
    /// Builds the layout for a data area of `data_bytes` (rounded up to
    /// a whole number of 4 KB regions).
    ///
    /// # Panics
    ///
    /// Panics if `data_bytes` is zero.
    pub fn for_data_bytes(data_bytes: u64) -> Self {
        assert!(data_bytes > 0, "data area must be nonzero");
        let data_bytes = data_bytes.div_ceil(REGION_BYTES) * REGION_BYTES;
        let regions = data_bytes / REGION_BYTES;
        let counter_base = data_bytes;
        let counter_area = regions * LINE_BYTES as u64;
        let cow_meta_base = counter_base + counter_area;
        let cow_meta_area = (regions * 8).div_ceil(LINE_BYTES as u64) * LINE_BYTES as u64;
        let mac_base = cow_meta_base + cow_meta_area;
        Self { data_bytes, counter_base, cow_meta_base, mac_base }
    }

    /// Number of 4 KB regions in the data area.
    pub fn regions(&self) -> u64 {
        self.data_bytes / REGION_BYTES
    }

    /// Region index of a data address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not in the data area.
    pub fn region_of(&self, addr: PhysAddr) -> u64 {
        assert!(addr.as_u64() < self.data_bytes, "address {addr} outside data area");
        addr.as_u64() / REGION_BYTES
    }

    /// Base data address of region `region`.
    pub fn region_base(&self, region: u64) -> PhysAddr {
        PhysAddr::new(region * REGION_BYTES)
    }

    /// NVM address of the counter block covering `addr`.
    pub fn counter_addr_of(&self, addr: PhysAddr) -> PhysAddr {
        self.counter_addr_of_region(self.region_of(addr))
    }

    /// NVM address of the counter block for region `region`.
    pub fn counter_addr_of_region(&self, region: u64) -> PhysAddr {
        PhysAddr::new(self.counter_base + region * LINE_BYTES as u64)
    }

    /// NVM line address holding the 8-byte CoW-metadata slot of
    /// `region`, together with the byte offset of the slot in the line.
    pub fn cow_meta_slot_of_region(&self, region: u64) -> (PhysAddr, usize) {
        let byte = self.cow_meta_base + region * 8;
        (PhysAddr::new(byte).line_align(), (byte % LINE_BYTES as u64) as usize)
    }

    /// NVM line holding the MAC of the data line containing `addr`,
    /// plus the tag's slot index within that MAC line.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not in the data area.
    pub fn mac_slot_of_line(&self, addr: PhysAddr) -> (PhysAddr, usize) {
        assert!(addr.as_u64() < self.data_bytes, "address {addr} outside data area");
        let line_index = addr.as_u64() / LINE_BYTES as u64;
        let byte = self.mac_base + line_index * 8;
        (PhysAddr::new(byte).line_align(), ((byte % LINE_BYTES as u64) / 8) as usize)
    }

    /// Index of the MAC line (within the MAC area) holding `addr`'s tag.
    pub fn mac_line_index(&self, addr: PhysAddr) -> u64 {
        (self.mac_slot_of_line(addr).0.as_u64() - self.mac_base) / LINE_BYTES as u64
    }

    /// Total metadata bytes (counters + CoW table + MACs).
    pub fn metadata_bytes(&self) -> u64 {
        self.regions() * (LINE_BYTES as u64 + 8) + self.data_bytes / 8
    }

    /// Shard owning `region` under a region-interleaved partition into
    /// `shards` slices. A region's 64 data lines, its counter block
    /// (tree leaf) and its 8 MAC lines all map to the same shard —
    /// every per-line metadata structure is region-granular — so a
    /// partition on this key never splits one region's state across
    /// workers.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn shard_of_region(&self, region: u64, shards: usize) -> usize {
        assert!(shards > 0, "need at least one shard");
        (region % shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_arithmetic() {
        let l = MetadataLayout::for_data_bytes(1 << 20); // 1 MiB = 256 regions
        assert_eq!(l.regions(), 256);
        assert_eq!(l.counter_base, 1 << 20);
        assert_eq!(l.cow_meta_base, (1 << 20) + 256 * 64);
        assert_eq!(l.metadata_bytes(), 256 * 72 + (1 << 20) / 8);
    }

    #[test]
    fn counter_addresses_are_disjoint_per_region() {
        let l = MetadataLayout::for_data_bytes(1 << 20);
        let a = l.counter_addr_of(PhysAddr::new(0));
        let b = l.counter_addr_of(PhysAddr::new(4096));
        assert_eq!(b - a, 64);
    }

    #[test]
    fn cow_slots_pack_eight_per_line() {
        let l = MetadataLayout::for_data_bytes(1 << 20);
        let (line0, off0) = l.cow_meta_slot_of_region(0);
        let (line7, off7) = l.cow_meta_slot_of_region(7);
        let (line8, off8) = l.cow_meta_slot_of_region(8);
        assert_eq!(line0, line7);
        assert_eq!(off0, 0);
        assert_eq!(off7, 56);
        assert_ne!(line0, line8);
        assert_eq!(off8, 0);
    }

    #[test]
    fn rounds_up_to_whole_regions() {
        let l = MetadataLayout::for_data_bytes(5000);
        assert_eq!(l.data_bytes, 8192);
        assert_eq!(l.regions(), 2);
    }

    #[test]
    #[should_panic(expected = "outside data area")]
    fn out_of_range_address_panics() {
        let l = MetadataLayout::for_data_bytes(4096);
        l.region_of(PhysAddr::new(4096));
    }

    #[test]
    fn shard_partition_coowns_region_metadata() {
        let l = MetadataLayout::for_data_bytes(1 << 20);
        assert_eq!(l.shard_of_region(0, 3), 0);
        assert_eq!(l.shard_of_region(7, 3), 1);
        // All 8 MAC lines of one region index back to that region: the
        // MAC area advances 512 data bytes per MAC line, 4096 per
        // region, so co-ownership holds by construction.
        for line in 0..64u64 {
            let addr = PhysAddr::new(5 * 4096 + line * 64);
            assert_eq!(l.mac_line_index(addr) / 8, l.region_of(addr));
        }
    }

    #[test]
    fn space_overhead_matches_table1() {
        // Counter blocks: 64B per 4KB = 1.5625 %; CoW table: 8B per
        // 4KB ≈ 0.2 % of a KB = 0.02 noted in Table I as ~0.02%.
        let l = MetadataLayout::for_data_bytes(1 << 30);
        let counters = l.regions() * 64;
        let cow = l.regions() * 8;
        assert!((counters as f64 / l.data_bytes as f64 - 0.015625).abs() < 1e-12);
        assert!((cow as f64 / l.data_bytes as f64 - 0.001953125).abs() < 1e-12);
    }
}
