//! Minimal, dependency-free stand-in for the subset of the `rand` crate
//! this workspace uses (`StdRng::seed_from_u64`, `gen`, `gen_bool`,
//! `gen_range`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim and maps the `rand` dependency name onto it (see
//! the root `Cargo.toml`). The generator is xoshiro256**, seeded via
//! SplitMix64 — deterministic, fast, and statistically solid for
//! workload generation and property tests. It makes no cryptographic
//! claims (nothing in the simulator draws keys from it).

use std::ops::{Range, RangeInclusive};

/// Re-exports mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// Mirror of `rand::SeedableRng` (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from the full value domain
/// (`rand`'s `Standard` distribution, narrowed to what we use).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Converts to the u64 sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the u64 sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

// Signed bounds appear in a few call sites (integer literals default to
// i32); sampling maps through the non-negative domain, which is all the
// workspace uses.
macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                debug_assert!(self >= 0, "negative gen_range bounds unsupported by the shim");
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value in the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range called with an empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

/// Unbiased draw from `0..n` (Lemire-style rejection via modulo of a
/// widened draw is overkill here; plain rejection keeps it exact).
fn uniform_below(rng: &mut StdRng, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Mirror of the `rand::Rng` extension trait.
pub trait Rng {
    /// Draws one value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T;
    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53-bit uniform fraction, exactly as many bits as f64 carries.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0u8..=127);
            assert!(w <= 127);
            let s = r.gen_range(1usize..5);
            assert!((1..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.8)).count();
        assert!((78_000..82_000).contains(&hits), "p=0.8 drew {hits}/100000");
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }
}
