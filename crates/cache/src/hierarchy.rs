//! The three-level cache hierarchy in front of a line backend.

use crate::config::HierarchyConfig;
use crate::set_assoc::SetAssocCache;
use crate::stats::HierarchyStats;
use lelantus_types::{Cycles, PhysAddr, LINE_BYTES};

/// Anything that can service 64-byte line fills and write-backs with
/// timing — in the full system, the secure memory controller.
pub trait LineBackend {
    /// Reads the line containing `addr`; returns data and completion
    /// time.
    fn read_line(&mut self, addr: PhysAddr, now: Cycles) -> ([u8; LINE_BYTES], Cycles);

    /// Writes the line containing `addr`; returns completion time.
    fn write_line(&mut self, addr: PhysAddr, data: [u8; LINE_BYTES], now: Cycles) -> Cycles;
}

/// The L1/L2/L3 write-back, write-allocate hierarchy.
///
/// Misses allocate in every level on the fill path; dirty victims
/// cascade downward (L1→L2→L3→backend). Explicit flush/invalidate
/// ranges model the `clflush`-style maintenance the OS performs around
/// Lelantus CoW commands (paper §IV-B).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    config: HierarchyConfig,
}

impl CacheHierarchy {
    /// Builds the hierarchy from `config`.
    ///
    /// # Panics
    ///
    /// Panics if any level's geometry is invalid.
    pub fn new(config: HierarchyConfig) -> Self {
        config.validate().expect("invalid hierarchy configuration");
        Self {
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            l3: SetAssocCache::new(config.l3),
            config,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// Per-level counters.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats { l1: self.l1.stats(), l2: self.l2.stats(), l3: self.l3.stats() }
    }

    /// Handles a dirty victim evicted from `level` (1-based) by
    /// inserting it into the next level down, cascading further
    /// evictions until the backend absorbs the write.
    fn absorb_victim(
        &mut self,
        level: usize,
        victim: crate::set_assoc::Evicted,
        now: Cycles,
        backend: &mut dyn LineBackend,
    ) {
        if !victim.dirty {
            return; // clean victims vanish silently (non-inclusive model)
        }
        match level {
            1 => {
                if let Some(v2) = self.l2.insert(victim.addr, victim.data, true) {
                    self.absorb_victim(2, v2, now, backend);
                }
            }
            2 => {
                if let Some(v3) = self.l3.insert(victim.addr, victim.data, true) {
                    self.absorb_victim(3, v3, now, backend);
                }
            }
            _ => {
                // Evictions happen off the critical path; the backend is
                // charged traffic but the requestor does not wait.
                backend.write_line(victim.addr, victim.data, now);
            }
        }
    }

    /// Fetches the line containing `addr` into L1, returning its data
    /// and the fill completion time.
    fn fill(
        &mut self,
        addr: PhysAddr,
        now: Cycles,
        backend: &mut dyn LineBackend,
    ) -> ([u8; LINE_BYTES], Cycles) {
        let line = addr.line_align();
        let l1_lat = Cycles::new(self.config.l1.latency);
        let l2_lat = Cycles::new(self.config.l2.latency);
        let l3_lat = Cycles::new(self.config.l3.latency);

        if let Some(data) = self.l1.lookup(line) {
            return (data, now + l1_lat);
        }
        if let Some(data) = self.l2.lookup(line) {
            // Dirty ownership migrates upward with the line: exactly one
            // level may hold a dirty copy, else a stale lower-level
            // write-back could clobber fresher data later.
            let dirty = self.l2.take_dirty(line);
            if let Some(v) = self.l1.insert(line, data, dirty) {
                self.absorb_victim(1, v, now, backend);
            }
            return (data, now + l1_lat + l2_lat);
        }
        if let Some(data) = self.l3.lookup(line) {
            let dirty = self.l3.take_dirty(line);
            if let Some(v) = self.l2.insert(line, data, false) {
                self.absorb_victim(2, v, now, backend);
            }
            if let Some(v) = self.l1.insert(line, data, dirty) {
                self.absorb_victim(1, v, now, backend);
            }
            return (data, now + l1_lat + l2_lat + l3_lat);
        }
        let lookup_time = now + l1_lat + l2_lat + l3_lat;
        let (data, mem_done) = backend.read_line(line, lookup_time);
        if let Some(v) = self.l3.insert(line, data, false) {
            self.absorb_victim(3, v, now, backend);
        }
        if let Some(v) = self.l2.insert(line, data, false) {
            self.absorb_victim(2, v, now, backend);
        }
        if let Some(v) = self.l1.insert(line, data, false) {
            self.absorb_victim(1, v, now, backend);
        }
        (data, mem_done)
    }

    /// Loads `len` bytes starting at `addr` (must not cross a line
    /// boundary), returning the bytes and the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a 64-byte boundary.
    pub fn load(
        &mut self,
        addr: PhysAddr,
        len: usize,
        now: Cycles,
        backend: &mut dyn LineBackend,
    ) -> (Vec<u8>, Cycles) {
        let offset = addr.line_offset();
        assert!(offset + len <= LINE_BYTES, "load crosses line boundary");
        let (data, done) = self.fill(addr, now, backend);
        (data[offset..offset + len].to_vec(), done)
    }

    /// Loads the full line containing `addr` without allocating: the
    /// batched access driver's read primitive. Timing, stats, and
    /// residency effects are exactly those of [`CacheHierarchy::load`].
    pub fn load_line(
        &mut self,
        addr: PhysAddr,
        now: Cycles,
        backend: &mut dyn LineBackend,
    ) -> ([u8; LINE_BYTES], Cycles) {
        self.fill(addr, now, backend)
    }

    /// Stores `bytes` at `addr` (write-allocate, write-back), returning
    /// the completion time.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a 64-byte boundary.
    pub fn store(
        &mut self,
        addr: PhysAddr,
        bytes: &[u8],
        now: Cycles,
        backend: &mut dyn LineBackend,
    ) -> Cycles {
        let offset = addr.line_offset();
        assert!(offset + bytes.len() <= LINE_BYTES, "store crosses line boundary");
        if self.l1.write_hit(addr, bytes) {
            self.l1.lookup(addr.line_align()); // LRU touch & hit accounting
            return now + Cycles::new(self.config.l1.latency);
        }
        let (_, fill_done) = self.fill(addr, now, backend);
        let ok = self.l1.write_hit(addr, bytes);
        debug_assert!(ok, "line was just filled");
        fill_done + Cycles::new(self.config.l1.latency)
    }

    /// Writes back (if dirty) and invalidates every line of
    /// `[start, start+len)` — the `clflush` loop the OS runs on a source
    /// page before write-protecting it.
    pub fn flush_range(
        &mut self,
        start: PhysAddr,
        len: u64,
        now: Cycles,
        backend: &mut dyn LineBackend,
    ) -> Cycles {
        let mut done = now;
        let base = start.line_align();
        let mut offset = 0;
        while offset < len {
            let line = base + offset;
            for cache in [&mut self.l1, &mut self.l2, &mut self.l3] {
                if let Some(e) = cache.invalidate(line) {
                    if e.dirty {
                        done = done.max(backend.write_line(line, e.data, now));
                    }
                }
            }
            offset += LINE_BYTES as u64;
        }
        done
    }

    /// Drops every line of `[start, start+len)` without writing back —
    /// used on a CoW destination page whose cached (stale) contents
    /// must not survive a `page_copy` (paper §IV-B). Returns the
    /// number of lines that were actually resident, so callers can
    /// charge time proportional to real snoop work (a freshly
    /// allocated frame usually has nothing cached).
    pub fn invalidate_range(&mut self, start: PhysAddr, len: u64) -> u64 {
        let base = start.line_align();
        let mut offset = 0;
        let mut resident = 0;
        while offset < len {
            let line = base + offset;
            resident += u64::from(self.l1.invalidate(line).is_some());
            resident += u64::from(self.l2.invalidate(line).is_some());
            resident += u64::from(self.l3.invalidate(line).is_some());
            offset += LINE_BYTES as u64;
        }
        resident
    }

    /// Writes every dirty line back to the backend (end of simulation /
    /// full barrier), leaving the hierarchy clean but warm.
    pub fn writeback_all(&mut self, now: Cycles, backend: &mut dyn LineBackend) -> Cycles {
        let mut done = now;
        for cache in [&mut self.l1, &mut self.l2, &mut self.l3] {
            for (addr, data) in cache.drain_dirty() {
                done = done.max(backend.write_line(addr, data, now));
            }
        }
        done
    }

    /// Drops every cached line in all levels without write-back —
    /// volatile caches across a power failure. Dirty data that never
    /// reached the backend is lost, exactly as on real hardware.
    pub fn clear_all(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.l3.clear();
    }

    /// True if the line containing `addr` is resident anywhere.
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let line = addr.line_align();
        self.l1.probe(line) || self.l2.probe(line) || self.l3.probe(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use std::collections::HashMap;

    #[derive(Default)]
    struct Flat {
        mem: HashMap<u64, [u8; 64]>,
        reads: u64,
        writes: u64,
    }

    impl LineBackend for Flat {
        fn read_line(&mut self, a: PhysAddr, now: Cycles) -> ([u8; 64], Cycles) {
            self.reads += 1;
            (
                self.mem.get(&a.line_align().as_u64()).copied().unwrap_or([0; 64]),
                now + Cycles::new(60),
            )
        }
        fn write_line(&mut self, a: PhysAddr, d: [u8; 64], now: Cycles) -> Cycles {
            self.writes += 1;
            self.mem.insert(a.line_align().as_u64(), d);
            now + Cycles::new(150)
        }
    }

    fn h() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::tiny())
    }

    #[test]
    fn store_then_load_same_line() {
        let mut mem = Flat::default();
        let mut c = h();
        let t = c.store(PhysAddr::new(0x100), &[1, 2, 3], Cycles::ZERO, &mut mem);
        let (bytes, _) = c.load(PhysAddr::new(0x100), 3, t, &mut mem);
        assert_eq!(bytes, vec![1, 2, 3]);
        assert_eq!(mem.reads, 1, "one fill for write-allocate");
        assert_eq!(mem.writes, 0, "write-back: nothing reaches memory yet");
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut mem = Flat::default();
        let mut c = h();
        c.load(PhysAddr::new(0x0), 8, Cycles::ZERO, &mut mem);
        let (_, t) = c.load(PhysAddr::new(0x0), 8, Cycles::ZERO, &mut mem);
        assert_eq!(t, Cycles::new(2), "L1 latency");
    }

    #[test]
    fn miss_latency_includes_all_levels() {
        let mut mem = Flat::default();
        let mut c = h();
        let (_, t) = c.load(PhysAddr::new(0x0), 8, Cycles::ZERO, &mut mem);
        assert_eq!(t, Cycles::new(2 + 8 + 25 + 60));
    }

    #[test]
    fn dirty_data_survives_capacity_evictions() {
        let mut mem = Flat::default();
        let mut c = h();
        c.store(PhysAddr::new(0x40), &[0xAB], Cycles::ZERO, &mut mem);
        // Touch far more lines than the tiny hierarchy holds.
        for i in 0..2048u64 {
            c.load(PhysAddr::new(0x10000 + i * 64), 1, Cycles::ZERO, &mut mem);
        }
        c.writeback_all(Cycles::ZERO, &mut mem);
        assert_eq!(mem.mem.get(&0x40).map(|d| d[0]), Some(0xAB));
    }

    #[test]
    fn flush_range_writes_back_dirty_lines() {
        let mut mem = Flat::default();
        let mut c = h();
        c.store(PhysAddr::new(0x1000), &[5; 8], Cycles::ZERO, &mut mem);
        c.store(PhysAddr::new(0x1040), &[6; 8], Cycles::ZERO, &mut mem);
        c.flush_range(PhysAddr::new(0x1000), 4096, Cycles::ZERO, &mut mem);
        assert_eq!(mem.writes, 2);
        assert!(!c.probe(PhysAddr::new(0x1000)));
        // Flushed data is in memory.
        assert_eq!(mem.mem.get(&0x1000).map(|d| d[0]), Some(5));
    }

    #[test]
    fn invalidate_range_discards_dirty_data() {
        let mut mem = Flat::default();
        let mut c = h();
        c.store(PhysAddr::new(0x2000), &[9; 8], Cycles::ZERO, &mut mem);
        c.invalidate_range(PhysAddr::new(0x2000), 4096);
        assert_eq!(mem.writes, 0, "invalidate must not write back");
        let (bytes, _) = c.load(PhysAddr::new(0x2000), 1, Cycles::ZERO, &mut mem);
        assert_eq!(bytes, vec![0], "stale dirty data discarded");
    }

    #[test]
    fn writeback_all_leaves_caches_warm() {
        let mut mem = Flat::default();
        let mut c = h();
        c.store(PhysAddr::new(0x3000), &[1], Cycles::ZERO, &mut mem);
        c.writeback_all(Cycles::ZERO, &mut mem);
        assert_eq!(mem.writes, 1);
        assert!(c.probe(PhysAddr::new(0x3000)));
        // Second writeback finds nothing dirty.
        c.writeback_all(Cycles::ZERO, &mut mem);
        assert_eq!(mem.writes, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut mem = Flat::default();
        let mut c = h();
        c.load(PhysAddr::new(0x0), 1, Cycles::ZERO, &mut mem);
        c.load(PhysAddr::new(0x0), 1, Cycles::ZERO, &mut mem);
        let s = c.stats();
        assert_eq!(s.l1.hits, 1);
        assert_eq!(s.l1.misses, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.l3.misses, 1);
    }

    #[test]
    #[should_panic(expected = "crosses line boundary")]
    fn cross_line_load_panics() {
        let mut mem = Flat::default();
        let mut c = h();
        c.load(PhysAddr::new(0x3C), 8, Cycles::ZERO, &mut mem);
    }
}

#[cfg(test)]
mod dirty_ownership_tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use std::collections::HashMap;

    #[derive(Default)]
    struct Flat(HashMap<u64, [u8; 64]>);

    impl LineBackend for Flat {
        fn read_line(&mut self, a: PhysAddr, now: Cycles) -> ([u8; 64], Cycles) {
            (self.0.get(&a.line_align().as_u64()).copied().unwrap_or([0; 64]), now)
        }
        fn write_line(&mut self, a: PhysAddr, d: [u8; 64], now: Cycles) -> Cycles {
            self.0.insert(a.line_align().as_u64(), d);
            now
        }
    }

    /// Regression: a dirty line evicted to L2, re-fetched into L1 and
    /// rewritten must not be clobbered by the stale L2 copy at flush.
    #[test]
    fn stale_lower_level_copy_never_overwrites_fresh_data() {
        let mut mem = Flat::default();
        let mut c = CacheHierarchy::new(HierarchyConfig::tiny());
        let hot = PhysAddr::new(0x40);
        c.store(hot, &[1], Cycles::ZERO, &mut mem);
        // Evict it from the tiny L1 into L2 (dirty).
        for i in 0..64u64 {
            c.load(PhysAddr::new(0x10000 + i * 64), 1, Cycles::ZERO, &mut mem);
        }
        // Re-fetch (dirty ownership must come back up) and rewrite.
        c.store(hot, &[2], Cycles::ZERO, &mut mem);
        c.writeback_all(Cycles::ZERO, &mut mem);
        assert_eq!(mem.0.get(&0x40).map(|l| l[0]), Some(2), "stale L2 copy clobbered the rewrite");
        // Flush-range path too.
        c.store(hot, &[3], Cycles::ZERO, &mut mem);
        for i in 0..64u64 {
            c.load(PhysAddr::new(0x20000 + i * 64), 1, Cycles::ZERO, &mut mem);
        }
        c.store(hot, &[4], Cycles::ZERO, &mut mem);
        c.flush_range(PhysAddr::new(0), 4096, Cycles::ZERO, &mut mem);
        assert_eq!(mem.0.get(&0x40).map(|l| l[0]), Some(4));
    }
}
