//! A generic set-associative, LRU, write-back cache of 64-byte lines.

use crate::config::CacheConfig;
use crate::stats::CacheStats;
use lelantus_types::{PhysAddr, LINE_BYTES};

/// A line evicted to make room for an insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted {
    /// Line-aligned address of the victim.
    pub addr: PhysAddr,
    /// The victim's data.
    pub data: [u8; LINE_BYTES],
    /// Whether the victim held unwritten-back modifications.
    pub dirty: bool,
}

#[derive(Debug, Clone)]
struct Way {
    tag: u64,
    data: [u8; LINE_BYTES],
    dirty: bool,
    lru_tick: u64,
}

/// One level of set-associative cache.
///
/// Stores real line contents so that dirty evictions can carry data to
/// the next level; replacement is strict LRU within a set.
///
/// # Examples
///
/// ```
/// use lelantus_cache::{CacheConfig, SetAssocCache};
/// use lelantus_types::PhysAddr;
///
/// let mut c = SetAssocCache::new(CacheConfig { size_bytes: 1024, ways: 2, latency: 1 });
/// assert!(c.lookup(PhysAddr::new(0x40)).is_none());
/// c.insert(PhysAddr::new(0x40), [5; 64], false);
/// assert_eq!(c.lookup(PhysAddr::new(0x40)).unwrap()[0], 5);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds a cache with `config` geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache geometry");
        let sets = config.sets();
        Self {
            config,
            sets: (0..sets).map(|_| Vec::with_capacity(config.ways)).collect(),
            set_mask: sets as u64 - 1,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: PhysAddr) -> (usize, u64) {
        let line = addr.line_align().as_u64() / LINE_BYTES as u64;
        ((line & self.set_mask) as usize, line >> self.set_mask.count_ones())
    }

    /// Looks up the line containing `addr`; updates LRU and hit/miss
    /// counters. Returns the line contents on a hit.
    pub fn lookup(&mut self, addr: PhysAddr) -> Option<[u8; LINE_BYTES]> {
        let (set, tag) = self.set_and_tag(addr);
        self.tick += 1;
        let tick = self.tick;
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.tag == tag) {
            way.lru_tick = tick;
            self.stats.hits += 1;
            Some(way.data)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Checks for presence without disturbing LRU or counters.
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|w| w.tag == tag)
    }

    /// Overwrites (part of) a cached line, marking it dirty. Returns
    /// false if the line is not resident.
    ///
    /// # Panics
    ///
    /// Panics if the byte range crosses the line boundary.
    pub fn write_hit(&mut self, addr: PhysAddr, bytes: &[u8]) -> bool {
        let offset = addr.line_offset();
        assert!(offset + bytes.len() <= LINE_BYTES, "write crosses line boundary");
        let (set, tag) = self.set_and_tag(addr);
        self.tick += 1;
        let tick = self.tick;
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.tag == tag) {
            way.data[offset..offset + bytes.len()].copy_from_slice(bytes);
            way.dirty = true;
            way.lru_tick = tick;
            true
        } else {
            false
        }
    }

    /// Inserts a line (e.g. on fill), evicting the LRU way if the set
    /// is full. The victim, if any, is returned so the caller can
    /// propagate dirty data downward.
    pub fn insert(
        &mut self,
        addr: PhysAddr,
        data: [u8; LINE_BYTES],
        dirty: bool,
    ) -> Option<Evicted> {
        let (set, tag) = self.set_and_tag(addr);
        self.tick += 1;
        let tick = self.tick;
        // Refill of a resident line replaces its contents.
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.tag == tag) {
            way.data = data;
            way.dirty = way.dirty || dirty;
            way.lru_tick = tick;
            return None;
        }
        let victim = if self.sets[set].len() >= self.config.ways {
            let (idx, _) = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru_tick)
                .expect("set is full, victim exists");
            let w = self.sets[set].swap_remove(idx);
            if w.dirty {
                self.stats.dirty_evictions += 1;
            }
            Some(Evicted { addr: self.reconstruct_addr(set, w.tag), data: w.data, dirty: w.dirty })
        } else {
            None
        };
        self.sets[set].push(Way { tag, data, dirty, lru_tick: tick });
        victim
    }

    fn reconstruct_addr(&self, set: usize, tag: u64) -> PhysAddr {
        let line = (tag << self.set_mask.count_ones()) | set as u64;
        PhysAddr::new(line * LINE_BYTES as u64)
    }

    /// Removes the line containing `addr` without writing it back,
    /// returning it (dirty data is *discarded* by the caller's choice).
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<Evicted> {
        let (set, tag) = self.set_and_tag(addr);
        let idx = self.sets[set].iter().position(|w| w.tag == tag)?;
        let w = self.sets[set].swap_remove(idx);
        self.stats.invalidations += 1;
        Some(Evicted { addr: self.reconstruct_addr(set, w.tag), data: w.data, dirty: w.dirty })
    }

    /// Writes back the line containing `addr` if dirty (clearing the
    /// dirty bit, keeping the line resident). Returns the data that
    /// must be written downstream.
    pub fn clean(&mut self, addr: PhysAddr) -> Option<[u8; LINE_BYTES]> {
        let (set, tag) = self.set_and_tag(addr);
        let way = self.sets[set].iter_mut().find(|w| w.tag == tag)?;
        if way.dirty {
            way.dirty = false;
            self.stats.flush_writebacks += 1;
            Some(way.data)
        } else {
            None
        }
    }

    /// Clears and returns the dirty bit of a resident line without
    /// counting it as a flush write-back — used when dirty ownership
    /// migrates to a higher cache level rather than to memory.
    pub fn take_dirty(&mut self, addr: PhysAddr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        match self.sets[set].iter_mut().find(|w| w.tag == tag) {
            Some(way) => std::mem::take(&mut way.dirty),
            None => false,
        }
    }

    /// Number of resident lines (for occupancy assertions).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Drops every line without writing back (power loss).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Iterates over all resident dirty lines (used by whole-cache
    /// flushes at simulation end).
    pub fn drain_dirty(&mut self) -> Vec<(PhysAddr, [u8; LINE_BYTES])> {
        let set_bits = self.set_mask.count_ones();
        let mut out = Vec::new();
        for (set, ways) in self.sets.iter_mut().enumerate() {
            for way in ways {
                if way.dirty {
                    way.dirty = false;
                    let line = (way.tag << set_bits) | set as u64;
                    out.push((PhysAddr::new(line * LINE_BYTES as u64), way.data));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheConfig { size_bytes: 4 * LINE_BYTES, ways: 2, latency: 1 })
    }

    fn line(n: u64) -> PhysAddr {
        PhysAddr::new(n * LINE_BYTES as u64)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = small();
        c.insert(line(0), [1; 64], false);
        assert_eq!(c.lookup(line(0)), Some([1; 64]));
        assert_eq!(c.lookup(line(1)), None);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Lines 0, 2, 4 map to set 0 (even line numbers).
        c.insert(line(0), [0; 64], false);
        c.insert(line(2), [2; 64], false);
        c.lookup(line(0)); // make line 0 MRU
        let evicted = c.insert(line(4), [4; 64], false).expect("set full");
        assert_eq!(evicted.addr, line(2), "LRU way evicted");
        assert!(c.probe(line(0)));
        assert!(c.probe(line(4)));
    }

    #[test]
    fn dirty_eviction_reports_data() {
        let mut c = small();
        c.insert(line(0), [7; 64], true);
        c.insert(line(2), [2; 64], false);
        let e = c.insert(line(4), [4; 64], false).unwrap();
        assert_eq!(e.addr, line(0));
        assert!(e.dirty);
        assert_eq!(e.data, [7; 64]);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn write_hit_updates_bytes_and_dirties() {
        let mut c = small();
        c.insert(line(0), [0; 64], false);
        assert!(c.write_hit(PhysAddr::new(4), &[9, 9]));
        let data = c.lookup(line(0)).unwrap();
        assert_eq!(&data[4..6], &[9, 9]);
        assert_eq!(&data[..4], &[0; 4]);
        // line(0)'s last touch was the write_hit; line(2)'s insert is
        // newer, so filling the set evicts dirty line(0) first — and
        // its eviction must carry the written bytes.
        c.insert(line(2), [0; 64], false);
        let e = c.insert(line(4), [0; 64], false).unwrap();
        assert_eq!(e.addr, line(0));
        assert!(e.dirty, "write_hit dirt must surface on eviction");
        assert_eq!(&e.data[4..6], &[9, 9]);
    }

    #[test]
    #[should_panic(expected = "crosses line boundary")]
    fn cross_line_write_panics() {
        let mut c = small();
        c.insert(line(0), [0; 64], false);
        c.write_hit(PhysAddr::new(60), &[0; 8]);
    }

    #[test]
    fn invalidate_removes_without_stats_writeback() {
        let mut c = small();
        c.insert(line(0), [3; 64], true);
        let e = c.invalidate(line(0)).unwrap();
        assert!(e.dirty);
        assert!(!c.probe(line(0)));
        assert_eq!(c.stats().invalidations, 1);
        assert!(c.invalidate(line(0)).is_none());
    }

    #[test]
    fn clean_clears_dirty_keeps_resident() {
        let mut c = small();
        c.insert(line(0), [3; 64], true);
        assert_eq!(c.clean(line(0)), Some([3; 64]));
        assert!(c.probe(line(0)));
        assert_eq!(c.clean(line(0)), None, "already clean");
        assert_eq!(c.stats().flush_writebacks, 1);
    }

    #[test]
    fn refill_merges_dirty_bit() {
        let mut c = small();
        c.insert(line(0), [1; 64], true);
        // A clean refill of a dirty resident line keeps the dirty bit
        // (the modification still has to reach memory eventually).
        assert!(c.insert(line(0), [2; 64], false).is_none());
        c.insert(line(2), [0; 64], false);
        let evicted = c.insert(line(4), [0; 64], false).expect("set overflows");
        assert_eq!(evicted.addr, line(0), "line 0 is LRU after line 2's insert");
        assert!(evicted.dirty, "dirty bit survived the clean refill");
        assert_eq!(evicted.data, [2; 64], "refilled data is what gets written back");
    }

    #[test]
    fn drain_dirty_cleans_everything() {
        let mut c = small();
        c.insert(line(0), [1; 64], true);
        c.insert(line(1), [2; 64], true);
        c.insert(line(2), [3; 64], false);
        let drained = c.drain_dirty();
        assert_eq!(drained.len(), 2);
        assert!(c.drain_dirty().is_empty());
        assert_eq!(c.resident_lines(), 3);
    }

    #[test]
    fn address_reconstruction() {
        let mut c = small();
        let addr = PhysAddr::new(0x1234_5640);
        c.insert(addr, [5; 64], true);
        let drained = c.drain_dirty();
        assert_eq!(drained[0].0, addr.line_align());
    }
}
