//! CPU cache hierarchy for the Lelantus reproduction.
//!
//! Models the paper's Table III hierarchy — 64 KB 8-way L1 (2 cycles),
//! 512 KB 8-way L2 (8 cycles), 8 MB 8-way L3 (25 cycles), all with
//! 64-byte lines, LRU replacement and write-back/write-allocate — in
//! front of an arbitrary [`LineBackend`] (the secure memory controller
//! in the full system).
//!
//! The hierarchy is *functional*: cached lines hold real bytes, so
//! dirty evictions carry data down to the backend, and the
//! flush/invalidate operations the OS performs around CoW commands
//! (paper §IV-B: flush dirty source-page lines, invalidate
//! destination-page lines) have their real semantics.
//!
//! # Examples
//!
//! ```
//! use lelantus_cache::{CacheHierarchy, HierarchyConfig, LineBackend};
//! use lelantus_types::{Cycles, PhysAddr};
//!
//! // A trivially simple backing store.
//! struct Flat(std::collections::HashMap<u64, [u8; 64]>);
//! impl LineBackend for Flat {
//!     fn read_line(&mut self, a: PhysAddr, now: Cycles) -> ([u8; 64], Cycles) {
//!         (self.0.get(&a.line_align().as_u64()).copied().unwrap_or([0; 64]), now + Cycles::new(60))
//!     }
//!     fn write_line(&mut self, a: PhysAddr, d: [u8; 64], now: Cycles) -> Cycles {
//!         self.0.insert(a.line_align().as_u64(), d);
//!         now + Cycles::new(150)
//!     }
//! }
//!
//! let mut mem = Flat(Default::default());
//! let mut caches = CacheHierarchy::new(HierarchyConfig::default());
//! let done = caches.store(PhysAddr::new(0x100), &[1, 2, 3], Cycles::ZERO, &mut mem);
//! let (bytes, _) = caches.load(PhysAddr::new(0x100), 3, done, &mut mem);
//! assert_eq!(bytes, vec![1, 2, 3]);
//! ```

pub mod config;
pub mod hierarchy;
pub mod set_assoc;
pub mod stats;

pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::{CacheHierarchy, LineBackend};
pub use set_assoc::SetAssocCache;
pub use stats::{CacheStats, HierarchyStats};
