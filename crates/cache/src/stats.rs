//! Cache statistics.

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty lines evicted (write-back traffic).
    pub dirty_evictions: u64,
    /// Lines invalidated by explicit invalidate operations.
    pub invalidations: u64,
    /// Dirty lines written back by explicit flush operations.
    pub flush_writebacks: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1] (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Interval counters: `self - earlier` field by field.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            dirty_evictions: self.dirty_evictions - earlier.dirty_evictions,
            invalidations: self.invalidations - earlier.invalidations,
            flush_writebacks: self.flush_writebacks - earlier.flush_writebacks,
        }
    }
}

/// Statistics for all three levels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L3 counters.
    pub l3: CacheStats,
}

impl HierarchyStats {
    /// Interval counters: `self - earlier` per level.
    pub fn delta_since(&self, earlier: &HierarchyStats) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1.delta_since(&earlier.l1),
            l2: self.l2.delta_since(&earlier.l2),
            l3: self.l3.delta_since(&earlier.l3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate() {
        let s = CacheStats { hits: 9, misses: 1, ..Default::default() };
        assert!((s.miss_rate() - 0.1).abs() < 1e-9);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
