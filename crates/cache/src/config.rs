//! Cache geometry and latency configuration.

use lelantus_types::LINE_BYTES;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * LINE_BYTES)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 {
            return Err("cache needs at least one way".into());
        }
        if !self.size_bytes.is_multiple_of(self.ways * LINE_BYTES) {
            return Err("size must be a whole number of sets".into());
        }
        let sets = self.sets();
        if sets == 0 || !sets.is_power_of_two() {
            return Err("set count must be a nonzero power of two".into());
        }
        Ok(())
    }
}

/// Configuration of the three-level hierarchy.
///
/// Defaults reproduce the paper's Table III.
///
/// # Examples
///
/// ```
/// use lelantus_cache::HierarchyConfig;
///
/// let cfg = HierarchyConfig::default();
/// assert_eq!(cfg.l1.size_bytes, 64 << 10);
/// assert_eq!(cfg.l3.latency, 25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Level-1 data cache.
    pub l1: CacheConfig,
    /// Level-2 cache.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub l3: CacheConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            l1: CacheConfig { size_bytes: 64 << 10, ways: 8, latency: 2 },
            l2: CacheConfig { size_bytes: 512 << 10, ways: 8, latency: 8 },
            l3: CacheConfig { size_bytes: 8 << 20, ways: 8, latency: 25 },
        }
    }
}

impl HierarchyConfig {
    /// Validates all three levels.
    ///
    /// # Errors
    ///
    /// Returns the first level's validation failure.
    pub fn validate(&self) -> Result<(), String> {
        self.l1.validate()?;
        self.l2.validate()?;
        self.l3.validate()
    }

    /// A tiny hierarchy for fast unit tests (keeps miss paths hot).
    pub fn tiny() -> Self {
        Self {
            l1: CacheConfig { size_bytes: 1 << 10, ways: 2, latency: 2 },
            l2: CacheConfig { size_bytes: 4 << 10, ways: 2, latency: 8 },
            l3: CacheConfig { size_bytes: 16 << 10, ways: 4, latency: 25 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = HierarchyConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.l1.sets(), 128);
        assert_eq!(cfg.l2.sets(), 1024);
        assert_eq!(cfg.l3.sets(), 16384);
        assert_eq!(cfg.l1.latency, 2);
        assert_eq!(cfg.l2.latency, 8);
    }

    #[test]
    fn invalid_geometries_rejected() {
        assert!(CacheConfig { size_bytes: 1000, ways: 8, latency: 1 }.validate().is_err());
        assert!(CacheConfig { size_bytes: 0, ways: 8, latency: 1 }.validate().is_err());
        assert!(CacheConfig { size_bytes: 4096, ways: 0, latency: 1 }.validate().is_err());
        // 3 sets: not a power of two.
        assert!(CacheConfig { size_bytes: 3 * 64, ways: 1, latency: 1 }.validate().is_err());
    }

    #[test]
    fn tiny_is_valid() {
        assert!(HierarchyConfig::tiny().validate().is_ok());
    }
}
