//! Full-system simulator for the Lelantus reproduction.
//!
//! Wires the three layers together the way the paper's gem5 + Linux
//! setup does (§V-A, Table III):
//!
//! ```text
//!  workload ──> Kernel (lelantus-os) ──HwActions──┐
//!     │             │ translation                 │
//!     └─ accesses ──┴──> CacheHierarchy ──> SecureMemoryController ──> NVM
//! ```
//!
//! The [`System`] executes application reads/writes with full timing:
//! page faults run the kernel's CoW machinery, the emitted
//! [`lelantus_os::HwAction`]s become cache maintenance, bulk copies or
//! controller commands, and ordinary accesses flow through the cache
//! hierarchy into the encrypted NVM.
//!
//! The CPU model is a set of in-order contexts — eight per-core clocks
//! (Table III) over one shared cache hierarchy — plus a two-level data
//! TLB with page walks and shootdowns. Relative results are set by
//! memory traffic, not ILP; see `DESIGN.md` §2 for the substitution
//! argument. [`System::crash_and_recover`] models a power failure with
//! ADR/battery semantics.
//!
//! # Examples
//!
//! ```
//! use lelantus_sim::{SimConfig, System};
//! use lelantus_os::CowStrategy;
//! use lelantus_types::PageSize;
//!
//! let mut sys = System::new(SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K));
//! let pid = sys.spawn_init();
//! let va = sys.mmap(pid, 8192)?;
//! sys.write_bytes(pid, va, &[1, 2, 3])?;
//! assert_eq!(sys.read_bytes(pid, va, 3)?, vec![1, 2, 3]);
//! let child = sys.fork(pid)?;
//! sys.write_bytes(pid, va, &[9])?; // CoW fault
//! assert_eq!(sys.read_bytes(child, va, 3)?, vec![1, 2, 3]);
//! # Ok::<(), lelantus_os::OsError>(())
//! ```

pub mod batch;
pub mod config;
pub mod metrics;
pub mod parallel;
pub mod record;
pub mod replay;
pub mod shard;
pub mod system;
pub mod tlb;

pub use batch::AccessBatch;
pub use config::SimConfig;
pub use metrics::{EpochSample, SimMetrics};
pub use parallel::{ParStats, ParallelEngine, ShardReport};
pub use record::TraceRecorder;
pub use replay::{
    explain_divergence, replay, replay_checked, DivergenceReport, ReplayError, ReplayStats,
};
pub use shard::{ShardSet, ShardState, ShardStats};
pub use system::{Snapshot, System};

// Re-export the trace format so replay/record callers can open files
// and build headers without naming the trace crate themselves.
pub use lelantus_trace::{Trace, TraceError, TraceHeader, TraceTotals};

// Re-export the observability surface so downstream crates (workloads,
// benches, the CLI) can name probes without depending on lelantus-obs
// directly.
pub use lelantus_obs::{
    chrome_trace, chrome_trace_with_spans, selfprof, CounterSeries, CycleCategory, CycleLedger,
    Event, EventKind, FaultAction, FaultSpan, HdrHistogram, HeatGrid, HeatLane, HistKind,
    Histogram, HistogramSet, JsonlProbe, NullProbe, Probe, RingProbe, Span, TailRecorder,
    TailSummary, TeeProbe,
};
