//! A two-level TLB model.
//!
//! The paper's introduction motivates huge pages on NVM systems partly
//! through "bookkeeping and translation overheads" — terabyte-class
//! memories overwhelm 4 KB TLB reach. This module models a typical
//! two-level data TLB (split 4 KB/2 MB L1, unified L2) plus a fixed
//! page-walk cost, so the reproduction exhibits the translation side
//! of the regular-vs-huge trade-off, not only the CoW side.
//!
//! Entries are tagged with the owning process (ASID); any
//! page-table mutation (fork write-protection, CoW remap, KSM merge,
//! exit) must invalidate affected entries — the [`crate::System`]
//! wrapper performs those shootdowns.

use lelantus_types::{PageSize, PhysAddr, VirtAddr};
use std::collections::HashMap;

/// TLB geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// L1 entries for 4 KB pages (typical: 64).
    pub l1_entries_4k: usize,
    /// L1 entries for 2 MB pages (typical: 32).
    pub l1_entries_2m: usize,
    /// Unified L2 entries (typical: 1536).
    pub l2_entries: usize,
    /// Extra cycles for an L1-miss/L2-hit translation.
    pub l2_latency: u64,
    /// Cycles for a full page walk (four cached table accesses).
    pub walk_cycles: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self {
            l1_entries_4k: 64,
            l1_entries_2m: 32,
            l2_entries: 1536,
            l2_latency: 8,
            walk_cycles: 100,
        }
    }
}

impl TlbConfig {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.l1_entries_4k == 0 || self.l1_entries_2m == 0 || self.l2_entries == 0 {
            return Err("TLB levels need at least one entry".into());
        }
        Ok(())
    }
}

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Physical base of the page.
    pub pa_base: PhysAddr,
    /// Page granularity.
    pub size: PageSize,
    /// Whether stores are permitted through this entry.
    pub writable: bool,
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// L1 hits (includes `front_hits`: the last-translation cache sits
    /// in front of the L1 arrays and is charged identically).
    pub l1_hits: u64,
    /// L2 hits (L1 misses).
    pub l2_hits: u64,
    /// Full page walks.
    pub walks: u64,
    /// Entries invalidated by shootdowns.
    pub shootdowns: u64,
    /// Subset of `l1_hits` served by the one-entry last-translation
    /// cache without probing the L1/L2 arrays.
    pub front_hits: u64,
}

impl TlbStats {
    /// Walk rate per lookup, in [0, 1].
    pub fn walk_rate(&self) -> f64 {
        let total = self.l1_hits + self.l2_hits + self.walks;
        if total == 0 {
            0.0
        } else {
            self.walks as f64 / total as f64
        }
    }

    /// Interval counters: `self - earlier` field by field.
    pub fn delta_since(&self, earlier: &TlbStats) -> TlbStats {
        TlbStats {
            l1_hits: self.l1_hits - earlier.l1_hits,
            l2_hits: self.l2_hits - earlier.l2_hits,
            walks: self.walks - earlier.walks,
            shootdowns: self.shootdowns - earlier.shootdowns,
            front_hits: self.front_hits - earlier.front_hits,
        }
    }
}

/// Outcome of a lookup: where it hit and the extra cycles charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// L1 hit (free — overlapped with the L1 cache access).
    HitL1(TlbEntry),
    /// L2 hit.
    HitL2(TlbEntry),
    /// Miss: the caller must walk the page table and
    /// [`Tlb::fill`] the result.
    Miss,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    pid: u64,
    vpn: u64,
    size_2m: bool,
}

/// One fully-associative LRU level (a HashMap with tick-based LRU; TLB
/// levels are small enough that associativity conflicts are a
/// second-order effect next to capacity).
#[derive(Debug, Clone, Default)]
struct Level {
    entries: HashMap<Key, (TlbEntry, u64)>,
    capacity: usize,
    tick: u64,
}

impl Level {
    fn new(capacity: usize) -> Self {
        Self { entries: HashMap::new(), capacity, tick: 0 }
    }

    fn get(&mut self, key: Key) -> Option<TlbEntry> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|(e, lru)| {
            *lru = tick;
            *e
        })
    }

    fn insert(&mut self, key: Key, entry: TlbEntry) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.entries.get_mut(&key) {
            *slot = (entry, tick);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, lru))| *lru) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (entry, tick));
    }

    fn remove(&mut self, key: Key) -> bool {
        self.entries.remove(&key).is_some()
    }

    fn retain(&mut self, mut keep: impl FnMut(&Key) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, _| keep(k));
        before - self.entries.len()
    }
}

/// The two-level data TLB.
///
/// # Examples
///
/// ```
/// use lelantus_sim::tlb::{Tlb, TlbConfig, TlbEntry, TlbOutcome};
/// use lelantus_types::{PageSize, PhysAddr, VirtAddr};
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// let va = VirtAddr::new(0x7000_0000);
/// assert_eq!(tlb.lookup(1, va), TlbOutcome::Miss);
/// tlb.fill(1, va, TlbEntry { pa_base: PhysAddr::new(0x20_0000), size: PageSize::Regular4K, writable: true });
/// assert!(matches!(tlb.lookup(1, va), TlbOutcome::HitL1(_)));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    l1_4k: Level,
    l1_2m: Level,
    l2: Level,
    /// One-entry last-translation cache in front of the arrays: the
    /// `(pid, page base)` of the most recent successful translation.
    /// Run-shaped access streams (a batch sweeping one page) hit here
    /// without touching the HashMap levels; charged like an L1 hit.
    front: Option<(u64, u64, TlbEntry)>,
    stats: TlbStats,
}

impl Tlb {
    /// Builds a TLB from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: TlbConfig) -> Self {
        config.validate().expect("invalid TLB config");
        Self {
            l1_4k: Level::new(config.l1_entries_4k),
            l1_2m: Level::new(config.l1_entries_2m),
            l2: Level::new(config.l2_entries),
            config,
            front: None,
            stats: TlbStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    fn key_4k(pid: u64, va: VirtAddr) -> Key {
        Key { pid, vpn: va.as_u64() / PageSize::Regular4K.bytes(), size_2m: false }
    }

    fn key_2m(pid: u64, va: VirtAddr) -> Key {
        Key { pid, vpn: va.as_u64() / PageSize::Huge2M.bytes(), size_2m: true }
    }

    fn remember(&mut self, pid: u64, va: VirtAddr, entry: TlbEntry) {
        let base = va.as_u64() & !(entry.size.bytes() - 1);
        self.front = Some((pid, base, entry));
    }

    /// Looks up the translation of `(pid, va)`. The one-entry
    /// last-translation cache is probed first; each level's key is
    /// built only when the previous probe missed.
    pub fn lookup(&mut self, pid: u64, va: VirtAddr) -> TlbOutcome {
        if let Some((fpid, fbase, e)) = self.front {
            if fpid == pid && va.as_u64().wrapping_sub(fbase) < e.size.bytes() {
                self.stats.l1_hits += 1;
                self.stats.front_hits += 1;
                return TlbOutcome::HitL1(e);
            }
        }
        let k4 = Self::key_4k(pid, va);
        if let Some(e) = self.l1_4k.get(k4) {
            self.stats.l1_hits += 1;
            self.remember(pid, va, e);
            return TlbOutcome::HitL1(e);
        }
        let k2 = Self::key_2m(pid, va);
        if let Some(e) = self.l1_2m.get(k2) {
            self.stats.l1_hits += 1;
            self.remember(pid, va, e);
            return TlbOutcome::HitL1(e);
        }
        for key in [k4, k2] {
            if let Some(e) = self.l2.get(key) {
                self.stats.l2_hits += 1;
                // Promote to the right L1.
                if key.size_2m {
                    self.l1_2m.insert(key, e);
                } else {
                    self.l1_4k.insert(key, e);
                }
                self.remember(pid, va, e);
                return TlbOutcome::HitL2(e);
            }
        }
        self.stats.walks += 1;
        TlbOutcome::Miss
    }

    /// Counts a translation served by the front cache on behalf of a
    /// caller that tracks the current run's page itself (the batched
    /// access engine). Charged and counted exactly like the front-cache
    /// hit [`Tlb::lookup`] would report for the same access.
    pub fn record_front_hit(&mut self) {
        self.stats.l1_hits += 1;
        self.stats.front_hits += 1;
    }

    /// Installs the result of a page walk.
    pub fn fill(&mut self, pid: u64, va: VirtAddr, entry: TlbEntry) {
        let key = Key {
            pid,
            vpn: va.as_u64() / entry.size.bytes(),
            size_2m: entry.size == PageSize::Huge2M,
        };
        match entry.size {
            PageSize::Regular4K => self.l1_4k.insert(key, entry),
            PageSize::Huge2M => self.l1_2m.insert(key, entry),
        }
        self.l2.insert(key, entry);
        self.remember(pid, va, entry);
    }

    /// Invalidates the entry covering `(pid, va)` (single-page
    /// shootdown after a PTE change).
    pub fn invalidate_page(&mut self, pid: u64, va: VirtAddr) {
        if let Some((fpid, fbase, e)) = self.front {
            if fpid == pid && va.as_u64().wrapping_sub(fbase) < e.size.bytes() {
                self.front = None;
            }
        }
        for key in [Self::key_4k(pid, va), Self::key_2m(pid, va)] {
            let mut removed = false;
            removed |= if key.size_2m { self.l1_2m.remove(key) } else { self.l1_4k.remove(key) };
            removed |= self.l2.remove(key);
            if removed {
                self.stats.shootdowns += 1;
            }
        }
    }

    /// Invalidates every entry of `pid` (exit / large remap).
    pub fn invalidate_pid(&mut self, pid: u64) {
        if matches!(self.front, Some((fpid, ..)) if fpid == pid) {
            self.front = None;
        }
        let mut n = 0;
        n += self.l1_4k.retain(|k| k.pid != pid);
        n += self.l1_2m.retain(|k| k.pid != pid);
        n += self.l2.retain(|k| k.pid != pid);
        self.stats.shootdowns += n as u64;
    }

    /// Full flush (fork-time write-protection changes every PTE).
    pub fn flush_all(&mut self) {
        self.front = None;
        let mut n = 0;
        n += self.l1_4k.retain(|_| false);
        n += self.l1_2m.retain(|_| false);
        n += self.l2.retain(|_| false);
        self.stats.shootdowns += n as u64;
    }

    /// Extra cycles for an outcome (L1 hits are free, overlapped with
    /// the cache lookup).
    pub fn charge(&self, outcome: &TlbOutcome) -> u64 {
        match outcome {
            TlbOutcome::HitL1(_) => 0,
            TlbOutcome::HitL2(_) => self.config.l2_latency,
            TlbOutcome::Miss => self.config.walk_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pa: u64, size: PageSize, writable: bool) -> TlbEntry {
        TlbEntry { pa_base: PhysAddr::new(pa), size, writable }
    }

    #[test]
    fn miss_fill_hit() {
        let mut t = Tlb::new(TlbConfig::default());
        let va = VirtAddr::new(0x1000);
        assert_eq!(t.lookup(1, va), TlbOutcome::Miss);
        t.fill(1, va, entry(0x20_0000, PageSize::Regular4K, true));
        match t.lookup(1, va) {
            TlbOutcome::HitL1(e) => {
                assert_eq!(e.pa_base, PhysAddr::new(0x20_0000));
                assert!(e.writable);
            }
            other => panic!("expected L1 hit, got {other:?}"),
        }
        // Same page, different offset still hits.
        assert!(matches!(t.lookup(1, VirtAddr::new(0x1abc)), TlbOutcome::HitL1(_)));
        // Different page misses.
        assert_eq!(t.lookup(1, VirtAddr::new(0x2000)), TlbOutcome::Miss);
    }

    #[test]
    fn asid_separation() {
        let mut t = Tlb::new(TlbConfig::default());
        let va = VirtAddr::new(0x1000);
        t.fill(1, va, entry(0x20_0000, PageSize::Regular4K, true));
        assert_eq!(t.lookup(2, va), TlbOutcome::Miss, "other pid must not hit");
    }

    #[test]
    fn huge_entries_cover_2mb() {
        let mut t = Tlb::new(TlbConfig::default());
        let va = VirtAddr::new(0x4000_0000);
        t.fill(1, va, entry(0x20_0000, PageSize::Huge2M, true));
        assert!(matches!(t.lookup(1, VirtAddr::new(0x401f_ffff)), TlbOutcome::HitL1(_)));
        assert_eq!(t.lookup(1, VirtAddr::new(0x4020_0000)), TlbOutcome::Miss);
    }

    #[test]
    fn l1_capacity_spills_to_l2() {
        let mut t =
            Tlb::new(TlbConfig { l1_entries_4k: 2, l2_entries: 64, ..TlbConfig::default() });
        for i in 0..4u64 {
            t.fill(1, VirtAddr::new(i * 4096), entry(i * 4096, PageSize::Regular4K, true));
        }
        // Oldest L1 entries evicted, but L2 still holds them.
        let out = t.lookup(1, VirtAddr::new(0));
        assert!(matches!(out, TlbOutcome::HitL2(_)), "{out:?}");
        assert_eq!(t.stats().l2_hits, 1);
        // The L2 hit promoted it back to L1.
        assert!(matches!(t.lookup(1, VirtAddr::new(0)), TlbOutcome::HitL1(_)));
    }

    #[test]
    fn shootdowns() {
        let mut t = Tlb::new(TlbConfig::default());
        let va = VirtAddr::new(0x1000);
        t.fill(1, va, entry(0x20_0000, PageSize::Regular4K, false));
        t.invalidate_page(1, va);
        assert_eq!(t.lookup(1, va), TlbOutcome::Miss);
        assert!(t.stats().shootdowns >= 1);

        t.fill(1, va, entry(0x20_0000, PageSize::Regular4K, true));
        t.fill(2, va, entry(0x30_0000, PageSize::Regular4K, true));
        t.invalidate_pid(1);
        assert_eq!(t.lookup(1, va), TlbOutcome::Miss);
        assert!(matches!(t.lookup(2, va), TlbOutcome::HitL1(_)));

        t.flush_all();
        assert_eq!(t.lookup(2, va), TlbOutcome::Miss);
    }

    #[test]
    fn charges() {
        let t = Tlb::new(TlbConfig::default());
        let e = entry(0, PageSize::Regular4K, true);
        assert_eq!(t.charge(&TlbOutcome::HitL1(e)), 0);
        assert_eq!(t.charge(&TlbOutcome::HitL2(e)), 8);
        assert_eq!(t.charge(&TlbOutcome::Miss), 100);
    }

    #[test]
    fn walk_rate() {
        let mut t = Tlb::new(TlbConfig::default());
        t.lookup(1, VirtAddr::new(0)); // miss
        t.fill(1, VirtAddr::new(0), entry(0, PageSize::Regular4K, true));
        t.lookup(1, VirtAddr::new(0)); // hit
        assert!((t.stats().walk_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_config_panics() {
        assert!(TlbConfig { l1_entries_4k: 0, ..TlbConfig::default() }.validate().is_err());
    }
}
