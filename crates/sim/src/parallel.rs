//! The parallel sharded engine: a [`System`] facade that runs the
//! crypto data plane on all host cores.
//!
//! [`ParallelEngine`] wraps a `System` configured via
//! [`SimConfig::with_parallel`]: the timing/control plane executes on
//! the calling thread exactly as the serial engine would, while the
//! elided crypto work fans out to shard workers at epoch barriers (see
//! [`crate::shard`]). Every observable — metrics, probe events,
//! Merkle roots, cycle ledgers — is bit-identical to the serial
//! engine for every worker count; the win is host wall-clock on
//! crypto-heavy runs.
//!
//! The facade derefs to [`System`], so workloads run unchanged:
//!
//! ```
//! use lelantus_sim::{ParallelEngine, SimConfig};
//! use lelantus_os::CowStrategy;
//! use lelantus_types::PageSize;
//!
//! let cfg = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K)
//!     .with_phys_bytes(16 << 20);
//! let mut eng = ParallelEngine::new(cfg, 2);
//! let pid = eng.spawn_init();
//! let va = eng.mmap(pid, 4096)?;
//! eng.write_bytes(pid, va, &[7; 64])?;
//! eng.finish();
//! assert_eq!(eng.stats().workers, 2);
//! # Ok::<(), lelantus_os::OsError>(())
//! ```

use crate::config::SimConfig;
use crate::shard::ShardStats;
use crate::system::System;
use lelantus_obs::{NullProbe, Probe};

/// Aggregate statistics of one parallel run (see
/// [`System::parallel_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Shard worker count.
    pub workers: usize,
    /// Epoch barriers executed (dispatches that carried ops).
    pub barriers: u64,
    /// Data-plane ops fanned out across all barriers.
    pub ops_dispatched: u64,
    /// Store ops whose CoW source lives in a different shard — the
    /// messages a distributed implementation would exchange.
    pub cross_shard_messages: u64,
    /// Per-shard breakdown, in stable shard order.
    pub shards: Vec<ShardReport>,
}

/// One shard's contribution to a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Work and host-time counters, including the per-shard host-time
    /// ledger (AES / MAC / Merkle breakdown).
    pub stats: ShardStats,
    /// Ciphertext lines resident in this shard's slice.
    pub resident_lines: usize,
    /// Regions whose Merkle leaf this shard materialized.
    pub regions_touched: usize,
}

/// A [`System`] that runs on the parallel sharded engine. Thin,
/// deref-transparent wrapper; exists so call sites say what they mean
/// and cannot forget [`SimConfig::with_parallel`].
#[derive(Debug, Clone)]
pub struct ParallelEngine<P: Probe = NullProbe> {
    sys: System<P>,
}

impl ParallelEngine {
    /// Boots an unobserved parallel system with `workers` shard
    /// workers (`workers >= 1`; the config's prior parallel setting is
    /// overridden).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or `workers` is 0
    /// (use [`System::new`] for the serial engine).
    pub fn new(config: SimConfig, workers: usize) -> Self {
        Self::with_probe(config, workers, NullProbe)
    }
}

impl<P: Probe> ParallelEngine<P> {
    /// Boots a probed parallel system (see [`System::with_probe`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or `workers` is 0.
    pub fn with_probe(config: SimConfig, workers: usize, probe: P) -> Self {
        assert!(workers > 0, "the parallel engine needs at least one worker");
        Self { sys: System::with_probe(config.with_parallel(workers), probe) }
    }

    /// The wrapped system.
    pub fn system(&self) -> &System<P> {
        &self.sys
    }

    /// The wrapped system, mutably.
    pub fn system_mut(&mut self) -> &mut System<P> {
        &mut self.sys
    }

    /// Consumes the facade, returning the system.
    pub fn into_system(self) -> System<P> {
        self.sys
    }

    /// Synchronizes the shard workers and reports the run's parallel
    /// statistics (never `None` — the facade guarantees the engine).
    pub fn stats(&mut self) -> ParStats {
        self.sys.parallel_sync();
        self.sys.parallel_stats().expect("facade always runs the parallel engine")
    }
}

impl<P: Probe> std::ops::Deref for ParallelEngine<P> {
    type Target = System<P>;

    fn deref(&self) -> &System<P> {
        &self.sys
    }
}

impl<P: Probe> std::ops::DerefMut for ParallelEngine<P> {
    fn deref_mut(&mut self) -> &mut System<P> {
        &mut self.sys
    }
}
