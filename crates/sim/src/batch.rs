//! Batched access descriptions for [`System::run_batch`].
//!
//! Workload generators describe whole runs of line-granularity
//! accesses up front instead of calling `read_bytes`/`write_bytes`
//! once per line. The batch is a flat op list plus one shared payload
//! arena, so building and replaying it allocates nothing per access;
//! [`System::run_batch`] then translates once per page *run* rather
//! than once per line. Cycle charges and simulated state are identical
//! either way — the batch only changes host-side work.
//!
//! [`System::run_batch`]: crate::System::run_batch
//! [`System`]: crate::System

use lelantus_types::VirtAddr;

/// One queued operation (crate-visible for the driver).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchOp {
    /// Start virtual address.
    pub va: VirtAddr,
    /// Length in bytes (may span many lines; the driver splits).
    pub len: u32,
    /// Read, explicit-data write, or pattern write.
    pub kind: OpKind,
}

/// What a [`BatchOp`] does.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpKind {
    /// Load `len` bytes (data discarded; timing and residency only).
    Read,
    /// Store `len` bytes starting at `data_off` in the batch arena.
    Write {
        /// Offset of the payload within [`AccessBatch::data`].
        data_off: u32,
    },
    /// Store `len` bytes of the repeated byte `tag`.
    Pattern {
        /// The fill byte.
        tag: u8,
    },
}

/// A reusable queue of memory accesses for one process.
///
/// Push ops in program order, hand the batch to
/// [`System::run_batch`], then [`AccessBatch::clear`] and refill —
/// the backing allocations persist across uses.
///
/// # Examples
///
/// ```
/// use lelantus_sim::AccessBatch;
/// use lelantus_types::VirtAddr;
///
/// let mut batch = AccessBatch::new();
/// batch.push_write(VirtAddr::new(0x1000), b"hello");
/// batch.push_read(VirtAddr::new(0x1000), 5);
/// assert_eq!(batch.len(), 2);
/// batch.clear();
/// assert!(batch.is_empty());
/// ```
///
/// [`System::run_batch`]: crate::System::run_batch
#[derive(Debug, Clone, Default)]
pub struct AccessBatch {
    pub(crate) ops: Vec<BatchOp>,
    /// Payload arena for explicit-data writes.
    pub(crate) data: Vec<u8>,
}

impl AccessBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch pre-sized for `ops` queued operations
    /// and `data_bytes` of explicit-write payload, so generators that
    /// know their shape up front (one op per touched line, one payload
    /// byte per written byte) never regrow the vectors mid-build.
    pub fn with_capacity(ops: usize, data_bytes: usize) -> Self {
        Self { ops: Vec::with_capacity(ops), data: Vec::with_capacity(data_bytes) }
    }

    /// Grows the backing vectors for at least `ops` more operations
    /// and `data_bytes` more payload (the in-place counterpart of
    /// [`AccessBatch::with_capacity`] for reused scratch batches).
    pub fn reserve(&mut self, ops: usize, data_bytes: usize) {
        self.ops.reserve(ops);
        self.data.reserve(data_bytes);
    }

    /// Drops all queued ops, keeping capacity.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.data.clear();
    }

    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Queues a read of `len` bytes at `va`.
    pub fn push_read(&mut self, va: VirtAddr, len: usize) {
        self.ops.push(BatchOp { va, len: len as u32, kind: OpKind::Read });
    }

    /// Queues a write of `bytes` at `va`.
    pub fn push_write(&mut self, va: VirtAddr, bytes: &[u8]) {
        let data_off = self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        self.ops.push(BatchOp { va, len: bytes.len() as u32, kind: OpKind::Write { data_off } });
    }

    /// Queues a write of `len` repeated `tag` bytes at `va`
    /// (the batched form of `System::write_pattern`).
    pub fn push_pattern(&mut self, va: VirtAddr, len: usize, tag: u8) {
        self.ops.push(BatchOp { va, len: len as u32, kind: OpKind::Pattern { tag } });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_offsets_track_pushes() {
        let mut b = AccessBatch::new();
        b.push_write(VirtAddr::new(0), &[1, 2, 3]);
        b.push_write(VirtAddr::new(64), &[4, 5]);
        b.push_pattern(VirtAddr::new(128), 4096, 0xAA);
        b.push_read(VirtAddr::new(0), 8);
        assert_eq!(b.len(), 4);
        assert_eq!(b.data, vec![1, 2, 3, 4, 5]);
        match b.ops[1].kind {
            OpKind::Write { data_off } => assert_eq!(data_off, 3),
            _ => panic!("expected write"),
        }
        b.clear();
        assert!(b.is_empty());
        assert!(b.data.is_empty());
    }
}
