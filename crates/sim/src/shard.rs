//! Shard workers of the parallel sharded engine.
//!
//! The serial engine interleaves two planes of work on one thread:
//!
//! * the **timing/control plane** — counter blocks, caches, bank
//!   timing, statistics, probe events — whose completion times feed
//!   back into the core clocks and therefore must stay sequential, and
//! * the **crypto data plane** — AES counter-mode encryption of stored
//!   lines, their data-MAC tags, and Merkle leaf digests — whose
//!   *values* never influence timing, statistics or events.
//!
//! The parallel engine exploits that asymmetry: the controller elides
//! the data plane (storing plaintext, a constant MAC tag and stub tree
//! digests) and logs every elided operation as a [`DataPlaneOp`]. A
//! [`ShardSet`] drains that log at epoch barriers, partitions it by
//! region ([`MetadataLayout::shard_of_region`] — a region's 64 data
//! lines, counter leaf and 8 MAC lines all land in one shard), and
//! fans the batches out to one scoped thread per shard. Each
//! [`ShardState`] redoes the real cryptography into shard-private
//! slices: a ciphertext [`LineStore`], a MAC-tag table and a Merkle
//! leaf-digest table.
//!
//! Determinism: the partition preserves per-shard issue order, shards
//! share no state, and every derived value (ciphertext, tag, digest)
//! is a pure function of the logged op — so the merged result is
//! bit-identical for every worker count, including the serial engine
//! (proved by `tests/parallel_equivalence.rs`).

use lelantus_core::{
    ControllerConfig, DataPlaneOp, SecureMemoryController, DATA_MAC_KEY, MERKLE_KEY,
};
use lelantus_crypto::{
    empty_leaf_digest, leaf_digest, root_over_digests, CtrEngine, IvSpec, SipHash24,
};
use lelantus_metadata::mac::encode_mac_line;
use lelantus_metadata::MetadataLayout;
use lelantus_nvm::LineStore;
use lelantus_obs::{CycleCategory, CycleLedger, HeatGrid, HeatLane, Probe};
use lelantus_types::{PhysAddr, LINE_BYTES, REGION_BYTES};
use std::collections::HashMap;
use std::time::Instant;

/// Counters describing one shard's share of the data-plane work.
/// `host_ns` and the ledger record *host* wall-clock time (the work
/// the worker thread did), never simulated cycles — the simulation's
/// clocks are untouched by the workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Ciphertext lines materialized (AES encrypts).
    pub stores: u64,
    /// Data-MAC tags computed.
    pub mac_tags: u64,
    /// Merkle leaf digests computed.
    pub leaf_hashes: u64,
    /// Store ops whose CoW source region belongs to a *different*
    /// shard — the cross-shard messages a distributed implementation
    /// would exchange at the barrier.
    pub cross_shard: u64,
    /// Total host nanoseconds this shard's worker spent applying ops.
    pub host_ns: u64,
    /// Host-time breakdown by work kind: [`CycleCategory::AesPad`]
    /// (encryption), [`CycleCategory::Mac`] (tagging + slice insert),
    /// [`CycleCategory::MerkleWalk`] (leaf digests) — the same
    /// categories the serial engine books the equivalent on-path work
    /// under, so per-shard breakdowns read like the serial ledger.
    pub ledger: CycleLedger,
}

impl ShardStats {
    fn merge(&mut self, other: &ShardStats) {
        self.stores += other.stores;
        self.mac_tags += other.mac_tags;
        self.leaf_hashes += other.leaf_hashes;
        self.cross_shard += other.cross_shard;
        self.host_ns += other.host_ns;
        self.ledger.merge(&other.ledger);
    }
}

/// One shard: the crypto engines plus the slices of NVM state this
/// worker owns (ciphertext lines, MAC tags, Merkle leaf digests of its
/// regions). Plain owned data — `Clone` participates in
/// `System::snapshot`, and `Send` lets a scoped thread borrow it.
#[derive(Debug, Clone)]
pub struct ShardState {
    /// This shard's index in the set.
    id: usize,
    /// Total shard count (for cross-shard attribution).
    shards: usize,
    engine: CtrEngine,
    mac_key: SipHash24,
    layout: MetadataLayout,
    /// Real ciphertext, keyed by line-aligned data address.
    cipher: LineStore,
    /// Real MAC tags, keyed by MAC-line index (all 8 slots of a MAC
    /// line cover one region, so a line never splits across shards).
    macs: HashMap<u64, [u64; 8]>,
    /// Real Merkle leaf digests, keyed by region.
    leaves: HashMap<u64, u64>,
    stats: ShardStats,
    /// Spatial heat of this shard's data-plane work (`None` unless
    /// `ControllerConfig::heatmap`). Shards own disjoint region sets,
    /// so merging the per-shard grids is order-independent.
    heat: Option<Box<HeatGrid>>,
}

impl ShardState {
    fn new(id: usize, shards: usize, layout: MetadataLayout, config: &ControllerConfig) -> Self {
        Self {
            id,
            shards,
            engine: if config.use_reference_aes {
                CtrEngine::new_reference(config.key)
            } else {
                CtrEngine::new(config.key)
            },
            mac_key: SipHash24::new(DATA_MAC_KEY.0, DATA_MAC_KEY.1),
            layout,
            cipher: LineStore::new(),
            macs: HashMap::new(),
            leaves: HashMap::new(),
            stats: ShardStats::default(),
            heat: config.heatmap.then(Box::<HeatGrid>::default),
        }
    }

    /// The real tag for a ciphertext line — the exact formula
    /// `SecureMemoryController::data_mac` elides in deferred mode.
    fn data_mac_tag(&self, addr: u64, cipher: &[u8; LINE_BYTES], major: u64, minor: u8) -> u64 {
        let mut buf = [0u8; LINE_BYTES + 17];
        buf[..LINE_BYTES].copy_from_slice(cipher);
        buf[LINE_BYTES..LINE_BYTES + 8].copy_from_slice(&addr.to_le_bytes());
        buf[LINE_BYTES + 8..LINE_BYTES + 16].copy_from_slice(&major.to_le_bytes());
        buf[LINE_BYTES + 16] = minor;
        self.mac_key.hash(&buf)
    }

    /// Applies one barrier's worth of this shard's ops, in issue
    /// order, in three phases (encrypt, MAC + insert, leaf digests) so
    /// the per-shard ledger mirrors the serial engine's categories.
    fn apply(&mut self, ops: &[DataPlaneOp]) {
        // Phase 1: AES counter-mode encryption of every stored line.
        let t0 = Instant::now();
        let mut ciphers = Vec::with_capacity(ops.len());
        for op in ops {
            if let DataPlaneOp::Store { addr, plain, major, minor, .. } = op {
                let iv = IvSpec { line_addr: *addr, major: *major, minor: *minor };
                ciphers.push(self.engine.encrypt_line(plain, iv));
            }
        }
        // Phase 2: data-MAC tags + ciphertext-slice inserts (issue
        // order, so same-address rewrites resolve last-write-wins
        // exactly as the serial NVM store does).
        let t1 = Instant::now();
        let mut next = 0usize;
        for op in ops {
            if let DataPlaneOp::Store { addr, major, minor, src_region, .. } = op {
                let cipher = ciphers[next];
                next += 1;
                let tag = self.data_mac_tag(*addr, &cipher, *major, *minor);
                let pa = PhysAddr::new(*addr);
                let index = self.layout.mac_line_index(pa);
                let (_, slot) = self.layout.mac_slot_of_line(pa);
                self.macs.entry(index).or_insert([0; 8])[slot] = tag;
                self.cipher.insert(*addr, cipher);
                self.stats.stores += 1;
                self.stats.mac_tags += 1;
                if let Some(h) = self.heat.as_mut() {
                    h.record(HeatLane::DpStore, *addr / REGION_BYTES);
                }
                if let Some(src) = src_region {
                    if self.layout.shard_of_region(*src, self.shards) != self.id {
                        self.stats.cross_shard += 1;
                    }
                }
            }
        }
        // Phase 3: Merkle leaf digests of updated counter blocks.
        let t2 = Instant::now();
        for op in ops {
            if let DataPlaneOp::Leaf { region, bytes } = op {
                self.leaves.insert(*region, leaf_digest(MERKLE_KEY, bytes));
                self.stats.leaf_hashes += 1;
                if let Some(h) = self.heat.as_mut() {
                    h.record(HeatLane::DpLeaf, *region);
                }
            }
        }
        let t3 = Instant::now();
        let (aes, mac, leaf) =
            ((t1 - t0).as_nanos() as u64, (t2 - t1).as_nanos() as u64, (t3 - t2).as_nanos() as u64);
        self.stats.ledger.charge(CycleCategory::AesPad, aes);
        self.stats.ledger.charge(CycleCategory::Mac, mac);
        self.stats.ledger.charge(CycleCategory::MerkleWalk, leaf);
        self.stats.host_ns += aes + mac + leaf;
    }

    /// This shard's counters.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// This shard's data-plane heat lanes (`None` when the heatmap is
    /// off).
    pub fn heatmap(&self) -> Option<&HeatGrid> {
        self.heat.as_deref()
    }

    /// Ciphertext lines resident in this shard's slice.
    pub fn resident_lines(&self) -> usize {
        self.cipher.len()
    }

    /// Regions whose Merkle leaf this shard has materialized.
    pub fn regions_touched(&self) -> usize {
        self.leaves.len()
    }
}

/// The shard workers plus dispatch machinery: drains the controller's
/// data-plane log at epoch barriers, partitions it by owning shard and
/// applies each partition on its own scoped thread.
#[derive(Debug, Clone)]
pub struct ShardSet {
    shards: Vec<ShardState>,
    /// Reused per-shard partitions (cleared each barrier).
    parts: Vec<Vec<DataPlaneOp>>,
    /// Reused drain buffer.
    scratch: Vec<DataPlaneOp>,
    /// Ops buffered before a dispatch fires (`SimConfig::parallel_horizon`).
    horizon: usize,
    /// Number of regions in the data area (true-root reconstruction).
    regions: u64,
    /// Epoch barriers executed (dispatches with at least one op).
    barriers: u64,
    /// Total data-plane ops fanned out across all barriers.
    ops_dispatched: u64,
}

impl ShardSet {
    /// Builds `workers` shards sharing the controller's geometry and
    /// keys.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (the serial engine is `System`
    /// without a shard set, not a zero-shard set).
    pub fn new(
        workers: usize,
        horizon: usize,
        layout: MetadataLayout,
        config: &ControllerConfig,
    ) -> Self {
        assert!(workers > 0, "a shard set needs at least one worker");
        Self {
            shards: (0..workers).map(|id| ShardState::new(id, workers, layout, config)).collect(),
            parts: vec![Vec::new(); workers],
            scratch: Vec::new(),
            horizon: horizon.max(1),
            regions: layout.regions(),
            barriers: 0,
            ops_dispatched: 0,
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The dispatch threshold (ops buffered before a barrier fires).
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Epoch barriers executed so far.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Total ops dispatched across all barriers.
    pub fn ops_dispatched(&self) -> u64 {
        self.ops_dispatched
    }

    /// The shard workers (read-only; reporting).
    pub fn shards(&self) -> &[ShardState] {
        &self.shards
    }

    /// Union of the per-shard counters.
    pub fn total_stats(&self) -> ShardStats {
        let mut total = ShardStats::default();
        for shard in &self.shards {
            total.merge(&shard.stats);
        }
        total
    }

    /// One epoch barrier: drains the controller's data-plane log,
    /// partitions it by owning shard (preserving issue order within
    /// each partition) and applies every non-empty partition on its
    /// own scoped thread. No-op when the log is empty.
    pub fn dispatch_from<P: Probe>(&mut self, ctrl: &mut SecureMemoryController<P>) {
        if ctrl.data_plane_pending() == 0 {
            return;
        }
        ctrl.drain_data_plane_into(&mut self.scratch);
        self.barriers += 1;
        self.ops_dispatched += self.scratch.len() as u64;
        let n = self.shards.len();
        let layout = self.shards[0].layout;
        for part in &mut self.parts {
            part.clear();
        }
        for op in self.scratch.drain(..) {
            let shard = layout.shard_of_region(op.region(REGION_BYTES), n);
            self.parts[shard].push(op);
        }
        if n == 1 {
            self.shards[0].apply(&self.parts[0]);
            return;
        }
        std::thread::scope(|scope| {
            for (shard, part) in self.shards.iter_mut().zip(&self.parts) {
                if !part.is_empty() {
                    scope.spawn(move || shard.apply(part));
                }
            }
        });
    }

    /// The *real* Merkle root: every shard's leaf digests overlaid on
    /// the untouched-leaf digest, rebuilt through the exact tree
    /// construction. Stable shard order is irrelevant here — leaves
    /// are keyed by region, and no region appears in two shards.
    ///
    /// Callers must dispatch pending ops first (the `System` barrier
    /// does) or the root lags the log.
    pub fn true_root(&self) -> u64 {
        let mut leaves = vec![empty_leaf_digest(MERKLE_KEY); self.regions as usize];
        for shard in &self.shards {
            for (&region, &digest) in &shard.leaves {
                leaves[region as usize] = digest;
            }
        }
        root_over_digests(MERKLE_KEY, &leaves)
    }

    /// The real NVM contents at `addr` as materialized by the owning
    /// shard: ciphertext for data-area lines, encoded tag lines for
    /// MAC-area addresses. `None` when no shard has materialized the
    /// line (never stored) or the address falls in an area the workers
    /// do not own (counter blocks, CoW table — those stay exact on the
    /// scout).
    pub fn line_override(&self, addr: u64) -> Option<[u8; LINE_BYTES]> {
        let layout = self.shards[0].layout;
        let n = self.shards.len();
        if addr < layout.data_bytes {
            let shard = layout.shard_of_region(addr / REGION_BYTES, n);
            return self.shards[shard].cipher.get(addr);
        }
        if addr >= layout.mac_base {
            let index = (addr - layout.mac_base) / LINE_BYTES as u64;
            // 8 MAC lines per region (512 data bytes each).
            let shard = layout.shard_of_region(index / 8, n);
            return self.shards[shard].macs.get(&index).map(encode_mac_line);
        }
        None
    }

    /// Every materialized data-area line as `(addr, ciphertext)`, in
    /// address order across all shards (equivalence-test
    /// observability).
    pub fn materialized_lines(&self) -> Vec<(u64, [u8; LINE_BYTES])> {
        let mut lines: Vec<(u64, [u8; LINE_BYTES])> =
            self.shards.iter().flat_map(|s| s.cipher.iter()).collect();
        lines.sort_unstable_by_key(|&(addr, _)| addr);
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lelantus_core::DEFERRED_MAC_TAG;

    fn test_config() -> ControllerConfig {
        let mut config = ControllerConfig::for_scheme(lelantus_core::SchemeKind::LelantusResized);
        config.data_bytes = 16 << 20;
        config.defer_data_plane = true;
        config
    }

    #[test]
    fn partition_is_deterministic_and_order_preserving() {
        let config = test_config();
        let layout = MetadataLayout::for_data_bytes(config.data_bytes);
        let ops: Vec<DataPlaneOp> = (0..64u64)
            .map(|i| DataPlaneOp::Store {
                addr: (i % 7) * REGION_BYTES + (i * 64) % 4096,
                plain: [i as u8; LINE_BYTES],
                major: 1,
                minor: 1,
                src_region: None,
            })
            .collect();
        let run = |workers: usize| {
            let mut set = ShardSet::new(workers, 4096, layout, &config);
            for shard in &mut set.shards {
                shard.apply(
                    &ops.iter()
                        .filter(|op| {
                            layout.shard_of_region(op.region(REGION_BYTES), workers) == shard.id
                        })
                        .cloned()
                        .collect::<Vec<_>>(),
                );
            }
            (set.true_root(), set.materialized_lines())
        };
        let (root1, lines1) = run(1);
        for workers in [2, 3, 8] {
            let (root, lines) = run(workers);
            assert_eq!(root, root1, "{workers} workers");
            assert_eq!(lines, lines1, "{workers} workers");
        }
    }

    #[test]
    fn shard_recomputes_real_mac_tags() {
        let config = test_config();
        let layout = MetadataLayout::for_data_bytes(config.data_bytes);
        let mut set = ShardSet::new(2, 4096, layout, &config);
        let addr = 3 * REGION_BYTES + 128;
        set.shards[1].apply(&[DataPlaneOp::Store {
            addr,
            plain: [0xAB; LINE_BYTES],
            major: 2,
            minor: 5,
            src_region: Some(0), // shard 0 owns region 0: cross-shard
        }]);
        let stats = set.total_stats();
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.cross_shard, 1);
        let (mac_line_addr, slot) = layout.mac_slot_of_line(PhysAddr::new(addr));
        let line = set.line_override(mac_line_addr.as_u64()).expect("tag materialized");
        let tag = u64::from_le_bytes(line[slot * 8..slot * 8 + 8].try_into().unwrap());
        assert_ne!(tag, 0, "real tag installed");
        assert_ne!(tag, DEFERRED_MAC_TAG, "not the deferred sentinel");
        let cipher = set.line_override(addr).expect("ciphertext materialized");
        assert_ne!(cipher, [0xAB; LINE_BYTES], "stored encrypted, not plaintext");
        assert_eq!(tag, set.shards[1].data_mac_tag(addr, &cipher, 2, 5));
    }

    #[test]
    fn empty_dispatch_is_not_a_barrier() {
        let config = test_config();
        let layout = MetadataLayout::for_data_bytes(config.data_bytes);
        let mut set = ShardSet::new(4, 16, layout, &config);
        let mut ctrl = SecureMemoryController::new(config);
        set.dispatch_from(&mut ctrl);
        assert_eq!(set.barriers(), 0);
        assert_eq!(set.ops_dispatched(), 0);
    }
}
