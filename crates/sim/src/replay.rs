//! Trace replay: drive a [`System`] from a recorded `.ltr` file.
//!
//! [`replay`] streams a validated [`Trace`] straight into the
//! simulator: batch records feed the run-cache driver through borrowed
//! slices of the file mapping (the payload arena is never copied), and
//! kernel records invoke the same public syscalls the recorded run
//! used. Because every allocation result (`spawn_init` pid, `mmap`
//! base, `fork` child) and every observed Merkle root is stored in the
//! trace, replay is self-checking: any drift from the recorded
//! trajectory surfaces as [`ReplayError::Divergence`] at the first
//! record where the machines disagree, not as a mystery metric delta
//! at the end.
//!
//! The replayed system may use a *different* CoW scheme than the
//! recorder (that is the point of a trace sweep) — pids and addresses
//! are scheme-independent, so the divergence oracle still holds.
//! Merkle-root records are the exception: the root is scheme- and
//! engine-dependent state, so root checks are skipped unless the
//! caller opts in with [`replay_checked`] against a same-config run.

use crate::batch::{BatchOp, OpKind};
use crate::system::System;
use lelantus_obs::{HeatLane, Probe};
use lelantus_os::OsError;
use lelantus_trace::reader::Record;
use lelantus_trace::{Trace, TraceError, TraceOpKind};
use lelantus_types::{VirtAddr, REGION_BYTES};
use std::fmt;

/// What a replayed trace did, for reports and throughput accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Records executed.
    pub records: u64,
    /// Line-level access ops executed (batch ops + per-line records).
    pub ops: u64,
    /// Batch records among `records`.
    pub batches: u64,
    /// Payload bytes fed to the sim (write arenas + non-temporal
    /// stores), all served zero-copy from the trace image.
    pub payload_bytes: u64,
}

/// Why a replay stopped.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace itself is malformed (decode failure mid-body).
    Trace(TraceError),
    /// The simulated kernel rejected a replayed operation.
    Os(OsError),
    /// The trace was recorded on a machine whose geometry differs
    /// from the replaying system, so addresses would not line up.
    Geometry {
        /// Which geometry field disagrees.
        field: &'static str,
        /// The trace header's value.
        trace: u64,
        /// The replaying system's value.
        system: u64,
    },
    /// The replaying system left the recorded trajectory.
    Divergence {
        /// Zero-based index of the record that disagreed.
        record: u64,
        /// What was compared (`"spawn_init pid"`, `"mmap base"`...).
        what: &'static str,
        /// The value the recorded run observed.
        expected: u64,
        /// The value this replay produced.
        got: u64,
    },
    /// Crash recovery failed during a replayed power cycle.
    Recovery(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Trace(e) => write!(f, "trace decode failed: {e}"),
            Self::Os(e) => write!(f, "replayed operation failed: {e}"),
            Self::Geometry { field, trace, system } => write!(
                f,
                "geometry mismatch: trace recorded with {field} = {trace}, system has {system}"
            ),
            Self::Divergence { record, what, expected, got } => write!(
                f,
                "replay diverged at record {record}: {what} expected {expected:#x}, got {got:#x}"
            ),
            Self::Recovery(e) => write!(f, "crash recovery failed during replay: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Trace(e) => Some(e),
            Self::Os(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        Self::Trace(e)
    }
}

impl From<OsError> for ReplayError {
    fn from(e: OsError) -> Self {
        Self::Os(e)
    }
}

/// Records kept in a [`DivergenceReport`]'s recent-operation window.
const RECENT_K: usize = 16;

/// Spatial context for a replay divergence: *where* the replaying
/// machine was when it left the recorded trajectory, not just which
/// record disagreed. Built post-hoc by [`explain_divergence`] — the
/// replay hot path is untouched — and rendered by `Display` as the
/// dump the CLI prints when `replay --check` fails.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Zero-based index of the record that disagreed.
    pub record: u64,
    /// What was compared (`"mmap base"`, `"merkle root"`, ...).
    pub what: &'static str,
    /// The value the recorded run observed.
    pub expected: u64,
    /// The value this replay produced.
    pub got: u64,
    /// Focus region: the 4 KB region of the *replayed* value when the
    /// comparison is an address (`None` for pid/core/root mismatches,
    /// which have no spatial anchor).
    pub region: Option<u64>,
    /// Nonzero heat lanes at the focus region as `(lane name, count)`
    /// — empty when the heatmap is off or the region is cold.
    pub region_heat: Vec<(&'static str, u64)>,
    /// Heat totals of the regions around the focus (`±2` window,
    /// nonzero only) as `(region, total)`.
    pub neighbors: Vec<(u64, u64)>,
    /// The run's hottest regions overall as `(region, total)` —
    /// spatial context even when the divergence has no address.
    pub hottest: Vec<(u64, u64)>,
    /// The last [`RECENT_K`] records executed up to and including the
    /// diverging one, oldest first: `(record index, description,
    /// touches the focus region)`.
    pub recent: Vec<(u64, String, bool)>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "replay diverged at record {}: {} expected {:#x}, got {:#x}",
            self.record, self.what, self.expected, self.got
        )?;
        match self.region {
            Some(r) => {
                writeln!(f, "  focus region {r} (replayed value, 4 KB granularity)")?;
                if self.region_heat.is_empty() {
                    writeln!(f, "  heat at focus: none recorded (cold region or heatmap off)")?;
                } else {
                    write!(f, "  heat at focus:")?;
                    for (lane, count) in &self.region_heat {
                        write!(f, " {lane}={count}")?;
                    }
                    writeln!(f)?;
                }
                if !self.neighbors.is_empty() {
                    write!(f, "  neighbor heat:")?;
                    for (region, total) in &self.neighbors {
                        write!(f, " {region}={total}")?;
                    }
                    writeln!(f)?;
                }
            }
            None => writeln!(f, "  no spatial anchor for this comparison")?,
        }
        if !self.hottest.is_empty() {
            write!(f, "  hottest regions:")?;
            for (region, total) in &self.hottest {
                write!(f, " {region}={total}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  last {} records (* touches focus):", self.recent.len())?;
        for (idx, desc, touches) in &self.recent {
            writeln!(f, "    {idx:>6}: {desc}{}", if *touches { " *" } else { "" })?;
        }
        Ok(())
    }
}

/// Builds the spatial context report for a [`ReplayError::Divergence`]
/// returned by [`replay`] or [`replay_checked`] against the same
/// `sys`/`trace` pair. Returns `None` for every other error kind.
///
/// This is a cold-path post-mortem: it re-scans the trace up to the
/// diverging record for the recent-operation window and reads the
/// system's merged heat grid (empty lanes when the run was not built
/// with `SimConfig::with_heatmap`). Nothing here runs during a
/// successful replay, so the replay fast path is unperturbed.
pub fn explain_divergence<P: Probe>(
    sys: &mut System<P>,
    trace: &Trace,
    err: &ReplayError,
) -> Option<DivergenceReport> {
    let ReplayError::Divergence { record, what, expected, got } = err else {
        return None;
    };
    let (record, what, expected, got) = (*record, *what, *expected, *got);
    // Only address comparisons have a region; pids, core indices and
    // Merkle roots are not locations. The *replayed* value anchors the
    // focus — it is where this machine actually is.
    let region = (what == "mmap base").then_some(got / REGION_BYTES);

    let grid = sys.heatmap();
    let mut region_heat = Vec::new();
    let mut neighbors = Vec::new();
    let mut hottest = Vec::new();
    if let Some(grid) = &grid {
        hottest = grid.top_regions(5);
        if let Some(r) = region {
            for lane in HeatLane::ALL {
                let count = grid.get(lane, r);
                if count != 0 {
                    region_heat.push((lane.name(), count as u64));
                }
            }
            for n in r.saturating_sub(2)..=r.saturating_add(2) {
                let total = grid.region_total(n);
                if n != r && total != 0 {
                    neighbors.push((n, total));
                }
            }
        }
    }

    let mut recent: Vec<(u64, String, bool)> = Vec::new();
    for (idx, rec) in trace.records().enumerate() {
        let idx = idx as u64;
        if idx > record {
            break;
        }
        let Ok(rec) = rec else { break };
        let (desc, touches) = describe(&rec, region);
        if recent.len() == RECENT_K {
            recent.remove(0);
        }
        recent.push((idx, desc, touches));
    }

    Some(DivergenceReport {
        record,
        what,
        expected,
        got,
        region,
        region_heat,
        neighbors,
        hottest,
        recent,
    })
}

/// Whether the virtual span `[va, va + len)` overlaps `focus` in
/// 4 KB-region terms (the recorded addresses are virtual; the focus
/// anchor is derived from the same space).
fn touches(focus: Option<u64>, va: u64, len: u64) -> bool {
    let Some(focus) = focus else { return false };
    let last = va.saturating_add(len.saturating_sub(1));
    va / REGION_BYTES <= focus && focus <= last / REGION_BYTES
}

/// One-line description of a record for the recent-operation window,
/// plus whether it touched the focus region.
fn describe(rec: &Record<'_>, focus: Option<u64>) -> (String, bool) {
    match rec {
        Record::Batch(b) => {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            let mut touched = false;
            for op in b.ops() {
                let Ok(op) = op else { break };
                lo = lo.min(op.va);
                hi = hi.max(op.va + u64::from(op.len));
                touched |= touches(focus, op.va, u64::from(op.len));
            }
            if lo > hi {
                (format!("batch pid={} ops={} (empty)", b.pid, b.nops), false)
            } else {
                (format!("batch pid={} ops={} va={lo:#x}..{hi:#x}", b.pid, b.nops), touched)
            }
        }
        Record::SpawnInit { pid } => (format!("spawn_init -> pid {pid}"), false),
        Record::Mmap { pid, len, page_size, va } => (
            format!("mmap pid={pid} len={len:#x} page={page_size:?} -> va {va:#x}"),
            touches(focus, *va, *len),
        ),
        Record::Fork { parent, child } => (format!("fork parent={parent} -> child {child}"), false),
        Record::Exit { pid } => (format!("exit pid={pid}"), false),
        Record::Munmap { pid, va } => {
            (format!("munmap pid={pid} va={va:#x}"), touches(focus, *va, 1))
        }
        Record::MadviseDontneed { pid, va, len } => (
            format!("madvise_dontneed pid={pid} va={va:#x} len={len:#x}"),
            touches(focus, *va, *len),
        ),
        Record::Mprotect { pid, va, writable } => {
            (format!("mprotect pid={pid} va={va:#x} writable={writable}"), touches(focus, *va, 1))
        }
        Record::KsmMerge(_) => ("ksm_merge".into(), false),
        Record::UseCore { core } => (format!("use_core {core}"), false),
        Record::SyncCores => ("sync_cores".into(), false),
        Record::Finish => ("finish".into(), false),
        Record::WriteNt { pid, va, data } => (
            format!("write_nt pid={pid} va={va:#x} len={:#x}", data.len()),
            touches(focus, *va, data.len() as u64),
        ),
        Record::CrashRecover => ("crash_and_recover".into(), false),
        Record::ResetFootprint => ("reset_footprint".into(), false),
        Record::MerkleRoot { root } => (format!("merkle_root -> {root:#x}"), false),
    }
}

/// Replays `trace` into `sys`, skipping Merkle-root cross-checks (the
/// root depends on the CoW scheme, and replaying under a different
/// scheme is the normal sweep case). Root records still force the
/// same metadata flush / epoch barrier the recorded run performed.
///
/// # Errors
///
/// See [`ReplayError`]; geometry is checked before any record runs.
pub fn replay<P: Probe>(sys: &mut System<P>, trace: &Trace) -> Result<ReplayStats, ReplayError> {
    run(sys, trace, false)
}

/// [`replay`], but every recorded Merkle root must match the replayed
/// one bit-for-bit. Use when the replaying system has the same scheme
/// and configuration as the recorder: the roots then act as rolling
/// integrity checkpoints over the whole metadata state.
///
/// # Errors
///
/// See [`ReplayError`]; additionally [`ReplayError::Divergence`] on
/// the first root mismatch.
pub fn replay_checked<P: Probe>(
    sys: &mut System<P>,
    trace: &Trace,
) -> Result<ReplayStats, ReplayError> {
    run(sys, trace, true)
}

fn run<P: Probe>(
    sys: &mut System<P>,
    trace: &Trace,
    check_roots: bool,
) -> Result<ReplayStats, ReplayError> {
    let header = trace.header();
    let page_bytes = sys.config().page_size.bytes();
    if header.page_size.bytes() != page_bytes {
        return Err(ReplayError::Geometry {
            field: "page_size bytes",
            trace: header.page_size.bytes(),
            system: page_bytes,
        });
    }
    let phys = sys.config().kernel.phys_bytes;
    if header.phys_bytes != phys {
        return Err(ReplayError::Geometry {
            field: "phys_bytes",
            trace: header.phys_bytes,
            system: phys,
        });
    }

    let mut stats = ReplayStats::default();
    // Scratch op list reused across batch records: the only per-batch
    // host work is decoding the packed stream into it.
    let mut ops: Vec<BatchOp> = Vec::new();
    let mut pairs: Vec<(u64, VirtAddr)> = Vec::new();
    let check = |record: u64, what: &'static str, expected: u64, got: u64| {
        if expected == got {
            Ok(())
        } else {
            Err(ReplayError::Divergence { record, what, expected, got })
        }
    };

    for record in trace.records() {
        let idx = stats.records;
        stats.records += 1;
        match record? {
            Record::Batch(b) => {
                ops.clear();
                for op in b.ops() {
                    let op = op?;
                    ops.push(BatchOp {
                        va: VirtAddr::new(op.va),
                        len: op.len,
                        kind: match op.kind {
                            TraceOpKind::Read => OpKind::Read,
                            TraceOpKind::Write { data_off } => OpKind::Write { data_off },
                            TraceOpKind::Pattern { tag } => OpKind::Pattern { tag },
                        },
                    });
                }
                sys.run_batch_parts(b.pid, &ops, b.data)?;
                stats.batches += 1;
                stats.ops += ops.len() as u64;
                stats.payload_bytes += b.data.len() as u64;
            }
            Record::SpawnInit { pid } => {
                let got = sys.spawn_init();
                check(idx, "spawn_init pid", pid, got)?;
            }
            Record::Mmap { pid, len, page_size, va } => {
                let got = sys.mmap_with(pid, len, page_size)?;
                check(idx, "mmap base", va, got.as_u64())?;
            }
            Record::Fork { parent, child } => {
                let got = sys.fork(parent)?;
                check(idx, "fork child pid", child, got)?;
            }
            Record::Exit { pid } => sys.exit(pid)?,
            Record::Munmap { pid, va } => sys.munmap(pid, VirtAddr::new(va))?,
            Record::MadviseDontneed { pid, va, len } => {
                sys.madvise_dontneed(pid, VirtAddr::new(va), len)?;
            }
            Record::Mprotect { pid, va, writable } => {
                sys.mprotect(pid, VirtAddr::new(va), writable)?;
            }
            Record::KsmMerge(cands) => {
                pairs.clear();
                for pair in cands {
                    let (pid, va) = pair?;
                    pairs.push((pid, VirtAddr::new(va)));
                }
                sys.ksm_merge(&pairs)?;
            }
            Record::UseCore { core } => {
                // Guard before `use_core`, which panics on bad input —
                // a crafted trace must fail cleanly instead.
                let cores = sys.cores() as u64;
                if u64::from(core) >= cores {
                    return Err(ReplayError::Divergence {
                        record: idx,
                        what: "use_core index (expected shows max valid)",
                        expected: cores - 1,
                        got: u64::from(core),
                    });
                }
                sys.use_core(core as usize);
            }
            Record::SyncCores => sys.sync_cores(),
            Record::Finish => {
                sys.finish();
            }
            Record::WriteNt { pid, va, data } => {
                sys.write_bytes_nt(pid, VirtAddr::new(va), data)?;
                stats.ops += 1;
                stats.payload_bytes += data.len() as u64;
            }
            Record::CrashRecover => {
                sys.crash_and_recover().map_err(|e| ReplayError::Recovery(e.to_string()))?;
            }
            Record::ResetFootprint => sys.reset_footprint(),
            Record::MerkleRoot { root } => {
                // Always recompute (the recorded run's query flushed
                // metadata, so the replay must too); compare only when
                // the caller vouched for config parity.
                let got = sys.merkle_root();
                if check_roots {
                    check(idx, "merkle root", root, got)?;
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::record::TraceRecorder;
    use crate::system::System;
    use lelantus_os::CowStrategy;
    use lelantus_trace::TraceHeader;
    use lelantus_types::PageSize;

    fn config() -> SimConfig {
        SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K)
    }

    fn record_small_run(path: &std::path::Path) -> crate::metrics::SimMetrics {
        let mut sys = System::new(config());
        let header =
            TraceHeader { page_size: PageSize::Regular4K, phys_bytes: config().kernel.phys_bytes };
        let rec = TraceRecorder::create(path, header).unwrap();
        sys.record_into(rec.clone());
        let pid = sys.spawn_init();
        let va = sys.mmap(pid, 16 << 10).unwrap();
        sys.write_bytes(pid, va, &[7u8; 256]).unwrap();
        let child = sys.fork(pid).unwrap();
        sys.write_pattern(child, va, 4096, 0xAB).unwrap();
        assert_eq!(sys.read_bytes(pid, va, 4).unwrap(), [7, 7, 7, 7]);
        sys.merkle_root();
        let metrics = sys.finish();
        sys.stop_recording();
        rec.finish().unwrap();
        metrics
    }

    #[test]
    fn recorded_run_replays_bit_identically() {
        let dir = std::env::temp_dir().join("lelantus-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.ltr");
        let live = record_small_run(&path);

        let trace = Trace::open(&path).unwrap();
        let mut sys = System::new(config());
        let stats = replay_checked(&mut sys, &trace).unwrap();
        assert!(stats.records > 0);
        assert!(stats.ops > 0);
        assert_eq!(sys.finish(), live);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn geometry_mismatch_is_rejected_up_front() {
        let dir = std::env::temp_dir().join("lelantus-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("geom.ltr");
        record_small_run(&path);

        let trace = Trace::open(&path).unwrap();
        let mut huge = System::new(SimConfig::new(CowStrategy::Lelantus, PageSize::Huge2M));
        match replay(&mut huge, &trace) {
            Err(ReplayError::Geometry { field: "page_size bytes", .. }) => {}
            other => panic!("expected geometry error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
