//! Trace recording: a shared sink capturing every state-changing call
//! a [`System`] serves into a `.ltr` file.
//!
//! Attach with [`System::record_into`]; every subsequent mutating
//! call — batched runs, per-line accesses (captured as single-op
//! batch records, which PR 4's batched/per-line equivalence proof
//! makes safe to replay through `run_batch`), syscalls, KSM passes,
//! core switches, flush points — appends one record, including the
//! *results* of allocation decisions (pids, mmap bases, fork
//! children) so [`crate::replay`] can prove a replay stayed on the
//! recorded trajectory. Detach with [`System::stop_recording`], then
//! call [`TraceRecorder::finish`] to seal the footer.
//!
//! The recorder is a shared handle (clones of a recording `System`
//! write to the same sink, like `RingProbe`), so snapshot/restore
//! while recording is unsupported: stop recording first.
//!
//! When recording is off the cost is one `Option` branch per call;
//! I/O errors during recording are latched and reported by
//! [`TraceRecorder::finish`] instead of disturbing the simulation.
//!
//! [`System`]: crate::System
//! [`System::record_into`]: crate::System::record_into
//! [`System::stop_recording`]: crate::System::stop_recording

use crate::batch::{BatchOp, OpKind};
use lelantus_os::kernel::ProcessId;
use lelantus_trace::{TraceHeader, TraceOp, TraceOpKind, TraceTotals, TraceWriter};
use lelantus_types::{PageSize, VirtAddr};
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A cloneable handle on one trace file being written.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    inner: Arc<Mutex<RecState>>,
}

#[derive(Debug)]
struct RecState {
    /// `None` once finished (or after a latched error drops the sink).
    writer: Option<TraceWriter<BufWriter<File>>>,
    /// First I/O error encountered, reported by `finish`.
    err: Option<io::Error>,
}

impl TraceRecorder {
    /// Creates `path` and writes the trace header for `header`'s
    /// geometry.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>, header: TraceHeader) -> io::Result<Self> {
        let writer = TraceWriter::create(path, header)?;
        Ok(Self { inner: Arc::new(Mutex::new(RecState { writer: Some(writer), err: None })) })
    }

    /// Runs `f` against the live writer, latching the first error.
    fn with(&self, f: impl FnOnce(&mut TraceWriter<BufWriter<File>>) -> io::Result<()>) {
        let mut state = self.inner.lock().expect("recorder lock");
        if state.err.is_some() {
            return;
        }
        if let Some(w) = state.writer.as_mut() {
            if let Err(e) = f(w) {
                state.err = Some(e);
                state.writer = None;
            }
        }
    }

    /// Seals the trace: writes the footer, flushes, and returns the
    /// totals. Idempotent error reporting: any I/O error latched
    /// during recording (or during sealing) surfaces here.
    ///
    /// # Errors
    ///
    /// The first write error of the recording session, if any.
    pub fn finish(&self) -> io::Result<TraceTotals> {
        let mut state = self.inner.lock().expect("recorder lock");
        if let Some(e) = state.err.take() {
            return Err(e);
        }
        match state.writer.take() {
            Some(w) => w.finish(),
            None => Err(io::Error::other("trace already finished")),
        }
    }

    /// Totals recorded so far (zero after `finish`).
    pub fn totals(&self) -> TraceTotals {
        let state = self.inner.lock().expect("recorder lock");
        state.writer.as_ref().map(|w| w.totals()).unwrap_or_default()
    }

    pub(crate) fn batch(&self, pid: ProcessId, ops: &[BatchOp], data: &[u8]) {
        if ops.is_empty() {
            return; // an empty batch has no observable effect
        }
        self.with(|w| {
            w.batch(
                pid,
                data,
                ops.iter().map(|op| TraceOp {
                    va: op.va.as_u64(),
                    len: op.len,
                    kind: match op.kind {
                        OpKind::Read => TraceOpKind::Read,
                        OpKind::Write { data_off } => TraceOpKind::Write { data_off },
                        OpKind::Pattern { tag } => TraceOpKind::Pattern { tag },
                    },
                }),
            )
        });
    }

    pub(crate) fn read(&self, pid: ProcessId, va: VirtAddr, len: usize) {
        self.with(|w| w.batch(pid, &[], [TraceOp::read(va.as_u64(), len as u32)]));
    }

    pub(crate) fn write(&self, pid: ProcessId, va: VirtAddr, bytes: &[u8]) {
        self.with(|w| w.batch(pid, bytes, [TraceOp::write(va.as_u64(), bytes.len() as u32, 0)]));
    }

    pub(crate) fn pattern(&self, pid: ProcessId, va: VirtAddr, len: usize, tag: u8) {
        self.with(|w| w.batch(pid, &[], [TraceOp::pattern(va.as_u64(), len as u32, tag)]));
    }

    pub(crate) fn spawn_init(&self, pid: ProcessId) {
        self.with(|w| w.spawn_init(pid));
    }

    pub(crate) fn mmap(&self, pid: ProcessId, len: u64, page_size: PageSize, va: VirtAddr) {
        self.with(|w| w.mmap(pid, len, page_size, va.as_u64()));
    }

    pub(crate) fn fork(&self, parent: ProcessId, child: ProcessId) {
        self.with(|w| w.fork(parent, child));
    }

    pub(crate) fn exit(&self, pid: ProcessId) {
        self.with(|w| w.exit(pid));
    }

    pub(crate) fn munmap(&self, pid: ProcessId, va: VirtAddr) {
        self.with(|w| w.munmap(pid, va.as_u64()));
    }

    pub(crate) fn madvise_dontneed(&self, pid: ProcessId, va: VirtAddr, len: u64) {
        self.with(|w| w.madvise_dontneed(pid, va.as_u64(), len));
    }

    pub(crate) fn mprotect(&self, pid: ProcessId, va: VirtAddr, writable: bool) {
        self.with(|w| w.mprotect(pid, va.as_u64(), writable));
    }

    pub(crate) fn ksm_merge(&self, candidates: &[(ProcessId, VirtAddr)]) {
        self.with(|w| w.ksm_merge(candidates.iter().map(|&(pid, va)| (pid, va.as_u64()))));
    }

    pub(crate) fn use_core(&self, core: usize) {
        self.with(|w| w.use_core(core as u8));
    }

    pub(crate) fn sync_cores(&self) {
        self.with(|w| w.sync_cores());
    }

    pub(crate) fn finish_event(&self) {
        self.with(|w| w.finish_event());
    }

    pub(crate) fn write_nt(&self, pid: ProcessId, va: VirtAddr, data: &[u8]) {
        self.with(|w| w.write_nt(pid, va.as_u64(), data));
    }

    pub(crate) fn crash_recover(&self) {
        self.with(|w| w.crash_recover());
    }

    pub(crate) fn reset_footprint(&self) {
        self.with(|w| w.reset_footprint());
    }

    pub(crate) fn merkle_root(&self, root: u64) {
        self.with(|w| w.merkle_root(root));
    }
}
