//! The [`System`]: one simulated machine.

use crate::batch::{AccessBatch, BatchOp, OpKind};
use crate::config::SimConfig;
use crate::metrics::{EpochSample, SimMetrics};
use crate::parallel::{ParStats, ShardReport};
use crate::record::TraceRecorder;
use crate::shard::ShardSet;
use crate::tlb::{Tlb, TlbEntry, TlbOutcome};
use lelantus_cache::CacheHierarchy;
use lelantus_core::SecureMemoryController;
use lelantus_obs::{
    attribute, selfprof, CycleCategory, CycleLedger, Event, EventKind, FaultAction, FaultSpan,
    HdrHistogram, HeatGrid, HeatLane, HistKind, HistogramSet, NullProbe, Probe, Segment,
    TailRecorder,
};
use lelantus_os::kernel::{AccessKind, FaultKind, HwAction, Kernel, ProcessId};
use lelantus_os::ksm::{merge_pass, KsmCandidate};
use lelantus_os::OsError;
use lelantus_types::{Cycles, PageSize, PhysAddr, VirtAddr, LINE_BYTES, REGION_BYTES};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A complete simulated machine: kernel + caches + secure controller.
///
/// All methods advance the machine's clock; [`System::metrics`] gives
/// a consistent snapshot at any point. Call [`System::finish`] before
/// final measurements so buffered writes reach the NVM array.
///
/// The whole stack is plain owned data, so `Clone` captures the entire
/// machine state — that is what [`System::snapshot`] builds on.
#[derive(Debug, Clone)]
pub struct System<P: Probe = NullProbe> {
    config: SimConfig,
    kernel: Kernel,
    caches: CacheHierarchy,
    ctrl: SecureMemoryController<P>,
    tlb: Tlb,
    /// Per-core clocks (paper Table III: 8 cores). Work issued on
    /// different cores overlaps in time; the shared memory system
    /// (bank/bus/queue state) arbitrates between them.
    clocks: Vec<Cycles>,
    /// Core issuing the next operations (see [`System::use_core`]).
    active: usize,
    probe: P,
    /// Epoch sampler state: metrics at the last epoch boundary, the
    /// next boundary cycle, and the collected time series.
    epoch_last: SimMetrics,
    epoch_next: u64,
    epoch_samples: Vec<EpochSample>,
    /// Cycle-attribution ledger (all zero unless
    /// `SimConfig::with_cycle_ledger`). Invariant when enabled:
    /// `ledger.total() == now()` at every quiescent point.
    ledger: CycleLedger,
    /// Ledger snapshot at the last epoch boundary (for epoch deltas).
    epoch_ledger_last: CycleLedger,
    /// Per-fault span recorder (`None` unless
    /// `SimConfig::with_tail_recorder`). Lives on the sequential
    /// timing plane, so it works unchanged under `with_parallel(n)`.
    tail: Option<TailRecorder>,
    /// Probe-histogram snapshot at the last epoch boundary (for the
    /// per-epoch `HistogramSet` deltas).
    epoch_hists_last: HistogramSet,
    /// Tail-histogram snapshot at the last epoch boundary (for the
    /// per-epoch percentile series).
    epoch_tail_last: HdrHistogram,
    /// Reusable buffer for controller segments (avoids per-access
    /// allocation on the ledger path).
    seg_scratch: Vec<Segment>,
    /// Shard workers of the parallel engine (`None` on the serial
    /// engine). Plain owned data like everything else, so snapshots
    /// carry the materialized shard slices along.
    par: Option<ShardSet>,
    /// Trace recorder (`None` unless [`System::record_into`] attached
    /// one). A shared handle: cloned systems append to the same sink.
    /// Off-cost is one branch per state-changing call.
    rec: Option<TraceRecorder>,
    /// System-layer heat lanes (the five fault-action lanes; `None`
    /// unless `SimConfig::with_heatmap`). Controller, device and shard
    /// lanes live in their own layers and are merged on demand.
    heat: Option<Box<HeatGrid>>,
    /// Merged-grid snapshot at the last epoch boundary (for the
    /// per-epoch heat deltas). Empty when the heatmap is off.
    epoch_heat_last: HeatGrid,
}

impl System {
    /// Boots an unobserved system from `config` (the [`NullProbe`]
    /// path: event tracing compiles away entirely).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(config: SimConfig) -> Self {
        Self::with_probe(config, NullProbe)
    }
}

impl<P: Probe> System<P> {
    /// Boots a system whose stack reports events to `probe` (cloned
    /// into the controller and NVM device so all layers share one
    /// ordered event stream).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn with_probe(config: SimConfig, probe: P) -> Self {
        config.validate().expect("invalid sim config");
        let ctrl = SecureMemoryController::with_probe(config.controller.clone(), probe.clone());
        let par = (config.parallel_workers > 0).then(|| {
            ShardSet::new(
                config.parallel_workers,
                config.parallel_horizon,
                ctrl.layout(),
                &config.controller,
            )
        });
        Self {
            kernel: Kernel::new(config.kernel),
            caches: CacheHierarchy::new(config.caches),
            ctrl,
            tlb: Tlb::new(config.tlb),
            clocks: vec![Cycles::ZERO; 8],
            active: 0,
            probe,
            epoch_last: SimMetrics::default(),
            epoch_next: config.epoch_interval,
            epoch_samples: Vec::new(),
            ledger: CycleLedger::default(),
            epoch_ledger_last: CycleLedger::default(),
            tail: config.tail_recorder.then(|| TailRecorder::new(config.tail_top_k)),
            epoch_hists_last: HistogramSet::default(),
            epoch_tail_last: HdrHistogram::default(),
            seg_scratch: Vec::new(),
            par,
            rec: None,
            heat: config.heatmap.then(Box::<HeatGrid>::default),
            epoch_heat_last: HeatGrid::default(),
            config,
        }
    }

    /// Attaches a [`TraceRecorder`]: every subsequent state-changing
    /// call is appended to the trace, including the pids and addresses
    /// the kernel hands out (so replays can verify they stay on the
    /// recorded trajectory). Recording is host-side only — simulated
    /// time, metrics, events and state are bit-identical to an
    /// unrecorded run.
    pub fn record_into(&mut self, rec: TraceRecorder) {
        self.rec = Some(rec);
    }

    /// Detaches and returns the recorder (call
    /// [`TraceRecorder::finish`] on it to seal the trace).
    pub fn stop_recording(&mut self) -> Option<TraceRecorder> {
        self.rec.take()
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&TraceRecorder> {
        self.rec.as_ref()
    }

    /// The per-fault tail recorder (`None` unless the system was built
    /// with [`SimConfig::with_tail_recorder`]).
    pub fn tail_recorder(&self) -> Option<&TailRecorder> {
        self.tail.as_ref()
    }

    /// The merged spatial heat grid — system fault lanes, controller
    /// metadata lanes, device bank lanes and (on the parallel engine)
    /// the shard workers' data-plane lanes — or `None` unless the
    /// system was built with [`SimConfig::with_heatmap`]. Forces a
    /// parallel barrier first so the shard lanes cover every issued op.
    pub fn heatmap(&mut self) -> Option<HeatGrid> {
        if !self.config.heatmap {
            return None;
        }
        self.parallel_sync();
        Some(self.merged_heat_now())
    }

    /// The merged grid as of *now*, without forcing a barrier (epoch
    /// sampling must not move the parallel dispatch points): on the
    /// parallel engine, ops still buffered in the data-plane log are
    /// charged to the epoch in which their barrier fires.
    fn merged_heat_now(&self) -> HeatGrid {
        let mut grid = self.heat.as_deref().cloned().unwrap_or_default();
        if let Some(h) = self.ctrl.heatmap() {
            grid.merge(h);
        }
        if let Some(h) = self.ctrl.nvm_heatmap() {
            grid.merge(h);
        }
        if let Some(par) = &self.par {
            for shard in par.shards() {
                if let Some(h) = shard.heatmap() {
                    grid.merge(h);
                }
            }
        }
        grid
    }

    /// The probe this system reports to.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The epoch time series collected so far (empty unless
    /// `SimConfig::epoch_interval` is non-zero).
    pub fn epochs(&self) -> &[EpochSample] {
        &self.epoch_samples
    }

    /// Samples the epoch time series when the clock has crossed the
    /// next boundary. At most one sample per call; the boundary then
    /// re-aligns to the cycle grid past the current time.
    fn epoch_tick(&mut self) {
        self.par_tick();
        let interval = self.config.epoch_interval;
        if interval == 0 {
            return;
        }
        let now = self.now().as_u64();
        if now < self.epoch_next {
            return;
        }
        // Epoch boundaries are a metadata flush point: coalesced
        // Merkle maintenance and combined MAC updates land here
        // (host-side only; the snapshot below is unaffected).
        self.ctrl.flush_metadata();
        let snap = self.metrics();
        self.take_epoch_sample(snap);
        self.epoch_next = (now / interval + 1) * interval;
    }

    /// Current probe-side histogram totals (empty on non-recording
    /// probes; compiles away entirely under `NullProbe`).
    fn probe_hists(&self) -> HistogramSet {
        if P::ENABLED {
            self.probe.histogram_snapshot().unwrap_or_default()
        } else {
            HistogramSet::default()
        }
    }

    /// Current tail-recorder totals (empty when recording is off).
    fn tail_hist(&self) -> HdrHistogram {
        self.tail.as_ref().map(|t| t.histogram().clone()).unwrap_or_default()
    }

    /// Closes one epoch at `snap`: pushes the interval sample and
    /// re-baselines every delta source (metrics, ledger, probe
    /// histograms, tail histogram).
    fn take_epoch_sample(&mut self, snap: SimMetrics) {
        let hists_now = self.probe_hists();
        let tail_now = self.tail_hist();
        let heat_now = self.config.heatmap.then(|| self.merged_heat_now());
        self.epoch_samples.push(EpochSample {
            end_cycle: snap.cycles,
            delta: snap.delta_since(&self.epoch_last),
            ledger: self.ledger.delta_since(&self.epoch_ledger_last),
            hists: hists_now.delta_since(&self.epoch_hists_last),
            tail: tail_now.delta_since(&self.epoch_tail_last).summary(),
            heat: heat_now.as_ref().map(|g| Box::new(g.delta_since(&self.epoch_heat_last))),
        });
        self.epoch_last = snap;
        self.epoch_ledger_last = self.ledger;
        self.epoch_hists_last = hists_now;
        self.epoch_tail_last = tail_now;
        if let Some(g) = heat_now {
            self.epoch_heat_last = g;
        }
    }

    /// Selects the core that issues subsequent operations (0..=7).
    /// Each core has its own clock; use this to model concurrent
    /// processes (e.g. a fork parent and child making progress in
    /// parallel, as on the paper's 8-core system).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn use_core(&mut self, core: usize) {
        assert!(core < self.clocks.len(), "core {core} out of range");
        self.active = core;
        if let Some(rec) = &self.rec {
            rec.use_core(core);
        }
    }

    /// The active core's current time.
    pub fn core_now(&self) -> Cycles {
        self.clocks[self.active]
    }

    /// Number of CPU cores (valid [`System::use_core`] targets are
    /// `0..cores()`).
    pub fn cores(&self) -> usize {
        self.clocks.len()
    }

    /// Synchronizes every core to the latest clock (a barrier — e.g.
    /// `waitpid`, or the start of a measured phase).
    pub fn sync_cores(&mut self) {
        self.sync_cores_inner();
        if let Some(rec) = &self.rec {
            rec.sync_cores();
        }
    }

    /// [`System::sync_cores`] without the trace-recording hook, for
    /// internal barriers ([`System::finish`]) that a replayed trace
    /// already implies.
    fn sync_cores_inner(&mut self) {
        debug_assert!(!self.clocks.is_empty(), "a system always boots with cores");
        let max = self.clocks.iter().copied().max().unwrap_or(Cycles::ZERO);
        for c in &mut self.clocks {
            *c = max;
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current simulated time: the furthest-ahead core.
    pub fn now(&self) -> Cycles {
        debug_assert!(!self.clocks.is_empty(), "a system always boots with cores");
        self.clocks.iter().copied().max().unwrap_or(Cycles::ZERO)
    }

    /// The cycle-attribution ledger. All zero unless the system was
    /// built with [`SimConfig::with_cycle_ledger`]; when enabled,
    /// `cycle_ledger().total() == metrics().cycles` at every quiescent
    /// point (every simulated cycle is charged to exactly one
    /// category).
    pub fn cycle_ledger(&self) -> CycleLedger {
        self.ledger
    }

    /// Advances the active core by `cycles` and charges the portion
    /// that extends the *global* clock (the critical path) to `cat`.
    /// Work overlapped by a further-ahead core charges nothing — only
    /// increases of `now()` are booked, which is what keeps
    /// `ledger.total()` equal to total cycles on multi-core runs.
    #[inline]
    fn bump(&mut self, cat: CycleCategory, cycles: u64) {
        if cycles == 0 {
            return;
        }
        if !self.config.cycle_ledger {
            self.clocks[self.active] += Cycles::new(cycles);
            return;
        }
        let before = self.now();
        self.clocks[self.active] += Cycles::new(cycles);
        let after = self.now();
        self.ledger.charge(cat, (after - before).as_u64());
    }

    /// Advances the active core to at least `done` and attributes the
    /// critical-path extension using the segments the controller and
    /// device recorded for this operation. Cycles no segment covers
    /// are charged to `default`.
    #[inline]
    fn advance_to(&mut self, done: Cycles, default: CycleCategory) {
        if !self.config.cycle_ledger {
            self.clocks[self.active] = self.clocks[self.active].max(done);
            return;
        }
        let before = self.now();
        self.clocks[self.active] = self.clocks[self.active].max(done);
        let after = self.now();
        let mut segs = std::mem::take(&mut self.seg_scratch);
        segs.clear();
        self.ctrl.drain_segments_into(&mut segs);
        attribute(before.as_u64(), after.as_u64(), &segs, default, &mut self.ledger);
        self.seg_scratch = segs;
    }

    /// Drops segments recorded by work whose time the system charges
    /// as a flat cost instead (MMIO doorbells, KSM fingerprint scans,
    /// recovery), so they cannot pollute a later attribution window.
    #[inline]
    fn seg_discard(&mut self) {
        if self.config.cycle_ledger {
            self.ctrl.discard_segments();
        }
    }

    /// Kernel handle (read-only; all mutation goes through `System`).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Controller handle (read-only).
    pub fn controller(&self) -> &SecureMemoryController<P> {
        &self.ctrl
    }

    /// The controller's current Merkle root over the counter blocks,
    /// flushing deferred maintenance first (equivalence-test
    /// observability). On the parallel engine this is a forced epoch
    /// barrier: pending data-plane ops dispatch, then the real root is
    /// reconstructed from the shard workers' leaf digests — the same
    /// value the serial engine's tree holds.
    pub fn merkle_root(&mut self) -> u64 {
        // Flushing deferred maintenance has the same (stub-hashed)
        // walk effects in both modes; the stub root is discarded.
        let root = self.ctrl.merkle_root();
        let root = match &mut self.par {
            Some(par) => {
                par.dispatch_from(&mut self.ctrl);
                par.true_root()
            }
            None => root,
        };
        // Recorded with its value: root queries flush metadata (state
        // changes), and the stored root doubles as a replay oracle.
        if let Some(rec) = &self.rec {
            rec.merkle_root(root);
        }
        root
    }

    /// Dispatches a parallel batch when the controller's data-plane
    /// log has reached the epoch horizon. No-op on the serial engine.
    #[inline]
    fn par_tick(&mut self) {
        if let Some(par) = &self.par {
            if self.ctrl.data_plane_pending() >= par.horizon() {
                self.par.as_mut().expect("checked above").dispatch_from(&mut self.ctrl);
            }
        }
    }

    /// Forces an epoch barrier: every logged data-plane op is applied
    /// by its shard worker before this returns. No-op on the serial
    /// engine. (Dispatching is host-side work; simulated time, stats
    /// and events are unaffected.)
    pub fn parallel_sync(&mut self) {
        if let Some(par) = &mut self.par {
            par.dispatch_from(&mut self.ctrl);
        }
    }

    /// Parallel-engine statistics — worker count, barrier count,
    /// cross-shard message volume and the per-shard breakdown — or
    /// `None` on the serial engine. Synchronizes the workers first so
    /// the report covers every issued op.
    pub fn parallel_stats(&mut self) -> Option<ParStats> {
        self.parallel_sync();
        let par = self.par.as_ref()?;
        let total = par.total_stats();
        Some(ParStats {
            workers: par.workers(),
            barriers: par.barriers(),
            ops_dispatched: par.ops_dispatched(),
            cross_shard_messages: total.cross_shard,
            shards: par
                .shards()
                .iter()
                .enumerate()
                .map(|(shard, s)| ShardReport {
                    shard,
                    stats: s.stats(),
                    resident_lines: s.resident_lines(),
                    regions_touched: s.regions_touched(),
                })
                .collect(),
        })
    }

    /// The real NVM contents at `addr` (diagnostics / equivalence
    /// tests): on the parallel engine, shard-materialized ciphertext
    /// or MAC lines override the scout's elided contents; everywhere
    /// else this is the controller's raw line.
    pub fn materialized_line(&mut self, addr: PhysAddr) -> [u8; LINE_BYTES] {
        self.parallel_sync();
        if let Some(par) = &self.par {
            if let Some(line) = par.line_override(addr.as_u64()) {
                return line;
            }
        }
        self.ctrl.peek_raw_line(addr)
    }

    /// Every data-area line the parallel engine has materialized, as
    /// `(addr, ciphertext)` in address order; empty on the serial
    /// engine. Forces a barrier first.
    pub fn parallel_materialized_lines(&mut self) -> Vec<(u64, [u8; LINE_BYTES])> {
        self.parallel_sync();
        self.par.as_ref().map(|par| par.materialized_lines()).unwrap_or_default()
    }

    /// Creates the initial process.
    pub fn spawn_init(&mut self) -> ProcessId {
        self.bump(CycleCategory::CpuOp, self.config.op_cost);
        let pid = self.kernel.spawn_init();
        if let Some(rec) = &self.rec {
            rec.spawn_init(pid);
        }
        pid
    }

    /// Maps `len` bytes of anonymous memory using the configured page
    /// size.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn mmap(&mut self, pid: ProcessId, len: u64) -> Result<VirtAddr, OsError> {
        self.mmap_with(pid, len, self.config.page_size)
    }

    /// Maps `len` bytes with an explicit page size.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn mmap_with(
        &mut self,
        pid: ProcessId,
        len: u64,
        page_size: PageSize,
    ) -> Result<VirtAddr, OsError> {
        self.bump(CycleCategory::CpuOp, self.config.op_cost);
        let va = self.kernel.mmap_anon(pid, len, page_size)?;
        if let Some(rec) = &self.rec {
            rec.mmap(pid, len, page_size, va);
        }
        Ok(va)
    }

    /// Forks `parent`, executing the kernel's cache-maintenance
    /// actions (source-page flushes).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn fork(&mut self, parent: ProcessId) -> Result<ProcessId, OsError> {
        let _prof = selfprof::scope("sim::fork");
        self.bump(CycleCategory::PageFault, self.config.fault_cost);
        let (child, actions) = self.kernel.fork(parent)?;
        // Fork write-protects every anonymous PTE: full TLB shootdown.
        self.tlb.flush_all();
        self.execute_actions(&actions);
        if P::ENABLED {
            self.probe.emit(Event {
                cycle: self.clocks[self.active],
                kind: EventKind::Fork { parent, child },
            });
        }
        self.epoch_tick();
        if let Some(rec) = &self.rec {
            rec.fork(parent, child);
        }
        Ok(child)
    }

    /// Terminates `pid`, executing release-side actions (early
    /// reclamation, `page_free`).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn exit(&mut self, pid: ProcessId) -> Result<(), OsError> {
        self.bump(CycleCategory::PageFault, self.config.fault_cost);
        let actions = self.kernel.exit(pid)?;
        self.tlb.invalidate_pid(pid);
        self.execute_actions(&actions);
        self.epoch_tick();
        if let Some(rec) = &self.rec {
            rec.exit(pid);
        }
        Ok(())
    }

    fn execute_actions(&mut self, actions: &[HwAction]) {
        for action in actions {
            let now = self.clocks[self.active];
            match *action {
                // Synchronous work the faulting CPU waits for.
                HwAction::FlushPage { base, bytes } => {
                    let done = self.caches.flush_range(base, bytes, now, &mut self.ctrl);
                    self.advance_to(done, CycleCategory::CacheSram);
                }
                HwAction::InvalidatePage { base, bytes } => {
                    // Invalidation of a freshly allocated frame snoops
                    // mostly-absent lines; charge the directory lookups
                    // actually needed plus a fixed issue cost.
                    let resident = self.caches.invalidate_range(base, bytes);
                    self.bump(CycleCategory::PageFault, 50 + 2 * resident);
                }
                HwAction::CopyPage { src, dst, bytes } => {
                    let done = self.ctrl.copy_page_bulk(src, dst, bytes, now);
                    self.advance_to(done, CycleCategory::BulkCopy);
                }
                HwAction::ZeroPage { base, bytes } => {
                    let done = self.ctrl.zero_page_bulk(base, bytes, now);
                    self.advance_to(done, CycleCategory::BulkCopy);
                }
                // MMIO commands: the CPU pays the fenced register write
                // (paper §III-A) and moves on; the controller retires
                // the command in the background (its bank/queue state
                // keeps the time it finishes, delaying later accesses).
                HwAction::PageInitCmd { dst } => {
                    self.ctrl.cmd_page_init(dst, now);
                    self.seg_discard();
                    self.bump(CycleCategory::MmioCmd, self.config.controller.cmd_latency);
                }
                HwAction::PageCopyCmd { src, dst } => {
                    self.ctrl.cmd_page_copy(src, dst, now);
                    self.seg_discard();
                    self.bump(CycleCategory::MmioCmd, self.config.controller.cmd_latency);
                }
                HwAction::PagePhycCmd { src, dst } => {
                    self.ctrl.cmd_page_phyc(src, dst, now);
                    self.seg_discard();
                    self.bump(CycleCategory::MmioCmd, self.config.controller.cmd_latency);
                }
                HwAction::PageFreeCmd { dst } => {
                    self.ctrl.cmd_page_free(dst, now);
                    self.seg_discard();
                    self.bump(CycleCategory::MmioCmd, self.config.controller.cmd_latency);
                }
            }
        }
    }

    /// Unmaps the whole VMA at `vma_start` (releases pages, shoots down
    /// translations, executes release-side actions).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn munmap(&mut self, pid: ProcessId, vma_start: VirtAddr) -> Result<(), OsError> {
        self.bump(CycleCategory::PageFault, self.config.fault_cost);
        let actions = self.kernel.munmap(pid, vma_start)?;
        self.tlb.invalidate_pid(pid);
        self.execute_actions(&actions);
        if let Some(rec) = &self.rec {
            rec.munmap(pid, vma_start);
        }
        Ok(())
    }

    /// `madvise(MADV_DONTNEED)`: releases whole pages of the range;
    /// subsequent reads see zeros.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn madvise_dontneed(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        len: u64,
    ) -> Result<(), OsError> {
        self.bump(CycleCategory::PageFault, self.config.fault_cost);
        let actions = self.kernel.madvise_dontneed(pid, va, len)?;
        self.tlb.invalidate_pid(pid);
        self.execute_actions(&actions);
        if let Some(rec) = &self.rec {
            rec.madvise_dontneed(pid, va, len);
        }
        Ok(())
    }

    /// `mprotect`: flips the VMA's write permission (PTE-level CoW
    /// protection is preserved).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn mprotect(
        &mut self,
        pid: ProcessId,
        vma_start: VirtAddr,
        writable: bool,
    ) -> Result<(), OsError> {
        self.bump(CycleCategory::PageFault, self.config.fault_cost);
        self.kernel.mprotect(pid, vma_start, writable)?;
        self.tlb.invalidate_pid(pid);
        if let Some(rec) = &self.rec {
            rec.mprotect(pid, vma_start, writable);
        }
        Ok(())
    }

    /// Translates one access through the TLB, walking and faulting via
    /// the kernel as needed. Returns the physical address.
    fn translate_timed(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<PhysAddr, OsError> {
        let outcome = self.tlb.lookup(pid, va);
        if let TlbOutcome::HitL1(e) | TlbOutcome::HitL2(e) = outcome {
            if kind == AccessKind::Read || e.writable {
                let charge = self.tlb.charge(&outcome);
                self.bump(CycleCategory::Translation, charge);
                let offset = va.as_u64() % e.size.bytes();
                return Ok(e.pa_base + offset);
            }
            // Permission upgrade needed: the kernel will fault; drop the
            // stale entry now (the CoW break changes the PTE).
            self.tlb.invalidate_page(pid, va);
        } else {
            // Page walk.
            let charge = self.tlb.charge(&outcome);
            self.bump(CycleCategory::Translation, charge);
        }
        let outcome = self.kernel.access(pid, va, kind)?;
        if let Some(fault) = &outcome.fault {
            let fault_start = self.clocks[self.active];
            // Ledger prefix at fault entry: the span's breakdown is the
            // ledger growth across the fault (zero unless the cycle
            // ledger is enabled alongside the recorder).
            let tail_ledger_before = self.tail.as_ref().map(|_| self.ledger);
            self.bump(CycleCategory::PageFault, self.config.fault_cost);
            self.tlb.invalidate_page(pid, va);
            self.execute_actions(&outcome.actions);
            if P::ENABLED {
                let end = self.clocks[self.active];
                let kind = match fault {
                    FaultKind::CowCopy { from_zero, .. } => {
                        EventKind::CowFault { pid, va: va.as_u64(), from_zero: *from_zero }
                    }
                    FaultKind::WpReuse => {
                        EventKind::ReuseFault { pid, va: va.as_u64(), early_reclaim: false }
                    }
                    FaultKind::EarlyReclaim { .. } => {
                        EventKind::ReuseFault { pid, va: va.as_u64(), early_reclaim: true }
                    }
                };
                self.probe.emit(Event { cycle: end, kind });
                self.probe.record(HistKind::FaultServiceCycles, (end - fault_start).as_u64());
            }
            if let Some(h) = self.heat.as_mut() {
                let action = classify_fault(fault, &outcome.actions);
                // `classify_fault` never yields `ImplicitCopy` here
                // (those spans come from stores), so the index stays
                // inside the five fault lanes.
                h.record(HeatLane::FAULTS[action.index()], outcome.pa.as_u64() / REGION_BYTES);
            }
            if let Some(ledger_before) = tail_ledger_before {
                let end = self.clocks[self.active];
                let span = FaultSpan {
                    start: fault_start.as_u64(),
                    end: end.as_u64(),
                    pid,
                    va: va.as_u64(),
                    pa: outcome.pa.as_u64(),
                    action: classify_fault(fault, &outcome.actions),
                    ledger: self.ledger.delta_since(&ledger_before),
                };
                self.tail.as_mut().expect("prefix captured only when recording").record(span);
            }
        }
        if let Some((pa_base, size, writable)) = self.kernel.pte_info(pid, va) {
            self.tlb.fill(pid, va, TlbEntry { pa_base, size, writable });
        }
        Ok(outcome.pa)
    }

    /// Snapshot taken before a store when the tail recorder is on:
    /// `(start cycle, implicit copies so far, ledger prefix)`. `None`
    /// (the usual case) costs one branch.
    #[inline]
    fn tail_store_ctx(&self) -> Option<(Cycles, u64, CycleLedger)> {
        self.tail.as_ref()?;
        Some((self.clocks[self.active], self.ctrl.implicit_copies(), self.ledger))
    }

    /// Records an [`FaultAction::ImplicitCopy`] span if the store that
    /// just completed triggered deferred copies at the controller —
    /// the cost Lelantus moves from fault time to first-write time.
    fn tail_store_span(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        pa: PhysAddr,
        ctx: (Cycles, u64, CycleLedger),
    ) {
        let (start, imp_before, ledger_before) = ctx;
        if self.ctrl.implicit_copies() == imp_before {
            return;
        }
        let span = FaultSpan {
            start: start.as_u64(),
            end: self.clocks[self.active].as_u64(),
            pid,
            va: va.as_u64(),
            pa: pa.as_u64(),
            action: FaultAction::ImplicitCopy,
            ledger: self.ledger.delta_since(&ledger_before),
        };
        self.tail.as_mut().expect("ctx captured only when recording").record(span);
    }

    /// One CPU memory access covering at most one cacheline.
    fn access_chunk(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        data: Option<&[u8]>,
        len: usize,
    ) -> Result<Vec<u8>, OsError> {
        self.bump(CycleCategory::CpuOp, self.config.op_cost);
        let kind = if data.is_some() { AccessKind::Write } else { AccessKind::Read };
        let pa = self.translate_timed(pid, va, kind)?;
        let result = match data {
            Some(bytes) => {
                let now = self.clocks[self.active];
                let tail_ctx = self.tail_store_ctx();
                let done = self.caches.store(pa, bytes, now, &mut self.ctrl);
                self.advance_to(done, CycleCategory::CacheSram);
                if let Some(ctx) = tail_ctx {
                    self.tail_store_span(pid, va, pa, ctx);
                }
                Ok(Vec::new())
            }
            None => {
                let now = self.clocks[self.active];
                let (bytes, done) = self.caches.load(pa, len, now, &mut self.ctrl);
                self.advance_to(done, CycleCategory::CacheSram);
                Ok(bytes)
            }
        };
        self.epoch_tick();
        result
    }

    /// Writes `bytes` at `va`, splitting at cacheline boundaries.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (unmapped address, OOM...).
    pub fn write_bytes(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        bytes: &[u8],
    ) -> Result<(), OsError> {
        self.write_bytes_inner(pid, va, bytes)?;
        if let Some(rec) = &self.rec {
            rec.write(pid, va, bytes);
        }
        Ok(())
    }

    /// [`System::write_bytes`] without the trace-recording hook (used
    /// by the reference batch path, whose caller records the whole
    /// batch once).
    fn write_bytes_inner(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        bytes: &[u8],
    ) -> Result<(), OsError> {
        let mut offset = 0usize;
        while offset < bytes.len() {
            let cur = va + offset as u64;
            let room = LINE_BYTES - cur.line_offset();
            let take = room.min(bytes.len() - offset);
            self.access_chunk(pid, cur, Some(&bytes[offset..offset + take]), take)?;
            offset += take;
        }
        Ok(())
    }

    /// Writes `bytes` at `va` with *non-temporal* (streaming) store
    /// semantics: the data bypasses the CPU caches and goes straight
    /// through the secure controller, invalidating any cached copy
    /// (x86 `movnt*`). Partial lines read-modify-write at the
    /// controller.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn write_bytes_nt(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        bytes: &[u8],
    ) -> Result<(), OsError> {
        let mut offset = 0usize;
        while offset < bytes.len() {
            let cur = va + offset as u64;
            let room = LINE_BYTES - cur.line_offset();
            let take = room.min(bytes.len() - offset);
            self.bump(CycleCategory::CpuOp, self.config.op_cost);
            let pa = self.translate_timed(pid, cur, AccessKind::Write)?;
            let tail_ctx = self.tail_store_ctx();
            // Coherence: drop any cached copy of the target line.
            self.caches.invalidate_range(pa.line_align(), LINE_BYTES as u64);
            let line_off = pa.line_offset();
            let mut line = if take == LINE_BYTES {
                [0u8; LINE_BYTES]
            } else {
                let (data, t) = self.ctrl.read_data_line(pa, self.clocks[self.active]);
                self.advance_to(t, CycleCategory::Other);
                data
            };
            line[line_off..line_off + take].copy_from_slice(&bytes[offset..offset + take]);
            let t = self.ctrl.write_data_line(pa, line, self.clocks[self.active]);
            self.advance_to(t, CycleCategory::Other);
            if let Some(ctx) = tail_ctx {
                self.tail_store_span(pid, cur, pa, ctx);
            }
            offset += take;
        }
        self.epoch_tick();
        if let Some(rec) = &self.rec {
            rec.write_nt(pid, va, bytes);
        }
        Ok(())
    }

    /// Reads `len` bytes at `va`.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn read_bytes(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        len: usize,
    ) -> Result<Vec<u8>, OsError> {
        let out = self.read_bytes_inner(pid, va, len)?;
        if let Some(rec) = &self.rec {
            rec.read(pid, va, len);
        }
        Ok(out)
    }

    /// [`System::read_bytes`] without the trace-recording hook.
    fn read_bytes_inner(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        len: usize,
    ) -> Result<Vec<u8>, OsError> {
        let mut out = Vec::with_capacity(len);
        let mut offset = 0usize;
        while offset < len {
            let cur = va + offset as u64;
            let room = LINE_BYTES - cur.line_offset();
            let take = room.min(len - offset);
            out.extend(self.access_chunk(pid, cur, None, take)?);
            offset += take;
        }
        Ok(out)
    }

    /// Convenience: writes `len` bytes of a deterministic pattern
    /// (cheaper than materializing big buffers in workloads).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn write_pattern(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        len: usize,
        tag: u8,
    ) -> Result<(), OsError> {
        self.write_pattern_inner(pid, va, len, tag)?;
        if let Some(rec) = &self.rec {
            rec.pattern(pid, va, len, tag);
        }
        Ok(())
    }

    /// [`System::write_pattern`] without the trace-recording hook.
    fn write_pattern_inner(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        len: usize,
        tag: u8,
    ) -> Result<(), OsError> {
        let mut offset = 0usize;
        let chunk = [tag; LINE_BYTES];
        while offset < len {
            let cur = va + offset as u64;
            let room = LINE_BYTES - cur.line_offset();
            let take = room.min(len - offset);
            self.access_chunk(pid, cur, Some(&chunk[..take]), take)?;
            offset += take;
        }
        Ok(())
    }

    /// Executes a queued [`AccessBatch`] in program order.
    ///
    /// The batched driver performs one TLB/translation probe per *run*
    /// of same-page accesses instead of one per line: a one-entry run
    /// cache mirrors the TLB's last-translation front cache, so every
    /// access the front cache would have served is answered from the
    /// run cache without re-entering the translation machinery (counted
    /// via [`Tlb::record_front_hit`], so TLB rates stay honest). Any
    /// access the run cache cannot serve — first touch of a page, or a
    /// write to a page cached read-only (a fault boundary) — splits the
    /// run and falls back to the exact per-line path, then resumes
    /// batching. The per-line cycle sequence, fault handling, probe
    /// events, and all statistics are identical to issuing the same
    /// ops through `read_bytes`/`write_bytes`/`write_pattern`;
    /// `SimConfig::with_reference_access_path` keeps that per-line
    /// path selectable and `tests/access_fastpath.rs` proves the
    /// equivalence.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (unmapped address, OOM...).
    pub fn run_batch(&mut self, pid: ProcessId, batch: &AccessBatch) -> Result<(), OsError> {
        self.run_batch_parts(pid, &batch.ops, &batch.data)
    }

    /// [`System::run_batch`] over borrowed parts, so the trace replay
    /// loop can feed ops decoded straight out of a mapped `.ltr` file
    /// without materializing an [`AccessBatch`].
    pub(crate) fn run_batch_parts(
        &mut self,
        pid: ProcessId,
        ops: &[BatchOp],
        data: &[u8],
    ) -> Result<(), OsError> {
        let _prof = selfprof::scope("sim::run_batch");
        if self.config.reference_access_path {
            self.run_batch_reference(pid, ops, data)?;
        } else {
            self.run_batch_fast(pid, ops, data)?;
        }
        if let Some(rec) = &self.rec {
            rec.batch(pid, ops, data);
        }
        Ok(())
    }

    /// The batched run-cache driver (everything [`System::run_batch`]
    /// documents, minus reference-path dispatch and recording).
    fn run_batch_fast(
        &mut self,
        pid: ProcessId,
        ops: &[BatchOp],
        data: &[u8],
    ) -> Result<(), OsError> {
        // The current run's translation: `(page va base, pa base,
        // page bytes, writable)`. Invariant: when `Some`, it equals the
        // TLB front cache entry (both are "the most recent successful
        // translation"), so serving from it is exactly a front-cache
        // hit. Batches contain no syscalls, so no fork/munmap/exit can
        // invalidate it mid-batch; faults replace it through
        // `translate_timed` just like they replace the front cache.
        let mut run: Option<(u64, PhysAddr, u64, bool)> = None;
        // Scratch line for pattern stores, refilled only on tag change.
        let mut tag_line = [0u8; LINE_BYTES];
        let mut tag_cur = 0u8;
        for op in ops {
            let len = op.len as usize;
            let mut offset = 0usize;
            while offset < len {
                let cur = op.va + offset as u64;
                let room = LINE_BYTES - cur.line_offset();
                let take = room.min(len - offset);
                let is_write = !matches!(op.kind, OpKind::Read);
                self.bump(CycleCategory::CpuOp, self.config.op_cost);
                let pa = match run {
                    Some((va_base, pa_base, page_bytes, writable))
                        if cur.as_u64().wrapping_sub(va_base) < page_bytes
                            && (!is_write || writable) =>
                    {
                        // Front-cache hit (charge 0), answered locally.
                        self.tlb.record_front_hit();
                        pa_base + (cur.as_u64() - va_base)
                    }
                    _ => {
                        // Run boundary: first touch, page change, or
                        // write-permission upgrade (fault). Take the
                        // exact per-line translation path.
                        let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
                        let pa = self.translate_timed(pid, cur, kind)?;
                        run = self.kernel.pte_info(pid, cur).map(|(pa_base, size, writable)| {
                            let bytes = size.bytes();
                            (cur.as_u64() & !(bytes - 1), pa_base, bytes, writable)
                        });
                        pa
                    }
                };
                let now = self.clocks[self.active];
                match op.kind {
                    OpKind::Read => {
                        let (_, done) = self.caches.load_line(pa, now, &mut self.ctrl);
                        self.advance_to(done, CycleCategory::CacheSram);
                    }
                    OpKind::Write { data_off } => {
                        let start = data_off as usize + offset;
                        let bytes = &data[start..start + take];
                        let tail_ctx = self.tail_store_ctx();
                        let done = self.caches.store(pa, bytes, now, &mut self.ctrl);
                        self.advance_to(done, CycleCategory::CacheSram);
                        if let Some(ctx) = tail_ctx {
                            self.tail_store_span(pid, cur, pa, ctx);
                        }
                    }
                    OpKind::Pattern { tag } => {
                        if tag != tag_cur {
                            tag_line = [tag; LINE_BYTES];
                            tag_cur = tag;
                        }
                        let tail_ctx = self.tail_store_ctx();
                        let done = self.caches.store(pa, &tag_line[..take], now, &mut self.ctrl);
                        self.advance_to(done, CycleCategory::CacheSram);
                        if let Some(ctx) = tail_ctx {
                            self.tail_store_span(pid, cur, pa, ctx);
                        }
                    }
                }
                self.epoch_tick();
                offset += take;
            }
        }
        Ok(())
    }

    /// The reference shape of [`System::run_batch`]: replays each op
    /// through the unmodified per-line access path (the unrecorded
    /// inner variants — the caller records the batch as one record).
    fn run_batch_reference(
        &mut self,
        pid: ProcessId,
        ops: &[BatchOp],
        data: &[u8],
    ) -> Result<(), OsError> {
        for op in ops {
            let len = op.len as usize;
            match op.kind {
                OpKind::Read => {
                    self.read_bytes_inner(pid, op.va, len)?;
                }
                OpKind::Write { data_off } => {
                    let start = data_off as usize;
                    self.write_bytes_inner(pid, op.va, &data[start..start + len])?;
                }
                OpKind::Pattern { tag } => {
                    self.write_pattern_inner(pid, op.va, len, tag)?;
                }
            }
        }
        Ok(())
    }

    /// Runs one KSM merge pass over page candidates, fingerprinting
    /// real page contents through the secure datapath (the scan itself
    /// is memory traffic, as in a real kernel thread).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn ksm_merge(&mut self, candidates: &[(ProcessId, VirtAddr)]) -> Result<usize, OsError> {
        let _prof = selfprof::scope("sim::ksm_merge");
        let cands: Vec<KsmCandidate> =
            candidates.iter().map(|(pid, va)| KsmCandidate { pid: *pid, va: *va }).collect();
        let page_bytes = self.config.page_size.bytes();
        let ctrl = &mut self.ctrl;
        let report = merge_pass(&mut self.kernel, &cands, |pa: PhysAddr| {
            let mut h = DefaultHasher::new();
            let mut off = 0;
            while off < page_bytes.min(4096) {
                ctrl.peek_plaintext(pa + off).hash(&mut h);
                off += LINE_BYTES as u64;
            }
            h.finish()
        })?;
        // The fingerprint scan reads plaintext at `Cycles::ZERO`
        // (untimed peek); drop its segments before the timed actions.
        self.seg_discard();
        self.execute_actions(&report.actions);
        // Merging rewrites PTEs across processes: full shootdown.
        self.tlb.flush_all();
        self.bump(CycleCategory::PageFault, self.config.fault_cost);
        if let Some(rec) = &self.rec {
            rec.ksm_merge(candidates);
        }
        Ok(report.merged)
    }

    /// Simulates a power failure and recovery of the *memory system*:
    /// CPU caches and TLB vanish (dirty lines not yet written back are
    /// lost, as on real hardware), the controller recovers per
    /// [`SecureMemoryController::crash_and_recover`], and execution
    /// resumes with the same process image (an instant-restart model
    /// for persistent-memory applications).
    ///
    /// # Errors
    ///
    /// Propagates an integrity failure if NVM was tampered with while
    /// powered down.
    ///
    /// [`SecureMemoryController::crash_and_recover`]:
    /// lelantus_core::SecureMemoryController::crash_and_recover
    pub fn crash_and_recover(
        &mut self,
    ) -> Result<lelantus_core::controller::RecoveryReport, lelantus_crypto::TamperError> {
        let _prof = selfprof::scope("sim::crash_and_recover");
        self.caches.clear_all();
        self.tlb.flush_all();
        // Power-up costs: charge a fixed reboot window per verified
        // region (sequential counter scan at row-hit speed).
        let report = self.ctrl.crash_and_recover()?;
        self.seg_discard();
        self.bump(CycleCategory::Recovery, report.regions_verified * 15 + 10_000);
        // Volatile metadata caches restarted from zero, so interval
        // deltas across the crash would underflow; re-baseline the
        // epoch sampler at the recovery point. Histogram and tail
        // baselines move with it so every later epoch window is
        // internally consistent (the crash-spanning window is skipped,
        // exactly like the metrics deltas).
        self.epoch_last = self.metrics();
        self.epoch_ledger_last = self.ledger;
        self.epoch_hists_last = self.probe_hists();
        self.epoch_tail_last = self.tail_hist();
        if self.config.heatmap {
            self.epoch_heat_last = self.merged_heat_now();
        }
        if let Some(rec) = &self.rec {
            rec.crash_recover();
        }
        Ok(report)
    }

    /// Clears the controller's per-region access footprints so a
    /// measured phase starts from a clean slate (Fig 10c/d).
    pub fn reset_footprint(&mut self) {
        self.ctrl.reset_footprint();
        if let Some(rec) = &self.rec {
            rec.reset_footprint();
        }
    }

    /// Metrics snapshot (does not flush buffered writes; see
    /// [`System::finish`]).
    pub fn metrics(&self) -> SimMetrics {
        SimMetrics {
            cycles: self.now(),
            nvm: self.ctrl.nvm_stats(),
            controller: self.ctrl.stats(),
            kernel: self.kernel.stats(),
            caches: self.caches.stats(),
            counter_cache: self.ctrl.counter_cache_stats(),
            cow_cache: self.ctrl.cow_cache_stats(),
            tlb: self.tlb.stats(),
        }
    }

    /// Flushes CPU caches and controller buffers to the NVM array and
    /// returns final metrics. The system remains usable (caches warm).
    pub fn finish(&mut self) -> SimMetrics {
        let _prof = selfprof::scope("sim::finish");
        // One `Finish` trace record stands for this whole sequence
        // (replay calls `finish()` itself), so the internal barriers
        // use the unrecorded variant.
        if let Some(rec) = &self.rec {
            rec.finish_event();
        }
        self.sync_cores_inner();
        let now = self.now();
        let t = self.caches.writeback_all(now, &mut self.ctrl);
        self.advance_to(t, CycleCategory::CacheSram);
        let t = self.ctrl.flush_all(self.clocks[self.active]);
        self.advance_to(t, CycleCategory::Other);
        self.sync_cores_inner();
        // Final epoch barrier: the flushes above may have logged more
        // data-plane ops; the shard slices must be complete when the
        // run's results are read.
        self.parallel_sync();
        let m = self.metrics();
        // Close the trailing partial epoch so the series sums to the
        // run's totals.
        if let Some(intervals) = m.cycles.as_u64().checked_div(self.config.epoch_interval) {
            let delta = m.delta_since(&self.epoch_last);
            if delta != SimMetrics::default() {
                self.take_epoch_sample(m);
            }
            self.epoch_next = (intervals + 1) * self.config.epoch_interval;
        }
        m
    }

    /// Captures the complete machine state — kernel, caches,
    /// controller, TLB, per-core clocks, epoch sampler — as an
    /// immutable snapshot that any number of runs can later be forked
    /// from (see [`Snapshot::fork`]).
    ///
    /// Sweeps that share an expensive warm-up (e.g. the Fig 11
    /// fork-size sweep) take one snapshot after the warm-up and fork
    /// every sweep point from it instead of replaying the warm-up per
    /// point.
    ///
    /// Snapshotting while a [`TraceRecorder`] is attached is
    /// unsupported: the recorder is a shared handle, so the snapshot
    /// and the live system would interleave records in one sink. Stop
    /// recording first.
    pub fn snapshot(&self) -> Snapshot<P> {
        Snapshot { state: self.clone() }
    }

    /// Rewinds this system to `snapshot`'s state. Equivalent to
    /// replacing it with [`Snapshot::fork`]; exists for callers that
    /// hold the `System` in place.
    pub fn restore(&mut self, snapshot: &Snapshot<P>) {
        *self = snapshot.state.clone();
    }
}

/// Maps a kernel fault and the hardware actions it produced onto the
/// scheme-action taxonomy the tail recorder reports: a CoW fault
/// resolved through an MMIO copy/phyc command is Lelantus's lazy path,
/// one resolved by data movement alone is an eager copy, and a
/// zero-source fault is a demand-zero allocation.
fn classify_fault(fault: &FaultKind, actions: &[HwAction]) -> FaultAction {
    match fault {
        FaultKind::CowCopy { from_zero: true, .. } => FaultAction::DemandZero,
        FaultKind::CowCopy { .. } => {
            let lazy = actions
                .iter()
                .any(|a| matches!(a, HwAction::PageCopyCmd { .. } | HwAction::PagePhycCmd { .. }));
            if lazy {
                FaultAction::LazyCow
            } else {
                FaultAction::EagerCopy
            }
        }
        FaultKind::WpReuse => FaultAction::Reuse,
        FaultKind::EarlyReclaim { .. } => FaultAction::EarlyReclaim,
    }
}

/// A captured [`System`] state, forkable into independent runs.
///
/// A snapshot of a `System<NullProbe>` is `Send + Sync`, so one warm
/// snapshot can be shared by reference across worker threads, each
/// forking its own private machine.
///
/// # Examples
///
/// ```
/// use lelantus_sim::{SimConfig, System};
/// use lelantus_os::CowStrategy;
/// use lelantus_types::PageSize;
///
/// let mut sys = System::new(SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K));
/// let pid = sys.spawn_init();
/// let va = sys.mmap(pid, 4096)?;
/// sys.write_bytes(pid, va, &[7])?;
/// let snap = sys.snapshot();
/// let mut fork = snap.fork();
/// fork.write_bytes(pid, va, &[8])?; // diverges privately
/// assert_eq!(sys.read_bytes(pid, va, 1)?, vec![7]);
/// # Ok::<(), lelantus_os::OsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Snapshot<P: Probe = NullProbe> {
    state: System<P>,
}

impl<P: Probe> Snapshot<P> {
    /// A fresh, fully independent `System` starting from the captured
    /// state. Forks share no mutable state with each other or the
    /// snapshot (probes with shared interior state, e.g. `RingProbe`,
    /// keep sharing their event sink by design).
    pub fn fork(&self) -> System<P> {
        self.state.clone()
    }
}

// The sweep runners hand one snapshot to many worker threads; the
// whole stack must stay free of interior mutability for that to be
// sound. Compile-time proof:
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<System<NullProbe>>();
    assert_send_sync::<Snapshot<NullProbe>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use lelantus_os::CowStrategy;

    fn sys(strategy: CowStrategy, page: PageSize) -> System {
        System::new(SimConfig::new(strategy, page).with_phys_bytes(64 << 20))
    }

    #[test]
    fn write_read_roundtrip() {
        for strategy in CowStrategy::all() {
            let mut s = sys(strategy, PageSize::Regular4K);
            let pid = s.spawn_init();
            let va = s.mmap(pid, 16 << 10).unwrap();
            let data: Vec<u8> = (0..200).collect();
            s.write_bytes(pid, va + 100, &data).unwrap();
            assert_eq!(s.read_bytes(pid, va + 100, 200).unwrap(), data, "{strategy}");
            // Untouched memory reads zero.
            assert_eq!(s.read_bytes(pid, va + 8192, 8).unwrap(), vec![0; 8], "{strategy}");
        }
    }

    #[test]
    fn fork_preserves_child_view_under_all_schemes() {
        for strategy in CowStrategy::all() {
            for page in PageSize::all() {
                let mut s = sys(strategy, page);
                let pid = s.spawn_init();
                let va = s.mmap(pid, page.bytes()).unwrap();
                s.write_bytes(pid, va, b"before-fork").unwrap();
                let child = s.fork(pid).unwrap();
                s.write_bytes(pid, va, b"parent-mod!").unwrap();
                assert_eq!(
                    s.read_bytes(child, va, 11).unwrap(),
                    b"before-fork",
                    "{strategy} {page}"
                );
                assert_eq!(s.read_bytes(pid, va, 11).unwrap(), b"parent-mod!");
            }
        }
    }

    #[test]
    fn lelantus_forks_are_much_cheaper_on_first_write() {
        let run = |strategy: CowStrategy| {
            let mut s = sys(strategy, PageSize::Huge2M);
            let pid = s.spawn_init();
            let va = s.mmap(pid, 2 << 20).unwrap();
            s.write_pattern(pid, va, 2 << 20, 7).unwrap();
            let _child = s.fork(pid).unwrap();
            let before = s.now();
            s.write_bytes(pid, va, &[1]).unwrap(); // first write post-fork
            s.now() - before
        };
        let base = run(CowStrategy::Baseline);
        let lel = run(CowStrategy::Lelantus);
        assert!(
            base.as_u64() > lel.as_u64() * 20,
            "baseline {base} vs lelantus {lel}: huge-page CoW break must dominate"
        );
    }

    #[test]
    fn lelantus_reduces_nvm_writes() {
        let run = |strategy: CowStrategy| {
            let mut s = sys(strategy, PageSize::Regular4K);
            let pid = s.spawn_init();
            let va = s.mmap(pid, 64 << 10).unwrap();
            for p in 0..16u64 {
                s.write_pattern(pid, va + p * 4096, 4096, 3).unwrap();
            }
            let child = s.fork(pid).unwrap();
            // Child updates one line per page.
            for p in 0..16u64 {
                s.write_bytes(child, va + p * 4096, &[9]).unwrap();
            }
            s.finish().nvm.line_writes
        };
        let base = run(CowStrategy::Baseline);
        let lel = run(CowStrategy::Lelantus);
        assert!(lel * 2 < base, "lelantus writes ({lel}) must be well under baseline ({base})");
    }

    #[test]
    fn exit_releases_and_reclaims() {
        let mut s = sys(CowStrategy::Lelantus, PageSize::Regular4K);
        let pid = s.spawn_init();
        let va = s.mmap(pid, 8192).unwrap();
        s.write_bytes(pid, va, &[1, 2, 3]).unwrap();
        let child = s.fork(pid).unwrap();
        s.write_bytes(child, va, &[4]).unwrap(); // child gets lazy copy
        s.exit(pid).unwrap(); // dying source must materialize the copy
        assert_eq!(s.read_bytes(child, va, 3).unwrap(), vec![4, 2, 3]);
        assert_eq!(s.read_bytes(child, va + 64, 1).unwrap(), vec![0]);
        s.exit(child).unwrap();
        assert!(s.kernel().live_pids().is_empty());
    }

    #[test]
    fn ksm_merges_identical_pages() {
        let mut s = sys(CowStrategy::Lelantus, PageSize::Regular4K);
        let pid = s.spawn_init();
        let va = s.mmap(pid, 4 * 4096).unwrap();
        for p in 0..4u64 {
            s.write_pattern(pid, va + p * 4096, 4096, 0xCC).unwrap();
        }
        let cands: Vec<_> = (0..4u64).map(|p| (pid, va + p * 4096)).collect();
        let merged = s.ksm_merge(&cands).unwrap();
        assert_eq!(merged, 3, "three duplicates fold into the first page");
        // Contents unchanged, and writes CoW-split again.
        assert_eq!(s.read_bytes(pid, va + 2 * 4096, 4).unwrap(), vec![0xCC; 4]);
        s.write_bytes(pid, va + 2 * 4096, &[1]).unwrap();
        assert_eq!(s.read_bytes(pid, va + 3 * 4096, 1).unwrap(), vec![0xCC]);
    }

    #[test]
    fn metrics_snapshot_and_finish() {
        let mut s = sys(CowStrategy::Baseline, PageSize::Regular4K);
        let pid = s.spawn_init();
        let va = s.mmap(pid, 4096).unwrap();
        s.write_bytes(pid, va, &[5; 64]).unwrap();
        let before = s.metrics();
        let after = s.finish();
        assert!(after.nvm.line_writes >= before.nvm.line_writes);
        assert!(after.cycles >= before.cycles);
        assert_eq!(after.kernel.cow_faults, 1);
    }
}

#[cfg(test)]
mod tlb_integration_tests {
    use super::*;
    use lelantus_os::CowStrategy;

    fn sys(page: PageSize) -> System {
        System::new(SimConfig::new(CowStrategy::Lelantus, page).with_phys_bytes(64 << 20))
    }

    #[test]
    fn tlb_hits_after_first_touch() {
        let mut s = sys(PageSize::Regular4K);
        let pid = s.spawn_init();
        let va = s.mmap(pid, 4096).unwrap();
        s.read_bytes(pid, va, 1).unwrap(); // walk + fill
        let before = s.metrics().tlb;
        s.read_bytes(pid, va + 128, 1).unwrap();
        s.read_bytes(pid, va + 256, 1).unwrap();
        let after = s.metrics().tlb;
        assert_eq!(after.walks, before.walks, "same page: no more walks");
        assert!(after.l1_hits > before.l1_hits);
    }

    #[test]
    fn huge_pages_need_far_fewer_walks() {
        let walks = |page: PageSize| {
            let mut s = sys(page);
            let pid = s.spawn_init();
            let va = s.mmap(pid, 4 << 20).unwrap();
            s.write_pattern(pid, va, 4 << 20, 1).unwrap();
            // Sweep reads over the 4 MB area.
            for off in (0..(4u64 << 20)).step_by(4096) {
                s.read_bytes(pid, va + off, 1).unwrap();
            }
            s.metrics().tlb.walks
        };
        let w4k = walks(PageSize::Regular4K);
        let w2m = walks(PageSize::Huge2M);
        assert!(w2m * 10 < w4k, "2MB mappings must slash TLB walks: {w2m} vs {w4k}");
    }

    #[test]
    fn cow_break_invalidates_stale_translation() {
        let mut s = sys(PageSize::Regular4K);
        let pid = s.spawn_init();
        let va = s.mmap(pid, 4096).unwrap();
        s.write_bytes(pid, va, &[1]).unwrap();
        let child = s.fork(pid).unwrap();
        // Warm the child's read translation of the shared page.
        assert_eq!(s.read_bytes(child, va, 1).unwrap(), vec![1]);
        // Parent CoW-breaks; the child's data must stay at the old
        // frame and the parent's at the new one — through the TLB.
        s.write_bytes(pid, va, &[9]).unwrap();
        assert_eq!(s.read_bytes(pid, va, 1).unwrap(), vec![9]);
        assert_eq!(s.read_bytes(child, va, 1).unwrap(), vec![1]);
        assert!(s.metrics().tlb.shootdowns > 0);
    }

    #[test]
    fn exit_clears_pid_entries() {
        let mut s = sys(PageSize::Regular4K);
        let pid = s.spawn_init();
        let va = s.mmap(pid, 4096).unwrap();
        s.write_bytes(pid, va, &[1]).unwrap();
        s.exit(pid).unwrap();
        // A new process reusing the same VA range must not alias the
        // dead process's frames.
        let pid2 = s.spawn_init();
        let va2 = s.mmap(pid2, 4096).unwrap();
        assert_eq!(s.read_bytes(pid2, va2, 1).unwrap(), vec![0]);
    }
}

#[cfg(test)]
mod syscall_integration_tests {
    use super::*;
    use lelantus_os::CowStrategy;

    #[test]
    fn munmap_and_remap_cycle() {
        let mut s = System::new(
            SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K).with_phys_bytes(64 << 20),
        );
        let pid = s.spawn_init();
        for round in 0..8u8 {
            let va = s.mmap(pid, 64 << 10).unwrap();
            s.write_pattern(pid, va, 64 << 10, round).unwrap();
            assert_eq!(s.read_bytes(pid, va, 1).unwrap(), vec![round]);
            s.munmap(pid, va).unwrap();
            assert!(s.read_bytes(pid, va, 1).is_err(), "unmapped");
        }
    }

    #[test]
    fn madvise_dontneed_zeroes_through_full_stack() {
        let mut s = System::new(
            SimConfig::new(CowStrategy::LelantusCow, PageSize::Regular4K).with_phys_bytes(64 << 20),
        );
        let pid = s.spawn_init();
        let va = s.mmap(pid, 8192).unwrap();
        s.write_bytes(pid, va, &[7; 64]).unwrap();
        s.write_bytes(pid, va + 4096, &[8; 64]).unwrap();
        s.madvise_dontneed(pid, va, 4096).unwrap();
        assert_eq!(s.read_bytes(pid, va, 8).unwrap(), vec![0; 8], "advised page zeroed");
        assert_eq!(s.read_bytes(pid, va + 4096, 8).unwrap(), vec![8; 8], "other page intact");
        // Writable again via demand-zero.
        s.write_bytes(pid, va, b"again").unwrap();
        assert_eq!(s.read_bytes(pid, va, 5).unwrap(), b"again".to_vec());
    }

    #[test]
    fn mprotect_blocks_writes_via_tlb_too() {
        let mut s = System::new(
            SimConfig::new(CowStrategy::Baseline, PageSize::Regular4K).with_phys_bytes(64 << 20),
        );
        let pid = s.spawn_init();
        let va = s.mmap(pid, 4096).unwrap();
        s.write_bytes(pid, va, &[1]).unwrap(); // warms a writable TLB entry
        s.mprotect(pid, va, false).unwrap();
        assert!(s.write_bytes(pid, va, &[2]).is_err(), "stale TLB entry must not leak access");
        assert_eq!(s.read_bytes(pid, va, 1).unwrap(), vec![1]);
        s.mprotect(pid, va, true).unwrap();
        s.write_bytes(pid, va, &[3]).unwrap();
        assert_eq!(s.read_bytes(pid, va, 1).unwrap(), vec![3]);
    }
}

#[cfg(test)]
mod multicore_tests {
    use super::*;
    use lelantus_os::CowStrategy;

    fn sys() -> System {
        System::new(
            SimConfig::new(CowStrategy::Baseline, PageSize::Regular4K).with_phys_bytes(64 << 20),
        )
    }

    #[test]
    fn cores_advance_independently() {
        let mut s = sys();
        let pid = s.spawn_init();
        let va = s.mmap(pid, 64 << 10).unwrap();
        s.write_pattern(pid, va, 64 << 10, 1).unwrap();
        s.sync_cores();
        let t0 = s.core_now();
        // Core 0 does lots of work; core 1 does none.
        s.use_core(0);
        for off in (0..(64u64 << 10)).step_by(64) {
            s.read_bytes(pid, va + off, 8).unwrap();
        }
        let busy = s.core_now() - t0;
        s.use_core(1);
        assert_eq!(s.core_now() - t0, Cycles::ZERO, "idle core stands still");
        assert!(busy > Cycles::new(1000));
        s.sync_cores();
        assert_eq!(s.core_now() - t0, busy, "barrier catches the idle core up");
    }

    #[test]
    fn parallel_work_overlaps_in_time() {
        // The same total work split across two cores finishes in less
        // simulated time than on one core.
        let run = |cores: usize| {
            let mut s = sys();
            let pid = s.spawn_init();
            let va = s.mmap(pid, 128 << 10).unwrap();
            s.write_pattern(pid, va, 128 << 10, 1).unwrap();
            s.finish();
            let t0 = s.now();
            let half = 64u64 << 10;
            for (i, base) in [va, va + half].iter().enumerate() {
                s.use_core(if cores == 2 { i } else { 0 });
                for off in (0..half).step_by(64) {
                    s.read_bytes(pid, *base + off, 8).unwrap();
                }
            }
            s.sync_cores();
            (s.now() - t0).as_u64()
        };
        let one = run(1);
        let two = run(2);
        assert!((two as f64) < one as f64 * 0.75, "two cores must overlap: {two} vs {one}");
    }

    #[test]
    fn memory_contention_couples_the_cores() {
        // Two cores hammering the same bank make less than 2x progress.
        let mut s = sys();
        let pid = s.spawn_init();
        let va = s.mmap(pid, 4096).unwrap();
        s.write_bytes(pid, va, &[1]).unwrap();
        s.finish();
        let t0 = s.now();
        // Both cores stream uncached lines from the same small region
        // (flush between rounds to defeat the caches).
        for round in 0..4u64 {
            for core in 0..2usize {
                s.use_core(core);
                s.write_bytes_nt(pid, va + (round % 64) * 64, &[round as u8; 64]).unwrap();
            }
        }
        s.sync_cores();
        assert!(s.now() > t0, "work happened");
    }
}
