//! Simulator configuration.

use crate::tlb::TlbConfig;
use lelantus_cache::HierarchyConfig;
use lelantus_core::{ControllerConfig, SchemeKind};
use lelantus_metadata::counter_cache::WritePolicy;
use lelantus_os::{CowStrategy, KernelConfig};
use lelantus_types::PageSize;

/// Full-system configuration.
///
/// # Examples
///
/// ```
/// use lelantus_sim::SimConfig;
/// use lelantus_os::CowStrategy;
/// use lelantus_types::PageSize;
///
/// let cfg = SimConfig::new(CowStrategy::Lelantus, PageSize::Huge2M);
/// assert_eq!(cfg.kernel.phys_bytes, cfg.controller.data_bytes);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Kernel (OS model) parameters; `strategy` selects the CoW regime.
    pub kernel: KernelConfig,
    /// CPU cache hierarchy (Table III defaults).
    pub caches: HierarchyConfig,
    /// Secure memory controller + NVM parameters.
    pub controller: ControllerConfig,
    /// Default page size for `System::mmap`.
    pub page_size: PageSize,
    /// Cycles charged for a page-fault trap (kernel entry/exit, VMA
    /// lookup, PTE bookkeeping) *excluding* the copy/zero/command work
    /// that is charged separately. ~600 cycles at 1 GHz, in line with
    /// gem5 full-system minor-fault costs.
    pub fault_cost: u64,
    /// Cycles charged per executed (non-memory) instruction slot.
    pub op_cost: u64,
    /// Data-TLB geometry and walk cost.
    pub tlb: TlbConfig,
    /// Epoch-sampler period in cycles: every `epoch_interval` simulated
    /// cycles the `System` snapshots interval metrics into a time
    /// series (see `System::epochs`). 0 (the default) disables
    /// sampling entirely.
    pub epoch_interval: u64,
    /// Forces `System::run_batch` to replay each batched op through the
    /// exact per-line access path (`read_bytes`/`write_bytes`/
    /// `write_pattern`) instead of the run-cached fast path. The two
    /// are functionally identical; this exists for the equivalence
    /// tests that prove it.
    pub reference_access_path: bool,
    /// Maintains the cycle-attribution ledger (`System::cycle_ledger`):
    /// every simulated cycle is charged to exactly one
    /// `CycleCategory`, with `sum(categories) == SimMetrics.cycles`.
    /// Purely observational — a ledger-enabled run is bit-identical to
    /// a disabled one. Set via [`SimConfig::with_cycle_ledger`], which
    /// also enables segment recording in the controller and device.
    pub cycle_ledger: bool,
    /// Number of shard workers for the parallel engine; 0 (the
    /// default) runs the serial engine. Set via
    /// [`SimConfig::with_parallel`], which also defers the
    /// controller's crypto data plane so the workers have work to
    /// apply. Results are bit-identical for every worker count.
    pub parallel_workers: usize,
    /// Data-plane ops buffered before the system dispatches a parallel
    /// batch to the shard workers (the epoch horizon). Larger batches
    /// amortize thread launch; smaller ones bound log memory.
    pub parallel_horizon: usize,
    /// Records a `FaultSpan` per serviced fault (and per implicit
    /// copy) into a `TailRecorder`: overall + per-action HDR latency
    /// histograms and a top-K worst-offender reservoir. Purely
    /// observational — a recording run is bit-identical to a disabled
    /// one. Set via [`SimConfig::with_tail_recorder`]. Per-span cycle
    /// breakdowns additionally need [`SimConfig::with_cycle_ledger`].
    pub tail_recorder: bool,
    /// Worst-offender spans the tail recorder retains (default 16).
    pub tail_top_k: usize,
    /// Records the spatial heat grid (`System::heatmap`): per-4 KB-
    /// region lanes for faults by action, CoW redirects, implicit
    /// copies, counter fills/overflows, Merkle walk touches per tree
    /// level, MAC writebacks and bank array accesses. Purely
    /// observational — a recording run is bit-identical to a disabled
    /// one. Set via [`SimConfig::with_heatmap`], which also enables
    /// recording in the controller and device.
    pub heatmap: bool,
}

/// Maps the kernel-side strategy onto the controller-side scheme.
pub fn scheme_for(strategy: CowStrategy) -> SchemeKind {
    match strategy {
        CowStrategy::Baseline => SchemeKind::Baseline,
        CowStrategy::SilentShredder => SchemeKind::SilentShredder,
        CowStrategy::Lelantus => SchemeKind::LelantusResized,
        CowStrategy::LelantusCow => SchemeKind::LelantusCow,
    }
}

impl SimConfig {
    /// Paper-default system for one scheme and page size.
    pub fn new(strategy: CowStrategy, page_size: PageSize) -> Self {
        let kernel = KernelConfig::default_with(strategy);
        let mut controller = ControllerConfig::for_scheme(scheme_for(strategy));
        controller.data_bytes = kernel.phys_bytes;
        Self {
            kernel,
            caches: HierarchyConfig::default(),
            controller,
            page_size,
            fault_cost: 600,
            op_cost: 1,
            tlb: TlbConfig::default(),
            epoch_interval: 0,
            reference_access_path: false,
            cycle_ledger: false,
            parallel_workers: 0,
            parallel_horizon: 4096,
            tail_recorder: false,
            tail_top_k: 16,
            heatmap: false,
        }
    }

    /// Runs the simulation on the parallel sharded engine with
    /// `workers` shard workers (0 = serial). The timing/control plane
    /// stays on the calling thread; the crypto data plane (AES,
    /// data MACs, Merkle leaf digests) is deferred and fanned out to
    /// the workers at epoch barriers, partitioned by region. Metrics,
    /// probe streams, Merkle roots and ledgers are bit-identical to
    /// the serial engine for every worker count.
    pub fn with_parallel(mut self, workers: usize) -> Self {
        self.parallel_workers = workers;
        self.controller.defer_data_plane = workers > 0;
        self
    }

    /// Enables the cycle-attribution ledger across the whole stack
    /// (system accounting plus controller/device segment recording).
    pub fn with_cycle_ledger(mut self) -> Self {
        self.cycle_ledger = true;
        self.controller.cycle_ledger = true;
        self.controller.nvm.cycle_ledger = true;
        self
    }

    /// Enables per-fault span recording (`System::tail_recorder`).
    /// Deliberately does *not* force the cycle ledger on: the tail
    /// percentiles are cheap alone, and per-span category breakdowns
    /// appear when [`SimConfig::with_cycle_ledger`] is also set.
    pub fn with_tail_recorder(mut self) -> Self {
        self.tail_recorder = true;
        self
    }

    /// Sets the tail recorder's worst-offender reservoir capacity.
    pub fn with_tail_top_k(mut self, top_k: usize) -> Self {
        self.tail_top_k = top_k;
        self
    }

    /// Enables the spatial heat grid across the whole stack (system
    /// fault lanes plus controller metadata and device bank lanes).
    pub fn with_heatmap(mut self) -> Self {
        self.heatmap = true;
        self.controller.heatmap = true;
        self.controller.nvm.heatmap = true;
        self
    }

    /// Enables the epoch sampler with the given period (cycles); 0
    /// disables it.
    pub fn with_epoch_interval(mut self, cycles: u64) -> Self {
        self.epoch_interval = cycles;
        self
    }

    /// Same system with the counter cache in write-through mode
    /// (Fig 12's comparison axis).
    pub fn with_counter_write_policy(mut self, policy: WritePolicy) -> Self {
        self.controller.counter_cache.policy = policy;
        self
    }

    /// Disables randomized initial counters (isolates datapath
    /// behaviour from overflow noise; the paper randomizes them to
    /// *measure* overflow, §V-A).
    pub fn with_deterministic_counters(mut self) -> Self {
        self.controller.randomize_counters = false;
        self
    }

    /// Runs the controller's counter-mode engine on the byte-oriented
    /// reference AES (functionally identical, much slower). Exists for
    /// the equivalence tests that prove the T-table fast path changes
    /// nothing observable.
    pub fn with_reference_aes(mut self) -> Self {
        self.controller.use_reference_aes = true;
        self
    }

    /// Runs the controller's metadata path in its slow reference shape:
    /// bit-by-bit counter-block codec, eager per-write Merkle
    /// maintenance, no MAC write combining. Functionally identical to
    /// the fast path; exists for the equivalence tests that prove the
    /// metadata fast path changes nothing observable.
    pub fn with_reference_metadata(mut self) -> Self {
        self.controller.use_reference_codec = true;
        self.controller.use_eager_merkle = true;
        self.controller.mac_write_combining = false;
        self
    }

    /// Routes `System::run_batch` through the per-line reference access
    /// path. Functionally identical to the batched fast path; exists
    /// for the equivalence tests that prove the run-caching changes
    /// nothing observable.
    pub fn with_reference_access_path(mut self) -> Self {
        self.reference_access_path = true;
        self
    }

    /// Runs the kernel on the original hash/tree-backed OS structures
    /// (`HashMap` page tables and page registry, `Vec` rmap chains,
    /// `BTreeSet` buddy free lists) instead of the frame-indexed fast
    /// structures. Functionally identical — same `HwAction` streams,
    /// SimMetrics, and Merkle roots; exists for the equivalence tests
    /// that prove it.
    pub fn with_reference_structures(mut self) -> Self {
        self.kernel = self.kernel.with_reference_structures();
        self
    }

    /// Shrinks physical memory (faster tests).
    pub fn with_phys_bytes(mut self, bytes: u64) -> Self {
        self.kernel.phys_bytes = bytes;
        self.controller.data_bytes = bytes;
        self
    }

    /// Validates cross-component consistency.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        self.kernel.validate()?;
        self.caches.validate()?;
        self.controller.validate()?;
        if self.kernel.phys_bytes != self.controller.data_bytes {
            return Err("kernel and controller must agree on the data area".into());
        }
        if scheme_for(self.kernel.strategy) != self.controller.scheme {
            return Err("kernel strategy and controller scheme mismatch".into());
        }
        if self.controller.zero_area_bytes != 2 << 20 {
            return Err("the kernel reserves exactly one 2 MB zero page".into());
        }
        if self.cycle_ledger != self.controller.cycle_ledger
            || self.cycle_ledger != self.controller.nvm.cycle_ledger
        {
            // Segments are only drained when the system-level ledger
            // runs; a partial enable would leak or starve them.
            return Err("cycle_ledger must be enabled via with_cycle_ledger (all layers)".into());
        }
        if self.heatmap != self.controller.heatmap || self.heatmap != self.controller.nvm.heatmap {
            // Layer grids are only merged when the system-level heatmap
            // runs; a partial enable would record grids nobody reads.
            return Err("heatmap must be enabled via with_heatmap (all layers)".into());
        }
        if (self.parallel_workers > 0) != self.controller.defer_data_plane {
            // The data-plane log is only drained by the parallel
            // engine; a partial enable would grow it unboundedly (or
            // leave the workers with nothing to apply).
            return Err("parallel workers must be enabled via with_parallel (both layers)".into());
        }
        if self.parallel_workers > 0 && self.parallel_horizon == 0 {
            return Err("parallel_horizon must be nonzero".into());
        }
        self.tlb.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        for strategy in CowStrategy::all() {
            for size in PageSize::all() {
                assert!(SimConfig::new(strategy, size).validate().is_ok(), "{strategy} {size}");
            }
        }
    }

    #[test]
    fn scheme_mapping() {
        assert_eq!(scheme_for(CowStrategy::Lelantus), SchemeKind::LelantusResized);
        assert_eq!(scheme_for(CowStrategy::LelantusCow), SchemeKind::LelantusCow);
        assert_eq!(scheme_for(CowStrategy::Baseline), SchemeKind::Baseline);
        assert_eq!(scheme_for(CowStrategy::SilentShredder), SchemeKind::SilentShredder);
    }

    #[test]
    fn mismatched_configs_rejected() {
        let mut cfg = SimConfig::new(CowStrategy::Baseline, PageSize::Regular4K);
        cfg.controller.data_bytes = 128 << 20;
        assert!(cfg.validate().is_err());
        let mut cfg = SimConfig::new(CowStrategy::Baseline, PageSize::Regular4K);
        cfg.controller.scheme = SchemeKind::LelantusResized;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builders() {
        let cfg = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K)
            .with_phys_bytes(32 << 20)
            .with_counter_write_policy(WritePolicy::WriteThrough);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.kernel.phys_bytes, 32 << 20);
        assert_eq!(cfg.controller.counter_cache.policy, WritePolicy::WriteThrough);
        let cfg = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K)
            .with_tail_recorder()
            .with_tail_top_k(8);
        assert!(cfg.validate().is_ok());
        assert!(cfg.tail_recorder);
        assert_eq!(cfg.tail_top_k, 8);
        assert!(!cfg.cycle_ledger, "tail recorder does not force the ledger");
    }

    #[test]
    fn parallel_must_enable_both_layers() {
        let cfg = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K).with_parallel(4);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.parallel_workers, 4);
        assert!(cfg.controller.defer_data_plane);
        // with_parallel(0) round-trips back to the serial engine.
        assert!(cfg.with_parallel(0).validate().is_ok());
        let mut partial = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K);
        partial.controller.defer_data_plane = true;
        assert!(partial.validate().is_err(), "partial enable must be rejected");
        let mut partial = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K);
        partial.parallel_workers = 2;
        assert!(partial.validate().is_err(), "partial enable must be rejected");
        let mut cfg = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K).with_parallel(2);
        cfg.parallel_horizon = 0;
        assert!(cfg.validate().is_err(), "zero horizon must be rejected");
    }

    #[test]
    fn heatmap_must_enable_all_layers() {
        let cfg = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K).with_heatmap();
        assert!(cfg.validate().is_ok());
        assert!(cfg.controller.heatmap && cfg.controller.nvm.heatmap);
        let mut partial = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K);
        partial.controller.heatmap = true;
        assert!(partial.validate().is_err(), "partial enable must be rejected");
        let mut partial = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K);
        partial.heatmap = true;
        assert!(partial.validate().is_err(), "partial enable must be rejected");
    }

    #[test]
    fn cycle_ledger_must_enable_all_layers() {
        let cfg = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K).with_cycle_ledger();
        assert!(cfg.validate().is_ok());
        assert!(cfg.controller.cycle_ledger && cfg.controller.nvm.cycle_ledger);
        let mut partial = SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K);
        partial.controller.cycle_ledger = true;
        assert!(partial.validate().is_err(), "partial enable must be rejected");
    }
}
