//! End-to-end metrics snapshot.

use lelantus_cache::HierarchyStats;
use lelantus_core::ControllerStats;
use lelantus_metadata::counter_cache::CounterCacheStats;
use lelantus_metadata::cow_meta::CowCacheStats;
use lelantus_nvm::NvmStats;
use lelantus_os::kernel::KernelStats;
use crate::tlb::TlbStats;
use lelantus_types::Cycles;

/// Everything the experiment harnesses need, in one snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimMetrics {
    /// Simulated time elapsed.
    pub cycles: Cycles,
    /// Physical NVM traffic.
    pub nvm: NvmStats,
    /// Controller events (redirections, commands, overflows...).
    pub controller: ControllerStats,
    /// Kernel events (faults, forks...).
    pub kernel: KernelStats,
    /// CPU cache statistics.
    pub caches: HierarchyStats,
    /// Counter-cache statistics.
    pub counter_cache: CounterCacheStats,
    /// CoW-cache statistics (Lelantus-CoW).
    pub cow_cache: CowCacheStats,
    /// Data-TLB statistics.
    pub tlb: TlbStats,
}

impl SimMetrics {
    /// Interval metrics: `self - earlier` for the counters and the
    /// cycle difference.
    pub fn delta_since(&self, earlier: &SimMetrics) -> SimMetrics {
        SimMetrics {
            cycles: self.cycles - earlier.cycles,
            nvm: self.nvm.delta_since(&earlier.nvm),
            controller: self.controller.delta_since(&earlier.controller),
            kernel: KernelStats {
                cow_faults: self.kernel.cow_faults - earlier.kernel.cow_faults,
                zero_faults: self.kernel.zero_faults - earlier.kernel.zero_faults,
                reuse_faults: self.kernel.reuse_faults - earlier.kernel.reuse_faults,
                early_reclaims: self.kernel.early_reclaims - earlier.kernel.early_reclaims,
                phyc_cmds: self.kernel.phyc_cmds - earlier.kernel.phyc_cmds,
                forks: self.kernel.forks - earlier.kernel.forks,
                pages_allocated: self.kernel.pages_allocated - earlier.kernel.pages_allocated,
                pages_freed: self.kernel.pages_freed - earlier.kernel.pages_freed,
            },
            // Cache stats deltas are rarely needed per interval; carry
            // the endpoint values.
            caches: self.caches,
            counter_cache: self.counter_cache,
            cow_cache: self.cow_cache,
            tlb: self.tlb,
        }
    }

    /// Speedup of this run relative to `baseline` (ratio of cycles).
    pub fn speedup_vs(&self, baseline: &SimMetrics) -> f64 {
        if self.cycles.as_u64() == 0 {
            return 0.0;
        }
        baseline.cycles.as_u64() as f64 / self.cycles.as_u64() as f64
    }

    /// This run's NVM write count as a fraction of `baseline`'s —
    /// the paper's "number of writes reduced to X %" metric.
    pub fn write_fraction_vs(&self, baseline: &SimMetrics) -> f64 {
        if baseline.nvm.line_writes == 0 {
            return 0.0;
        }
        self.nvm.line_writes as f64 / baseline.nvm.line_writes as f64
    }

    /// Write amplification: physical NVM line writes per logical line
    /// write (Fig 2's metric).
    pub fn write_amplification(&self, logical_line_writes: u64) -> f64 {
        if logical_line_writes == 0 {
            return 0.0;
        }
        self.nvm.line_writes as f64 / logical_line_writes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_fractions() {
        let base = SimMetrics {
            cycles: Cycles::new(1000),
            nvm: NvmStats { line_writes: 200, ..Default::default() },
            ..Default::default()
        };
        let fast = SimMetrics {
            cycles: Cycles::new(250),
            nvm: NvmStats { line_writes: 50, ..Default::default() },
            ..Default::default()
        };
        assert!((fast.speedup_vs(&base) - 4.0).abs() < 1e-12);
        assert!((fast.write_fraction_vs(&base) - 0.25).abs() < 1e-12);
        assert!((base.write_amplification(100) - 2.0).abs() < 1e-12);
        assert_eq!(SimMetrics::default().speedup_vs(&base), 0.0);
    }

    #[test]
    fn delta() {
        let a = SimMetrics { cycles: Cycles::new(100), ..Default::default() };
        let b = SimMetrics { cycles: Cycles::new(175), ..Default::default() };
        assert_eq!(b.delta_since(&a).cycles, Cycles::new(75));
    }
}
