//! End-to-end metrics snapshot.

use crate::tlb::TlbStats;
use lelantus_cache::HierarchyStats;
use lelantus_core::ControllerStats;
use lelantus_metadata::counter_cache::CounterCacheStats;
use lelantus_metadata::cow_meta::CowCacheStats;
use lelantus_nvm::NvmStats;
use lelantus_obs::{CycleLedger, HeatGrid, HistogramSet, TailSummary};
use lelantus_os::kernel::KernelStats;
use lelantus_types::Cycles;

/// Everything the experiment harnesses need, in one snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimMetrics {
    /// Simulated time elapsed.
    pub cycles: Cycles,
    /// Physical NVM traffic.
    pub nvm: NvmStats,
    /// Controller events (redirections, commands, overflows...).
    pub controller: ControllerStats,
    /// Kernel events (faults, forks...).
    pub kernel: KernelStats,
    /// CPU cache statistics.
    pub caches: HierarchyStats,
    /// Counter-cache statistics.
    pub counter_cache: CounterCacheStats,
    /// CoW-cache statistics (Lelantus-CoW).
    pub cow_cache: CowCacheStats,
    /// Data-TLB statistics.
    pub tlb: TlbStats,
}

impl SimMetrics {
    /// Interval metrics: `self - earlier` for every counter and the
    /// cycle difference.
    pub fn delta_since(&self, earlier: &SimMetrics) -> SimMetrics {
        SimMetrics {
            cycles: self.cycles - earlier.cycles,
            nvm: self.nvm.delta_since(&earlier.nvm),
            controller: self.controller.delta_since(&earlier.controller),
            kernel: self.kernel.delta_since(&earlier.kernel),
            caches: self.caches.delta_since(&earlier.caches),
            counter_cache: self.counter_cache.delta_since(&earlier.counter_cache),
            cow_cache: self.cow_cache.delta_since(&earlier.cow_cache),
            tlb: self.tlb.delta_since(&earlier.tlb),
        }
    }

    /// Speedup of this run relative to `baseline` (ratio of cycles).
    pub fn speedup_vs(&self, baseline: &SimMetrics) -> f64 {
        if self.cycles.as_u64() == 0 {
            return 0.0;
        }
        baseline.cycles.as_u64() as f64 / self.cycles.as_u64() as f64
    }

    /// This run's NVM write count as a fraction of `baseline`'s —
    /// the paper's "number of writes reduced to X %" metric.
    pub fn write_fraction_vs(&self, baseline: &SimMetrics) -> f64 {
        if baseline.nvm.line_writes == 0 {
            return 0.0;
        }
        self.nvm.line_writes as f64 / baseline.nvm.line_writes as f64
    }

    /// Write amplification: physical NVM line writes per logical line
    /// write (Fig 2's metric).
    pub fn write_amplification(&self, logical_line_writes: u64) -> f64 {
        if logical_line_writes == 0 {
            return 0.0;
        }
        self.nvm.line_writes as f64 / logical_line_writes as f64
    }
}

/// One epoch of the time series the epoch sampler produces: the
/// interval metrics for `(end_cycle - delta.cycles, end_cycle]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpochSample {
    /// Simulated cycle the epoch closed at.
    pub end_cycle: Cycles,
    /// True interval counters for the epoch (not running totals).
    pub delta: SimMetrics,
    /// Per-category cycle attribution for the epoch (all zero unless
    /// `SimConfig::with_cycle_ledger`; sums to `delta.cycles` when
    /// enabled).
    pub ledger: CycleLedger,
    /// Per-kind histogram deltas for the epoch (queue depth, fault
    /// service cycles, ...). Empty unless a recording probe (ring or
    /// JSONL) is attached — `NullProbe` runs carry all-zero sets.
    pub hists: HistogramSet,
    /// Tail-latency percentile summary of the fault spans recorded in
    /// this epoch (all zero unless `SimConfig::with_tail_recorder`).
    pub tail: TailSummary,
    /// Spatial heat accrued in this epoch across every lane (`None`
    /// unless `SimConfig::with_heatmap`). The per-epoch grids sum
    /// cell-for-cell to the run's merged grid.
    pub heat: Option<Box<HeatGrid>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_fractions() {
        let base = SimMetrics {
            cycles: Cycles::new(1000),
            nvm: NvmStats { line_writes: 200, ..Default::default() },
            ..Default::default()
        };
        let fast = SimMetrics {
            cycles: Cycles::new(250),
            nvm: NvmStats { line_writes: 50, ..Default::default() },
            ..Default::default()
        };
        assert!((fast.speedup_vs(&base) - 4.0).abs() < 1e-12);
        assert!((fast.write_fraction_vs(&base) - 0.25).abs() < 1e-12);
        assert!((base.write_amplification(100) - 2.0).abs() < 1e-12);
        assert_eq!(SimMetrics::default().speedup_vs(&base), 0.0);
    }

    #[test]
    fn delta() {
        let a = SimMetrics { cycles: Cycles::new(100), ..Default::default() };
        let b = SimMetrics { cycles: Cycles::new(175), ..Default::default() };
        assert_eq!(b.delta_since(&a).cycles, Cycles::new(75));
    }

    #[test]
    fn delta_subtracts_every_group() {
        use lelantus_cache::CacheStats;
        let mut a = SimMetrics::default();
        a.caches.l1 = CacheStats { hits: 10, misses: 2, ..Default::default() };
        a.counter_cache.hits = 5;
        a.cow_cache.misses = 3;
        a.tlb.walks = 7;
        a.kernel.forks = 1;
        let mut b = a;
        b.caches.l1.hits = 25;
        b.counter_cache.hits = 9;
        b.cow_cache.misses = 4;
        b.tlb.walks = 11;
        b.kernel.forks = 3;
        let d = b.delta_since(&a);
        assert_eq!(d.caches.l1.hits, 15, "cache stats must be true deltas");
        assert_eq!(d.caches.l1.misses, 0);
        assert_eq!(d.counter_cache.hits, 4);
        assert_eq!(d.cow_cache.misses, 1);
        assert_eq!(d.tlb.walks, 4);
        assert_eq!(d.kernel.forks, 2);
        // Subtracting a snapshot from itself yields all-zero deltas.
        assert_eq!(b.delta_since(&b), SimMetrics::default());
    }
}
