//! Virtual memory areas.

use lelantus_types::{PageSize, VirtAddr};

/// One contiguous anonymous mapping in a process address space
/// (Linux's `vm_area_struct`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// Inclusive start address (page-aligned).
    pub start: VirtAddr,
    /// Exclusive end address.
    pub end: VirtAddr,
    /// Page granularity backing this area.
    pub page_size: PageSize,
    /// Whether stores are permitted (CoW write-protection is per-PTE,
    /// not per-VMA).
    pub writable: bool,
    /// `anon_vma` id for reverse lookup (shared across fork copies).
    pub anon_vma: u64,
}

impl Vma {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True for an empty area (never constructed by the kernel).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `va` falls inside the area.
    pub fn contains(&self, va: VirtAddr) -> bool {
        self.start <= va && va < self.end
    }

    /// Number of pages spanned.
    pub fn pages(&self) -> u64 {
        self.len() / self.page_size.bytes()
    }

    /// Base virtual address of the page containing `va`.
    ///
    /// # Panics
    ///
    /// Panics if `va` is outside the area.
    pub fn page_base(&self, va: VirtAddr) -> VirtAddr {
        assert!(self.contains(va), "address outside VMA");
        let off = (va - self.start) / self.page_size.bytes() * self.page_size.bytes();
        self.start + off
    }

    /// Page-index of `va` within the area.
    ///
    /// # Panics
    ///
    /// Panics if `va` is outside the area.
    pub fn page_index(&self, va: VirtAddr) -> u64 {
        assert!(self.contains(va), "address outside VMA");
        (va - self.start) / self.page_size.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vma() -> Vma {
        Vma {
            start: VirtAddr::new(0x10000),
            end: VirtAddr::new(0x14000),
            page_size: PageSize::Regular4K,
            writable: true,
            anon_vma: 1,
        }
    }

    #[test]
    fn geometry() {
        let v = vma();
        assert_eq!(v.len(), 0x4000);
        assert_eq!(v.pages(), 4);
        assert!(!v.is_empty());
        assert!(v.contains(VirtAddr::new(0x10000)));
        assert!(v.contains(VirtAddr::new(0x13fff)));
        assert!(!v.contains(VirtAddr::new(0x14000)));
    }

    #[test]
    fn page_base_and_index() {
        let v = vma();
        assert_eq!(v.page_base(VirtAddr::new(0x11234)), VirtAddr::new(0x11000));
        assert_eq!(v.page_index(VirtAddr::new(0x11234)), 1);
        assert_eq!(v.page_index(VirtAddr::new(0x10000)), 0);
    }

    #[test]
    #[should_panic(expected = "outside VMA")]
    fn page_base_outside_panics() {
        vma().page_base(VirtAddr::new(0x20000));
    }

    #[test]
    fn huge_vma() {
        let v = Vma {
            start: VirtAddr::new(0x4000_0000),
            end: VirtAddr::new(0x4000_0000 + 4 * (2 << 20)),
            page_size: PageSize::Huge2M,
            writable: true,
            anon_vma: 2,
        };
        assert_eq!(v.pages(), 4);
        assert_eq!(
            v.page_base(VirtAddr::new(0x4000_0000 + (3 << 20))),
            VirtAddr::new(0x4000_0000 + (2 << 20))
        );
    }
}
