//! Reverse mapping (`anon_vma` / `anon_vma_chain`).
//!
//! The paper's Figure 7: each original anonymous VMA gets an
//! `anon_vma` (AV); fork links the child's VMA onto the same AV via an
//! `anon_vma_chain` (AVC). Starting from a physical page's AV, the
//! kernel can traverse every forked process's copy of the same VMA —
//! this is how early reclamation finds candidate *copied* pages whose
//! metadata may still point at a dying source page (§III-D).

use lelantus_types::VirtAddr;
use std::collections::HashMap;

/// Identifier of one `anon_vma`.
pub type AnonVmaId = u64;

/// One chain link: a process's VMA participating in the anon_vma.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainLink {
    /// Owning process.
    pub pid: u64,
    /// Start of that process's copy of the VMA.
    pub vma_start: VirtAddr,
}

/// Registry of anon_vma chains.
///
/// # Examples
///
/// ```
/// use lelantus_os::rmap::RmapRegistry;
/// use lelantus_types::VirtAddr;
///
/// let mut rmap = RmapRegistry::new();
/// let av = rmap.create();
/// rmap.link(av, 1, VirtAddr::new(0x1000));
/// rmap.link(av, 2, VirtAddr::new(0x1000)); // forked child
/// assert_eq!(rmap.links(av).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RmapRegistry {
    next_id: AnonVmaId,
    chains: HashMap<AnonVmaId, Vec<ChainLink>>,
}

impl RmapRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh `anon_vma` (first mapping of a new VMA).
    pub fn create(&mut self) -> AnonVmaId {
        let id = self.next_id;
        self.next_id += 1;
        self.chains.insert(id, Vec::new());
        id
    }

    /// Links `(pid, vma_start)` onto `av`'s chain (fork, or first map).
    ///
    /// # Panics
    ///
    /// Panics if `av` is unknown or the link already exists.
    pub fn link(&mut self, av: AnonVmaId, pid: u64, vma_start: VirtAddr) {
        let chain = self.chains.get_mut(&av).expect("unknown anon_vma");
        assert!(
            !chain.iter().any(|l| l.pid == pid && l.vma_start == vma_start),
            "duplicate anon_vma_chain link"
        );
        chain.push(ChainLink { pid, vma_start });
    }

    /// Unlinks a process's VMA from the chain (exit / munmap). The
    /// anon_vma itself persists until [`RmapRegistry::destroy`].
    pub fn unlink(&mut self, av: AnonVmaId, pid: u64, vma_start: VirtAddr) {
        if let Some(chain) = self.chains.get_mut(&av) {
            chain.retain(|l| !(l.pid == pid && l.vma_start == vma_start));
        }
    }

    /// All chain links of `av` (empty slice if unknown).
    pub fn links(&self, av: AnonVmaId) -> &[ChainLink] {
        self.chains.get(&av).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Destroys an anon_vma once its chain is empty.
    ///
    /// # Panics
    ///
    /// Panics if links remain.
    pub fn destroy(&mut self, av: AnonVmaId) {
        if let Some(chain) = self.chains.remove(&av) {
            assert!(chain.is_empty(), "destroying anon_vma with live links");
        }
    }

    /// Number of live anon_vmas.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True when no anon_vmas exist.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_chain_traversal() {
        let mut r = RmapRegistry::new();
        let av = r.create();
        r.link(av, 1, VirtAddr::new(0x1000));
        r.link(av, 2, VirtAddr::new(0x1000));
        r.link(av, 3, VirtAddr::new(0x1000));
        let pids: Vec<u64> = r.links(av).iter().map(|l| l.pid).collect();
        assert_eq!(pids, vec![1, 2, 3]);
    }

    #[test]
    fn unlink_and_destroy() {
        let mut r = RmapRegistry::new();
        let av = r.create();
        r.link(av, 1, VirtAddr::new(0x1000));
        r.unlink(av, 1, VirtAddr::new(0x1000));
        assert!(r.links(av).is_empty());
        r.destroy(av);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "live links")]
    fn destroy_with_links_panics() {
        let mut r = RmapRegistry::new();
        let av = r.create();
        r.link(av, 1, VirtAddr::new(0x1000));
        r.destroy(av);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_link_panics() {
        let mut r = RmapRegistry::new();
        let av = r.create();
        r.link(av, 1, VirtAddr::new(0x1000));
        r.link(av, 1, VirtAddr::new(0x1000));
    }

    #[test]
    fn ids_are_unique() {
        let mut r = RmapRegistry::new();
        let a = r.create();
        let b = r.create();
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
    }
}
