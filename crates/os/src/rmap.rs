//! Reverse mapping (`anon_vma` / `anon_vma_chain`).
//!
//! The paper's Figure 7: each original anonymous VMA gets an
//! `anon_vma` (AV); fork links the child's VMA onto the same AV via an
//! `anon_vma_chain` (AVC). Starting from a physical page's AV, the
//! kernel can traverse every forked process's copy of the same VMA —
//! this is how early reclamation finds candidate *copied* pages whose
//! metadata may still point at a dying source page (§III-D).
//!
//! Two backings:
//!
//! * **Intrusive** (default) — chains are doubly linked lists threaded
//!   through a slab of index-linked nodes (`usize` links, no `Box`, no
//!   per-chain `Vec`). `anon_vma` ids are handed out sequentially by
//!   this registry, so the chain table is a dense `Vec` indexed by id.
//!   Linking appends at the tail, preserving the reference backing's
//!   push order, and traversal goes through [`RmapRegistry::cursor`] —
//!   a `Copy` position token, so callers (the kernel's early-reclaim
//!   walk) iterate without snapshotting the chain into a `Vec`.
//! * **Reference** — the seed's `HashMap<AnonVmaId, Vec<ChainLink>>`,
//!   kept behind `KernelConfig::with_reference_structures()`.

use lelantus_types::VirtAddr;
use std::collections::HashMap;

/// Identifier of one `anon_vma`.
pub type AnonVmaId = u64;

/// Sentinel for "no node" in the intrusive slab.
const NIL: usize = usize::MAX;

/// One chain link: a process's VMA participating in the anon_vma.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainLink {
    /// Owning process.
    pub pid: u64,
    /// Start of that process's copy of the VMA.
    pub vma_start: VirtAddr,
}

/// Traversal position in one anon_vma's chain. `Copy`, so the holder
/// keeps no borrow of the registry between steps; the position is only
/// valid while the chain is not mutated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmapCursor {
    av: AnonVmaId,
    /// Intrusive: slab node index ([`NIL`] = end). Reference: position
    /// in the chain's `Vec`.
    pos: usize,
}

/// Slab node of the intrusive backing; `next` doubles as the free-list
/// link when the node is unused.
#[derive(Debug, Clone, Copy)]
struct LinkNode {
    link: ChainLink,
    prev: usize,
    next: usize,
}

/// Per-anon_vma chain head of the intrusive backing.
#[derive(Debug, Clone, Copy)]
struct Chain {
    head: usize,
    tail: usize,
    len: usize,
    live: bool,
}

#[derive(Debug, Clone)]
enum Repr {
    Intrusive {
        /// Indexed by `AnonVmaId` (ids are sequential).
        chains: Vec<Chain>,
        /// Node slab; freed nodes are recycled via `free_head`.
        nodes: Vec<LinkNode>,
        free_head: usize,
        /// Number of live (created, not destroyed) anon_vmas.
        live: usize,
    },
    Reference {
        chains: HashMap<AnonVmaId, Vec<ChainLink>>,
    },
}

/// Registry of anon_vma chains.
///
/// # Examples
///
/// ```
/// use lelantus_os::rmap::RmapRegistry;
/// use lelantus_types::VirtAddr;
///
/// let mut rmap = RmapRegistry::new();
/// let av = rmap.create();
/// rmap.link(av, 1, VirtAddr::new(0x1000));
/// rmap.link(av, 2, VirtAddr::new(0x1000)); // forked child
/// assert_eq!(rmap.links(av).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RmapRegistry {
    next_id: AnonVmaId,
    repr: Repr,
}

impl Default for RmapRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl RmapRegistry {
    /// Creates an empty registry on the intrusive backing.
    pub fn new() -> Self {
        Self {
            next_id: 0,
            repr: Repr::Intrusive {
                chains: Vec::new(),
                nodes: Vec::new(),
                free_head: NIL,
                live: 0,
            },
        }
    }

    /// Creates an empty registry on the reference `HashMap`/`Vec`
    /// backing.
    pub fn new_reference() -> Self {
        Self { next_id: 0, repr: Repr::Reference { chains: HashMap::new() } }
    }

    /// Allocates a fresh `anon_vma` (first mapping of a new VMA).
    pub fn create(&mut self) -> AnonVmaId {
        let id = self.next_id;
        self.next_id += 1;
        match &mut self.repr {
            Repr::Intrusive { chains, live, .. } => {
                debug_assert_eq!(id as usize, chains.len());
                chains.push(Chain { head: NIL, tail: NIL, len: 0, live: true });
                *live += 1;
            }
            Repr::Reference { chains } => {
                chains.insert(id, Vec::new());
            }
        }
        id
    }

    /// Links `(pid, vma_start)` onto `av`'s chain (fork, or first map).
    ///
    /// # Panics
    ///
    /// Panics if `av` is unknown or the link already exists.
    pub fn link(&mut self, av: AnonVmaId, pid: u64, vma_start: VirtAddr) {
        match &mut self.repr {
            Repr::Intrusive { chains, nodes, free_head, .. } => {
                let chain =
                    chains.get_mut(av as usize).filter(|c| c.live).expect("unknown anon_vma");
                let mut cur = chain.head;
                while cur != NIL {
                    let n = &nodes[cur];
                    assert!(
                        !(n.link.pid == pid && n.link.vma_start == vma_start),
                        "duplicate anon_vma_chain link"
                    );
                    cur = n.next;
                }
                let node =
                    LinkNode { link: ChainLink { pid, vma_start }, prev: chain.tail, next: NIL };
                let idx = if *free_head != NIL {
                    let idx = *free_head;
                    *free_head = nodes[idx].next;
                    nodes[idx] = node;
                    idx
                } else {
                    nodes.push(node);
                    nodes.len() - 1
                };
                if chain.tail != NIL {
                    nodes[chain.tail].next = idx;
                } else {
                    chain.head = idx;
                }
                chain.tail = idx;
                chain.len += 1;
            }
            Repr::Reference { chains } => {
                let chain = chains.get_mut(&av).expect("unknown anon_vma");
                assert!(
                    !chain.iter().any(|l| l.pid == pid && l.vma_start == vma_start),
                    "duplicate anon_vma_chain link"
                );
                chain.push(ChainLink { pid, vma_start });
            }
        }
    }

    /// Unlinks a process's VMA from the chain (exit / munmap). The
    /// anon_vma itself persists until [`RmapRegistry::destroy`].
    pub fn unlink(&mut self, av: AnonVmaId, pid: u64, vma_start: VirtAddr) {
        match &mut self.repr {
            Repr::Intrusive { chains, nodes, free_head, .. } => {
                let Some(chain) = chains.get_mut(av as usize).filter(|c| c.live) else {
                    return;
                };
                let mut cur = chain.head;
                while cur != NIL {
                    let n = nodes[cur];
                    if n.link.pid == pid && n.link.vma_start == vma_start {
                        // Splice out (links are unique, so one hit).
                        if n.prev != NIL {
                            nodes[n.prev].next = n.next;
                        } else {
                            chain.head = n.next;
                        }
                        if n.next != NIL {
                            nodes[n.next].prev = n.prev;
                        } else {
                            chain.tail = n.prev;
                        }
                        chain.len -= 1;
                        nodes[cur].next = *free_head;
                        *free_head = cur;
                        return;
                    }
                    cur = n.next;
                }
            }
            Repr::Reference { chains } => {
                if let Some(chain) = chains.get_mut(&av) {
                    chain.retain(|l| !(l.pid == pid && l.vma_start == vma_start));
                }
            }
        }
    }

    /// All chain links of `av`, in link order (empty if unknown). This
    /// collects — it is for tests and diagnostics; hot paths traverse
    /// via [`RmapRegistry::cursor`] instead.
    pub fn links(&self, av: AnonVmaId) -> Vec<ChainLink> {
        let mut out = Vec::with_capacity(self.link_count(av));
        let mut cur = self.cursor(av);
        while let Some(link) = self.link_at(cur) {
            out.push(link);
            cur = self.advance(cur);
        }
        out
    }

    /// Number of links on `av`'s chain (0 if unknown).
    pub fn link_count(&self, av: AnonVmaId) -> usize {
        match &self.repr {
            Repr::Intrusive { chains, .. } => {
                chains.get(av as usize).filter(|c| c.live).map_or(0, |c| c.len)
            }
            Repr::Reference { chains } => chains.get(&av).map_or(0, Vec::len),
        }
    }

    /// Cursor at the first link of `av`'s chain. Walk with
    /// [`RmapRegistry::link_at`] / [`RmapRegistry::advance`]; the
    /// cursor is a plain value, so no borrow of the registry is held
    /// between steps. Positions are invalidated by chain mutation.
    pub fn cursor(&self, av: AnonVmaId) -> RmapCursor {
        let pos = match &self.repr {
            Repr::Intrusive { chains, .. } => {
                chains.get(av as usize).filter(|c| c.live).map_or(NIL, |c| c.head)
            }
            Repr::Reference { .. } => 0,
        };
        RmapCursor { av, pos }
    }

    /// The link under the cursor, or `None` at end of chain.
    pub fn link_at(&self, cursor: RmapCursor) -> Option<ChainLink> {
        match &self.repr {
            Repr::Intrusive { nodes, .. } => (cursor.pos != NIL).then(|| nodes[cursor.pos].link),
            Repr::Reference { chains } => chains.get(&cursor.av)?.get(cursor.pos).copied(),
        }
    }

    /// Cursor advanced one link.
    pub fn advance(&self, cursor: RmapCursor) -> RmapCursor {
        let pos = match &self.repr {
            Repr::Intrusive { nodes, .. } => {
                if cursor.pos == NIL {
                    NIL
                } else {
                    nodes[cursor.pos].next
                }
            }
            Repr::Reference { .. } => cursor.pos + 1,
        };
        RmapCursor { av: cursor.av, pos }
    }

    /// Destroys an anon_vma once its chain is empty.
    ///
    /// # Panics
    ///
    /// Panics if links remain.
    pub fn destroy(&mut self, av: AnonVmaId) {
        match &mut self.repr {
            Repr::Intrusive { chains, live, .. } => {
                if let Some(chain) = chains.get_mut(av as usize).filter(|c| c.live) {
                    assert!(chain.len == 0, "destroying anon_vma with live links");
                    chain.live = false;
                    *live -= 1;
                }
            }
            Repr::Reference { chains } => {
                if let Some(chain) = chains.remove(&av) {
                    assert!(chain.is_empty(), "destroying anon_vma with live links");
                }
            }
        }
    }

    /// Number of live anon_vmas.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Intrusive { live, .. } => *live,
            Repr::Reference { chains } => chains.len(),
        }
    }

    /// True when no anon_vmas exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [RmapRegistry; 2] {
        [RmapRegistry::new(), RmapRegistry::new_reference()]
    }

    #[test]
    fn fork_chain_traversal() {
        for mut r in both() {
            let av = r.create();
            r.link(av, 1, VirtAddr::new(0x1000));
            r.link(av, 2, VirtAddr::new(0x1000));
            r.link(av, 3, VirtAddr::new(0x1000));
            let pids: Vec<u64> = r.links(av).iter().map(|l| l.pid).collect();
            assert_eq!(pids, vec![1, 2, 3]);
            assert_eq!(r.link_count(av), 3);
        }
    }

    #[test]
    fn cursor_walk_matches_links() {
        for mut r in both() {
            let av = r.create();
            for pid in 1..=5 {
                r.link(av, pid, VirtAddr::new(0x1000));
            }
            let mut walked = Vec::new();
            let mut cur = r.cursor(av);
            while let Some(link) = r.link_at(cur) {
                walked.push(link);
                cur = r.advance(cur);
            }
            assert_eq!(walked, r.links(av));
        }
    }

    #[test]
    fn unlink_and_destroy() {
        for mut r in both() {
            let av = r.create();
            r.link(av, 1, VirtAddr::new(0x1000));
            r.unlink(av, 1, VirtAddr::new(0x1000));
            assert!(r.links(av).is_empty());
            r.destroy(av);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn unlink_middle_preserves_order() {
        for mut r in both() {
            let av = r.create();
            for pid in 1..=4 {
                r.link(av, pid, VirtAddr::new(0x1000));
            }
            r.unlink(av, 2, VirtAddr::new(0x1000));
            let pids: Vec<u64> = r.links(av).iter().map(|l| l.pid).collect();
            assert_eq!(pids, vec![1, 3, 4]);
            // Slab reuse: a new link lands at the tail regardless of
            // which node slot it recycles.
            r.link(av, 9, VirtAddr::new(0x1000));
            let pids: Vec<u64> = r.links(av).iter().map(|l| l.pid).collect();
            assert_eq!(pids, vec![1, 3, 4, 9]);
        }
    }

    #[test]
    #[should_panic(expected = "live links")]
    fn destroy_with_links_panics() {
        let mut r = RmapRegistry::new();
        let av = r.create();
        r.link(av, 1, VirtAddr::new(0x1000));
        r.destroy(av);
    }

    #[test]
    #[should_panic(expected = "live links")]
    fn destroy_with_links_panics_reference() {
        let mut r = RmapRegistry::new_reference();
        let av = r.create();
        r.link(av, 1, VirtAddr::new(0x1000));
        r.destroy(av);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_link_panics() {
        let mut r = RmapRegistry::new();
        let av = r.create();
        r.link(av, 1, VirtAddr::new(0x1000));
        r.link(av, 1, VirtAddr::new(0x1000));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_link_panics_reference() {
        let mut r = RmapRegistry::new_reference();
        let av = r.create();
        r.link(av, 1, VirtAddr::new(0x1000));
        r.link(av, 1, VirtAddr::new(0x1000));
    }

    #[test]
    fn ids_are_unique() {
        for mut r in both() {
            let a = r.create();
            let b = r.create();
            assert_ne!(a, b);
            assert_eq!(r.len(), 2);
        }
    }

    #[test]
    fn destroyed_ids_stay_dead() {
        for mut r in both() {
            let a = r.create();
            r.destroy(a);
            assert_eq!(r.link_count(a), 0);
            assert!(r.links(a).is_empty());
            assert!(r.link_at(r.cursor(a)).is_none());
            let b = r.create();
            assert_ne!(a, b);
        }
    }

    #[test]
    fn differential_against_reference() {
        // Deterministic op soup across several chains: link order,
        // counts, and traversal must match the reference exactly.
        let mut fast = RmapRegistry::new();
        let mut reference = RmapRegistry::new_reference();
        let mut x: u64 = 0xfeed;
        let mut step = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let mut live_avs: Vec<AnonVmaId> = Vec::new();
        let mut all_avs: Vec<AnonVmaId> = Vec::new();
        for i in 0..20_000u64 {
            match step() % 8 {
                0 => {
                    let (a, b) = (fast.create(), reference.create());
                    assert_eq!(a, b);
                    live_avs.push(a);
                    all_avs.push(a);
                }
                1..=4 if !live_avs.is_empty() => {
                    let av = live_avs[(step() as usize) % live_avs.len()];
                    let pid = step() % 6;
                    let va = VirtAddr::new((step() % 4) * 0x1000);
                    let dup = fast.links(av).iter().any(|l| l.pid == pid && l.vma_start == va);
                    if !dup {
                        fast.link(av, pid, va);
                        reference.link(av, pid, va);
                    }
                }
                5 if !live_avs.is_empty() => {
                    let av = live_avs[(step() as usize) % live_avs.len()];
                    let pid = step() % 6;
                    let va = VirtAddr::new((step() % 4) * 0x1000);
                    fast.unlink(av, pid, va);
                    reference.unlink(av, pid, va);
                }
                6 if !live_avs.is_empty() => {
                    let slot = (step() as usize) % live_avs.len();
                    let av = live_avs[slot];
                    if fast.link_count(av) == 0 {
                        fast.destroy(av);
                        reference.destroy(av);
                        live_avs.swap_remove(slot);
                    }
                }
                _ if !all_avs.is_empty() => {
                    let av = all_avs[(step() as usize) % all_avs.len()];
                    assert_eq!(fast.links(av), reference.links(av), "step {i}");
                    assert_eq!(fast.link_count(av), reference.link_count(av));
                }
                _ => {}
            }
            assert_eq!(fast.len(), reference.len(), "step {i}");
        }
        for &av in &all_avs {
            assert_eq!(fast.links(av), reference.links(av));
        }
    }
}
