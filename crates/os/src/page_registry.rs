//! Per-physical-page kernel state (Linux's `struct page` equivalents).
//!
//! Tracks, per allocated page: the map count (how many process
//! mappings reference it), whether it is currently serving as a
//! write-protected CoW source, and — for Lelantus — the *deferred
//! reuse* marker from the paper's Figure 8: when a shared page's map
//! count drops to one, the kernel pauses `wp_page_reuse` /
//! `page_move_anon_rmap`, so a later write still faults and early
//! reclamation can run first.

use lelantus_types::{PageSize, PhysAddr};
use std::collections::HashMap;

/// Kernel bookkeeping for one allocated physical page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageInfo {
    /// Base physical address.
    pub base: PhysAddr,
    /// Page granularity.
    pub size: PageSize,
    /// Number of process mappings referencing this page.
    pub map_count: usize,
    /// Page is CoW-shared: mapped write-protected so writes fault.
    pub cow_protected: bool,
    /// `anon_vma` id used for reverse lookup.
    pub anon_vma: Option<u64>,
    /// Lelantus: `wp_page_reuse` was deferred when `map_count` hit one
    /// (paper Figure 8); the next write fault must run early
    /// reclamation before unprotecting.
    pub reuse_deferred: bool,
}

/// Registry of all allocated pages, keyed by base physical address.
///
/// # Examples
///
/// ```
/// use lelantus_os::PageRegistry;
/// use lelantus_types::{PageSize, PhysAddr};
///
/// let mut reg = PageRegistry::new();
/// reg.insert(PhysAddr::new(0x1000), PageSize::Regular4K, None);
/// reg.inc_map(PhysAddr::new(0x1000));
/// assert_eq!(reg.get(PhysAddr::new(0x1000)).unwrap().map_count, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageRegistry {
    pages: HashMap<u64, PageInfo>,
}

impl PageRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fresh page with zero mappings.
    ///
    /// # Panics
    ///
    /// Panics if the page is already registered.
    pub fn insert(&mut self, base: PhysAddr, size: PageSize, anon_vma: Option<u64>) {
        let prev = self.pages.insert(
            base.as_u64(),
            PageInfo {
                base,
                size,
                map_count: 0,
                cow_protected: false,
                anon_vma,
                reuse_deferred: false,
            },
        );
        assert!(prev.is_none(), "page {base} registered twice");
    }

    /// Looks up a page.
    pub fn get(&self, base: PhysAddr) -> Option<&PageInfo> {
        self.pages.get(&base.as_u64())
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, base: PhysAddr) -> Option<&mut PageInfo> {
        self.pages.get_mut(&base.as_u64())
    }

    /// Increments the map count.
    ///
    /// # Panics
    ///
    /// Panics if the page is unknown.
    pub fn inc_map(&mut self, base: PhysAddr) {
        self.expect_mut(base).map_count += 1;
    }

    /// Decrements the map count, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if the page is unknown or already unmapped.
    pub fn dec_map(&mut self, base: PhysAddr) -> usize {
        let info = self.expect_mut(base);
        assert!(info.map_count > 0, "unmapping page {base} with zero map count");
        info.map_count -= 1;
        info.map_count
    }

    /// Removes a page from the registry (frame being freed), returning
    /// its final state.
    ///
    /// # Panics
    ///
    /// Panics if the page is unknown or still mapped.
    pub fn remove(&mut self, base: PhysAddr) -> PageInfo {
        let info = self.pages.remove(&base.as_u64()).expect("removing unknown page");
        assert_eq!(info.map_count, 0, "freeing page {base} that is still mapped");
        info
    }

    /// Number of registered pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no pages are registered.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    fn expect_mut(&mut self, base: PhysAddr) -> &mut PageInfo {
        self.pages.get_mut(&base.as_u64()).unwrap_or_else(|| panic!("unknown page {base}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut r = PageRegistry::new();
        let p = PhysAddr::new(0x2000);
        r.insert(p, PageSize::Regular4K, Some(3));
        r.inc_map(p);
        r.inc_map(p);
        assert_eq!(r.dec_map(p), 1);
        assert_eq!(r.dec_map(p), 0);
        let info = r.remove(p);
        assert_eq!(info.anon_vma, Some(3));
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_insert_panics() {
        let mut r = PageRegistry::new();
        r.insert(PhysAddr::new(0), PageSize::Regular4K, None);
        r.insert(PhysAddr::new(0), PageSize::Regular4K, None);
    }

    #[test]
    #[should_panic(expected = "still mapped")]
    fn remove_mapped_page_panics() {
        let mut r = PageRegistry::new();
        r.insert(PhysAddr::new(0), PageSize::Regular4K, None);
        r.inc_map(PhysAddr::new(0));
        r.remove(PhysAddr::new(0));
    }

    #[test]
    #[should_panic(expected = "zero map count")]
    fn dec_below_zero_panics() {
        let mut r = PageRegistry::new();
        r.insert(PhysAddr::new(0), PageSize::Regular4K, None);
        r.dec_map(PhysAddr::new(0));
    }

    #[test]
    fn flags_are_mutable() {
        let mut r = PageRegistry::new();
        let p = PhysAddr::new(0x4000);
        r.insert(p, PageSize::Huge2M, None);
        r.get_mut(p).unwrap().cow_protected = true;
        r.get_mut(p).unwrap().reuse_deferred = true;
        let info = r.get(p).unwrap();
        assert!(info.cow_protected && info.reuse_deferred);
        assert_eq!(info.size, PageSize::Huge2M);
    }
}
