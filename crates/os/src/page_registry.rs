//! Per-physical-page kernel state (Linux's `struct page` equivalents).
//!
//! Tracks, per allocated page: the map count (how many process
//! mappings reference it), whether it is currently serving as a
//! write-protected CoW source, and — for Lelantus — the *deferred
//! reuse* marker from the paper's Figure 8: when a shared page's map
//! count drops to one, the kernel pauses `wp_page_reuse` /
//! `page_move_anon_rmap`, so a later write still faults and early
//! reclamation can run first.
//!
//! Two backings, proven observationally identical by the differential
//! tests below (and by the kernel-level equivalence suite):
//!
//! * **Dense** (default) — a `Vec` indexed by frame number
//!   (`base / 4 KB`), the same discipline as the NVM `LineStore`:
//!   lookups are one bounds check and one array indexing, with no
//!   hashing and no per-entry allocation. Frames are already a compact
//!   index, so the vector tracks the highest frame ever registered.
//! * **Reference** — the seed's `HashMap` keyed by base address, kept
//!   behind `KernelConfig::with_reference_structures()`.

use lelantus_types::{PageSize, PhysAddr};
use std::collections::HashMap;

/// Frame size the dense index is keyed by (one 4 KB frame per slot;
/// huge pages occupy the slot of their base frame only).
const FRAME_BYTES: u64 = 4096;

/// Kernel bookkeeping for one allocated physical page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageInfo {
    /// Base physical address.
    pub base: PhysAddr,
    /// Page granularity.
    pub size: PageSize,
    /// Number of process mappings referencing this page.
    pub map_count: usize,
    /// Page is CoW-shared: mapped write-protected so writes fault.
    pub cow_protected: bool,
    /// `anon_vma` id used for reverse lookup.
    pub anon_vma: Option<u64>,
    /// Lelantus: `wp_page_reuse` was deferred when `map_count` hit one
    /// (paper Figure 8); the next write fault must run early
    /// reclamation before unprotecting (paper Figure 8).
    pub reuse_deferred: bool,
}

#[derive(Debug, Clone)]
enum Repr {
    /// Frame-indexed slots, grown to the highest registered frame.
    Dense { slots: Vec<Option<PageInfo>>, len: usize },
    /// The seed's map, kept as the reference implementation.
    Reference { pages: HashMap<u64, PageInfo> },
}

/// Registry of all allocated pages, keyed by base physical address.
///
/// # Examples
///
/// ```
/// use lelantus_os::PageRegistry;
/// use lelantus_types::{PageSize, PhysAddr};
///
/// let mut reg = PageRegistry::new();
/// reg.insert(PhysAddr::new(0x1000), PageSize::Regular4K, None);
/// reg.inc_map(PhysAddr::new(0x1000));
/// assert_eq!(reg.get(PhysAddr::new(0x1000)).unwrap().map_count, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PageRegistry {
    repr: Repr,
}

impl Default for PageRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl PageRegistry {
    /// Creates an empty registry on the dense frame-indexed backing.
    pub fn new() -> Self {
        Self { repr: Repr::Dense { slots: Vec::new(), len: 0 } }
    }

    /// Creates an empty registry on the reference `HashMap` backing.
    pub fn new_reference() -> Self {
        Self { repr: Repr::Reference { pages: HashMap::new() } }
    }

    #[inline]
    fn frame(base: PhysAddr) -> usize {
        (base.as_u64() / FRAME_BYTES) as usize
    }

    /// Registers a fresh page with zero mappings.
    ///
    /// # Panics
    ///
    /// Panics if the page is already registered.
    pub fn insert(&mut self, base: PhysAddr, size: PageSize, anon_vma: Option<u64>) {
        let info = PageInfo {
            base,
            size,
            map_count: 0,
            cow_protected: false,
            anon_vma,
            reuse_deferred: false,
        };
        match &mut self.repr {
            Repr::Dense { slots, len } => {
                let frame = Self::frame(base);
                if frame >= slots.len() {
                    // Grow geometrically so a rising high-water mark
                    // costs amortized O(1) per insert.
                    let target = (frame + 1).next_power_of_two().max(64);
                    slots.resize(target, None);
                }
                let slot = &mut slots[frame];
                assert!(slot.is_none(), "page {base} registered twice");
                *slot = Some(info);
                *len += 1;
            }
            Repr::Reference { pages } => {
                let prev = pages.insert(base.as_u64(), info);
                assert!(prev.is_none(), "page {base} registered twice");
            }
        }
    }

    /// Looks up a page.
    #[inline]
    pub fn get(&self, base: PhysAddr) -> Option<&PageInfo> {
        match &self.repr {
            Repr::Dense { slots, .. } => slots.get(Self::frame(base))?.as_ref(),
            Repr::Reference { pages } => pages.get(&base.as_u64()),
        }
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, base: PhysAddr) -> Option<&mut PageInfo> {
        match &mut self.repr {
            Repr::Dense { slots, .. } => slots.get_mut(Self::frame(base))?.as_mut(),
            Repr::Reference { pages } => pages.get_mut(&base.as_u64()),
        }
    }

    /// Increments the map count.
    ///
    /// # Panics
    ///
    /// Panics if the page is unknown.
    #[inline]
    pub fn inc_map(&mut self, base: PhysAddr) {
        self.expect_mut(base).map_count += 1;
    }

    /// Increments the map count by `n` (bulk mapping, e.g. an `mmap`
    /// populating a whole VMA with zero-page references).
    ///
    /// # Panics
    ///
    /// Panics if the page is unknown.
    #[inline]
    pub fn inc_map_by(&mut self, base: PhysAddr, n: usize) {
        self.expect_mut(base).map_count += n;
    }

    /// Decrements the map count, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if the page is unknown or already unmapped.
    #[inline]
    pub fn dec_map(&mut self, base: PhysAddr) -> usize {
        let info = self.expect_mut(base);
        assert!(info.map_count > 0, "unmapping page {base} with zero map count");
        info.map_count -= 1;
        info.map_count
    }

    /// Removes a page from the registry (frame being freed), returning
    /// its final state.
    ///
    /// # Panics
    ///
    /// Panics if the page is unknown or still mapped.
    pub fn remove(&mut self, base: PhysAddr) -> PageInfo {
        let info = match &mut self.repr {
            Repr::Dense { slots, len } => {
                let info = slots
                    .get_mut(Self::frame(base))
                    .and_then(Option::take)
                    .expect("removing unknown page");
                *len -= 1;
                info
            }
            Repr::Reference { pages } => {
                pages.remove(&base.as_u64()).expect("removing unknown page")
            }
        };
        assert_eq!(info.map_count, 0, "freeing page {base} that is still mapped");
        info
    }

    /// Number of registered pages.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Dense { len, .. } => *len,
            Repr::Reference { pages } => pages.len(),
        }
    }

    /// True when no pages are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn expect_mut(&mut self, base: PhysAddr) -> &mut PageInfo {
        self.get_mut(base).unwrap_or_else(|| panic!("unknown page {base}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [PageRegistry; 2] {
        [PageRegistry::new(), PageRegistry::new_reference()]
    }

    #[test]
    fn lifecycle() {
        for mut r in both() {
            let p = PhysAddr::new(0x2000);
            r.insert(p, PageSize::Regular4K, Some(3));
            r.inc_map(p);
            r.inc_map(p);
            assert_eq!(r.dec_map(p), 1);
            assert_eq!(r.dec_map(p), 0);
            let info = r.remove(p);
            assert_eq!(info.anon_vma, Some(3));
            assert!(r.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_insert_panics() {
        let mut r = PageRegistry::new();
        r.insert(PhysAddr::new(0), PageSize::Regular4K, None);
        r.insert(PhysAddr::new(0), PageSize::Regular4K, None);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_insert_panics_reference() {
        let mut r = PageRegistry::new_reference();
        r.insert(PhysAddr::new(0), PageSize::Regular4K, None);
        r.insert(PhysAddr::new(0), PageSize::Regular4K, None);
    }

    #[test]
    #[should_panic(expected = "still mapped")]
    fn remove_mapped_page_panics() {
        let mut r = PageRegistry::new();
        r.insert(PhysAddr::new(0), PageSize::Regular4K, None);
        r.inc_map(PhysAddr::new(0));
        r.remove(PhysAddr::new(0));
    }

    #[test]
    #[should_panic(expected = "zero map count")]
    fn dec_below_zero_panics() {
        let mut r = PageRegistry::new();
        r.insert(PhysAddr::new(0), PageSize::Regular4K, None);
        r.dec_map(PhysAddr::new(0));
    }

    #[test]
    fn flags_are_mutable() {
        for mut r in both() {
            let p = PhysAddr::new(0x4000);
            r.insert(p, PageSize::Huge2M, None);
            r.get_mut(p).unwrap().cow_protected = true;
            r.get_mut(p).unwrap().reuse_deferred = true;
            let info = r.get(p).unwrap();
            assert!(info.cow_protected && info.reuse_deferred);
            assert_eq!(info.size, PageSize::Huge2M);
        }
    }

    #[test]
    fn bulk_inc_matches_repeated_inc() {
        let mut a = PageRegistry::new();
        let mut b = PageRegistry::new_reference();
        let p = PhysAddr::new(0x8000);
        a.insert(p, PageSize::Regular4K, None);
        b.insert(p, PageSize::Regular4K, None);
        a.inc_map_by(p, 5);
        for _ in 0..5 {
            b.inc_map(p);
        }
        assert_eq!(a.get(p).unwrap().map_count, b.get(p).unwrap().map_count);
    }

    #[test]
    fn sparse_high_frames_do_not_explode() {
        // The dense backing grows to the high-water frame; a high but
        // bounded address must register and resolve like any other.
        let mut r = PageRegistry::new();
        let high = PhysAddr::new(1 << 33); // 8 GB
        r.insert(high, PageSize::Regular4K, None);
        assert_eq!(r.len(), 1);
        assert!(r.get(high).is_some());
        assert!(r.get(PhysAddr::new(0)).is_none());
    }

    #[test]
    fn differential_against_reference() {
        // Deterministic op soup over a small frame pool: the dense
        // registry must be observationally identical to the HashMap.
        let mut fast = PageRegistry::new();
        let mut reference = PageRegistry::new_reference();
        let mut x: u64 = 0x5eed;
        let mut step = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        for i in 0..20_000u64 {
            let base = PhysAddr::new((step() % 64) * 4096);
            match step() % 5 {
                0 => {
                    if fast.get(base).is_none() {
                        fast.insert(base, PageSize::Regular4K, Some(i));
                        reference.insert(base, PageSize::Regular4K, Some(i));
                    }
                }
                1 => {
                    if fast.get(base).is_some() {
                        fast.inc_map(base);
                        reference.inc_map(base);
                    }
                }
                2 => {
                    if fast.get(base).map(|p| p.map_count > 0).unwrap_or(false) {
                        assert_eq!(fast.dec_map(base), reference.dec_map(base), "step {i}");
                    }
                }
                3 => {
                    if fast.get(base).map(|p| p.map_count == 0).unwrap_or(false) {
                        assert_eq!(fast.remove(base), reference.remove(base), "step {i}");
                    }
                }
                _ => {
                    assert_eq!(fast.get(base), reference.get(base), "step {i}");
                }
            }
            assert_eq!(fast.len(), reference.len(), "step {i}");
        }
    }
}
