//! Operating-system memory-management model for the Lelantus
//! reproduction.
//!
//! The paper modifies three Linux v5.0 paths — `copy_user_page` (CoW
//! fault copies), `do_wp_page` (write-protect fault handling including
//! early reclamation, Figure 8), and `put_page` (release of shared
//! pages) — plus the rmap reverse-lookup machinery (Figure 7). This
//! crate implements the surrounding kernel from scratch:
//!
//! * [`frame_alloc`] — a buddy allocator over physical frames,
//! * [`page_table`] — per-process page tables with 4 KB and 2 MB
//!   mappings,
//! * [`vma`] + [`rmap`] — virtual memory areas and the
//!   `anon_vma`/`anon_vma_chain` reverse-lookup structures,
//! * [`page_registry`] — per-page kernel state (`mapcount`, CoW
//!   write-protection, deferred-reuse marker),
//! * [`kernel`] — the [`Kernel`] façade: `mmap`, `fork`, `exit`,
//!   demand faults, CoW faults, early reclamation — emitting
//!   [`HwAction`]s that the full-system simulator turns into memory
//!   traffic,
//! * [`ksm`] — kernel same-page merging (deduplication use case,
//!   paper §II-C).
//!
//! The kernel is *policy only*: it never touches simulated memory
//! itself. Every hardware-visible consequence of a kernel decision is
//! returned as a [`HwAction`] list, so the same kernel drives the
//! baseline (full page copies), Silent Shredder (zeroing elision) and
//! both Lelantus schemes (CoW commands) just by switching
//! [`CowStrategy`].
//!
//! # Examples
//!
//! ```
//! use lelantus_os::{AccessKind, CowStrategy, Kernel, KernelConfig};
//! use lelantus_types::PageSize;
//!
//! let mut k = Kernel::new(KernelConfig::default_with(CowStrategy::Lelantus));
//! let pid = k.spawn_init();
//! let va = k.mmap_anon(pid, 1 << 20, PageSize::Regular4K)?;
//! let (child, _flushes) = k.fork(pid)?;
//! // First write in the child triggers a CoW fault that emits a
//! // `page_copy` command instead of a 4 KB copy:
//! let out = k.access(child, va, AccessKind::Write)?;
//! assert!(out.fault.is_some());
//! # Ok::<(), lelantus_os::OsError>(())
//! ```

pub mod config;
pub mod error;
pub mod frame_alloc;
pub mod kernel;
pub mod ksm;
pub mod page_registry;
pub mod page_table;
pub mod rmap;
pub mod vma;

pub use config::{CowStrategy, KernelConfig};
pub use error::OsError;
pub use frame_alloc::BuddyAllocator;
pub use kernel::{AccessKind, AccessOutcome, FaultKind, HwAction, Kernel, ProcessId};
pub use page_registry::PageRegistry;
