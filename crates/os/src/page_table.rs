//! Per-process page tables.
//!
//! A flat map from page-aligned virtual addresses to PTEs, supporting
//! both 4 KB and 2 MB mappings. Write-protection lives here: CoW marks
//! PTEs read-only so stores fault into the kernel (paper §II-C).
//!
//! Two backings:
//!
//! * **Segmented** (default) — a sorted `Vec` of [`Segment`]s, each a
//!   dense slot array of `Option<Pte>` covering one contiguous
//!   uniform-stride VA range (in practice: one VMA). Lookup is a
//!   binary search over segments (a handful per process) plus an
//!   index; sequential `mmap` population appends in amortized O(1);
//!   ordered iteration walks the arrays with no collect-and-sort; and
//!   cloning a table (fork) is a memcpy per segment since
//!   `Option<Pte>` is `Copy`. Overlapping mappings with different
//!   geometry panic — the kernel never produces them (VMAs are
//!   disjoint and a VA keeps its page size for life).
//! * **Reference** — the seed's `HashMap<u64, Pte>`, kept behind
//!   `KernelConfig::with_reference_structures()`; ordered iteration
//!   collects and sorts as before.
//!
//! Both backings keep a huge-mapping count so [`PageTable::entry`]
//! skips the `Huge2M` probe entirely on 4 K-only tables (most
//! workloads), halving lookup work on translation misses.

use lelantus_types::{PageSize, PhysAddr, VirtAddr};
use std::collections::HashMap;

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Base physical address of the mapped page.
    pub pa: PhysAddr,
    /// Mapping granularity.
    pub size: PageSize,
    /// Whether stores are currently permitted.
    pub writable: bool,
}

/// The result of a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Translated physical address (byte-accurate).
    pub pa: PhysAddr,
    /// The entry that produced it.
    pub pte: Pte,
    /// Base virtual address of the page.
    pub va_base: VirtAddr,
}

/// One contiguous uniform-stride run of PTE slots.
#[derive(Debug, Clone)]
struct Segment {
    /// First slot's VA.
    start: u64,
    /// Slot pitch = page size of every entry in this segment.
    stride: u64,
    slots: Vec<Option<Pte>>,
    /// Number of `Some` slots.
    live: usize,
}

impl Segment {
    #[inline]
    fn end(&self) -> u64 {
        self.start + self.stride * self.slots.len() as u64
    }
}

#[derive(Debug, Clone)]
enum Repr {
    Segmented { segments: Vec<Segment>, len: usize },
    Reference { entries: HashMap<u64, Pte> },
}

/// A process page table.
///
/// # Examples
///
/// ```
/// use lelantus_os::page_table::{PageTable, Pte};
/// use lelantus_types::{PageSize, PhysAddr, VirtAddr};
///
/// let mut pt = PageTable::new();
/// pt.map(VirtAddr::new(0x1000), Pte { pa: PhysAddr::new(0x8000), size: PageSize::Regular4K, writable: true });
/// let t = pt.translate(VirtAddr::new(0x1234)).unwrap();
/// assert_eq!(t.pa, PhysAddr::new(0x8234));
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    repr: Repr,
    /// Number of live `Huge2M` entries; when zero, `entry` skips the
    /// huge-page probe.
    huge_entries: usize,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table on the segmented backing.
    pub fn new() -> Self {
        Self { repr: Repr::Segmented { segments: Vec::new(), len: 0 }, huge_entries: 0 }
    }

    /// Creates an empty page table on the reference `HashMap` backing.
    pub fn new_reference() -> Self {
        Self { repr: Repr::Reference { entries: HashMap::new() }, huge_entries: 0 }
    }

    /// Index of the segment containing `va`, if any.
    #[inline]
    fn find_seg(segments: &[Segment], va: u64) -> Option<usize> {
        let idx = segments.partition_point(|s| s.start <= va);
        let cand = idx.checked_sub(1)?;
        (va < segments[cand].end()).then_some(cand)
    }

    /// Installs (or replaces) the mapping at page-aligned `va_base`.
    ///
    /// # Panics
    ///
    /// Panics if `va_base` is not aligned to the entry's page size, or
    /// (segmented backing only) if the page overlaps existing mappings
    /// of a different geometry — the kernel never creates such
    /// overlaps.
    pub fn map(&mut self, va_base: VirtAddr, pte: Pte) {
        let bytes = pte.size.bytes();
        assert!(va_base.is_aligned_to(bytes), "mapping base {va_base} not {}-aligned", pte.size);
        let va = va_base.as_u64();
        let old = match &mut self.repr {
            Repr::Segmented { segments, len } => {
                if let Some(i) = Self::find_seg(segments, va) {
                    let seg = &mut segments[i];
                    if seg.stride == bytes && (va - seg.start).is_multiple_of(bytes) {
                        let slot = ((va - seg.start) / bytes) as usize;
                        let old = seg.slots[slot].replace(pte);
                        if old.is_none() {
                            seg.live += 1;
                            *len += 1;
                        }
                        old
                    } else if seg.live == 0 {
                        // A fully-unmapped leftover segment may be
                        // reclaimed by a differently-shaped mapping.
                        segments.remove(i);
                        Self::insert_new(segments, va, bytes, pte, va_base);
                        *len += 1;
                        None
                    } else {
                        panic!("mapping {va_base} overlaps a segment with different geometry");
                    }
                } else {
                    Self::insert_new(segments, va, bytes, pte, va_base);
                    *len += 1;
                    None
                }
            }
            Repr::Reference { entries } => entries.insert(va, pte),
        };
        if old.map(|p| p.size) == Some(PageSize::Huge2M) {
            self.huge_entries -= 1;
        }
        if pte.size == PageSize::Huge2M {
            self.huge_entries += 1;
        }
    }

    /// Places `pte` in a segment: appended to a contiguous same-stride
    /// neighbour when possible, else as a fresh one-slot segment.
    fn insert_new(segments: &mut Vec<Segment>, va: u64, bytes: u64, pte: Pte, va_base: VirtAddr) {
        let idx = segments.partition_point(|s| s.start <= va);
        let fits_before_next = segments.get(idx).is_none_or(|n| n.start >= va + bytes);
        assert!(fits_before_next, "mapping {va_base} overlaps a segment with different geometry");
        if let Some(prev) = idx.checked_sub(1).map(|i| &mut segments[i]) {
            if prev.stride == bytes && prev.end() == va {
                prev.slots.push(Some(pte));
                prev.live += 1;
                return;
            }
        }
        segments.insert(idx, Segment { start: va, stride: bytes, slots: vec![Some(pte)], live: 1 });
    }

    /// Removes the mapping at `va_base`, returning the old entry.
    pub fn unmap(&mut self, va_base: VirtAddr) -> Option<Pte> {
        let va = va_base.as_u64();
        let old = match &mut self.repr {
            Repr::Segmented { segments, len } => {
                let i = Self::find_seg(segments, va)?;
                let seg = &mut segments[i];
                if !(va - seg.start).is_multiple_of(seg.stride) {
                    return None;
                }
                let slot = ((va - seg.start) / seg.stride) as usize;
                let old = seg.slots[slot].take();
                if old.is_some() {
                    seg.live -= 1;
                    *len -= 1;
                }
                old
            }
            Repr::Reference { entries } => entries.remove(&va),
        };
        if old.map(|p| p.size) == Some(PageSize::Huge2M) {
            self.huge_entries -= 1;
        }
        old
    }

    /// Exact-key lookup: the PTE mapped at `base` with page size of
    /// `bytes`, if any.
    #[inline]
    fn lookup_exact(&self, base: u64, bytes: u64) -> Option<Pte> {
        match &self.repr {
            Repr::Segmented { segments, .. } => {
                let seg = &segments[Self::find_seg(segments, base)?];
                if seg.stride != bytes || !(base - seg.start).is_multiple_of(bytes) {
                    return None;
                }
                seg.slots[((base - seg.start) / bytes) as usize]
            }
            Repr::Reference { entries } => {
                entries.get(&base).copied().filter(|p| p.size.bytes() == bytes)
            }
        }
    }

    /// Looks up the PTE covering `va` (probing both page sizes; the
    /// `Huge2M` probe is skipped while the table holds no huge
    /// mappings).
    pub fn entry(&self, va: VirtAddr) -> Option<(VirtAddr, Pte)> {
        let sizes: &[PageSize] = if self.huge_entries == 0 {
            &[PageSize::Regular4K]
        } else {
            &[PageSize::Regular4K, PageSize::Huge2M]
        };
        for &size in sizes {
            let base = va.align_to(size.bytes());
            if let Some(pte) = self.lookup_exact(base.as_u64(), size.bytes()) {
                return Some((base, pte));
            }
        }
        None
    }

    /// Translates `va` to a physical address.
    pub fn translate(&self, va: VirtAddr) -> Option<Translation> {
        let (va_base, pte) = self.entry(va)?;
        let offset = va - va_base;
        Some(Translation { pa: pte.pa + offset, pte, va_base })
    }

    /// Sets the writable bit of the mapping covering `va`; returns the
    /// previous value.
    ///
    /// # Panics
    ///
    /// Panics if `va` is unmapped.
    pub fn set_writable(&mut self, va: VirtAddr, writable: bool) -> bool {
        let (base, _) = self.entry(va).expect("set_writable on unmapped address");
        let base = base.as_u64();
        let e = match &mut self.repr {
            Repr::Segmented { segments, .. } => {
                let i = Self::find_seg(segments, base).expect("entry exists");
                let seg = &mut segments[i];
                let slot = ((base - seg.start) / seg.stride) as usize;
                seg.slots[slot].as_mut().expect("entry exists")
            }
            Repr::Reference { entries } => entries.get_mut(&base).expect("entry exists"),
        };
        std::mem::replace(&mut e.writable, writable)
    }

    /// Iterates over `(va_base, pte)` pairs in ascending address order.
    ///
    /// The order is load-bearing: fork and mprotect turn this walk into
    /// hardware actions whose NVM timing depends on the access
    /// sequence, so hash order here would make simulated cycle counts
    /// differ between identically-configured runs. On the segmented
    /// backing the walk is allocation-free; the reference backing
    /// collects and sorts.
    pub fn iter(&self) -> PtIter<'_> {
        self.range_raw(0, u64::MAX)
    }

    /// Iterates over `(va_base, pte)` pairs with `start <= va_base <
    /// end`, in ascending address order. On the segmented backing this
    /// starts directly at the first covered slot instead of scanning
    /// the whole table.
    pub fn range(&self, start: VirtAddr, end: VirtAddr) -> PtIter<'_> {
        self.range_raw(start.as_u64(), end.as_u64())
    }

    fn range_raw(&self, start: u64, end: u64) -> PtIter<'_> {
        match &self.repr {
            Repr::Segmented { segments, .. } => {
                // Segments are disjoint and sorted, so they are sorted
                // by end() too: the first candidate is the first
                // segment extending past `start`.
                let seg = segments.partition_point(|s| s.end() <= start);
                let (slot, va) = match segments.get(seg) {
                    Some(s) if s.start < start => {
                        let slot = ((start - s.start).div_ceil(s.stride)) as usize;
                        (slot, s.start + s.stride * slot as u64)
                    }
                    Some(s) => (0, s.start),
                    None => (0, 0),
                };
                PtIter { inner: IterInner::Seg { segments, seg, slot, va, end } }
            }
            Repr::Reference { entries } => {
                let mut sorted: Vec<(u64, Pte)> = entries
                    .iter()
                    .filter(|(va, _)| (start..end).contains(*va))
                    .map(|(va, pte)| (*va, *pte))
                    .collect();
                sorted.sort_unstable_by_key(|(va, _)| *va);
                PtIter { inner: IterInner::Sorted(sorted.into_iter()) }
            }
        }
    }

    /// Visits every `(va_base, &mut Pte)` in ascending address order.
    /// Callers may flip `writable` / repoint `pa` but must not change
    /// `size` (the huge-entry count is not re-derived).
    pub fn for_each_mut(&mut self, f: impl FnMut(VirtAddr, &mut Pte)) {
        self.for_each_mut_raw(0, u64::MAX, f);
    }

    /// [`PageTable::for_each_mut`] restricted to `start <= va_base <
    /// end`. On the segmented backing the walk starts directly at the
    /// first covered slot.
    pub fn for_each_mut_in(
        &mut self,
        start: VirtAddr,
        end: VirtAddr,
        f: impl FnMut(VirtAddr, &mut Pte),
    ) {
        self.for_each_mut_raw(start.as_u64(), end.as_u64(), f);
    }

    fn for_each_mut_raw(&mut self, start: u64, end: u64, mut f: impl FnMut(VirtAddr, &mut Pte)) {
        match &mut self.repr {
            Repr::Segmented { segments, .. } => {
                let first = segments.partition_point(|s| s.end() <= start);
                for seg in &mut segments[first..] {
                    if seg.start >= end {
                        break;
                    }
                    let skip = if seg.start < start {
                        (start - seg.start).div_ceil(seg.stride)
                    } else {
                        0
                    };
                    let mut va = seg.start + skip * seg.stride;
                    for slot in seg.slots.iter_mut().skip(skip as usize) {
                        if va >= end {
                            break;
                        }
                        if let Some(pte) = slot.as_mut() {
                            f(VirtAddr::new(va), pte);
                        }
                        va += seg.stride;
                    }
                }
            }
            Repr::Reference { entries } => {
                let mut keys: Vec<u64> =
                    entries.keys().copied().filter(|va| (start..end).contains(va)).collect();
                keys.sort_unstable();
                for va in keys {
                    f(VirtAddr::new(va), entries.get_mut(&va).expect("key just listed"));
                }
            }
        }
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Segmented { len, .. } => *len,
            Repr::Reference { entries } => entries.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live huge (2 MB) mappings.
    pub fn huge_len(&self) -> usize {
        self.huge_entries
    }
}

/// Ordered `(va_base, pte)` iterator over a [`PageTable`] (whole table
/// or a VA range).
#[derive(Debug)]
pub struct PtIter<'a> {
    inner: IterInner<'a>,
}

#[derive(Debug)]
enum IterInner<'a> {
    /// Walks the segmented backing in place.
    Seg { segments: &'a [Segment], seg: usize, slot: usize, va: u64, end: u64 },
    /// Pre-sorted snapshot of the reference backing.
    Sorted(std::vec::IntoIter<(u64, Pte)>),
}

impl Iterator for PtIter<'_> {
    type Item = (VirtAddr, Pte);

    fn next(&mut self) -> Option<(VirtAddr, Pte)> {
        match &mut self.inner {
            IterInner::Seg { segments, seg, slot, va, end } => loop {
                let s = segments.get(*seg)?;
                if *slot >= s.slots.len() {
                    *seg += 1;
                    *slot = 0;
                    if let Some(n) = segments.get(*seg) {
                        *va = n.start;
                    }
                    continue;
                }
                if *va >= *end {
                    return None;
                }
                let here = *va;
                let pte = s.slots[*slot];
                *slot += 1;
                *va += s.stride;
                if let Some(pte) = pte {
                    return Some((VirtAddr::new(here), pte));
                }
            },
            IterInner::Sorted(iter) => iter.next().map(|(va, pte)| (VirtAddr::new(va), pte)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [PageTable; 2] {
        [PageTable::new(), PageTable::new_reference()]
    }

    fn pte4k(pa: u64, writable: bool) -> Pte {
        Pte { pa: PhysAddr::new(pa), size: PageSize::Regular4K, writable }
    }

    #[test]
    fn translate_regular() {
        for mut pt in both() {
            pt.map(VirtAddr::new(0x7000), pte4k(0x10000, false));
            let t = pt.translate(VirtAddr::new(0x7abc)).unwrap();
            assert_eq!(t.pa, PhysAddr::new(0x10abc));
            assert!(!t.pte.writable);
            assert_eq!(t.va_base, VirtAddr::new(0x7000));
            assert!(pt.translate(VirtAddr::new(0x8000)).is_none());
        }
    }

    #[test]
    fn translate_huge() {
        for mut pt in both() {
            pt.map(
                VirtAddr::new(0x4000_0000),
                Pte { pa: PhysAddr::new(0x20_0000), size: PageSize::Huge2M, writable: true },
            );
            assert_eq!(pt.huge_len(), 1);
            let t = pt.translate(VirtAddr::new(0x4000_0000 + 0x12345)).unwrap();
            assert_eq!(t.pa, PhysAddr::new(0x20_0000 + 0x12345));
            assert_eq!(t.pte.size, PageSize::Huge2M);
        }
    }

    #[test]
    fn set_writable_flips_bit() {
        for mut pt in both() {
            pt.map(VirtAddr::new(0x1000), pte4k(0x2000, true));
            assert!(pt.set_writable(VirtAddr::new(0x1800), false));
            assert!(!pt.translate(VirtAddr::new(0x1800)).unwrap().pte.writable);
        }
    }

    #[test]
    fn unmap_removes() {
        for mut pt in both() {
            pt.map(VirtAddr::new(0x1000), pte4k(0x2000, true));
            assert!(pt.unmap(VirtAddr::new(0x1000)).is_some());
            assert!(pt.translate(VirtAddr::new(0x1000)).is_none());
            assert!(pt.is_empty());
            assert!(pt.unmap(VirtAddr::new(0x1000)).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "not 2MB-aligned")]
    fn misaligned_huge_map_panics() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(0x1000),
            Pte { pa: PhysAddr::new(0), size: PageSize::Huge2M, writable: true },
        );
    }

    #[test]
    fn iter_is_address_ordered() {
        for mut pt in both() {
            for va in [0x9000u64, 0x1000, 0x5000, 0x3000] {
                pt.map(VirtAddr::new(va), pte4k(va * 2, true));
            }
            let vas: Vec<u64> = pt.iter().map(|(va, _)| va.as_u64()).collect();
            assert_eq!(vas, vec![0x1000, 0x3000, 0x5000, 0x9000]);
            assert_eq!(pt.len(), 4);
        }
    }

    #[test]
    fn range_is_bounded_and_ordered() {
        for mut pt in both() {
            for va in (0..16u64).map(|i| 0x10_0000 + i * 0x1000) {
                pt.map(VirtAddr::new(va), pte4k(va, true));
            }
            pt.unmap(VirtAddr::new(0x10_3000));
            let got: Vec<u64> = pt
                .range(VirtAddr::new(0x10_2000), VirtAddr::new(0x10_6000))
                .map(|(va, _)| va.as_u64())
                .collect();
            assert_eq!(got, vec![0x10_2000, 0x10_4000, 0x10_5000]);
            // Range start inside a page rounds up to the next base.
            let got: Vec<u64> = pt
                .range(VirtAddr::new(0x10_2800), VirtAddr::new(0x10_5000))
                .map(|(va, _)| va.as_u64())
                .collect();
            assert_eq!(got, vec![0x10_4000]);
        }
    }

    #[test]
    fn for_each_mut_visits_in_order() {
        for mut pt in both() {
            for va in [0x4000u64, 0x1000, 0x2000] {
                pt.map(VirtAddr::new(va), pte4k(va, true));
            }
            let mut seen = Vec::new();
            pt.for_each_mut(|va, pte| {
                pte.writable = false;
                seen.push(va.as_u64());
            });
            assert_eq!(seen, vec![0x1000, 0x2000, 0x4000]);
            assert!(pt.iter().all(|(_, pte)| !pte.writable));
            let mut seen = Vec::new();
            pt.for_each_mut_in(VirtAddr::new(0x1800), VirtAddr::new(0x4000), |va, pte| {
                pte.writable = true;
                seen.push(va.as_u64());
            });
            assert_eq!(seen, vec![0x2000]);
            assert!(pt.translate(VirtAddr::new(0x2000)).unwrap().pte.writable);
            assert!(!pt.translate(VirtAddr::new(0x1000)).unwrap().pte.writable);
        }
    }

    #[test]
    fn huge_probe_skipped_until_first_huge_map() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x1000), pte4k(0x2000, true));
        assert_eq!(pt.huge_len(), 0);
        pt.map(
            VirtAddr::new(0x20_0000),
            Pte { pa: PhysAddr::new(0x40_0000), size: PageSize::Huge2M, writable: true },
        );
        assert_eq!(pt.huge_len(), 1);
        assert!(pt.translate(VirtAddr::new(0x20_0000 + 0x555)).is_some());
        pt.unmap(VirtAddr::new(0x20_0000));
        assert_eq!(pt.huge_len(), 0);
    }

    #[test]
    fn sparse_then_backfill_merges_into_segments() {
        // Map even pages first, odd pages second: lookups and order
        // must be unaffected by segment fragmentation.
        for mut pt in both() {
            let base = 0x50_0000u64;
            for i in (0..32u64).step_by(2) {
                pt.map(VirtAddr::new(base + i * 0x1000), pte4k(i, true));
            }
            for i in (1..32u64).step_by(2) {
                pt.map(VirtAddr::new(base + i * 0x1000), pte4k(i, true));
            }
            assert_eq!(pt.len(), 32);
            let vas: Vec<u64> = pt.iter().map(|(va, _)| va.as_u64()).collect();
            let want: Vec<u64> = (0..32u64).map(|i| base + i * 0x1000).collect();
            assert_eq!(vas, want);
        }
    }

    #[test]
    fn clone_is_independent() {
        for mut pt in both() {
            pt.map(VirtAddr::new(0x1000), pte4k(0x2000, true));
            let mut child = pt.clone();
            child.set_writable(VirtAddr::new(0x1000), false);
            assert!(pt.translate(VirtAddr::new(0x1000)).unwrap().pte.writable);
            assert!(!child.translate(VirtAddr::new(0x1000)).unwrap().pte.writable);
        }
    }

    #[test]
    fn differential_against_reference() {
        // Deterministic op soup over a small VA window; every
        // observable must match the reference backing.
        let mut fast = PageTable::new();
        let mut reference = PageTable::new_reference();
        let mut x: u64 = 0xabcd;
        let mut step = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        for i in 0..20_000u64 {
            let va = VirtAddr::new((step() % 64) * 0x1000);
            match step() % 5 {
                0 => {
                    let pte = pte4k((step() % 128) * 0x1000, step() % 2 == 0);
                    fast.map(va, pte);
                    reference.map(va, pte);
                }
                1 => {
                    assert_eq!(fast.unmap(va), reference.unmap(va), "step {i}");
                }
                2 => {
                    if fast.entry(va).is_some() {
                        let w = step() % 2 == 0;
                        assert_eq!(
                            fast.set_writable(va, w),
                            reference.set_writable(va, w),
                            "step {i}"
                        );
                    }
                }
                3 => {
                    let probe = va + step() % 0x1000;
                    assert_eq!(fast.translate(probe), reference.translate(probe), "step {i}");
                }
                _ => {
                    let fast_all: Vec<_> = fast.iter().collect();
                    let ref_all: Vec<_> = reference.iter().collect();
                    assert_eq!(fast_all, ref_all, "step {i}");
                }
            }
            assert_eq!(fast.len(), reference.len(), "step {i}");
        }
    }
}
