//! Per-process page tables.
//!
//! A flat map from page-aligned virtual addresses to PTEs, supporting
//! both 4 KB and 2 MB mappings. Write-protection lives here: CoW marks
//! PTEs read-only so stores fault into the kernel (paper §II-C).

use lelantus_types::{PageSize, PhysAddr, VirtAddr};
use std::collections::HashMap;

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Base physical address of the mapped page.
    pub pa: PhysAddr,
    /// Mapping granularity.
    pub size: PageSize,
    /// Whether stores are currently permitted.
    pub writable: bool,
}

/// The result of a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Translated physical address (byte-accurate).
    pub pa: PhysAddr,
    /// The entry that produced it.
    pub pte: Pte,
    /// Base virtual address of the page.
    pub va_base: VirtAddr,
}

/// A process page table.
///
/// # Examples
///
/// ```
/// use lelantus_os::page_table::{PageTable, Pte};
/// use lelantus_types::{PageSize, PhysAddr, VirtAddr};
///
/// let mut pt = PageTable::new();
/// pt.map(VirtAddr::new(0x1000), Pte { pa: PhysAddr::new(0x8000), size: PageSize::Regular4K, writable: true });
/// let t = pt.translate(VirtAddr::new(0x1234)).unwrap();
/// assert_eq!(t.pa, PhysAddr::new(0x8234));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: HashMap<u64, Pte>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the mapping at page-aligned `va_base`.
    ///
    /// # Panics
    ///
    /// Panics if `va_base` is not aligned to the entry's page size.
    pub fn map(&mut self, va_base: VirtAddr, pte: Pte) {
        assert!(
            va_base.is_aligned_to(pte.size.bytes()),
            "mapping base {va_base} not {}-aligned",
            pte.size
        );
        self.entries.insert(va_base.as_u64(), pte);
    }

    /// Removes the mapping at `va_base`, returning the old entry.
    pub fn unmap(&mut self, va_base: VirtAddr) -> Option<Pte> {
        self.entries.remove(&va_base.as_u64())
    }

    /// Looks up the PTE covering `va` (probing both page sizes).
    pub fn entry(&self, va: VirtAddr) -> Option<(VirtAddr, Pte)> {
        for size in [PageSize::Regular4K, PageSize::Huge2M] {
            let base = va.align_to(size.bytes());
            if let Some(pte) = self.entries.get(&base.as_u64()) {
                if pte.size == size {
                    return Some((base, *pte));
                }
            }
        }
        None
    }

    /// Translates `va` to a physical address.
    pub fn translate(&self, va: VirtAddr) -> Option<Translation> {
        let (va_base, pte) = self.entry(va)?;
        let offset = va - va_base;
        Some(Translation { pa: pte.pa + offset, pte, va_base })
    }

    /// Sets the writable bit of the mapping covering `va`; returns the
    /// previous value.
    ///
    /// # Panics
    ///
    /// Panics if `va` is unmapped.
    pub fn set_writable(&mut self, va: VirtAddr, writable: bool) -> bool {
        let (base, _) = self.entry(va).expect("set_writable on unmapped address");
        let e = self.entries.get_mut(&base.as_u64()).expect("entry exists");
        std::mem::replace(&mut e.writable, writable)
    }

    /// Iterates over `(va_base, pte)` pairs in ascending address order.
    ///
    /// The order is load-bearing: fork and mprotect turn this walk into
    /// hardware actions whose NVM timing depends on the access
    /// sequence, so hash order here would make simulated cycle counts
    /// differ between identically-configured runs.
    pub fn iter(&self) -> impl Iterator<Item = (VirtAddr, Pte)> + '_ {
        let mut sorted: Vec<(u64, Pte)> =
            self.entries.iter().map(|(va, pte)| (*va, *pte)).collect();
        sorted.sort_unstable_by_key(|(va, _)| *va);
        sorted.into_iter().map(|(va, pte)| (VirtAddr::new(va), pte))
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_regular() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(0x7000),
            Pte { pa: PhysAddr::new(0x10000), size: PageSize::Regular4K, writable: false },
        );
        let t = pt.translate(VirtAddr::new(0x7abc)).unwrap();
        assert_eq!(t.pa, PhysAddr::new(0x10abc));
        assert!(!t.pte.writable);
        assert_eq!(t.va_base, VirtAddr::new(0x7000));
        assert!(pt.translate(VirtAddr::new(0x8000)).is_none());
    }

    #[test]
    fn translate_huge() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(0x4000_0000),
            Pte { pa: PhysAddr::new(0x20_0000), size: PageSize::Huge2M, writable: true },
        );
        let t = pt.translate(VirtAddr::new(0x4000_0000 + 0x12345)).unwrap();
        assert_eq!(t.pa, PhysAddr::new(0x20_0000 + 0x12345));
        assert_eq!(t.pte.size, PageSize::Huge2M);
    }

    #[test]
    fn set_writable_flips_bit() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(0x1000),
            Pte { pa: PhysAddr::new(0x2000), size: PageSize::Regular4K, writable: true },
        );
        assert!(pt.set_writable(VirtAddr::new(0x1800), false));
        assert!(!pt.translate(VirtAddr::new(0x1800)).unwrap().pte.writable);
    }

    #[test]
    fn unmap_removes() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(0x1000),
            Pte { pa: PhysAddr::new(0x2000), size: PageSize::Regular4K, writable: true },
        );
        assert!(pt.unmap(VirtAddr::new(0x1000)).is_some());
        assert!(pt.translate(VirtAddr::new(0x1000)).is_none());
        assert!(pt.is_empty());
    }

    #[test]
    #[should_panic(expected = "not 2MB-aligned")]
    fn misaligned_huge_map_panics() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(0x1000),
            Pte { pa: PhysAddr::new(0), size: PageSize::Huge2M, writable: true },
        );
    }
}
