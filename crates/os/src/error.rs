//! Kernel error type.

use lelantus_types::VirtAddr;

/// Errors surfaced by kernel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// The referenced process does not exist or has exited.
    NoSuchProcess(u64),
    /// The virtual address is not covered by any VMA of the process.
    UnmappedAddress { pid: u64, va: VirtAddr },
    /// Physical memory is exhausted.
    OutOfMemory,
    /// The requested mapping overlaps an existing VMA or is malformed.
    BadMapping(String),
    /// A write hit a read-only (non-CoW) mapping.
    AccessViolation { pid: u64, va: VirtAddr },
}

impl std::fmt::Display for OsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsError::NoSuchProcess(pid) => write!(f, "no such process {pid}"),
            OsError::UnmappedAddress { pid, va } => {
                write!(f, "process {pid} has no mapping at {va}")
            }
            OsError::OutOfMemory => write!(f, "out of physical memory"),
            OsError::BadMapping(why) => write!(f, "bad mapping: {why}"),
            OsError::AccessViolation { pid, va } => {
                write!(f, "process {pid} cannot write read-only page at {va}")
            }
        }
    }
}

impl std::error::Error for OsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(OsError::NoSuchProcess(3).to_string(), "no such process 3");
        assert_eq!(OsError::OutOfMemory.to_string(), "out of physical memory");
        let e = OsError::UnmappedAddress { pid: 1, va: VirtAddr::new(0x1000) };
        assert!(e.to_string().contains("0x1000"));
    }
}
