//! The kernel façade: processes, `mmap`, `fork`, faults, `exit`.
//!
//! This is the software half of the paper's hardware/software
//! co-design. The kernel never touches simulated memory directly;
//! every hardware-visible consequence of a decision is emitted as a
//! [`HwAction`] for the full-system simulator to execute, so switching
//! [`CowStrategy`] swaps the entire CoW regime:
//!
//! * **Baseline** — CoW faults emit whole-page copies, first-touch
//!   faults emit whole-page zeroing (default Linux).
//! * **Silent Shredder** — first-touch zeroing becomes a cheap
//!   `page_init` command; copies stay full-cost.
//! * **Lelantus / Lelantus-CoW** — CoW and first-touch faults emit
//!   per-region `page_copy` commands; early reclamation (paper §III-D,
//!   Figure 8) and recursive chains (§III-E) are handled here with
//!   rmap walks and `page_phyc`/`page_free` commands.

use crate::config::{CowStrategy, KernelConfig};
use crate::error::OsError;
use crate::frame_alloc::BuddyAllocator;
use crate::page_registry::PageRegistry;
use crate::page_table::{PageTable, Pte};
use crate::rmap::RmapRegistry;
use crate::vma::Vma;
use lelantus_types::{PageSize, PhysAddr, VirtAddr, REGION_BYTES};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Process identifier.
pub type ProcessId = u64;

/// A memory access, as issued by the simulated CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// A hardware-visible action the kernel requests; executed (and
/// charged for) by the full-system simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwAction {
    /// Write back and invalidate all cached lines of a physical range
    /// (`clflush` loop over a source page before write-protecting it).
    FlushPage {
        /// Page base.
        base: PhysAddr,
        /// Page length.
        bytes: u64,
    },
    /// Invalidate (without write-back) all cached lines of a physical
    /// range — run on a CoW destination so stale lines cannot mask the
    /// redirected reads (paper §IV-B).
    InvalidatePage {
        /// Page base.
        base: PhysAddr,
        /// Page length.
        bytes: u64,
    },
    /// Baseline whole-page copy through the memory controller
    /// (non-temporal, bypassing the CPU caches — paper §II-D).
    CopyPage {
        /// Source page base.
        src: PhysAddr,
        /// Destination page base.
        dst: PhysAddr,
        /// Page length.
        bytes: u64,
    },
    /// Baseline whole-page zeroing (the kernel's `memset` on first
    /// touch), also non-temporal.
    ZeroPage {
        /// Page base.
        base: PhysAddr,
        /// Page length.
        bytes: u64,
    },
    /// Silent Shredder `page_init`: mark every line of the region as
    /// all-zero in counter state, with no data writes.
    PageInitCmd {
        /// 4 KB region base.
        dst: PhysAddr,
    },
    /// Lelantus `page_copy`: record in the destination region's
    /// security metadata that it is a lazy copy of `src`.
    PageCopyCmd {
        /// Source 4 KB region base.
        src: PhysAddr,
        /// Destination 4 KB region base.
        dst: PhysAddr,
    },
    /// Lelantus `page_phyc`: physically materialize the still-uncopied
    /// lines of `dst` if (and only if) its metadata still records
    /// `src` as the source (re-check in the controller, §III-D).
    PagePhycCmd {
        /// Expected source 4 KB region base.
        src: PhysAddr,
        /// Destination 4 KB region base.
        dst: PhysAddr,
    },
    /// Lelantus `page_free`: drop any CoW metadata of `dst`; pending
    /// lazy copies are abandoned.
    PageFreeCmd {
        /// 4 KB region base.
        dst: PhysAddr,
    },
}

/// Why an access faulted into the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// CoW break: a new private page was instantiated.
    CowCopy {
        /// Old (shared or zero) page.
        src: PhysAddr,
        /// Freshly allocated private page.
        dst: PhysAddr,
        /// Page granularity.
        size: PageSize,
        /// The source was the zero page (demand-zero allocation).
        from_zero: bool,
    },
    /// Sole owner regained write access (`wp_page_reuse`).
    WpReuse,
    /// Lelantus: deferred reuse ran early reclamation before
    /// unprotecting (paper Figure 8).
    EarlyReclaim {
        /// Number of candidate copied pages sent `page_phyc`.
        dependents: usize,
    },
}

/// Result of [`Kernel::access`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Physical address to use for the access (post-fault).
    pub pa: PhysAddr,
    /// Fault taken, if any.
    pub fault: Option<FaultKind>,
    /// Hardware actions the simulator must perform *before* the access.
    pub actions: Vec<HwAction>,
}

/// Kernel event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// CoW copy faults (including demand-zero).
    pub cow_faults: u64,
    /// Demand-zero subset of `cow_faults`.
    pub zero_faults: u64,
    /// `wp_page_reuse` faults.
    pub reuse_faults: u64,
    /// Early-reclamation walks performed.
    pub early_reclaims: u64,
    /// `page_phyc` commands issued.
    pub phyc_cmds: u64,
    /// Forks performed.
    pub forks: u64,
    /// Pages allocated (any size).
    pub pages_allocated: u64,
    /// Pages freed.
    pub pages_freed: u64,
}

impl KernelStats {
    /// Interval counters: `self - earlier` field by field.
    pub fn delta_since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            cow_faults: self.cow_faults - earlier.cow_faults,
            zero_faults: self.zero_faults - earlier.zero_faults,
            reuse_faults: self.reuse_faults - earlier.reuse_faults,
            early_reclaims: self.early_reclaims - earlier.early_reclaims,
            phyc_cmds: self.phyc_cmds - earlier.phyc_cmds,
            forks: self.forks - earlier.forks,
            pages_allocated: self.pages_allocated - earlier.pages_allocated,
            pages_freed: self.pages_freed - earlier.pages_freed,
        }
    }
}

#[derive(Debug, Clone)]
struct Process {
    page_table: PageTable,
    vmas: BTreeMap<u64, Vma>,
}

/// The simulated kernel.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Kernel {
    config: KernelConfig,
    buddy: BuddyAllocator,
    pages: PageRegistry,
    rmap: RmapRegistry,
    processes: HashMap<ProcessId, Process>,
    next_pid: ProcessId,
    next_mmap: u64,
    zero_page_4k: PhysAddr,
    zero_page_2m: PhysAddr,
    stats: KernelStats,
}

impl Kernel {
    /// Boots a kernel: reserves the zero pages and initializes the
    /// frame allocator over the remaining physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn new(config: KernelConfig) -> Self {
        config.validate().expect("invalid kernel config");
        // Zero pages live at the bottom of the data area: one 2 MB huge
        // zero page (which also serves 4 KB faults via its first region).
        let zero_page_2m = PhysAddr::new(0);
        let zero_page_4k = PhysAddr::new(0);
        let reserved = 2 << 20;
        let (buddy, mut pages, rmap) = if config.reference_structures {
            (
                BuddyAllocator::new_reference(reserved, config.phys_bytes - reserved),
                PageRegistry::new_reference(),
                RmapRegistry::new_reference(),
            )
        } else {
            (
                BuddyAllocator::new(reserved, config.phys_bytes - reserved),
                PageRegistry::new(),
                RmapRegistry::new(),
            )
        };
        pages.insert(zero_page_2m, PageSize::Huge2M, None);
        // Kernel's own permanent reference keeps the zero page alive.
        pages.inc_map(zero_page_2m);
        Self {
            config,
            buddy,
            pages,
            rmap,
            processes: HashMap::new(),
            next_pid: 1,
            next_mmap: config.mmap_base,
            zero_page_4k,
            zero_page_2m,
            stats: KernelStats::default(),
        }
    }

    /// A page table on the backing selected by the configuration.
    fn new_page_table(&self) -> PageTable {
        if self.config.reference_structures {
            PageTable::new_reference()
        } else {
            PageTable::new()
        }
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Event counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The 4 KB zero page's physical base.
    pub fn zero_page_4k(&self) -> PhysAddr {
        self.zero_page_4k
    }

    /// The 2 MB huge zero page's physical base.
    pub fn zero_page_2m(&self) -> PhysAddr {
        self.zero_page_2m
    }

    fn is_zero_page(&self, pa: PhysAddr) -> bool {
        pa == self.zero_page_4k || pa == self.zero_page_2m
    }

    /// Creates the first process.
    pub fn spawn_init(&mut self) -> ProcessId {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.processes
            .insert(pid, Process { page_table: self.new_page_table(), vmas: BTreeMap::new() });
        pid
    }

    /// Live process ids, sorted.
    pub fn live_pids(&self) -> Vec<ProcessId> {
        let mut v: Vec<_> = self.processes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn process(&self, pid: ProcessId) -> Result<&Process, OsError> {
        self.processes.get(&pid).ok_or(OsError::NoSuchProcess(pid))
    }

    fn process_mut(&mut self, pid: ProcessId) -> Result<&mut Process, OsError> {
        self.processes.get_mut(&pid).ok_or(OsError::NoSuchProcess(pid))
    }

    /// The VMA containing `va`, found by predecessor lookup (VMAs are
    /// disjoint, so the candidate is the one with the greatest start
    /// `<= va`).
    fn vma_containing(vmas: &BTreeMap<u64, Vma>, va: VirtAddr) -> Option<&Vma> {
        let (_, vma) = vmas.range(..=va.as_u64()).next_back()?;
        vma.contains(va).then_some(vma)
    }

    /// Maps `len` bytes of anonymous memory in `pid` at a fresh virtual
    /// address, backed lazily by the zero page. Returns the base.
    ///
    /// # Errors
    ///
    /// Fails if the process does not exist or `len` is zero.
    pub fn mmap_anon(
        &mut self,
        pid: ProcessId,
        len: u64,
        page_size: PageSize,
    ) -> Result<VirtAddr, OsError> {
        if len == 0 {
            return Err(OsError::BadMapping("zero-length mmap".into()));
        }
        self.process(pid)?;
        let page_bytes = page_size.bytes();
        let len = len.div_ceil(page_bytes) * page_bytes;
        // Reserve VA space with a guard gap, always huge-aligned.
        let base = VirtAddr::new(self.next_mmap);
        self.next_mmap += len.div_ceil(2 << 20) * (2 << 20) + (2 << 20);
        let av = self.rmap.create();
        self.rmap.link(av, pid, base);
        let vma = Vma { start: base, end: base + len, page_size, writable: true, anon_vma: av };
        let zero = match page_size {
            PageSize::Regular4K => self.zero_page_4k,
            PageSize::Huge2M => self.zero_page_2m,
        };
        {
            let proc = self.processes.get_mut(&pid).expect("checked above");
            proc.vmas.insert(base.as_u64(), vma);
            let mut va = base;
            while va < vma.end {
                proc.page_table.map(va, Pte { pa: zero, size: page_size, writable: false });
                va += page_bytes;
            }
        }
        self.pages.inc_map_by(self.zero_page_2m, vma.pages() as usize);
        Ok(base)
    }

    /// Forks `parent`: the child shares every anonymous page
    /// copy-on-write. Returns the child pid and the cache-maintenance
    /// actions (source pages are flushed before being write-protected,
    /// paper §IV-B).
    ///
    /// The parent's PTEs are streamed in place — no intermediate
    /// `Vec<(VirtAddr, Pte)>` snapshot. After write-protecting every
    /// non-zero mapping during the walk, the parent's table *is* the
    /// child's desired table (zero-page PTEs are non-writable by
    /// invariant), so the child is built with one bulk clone.
    ///
    /// # Errors
    ///
    /// Fails if the parent does not exist.
    pub fn fork(&mut self, parent: ProcessId) -> Result<(ProcessId, Vec<HwAction>), OsError> {
        // Take the parent out of the process table so its page table
        // can be walked mutably while the page registry updates.
        let mut parent_proc =
            self.processes.remove(&parent).ok_or(OsError::NoSuchProcess(parent))?;
        let child = self.next_pid;
        self.next_pid += 1;
        self.stats.forks += 1;

        let mut actions = Vec::new();
        let (zero_4k, zero_2m) = (self.zero_page_4k, self.zero_page_2m);
        let pages = &mut self.pages;
        parent_proc.page_table.for_each_mut(|_, pte| {
            let is_zero = pte.pa == zero_4k || pte.pa == zero_2m;
            pages.inc_map(if is_zero { zero_2m } else { pte.pa });
            if is_zero {
                debug_assert!(!pte.writable, "zero-page PTEs are never writable");
            } else {
                let info = pages.get_mut(pte.pa).expect("mapped page registered");
                if !info.cow_protected {
                    info.cow_protected = true;
                    // Dirty cached lines must reach NVM before lazy
                    // copies can read the page from memory.
                    actions.push(HwAction::FlushPage { base: pte.pa, bytes: pte.size.bytes() });
                }
                info.reuse_deferred = false;
                // Write-protect the parent's PTE in place.
                pte.writable = false;
            }
        });
        let child_proc = parent_proc.clone();
        for vma in parent_proc.vmas.values() {
            self.rmap.link(vma.anon_vma, child, vma.start);
        }
        self.processes.insert(parent, parent_proc);
        self.processes.insert(child, child_proc);
        Ok((child, actions))
    }

    /// Translates `va` in `pid` without faulting (diagnostics).
    pub fn translate(&self, pid: ProcessId, va: VirtAddr) -> Option<PhysAddr> {
        self.processes.get(&pid)?.page_table.translate(va).map(|t| t.pa)
    }

    /// Full PTE view for `va` (page base physical address, size,
    /// writability) — what a hardware page walk returns to the TLB.
    pub fn pte_info(&self, pid: ProcessId, va: VirtAddr) -> Option<(PhysAddr, PageSize, bool)> {
        let t = self.processes.get(&pid)?.page_table.translate(va)?;
        Some((t.pte.pa, t.pte.size, t.pte.writable))
    }

    /// Performs the kernel side of one memory access: translation plus
    /// any fault handling. The returned actions must be executed by the
    /// simulator *before* the access itself.
    ///
    /// # Errors
    ///
    /// Fails on unknown process, unmapped address, a write to a
    /// read-only VMA, or memory exhaustion.
    pub fn access(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<AccessOutcome, OsError> {
        let translation = self
            .process(pid)?
            .page_table
            .translate(va)
            .ok_or(OsError::UnmappedAddress { pid, va })?;
        if kind == AccessKind::Read || translation.pte.writable {
            return Ok(AccessOutcome { pa: translation.pa, fault: None, actions: Vec::new() });
        }
        // Write fault.
        let vma = *Self::vma_containing(&self.process(pid)?.vmas, va)
            .ok_or(OsError::UnmappedAddress { pid, va })?;
        if !vma.writable {
            return Err(OsError::AccessViolation { pid, va });
        }
        let old_pa = translation.pte.pa;
        let va_base = translation.va_base;
        let size = translation.pte.size;
        let offset = va - va_base;

        let map_count = if self.is_zero_page(old_pa) {
            usize::MAX // the zero page is always shared
        } else {
            self.pages.get(old_pa).expect("mapped page registered").map_count
        };

        if map_count > 1 {
            let (new_pa, actions, fault) = self.cow_copy(pid, &vma, va_base, old_pa, size)?;
            Ok(AccessOutcome { pa: new_pa + offset, fault: Some(fault), actions })
        } else {
            // Sole owner: wp_page_reuse, possibly with early reclamation.
            let actions = self.wp_reuse(pid, &vma, va_base, old_pa);
            let fault = if actions.iter().any(|a| matches!(a, HwAction::PagePhycCmd { .. })) {
                let dependents =
                    actions.iter().filter(|a| matches!(a, HwAction::PagePhycCmd { .. })).count()
                        / size.regions().max(1);
                FaultKind::EarlyReclaim { dependents }
            } else {
                FaultKind::WpReuse
            };
            Ok(AccessOutcome { pa: translation.pa, fault: Some(fault), actions })
        }
    }

    /// Handles a CoW break: allocate a private page and emit the
    /// strategy's copy/init actions.
    fn cow_copy(
        &mut self,
        pid: ProcessId,
        vma: &Vma,
        va_base: VirtAddr,
        old_pa: PhysAddr,
        size: PageSize,
    ) -> Result<(PhysAddr, Vec<HwAction>, FaultKind), OsError> {
        let order = BuddyAllocator::order_for_bytes(size.bytes());
        let new_pa = self.buddy.alloc(order).ok_or(OsError::OutOfMemory)?;
        self.pages.insert(new_pa, size, Some(vma.anon_vma));
        self.pages.inc_map(new_pa);
        self.stats.pages_allocated += 1;
        self.stats.cow_faults += 1;

        let from_zero = self.is_zero_page(old_pa);
        if from_zero {
            self.stats.zero_faults += 1;
        }

        let mut actions = Vec::new();
        // Stale lines of the recycled frame must never be observed.
        actions.push(HwAction::InvalidatePage { base: new_pa, bytes: size.bytes() });
        match (self.config.strategy, from_zero) {
            (CowStrategy::Baseline, true) => {
                actions.push(HwAction::ZeroPage { base: new_pa, bytes: size.bytes() });
            }
            (CowStrategy::Baseline, false) => {
                actions.push(HwAction::CopyPage { src: old_pa, dst: new_pa, bytes: size.bytes() });
            }
            (CowStrategy::SilentShredder, true) => {
                for r in 0..size.regions() {
                    actions.push(HwAction::PageInitCmd { dst: new_pa + (r as u64) * REGION_BYTES });
                }
            }
            (CowStrategy::SilentShredder, false) => {
                actions.push(HwAction::CopyPage { src: old_pa, dst: new_pa, bytes: size.bytes() });
            }
            (CowStrategy::Lelantus | CowStrategy::LelantusCow, _) => {
                // The huge-page copy becomes a set of per-region
                // commands (paper §IV-C). A zero source maps every
                // destination region onto the zero page's regions.
                for r in 0..size.regions() {
                    let src_region = old_pa + (r as u64) * REGION_BYTES;
                    actions.push(HwAction::PageCopyCmd {
                        src: src_region,
                        dst: new_pa + (r as u64) * REGION_BYTES,
                    });
                }
            }
        }

        // Re-point the PTE and fix counts.
        self.processes
            .get_mut(&pid)
            .expect("checked")
            .page_table
            .map(va_base, Pte { pa: new_pa, size, writable: true });
        if self.is_zero_page(old_pa) {
            self.pages.dec_map(self.zero_page_2m);
        } else {
            let remaining = self.pages.dec_map(old_pa);
            if remaining == 1 && self.config.strategy.is_lelantus() {
                // Pause wp_page_reuse / page_move_anon_rmap (Figure 8).
                self.pages.get_mut(old_pa).expect("page").reuse_deferred = true;
            }
        }
        Ok((new_pa, actions, FaultKind::CowCopy { src: old_pa, dst: new_pa, size, from_zero }))
    }

    /// `wp_page_reuse` on the sole owner, running Lelantus early
    /// reclamation first when it was deferred.
    fn wp_reuse(
        &mut self,
        pid: ProcessId,
        vma: &Vma,
        va_base: VirtAddr,
        pa: PhysAddr,
    ) -> Vec<HwAction> {
        self.stats.reuse_faults += 1;
        let mut actions = Vec::new();
        let deferred = self
            .pages
            .get(pa)
            .map(|i| i.reuse_deferred || (i.cow_protected && self.config.strategy.is_lelantus()))
            .unwrap_or(false);
        if deferred {
            actions = self.early_reclaim(pid, vma, va_base, pa);
        }
        if let Some(info) = self.pages.get_mut(pa) {
            info.cow_protected = false;
            info.reuse_deferred = false;
        }
        self.processes.get_mut(&pid).expect("checked").page_table.set_writable(va_base, true);
        actions
    }

    /// Walks the anon_vma chain to find copied pages whose lazy copies
    /// must be materialized before `pa` is written or freed
    /// (paper §III-D, Figure 7). Emits one `page_phyc` per region per
    /// candidate.
    fn early_reclaim(
        &mut self,
        pid: ProcessId,
        vma: &Vma,
        va_base: VirtAddr,
        pa: PhysAddr,
    ) -> Vec<HwAction> {
        self.stats.early_reclaims += 1;
        let mut actions = Vec::new();
        let page_offset = va_base - vma.start;
        let size = self.pages.get(pa).map(|i| i.size).unwrap_or(PageSize::Regular4K);
        // Cursor walk: the chain is not mutated inside the loop, and
        // the cursor is a plain value, so no snapshot `Vec` is needed.
        let mut cur = self.rmap.cursor(vma.anon_vma);
        while let Some(link) = self.rmap.link_at(cur) {
            cur = self.rmap.advance(cur);
            if link.pid == pid && link.vma_start == vma.start {
                continue;
            }
            let Some(proc) = self.processes.get(&link.pid) else { continue };
            let candidate_va = link.vma_start + page_offset;
            let Some(t) = proc.page_table.translate(candidate_va) else { continue };
            if t.pte.pa == pa || self.is_zero_page(t.pte.pa) {
                continue;
            }
            // Possible copied page: the controller re-checks whether its
            // metadata still names `pa` before doing the physical copy.
            for r in 0..size.regions() {
                let delta = (r as u64) * REGION_BYTES;
                actions.push(HwAction::PagePhycCmd { src: pa + delta, dst: t.pte.pa + delta });
                self.stats.phyc_cmds += 1;
            }
        }
        actions
    }

    /// Unmaps one page mapping and releases the page if this was the
    /// last reference. Returns actions (early reclamation and
    /// `page_free` under Lelantus).
    fn put_page(
        &mut self,
        pid: ProcessId,
        vma: &Vma,
        va_base: VirtAddr,
        pa: PhysAddr,
    ) -> Vec<HwAction> {
        if self.is_zero_page(pa) {
            self.pages.dec_map(self.zero_page_2m);
            return Vec::new();
        }
        let mut actions = Vec::new();
        let remaining = self.pages.dec_map(pa);
        if remaining == 0 {
            let (size, cow_protected) = {
                let info = self.pages.get(pa).expect("page exists");
                (info.size, info.cow_protected)
            };
            // A dying write-protected source may still feed lazy copies:
            // materialize them first (paper §III-D "before releasing").
            if cow_protected && self.config.strategy.is_lelantus() {
                let mut reclaim = self.early_reclaim(pid, vma, va_base, pa);
                actions.append(&mut reclaim);
            }
            if self.config.strategy.is_lelantus() {
                // Abandon any pending copies *into* this page.
                for r in 0..size.regions() {
                    actions.push(HwAction::PageFreeCmd { dst: pa + (r as u64) * REGION_BYTES });
                }
            }
            let order = BuddyAllocator::order_for_bytes(size.bytes());
            self.pages.remove(pa);
            self.buddy.free(pa, order);
            self.stats.pages_freed += 1;
        } else if remaining == 1 && self.config.strategy.is_lelantus() {
            self.pages.get_mut(pa).expect("page").reuse_deferred = true;
        }
        actions
    }

    /// Unmaps the whole VMA starting at `vma_start`, releasing every
    /// page it maps. Returns release-side hardware actions.
    ///
    /// # Errors
    ///
    /// Fails if the process or mapping does not exist.
    pub fn munmap(
        &mut self,
        pid: ProcessId,
        vma_start: VirtAddr,
    ) -> Result<Vec<HwAction>, OsError> {
        let proc = self.processes.get_mut(&pid).ok_or(OsError::NoSuchProcess(pid))?;
        let vma = proc
            .vmas
            .remove(&vma_start.as_u64())
            .ok_or(OsError::UnmappedAddress { pid, va: vma_start })?;
        let mut mappings = Vec::new();
        let mut va = vma.start;
        while va < vma.end {
            if let Some(pte) = proc.page_table.unmap(va) {
                mappings.push((va, pte.pa));
            }
            va += vma.page_size.bytes();
        }
        let mut actions = Vec::new();
        for (va, pa) in mappings {
            actions.extend(self.put_page(pid, &vma, va, pa));
        }
        self.rmap.unlink(vma.anon_vma, pid, vma.start);
        if self.rmap.link_count(vma.anon_vma) == 0 {
            self.rmap.destroy(vma.anon_vma);
        }
        Ok(actions)
    }

    /// `madvise(MADV_DONTNEED)` over whole pages of `[va, va+len)`:
    /// the pages are released and the range reads as zeros afterwards
    /// (remapped to the zero page, CoW-on-next-write).
    ///
    /// # Errors
    ///
    /// Fails if the range is not covered by a single VMA.
    pub fn madvise_dontneed(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        len: u64,
    ) -> Result<Vec<HwAction>, OsError> {
        let vma = *Self::vma_containing(&self.process(pid)?.vmas, va)
            .ok_or(OsError::UnmappedAddress { pid, va })?;
        if va + len > vma.end || !va.is_aligned_to(vma.page_size.bytes()) {
            return Err(OsError::BadMapping(
                "madvise range must be page-aligned in one VMA".into(),
            ));
        }
        let zero = match vma.page_size {
            PageSize::Regular4K => self.zero_page_4k,
            PageSize::Huge2M => self.zero_page_2m,
        };
        let mut actions = Vec::new();
        let mut cur = va;
        while cur < va + len {
            let (old_pa, size) = {
                let proc = self.process(pid)?;
                let t = proc.page_table.translate(cur).expect("VMA-covered page is mapped");
                (t.pte.pa, t.pte.size)
            };
            if old_pa != zero {
                self.processes
                    .get_mut(&pid)
                    .expect("checked")
                    .page_table
                    .map(cur, Pte { pa: zero, size, writable: false });
                self.pages.inc_map(self.zero_page_2m);
                actions.extend(self.put_page(pid, &vma, cur, old_pa));
            }
            cur += vma.page_size.bytes();
        }
        Ok(actions)
    }

    /// `mprotect`: sets the VMA-level write permission. Revoking write
    /// access write-protects every PTE; restoring it re-enables writes
    /// only on privately-owned pages (shared pages stay CoW-protected
    /// and fault on write as usual).
    ///
    /// # Errors
    ///
    /// Fails if the VMA does not exist.
    pub fn mprotect(
        &mut self,
        pid: ProcessId,
        vma_start: VirtAddr,
        writable: bool,
    ) -> Result<(), OsError> {
        let vma = {
            let proc = self.processes.get_mut(&pid).ok_or(OsError::NoSuchProcess(pid))?;
            let vma = proc
                .vmas
                .get_mut(&vma_start.as_u64())
                .ok_or(OsError::UnmappedAddress { pid, va: vma_start })?;
            vma.writable = writable;
            *vma
        };
        // Walk only the VMA's PTE range, in place — no whole-table
        // collect, no per-page re-lookup.
        let mut proc = self.processes.remove(&pid).expect("checked above");
        let (zero_4k, zero_2m) = (self.zero_page_4k, self.zero_page_2m);
        let pages = &self.pages;
        proc.page_table.for_each_mut_in(vma.start, vma.end, |_, pte| {
            pte.writable = writable
                && !(pte.pa == zero_4k || pte.pa == zero_2m)
                && pages.get(pte.pa).map(|i| i.map_count == 1 && !i.cow_protected).unwrap_or(false);
        });
        self.processes.insert(pid, proc);
        Ok(())
    }

    /// Terminates `pid`, releasing every mapping. Returns the hardware
    /// actions accumulated by page releases.
    ///
    /// # Errors
    ///
    /// Fails if the process does not exist.
    pub fn exit(&mut self, pid: ProcessId) -> Result<Vec<HwAction>, OsError> {
        let proc = self.processes.remove(&pid).ok_or(OsError::NoSuchProcess(pid))?;
        let mut actions = Vec::new();
        for vma in proc.vmas.values() {
            // Range walk instead of per-page translate probes: every
            // VMA page is always mapped, so the covered PTEs are
            // exactly the VMA's pages, in the same ascending order.
            for (va, pte) in proc.page_table.range(vma.start, vma.end) {
                actions.extend(self.put_page(pid, vma, va, pte.pa));
            }
            self.rmap.unlink(vma.anon_vma, pid, vma.start);
            if self.rmap.link_count(vma.anon_vma) == 0 {
                self.rmap.destroy(vma.anon_vma);
            }
        }
        Ok(actions)
    }

    /// Physical bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.buddy.free_bytes()
    }

    /// Kernel view of a page's map count (diagnostics).
    pub fn map_count(&self, pa: PhysAddr) -> Option<usize> {
        self.pages.get(pa).map(|i| i.map_count)
    }

    /// KSM support: remap `pid`'s page at `va_base` to `target` as a
    /// write-protected shared mapping, releasing the old page. Both
    /// pages must be the same size; the caller guarantees identical
    /// content. Returns release actions.
    ///
    /// # Errors
    ///
    /// Fails on unknown process/mapping.
    pub fn ksm_remap(
        &mut self,
        pid: ProcessId,
        va: VirtAddr,
        target: PhysAddr,
    ) -> Result<Vec<HwAction>, OsError> {
        let (va_base, pte, vma) = {
            let proc = self.process(pid)?;
            let t = proc.page_table.translate(va).ok_or(OsError::UnmappedAddress { pid, va })?;
            let vma = *Self::vma_containing(&proc.vmas, va)
                .ok_or(OsError::UnmappedAddress { pid, va })?;
            (t.va_base, t.pte, vma)
        };
        if pte.pa == target {
            // Already merged; just ensure write protection.
            self.process_mut(pid)?.page_table.set_writable(va_base, false);
            return Ok(Vec::new());
        }
        self.pages.inc_map(target);
        {
            let info = self.pages.get_mut(target).expect("target registered");
            info.cow_protected = true;
            info.reuse_deferred = false;
        }
        self.process_mut(pid)?
            .page_table
            .map(va_base, Pte { pa: target, size: pte.size, writable: false });
        let actions = self.put_page(pid, &vma, va_base, pte.pa);
        Ok(actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(strategy: CowStrategy) -> Kernel {
        Kernel::new(KernelConfig { phys_bytes: 64 << 20, ..KernelConfig::default_with(strategy) })
    }

    #[test]
    fn mmap_maps_to_zero_page() {
        let mut k = kernel(CowStrategy::Baseline);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 16 << 10, PageSize::Regular4K).unwrap();
        let pa = k.translate(pid, va + 4096).unwrap();
        assert_eq!(pa, k.zero_page_4k() + 4096 % 4096);
        // Reads never fault.
        let out = k.access(pid, va, AccessKind::Read).unwrap();
        assert!(out.fault.is_none());
        assert!(out.actions.is_empty());
    }

    #[test]
    fn first_write_is_demand_zero_fault_baseline() {
        let mut k = kernel(CowStrategy::Baseline);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 4096, PageSize::Regular4K).unwrap();
        let out = k.access(pid, va + 8, AccessKind::Write).unwrap();
        match out.fault {
            Some(FaultKind::CowCopy { from_zero: true, dst, .. }) => {
                assert_eq!(out.pa, dst + 8);
            }
            other => panic!("expected demand-zero fault, got {other:?}"),
        }
        assert!(out.actions.iter().any(|a| matches!(a, HwAction::ZeroPage { .. })));
        // Second write: no fault.
        let out2 = k.access(pid, va + 16, AccessKind::Write).unwrap();
        assert!(out2.fault.is_none());
    }

    #[test]
    fn first_write_lelantus_emits_page_copy_from_zero() {
        let mut k = kernel(CowStrategy::Lelantus);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 4096, PageSize::Regular4K).unwrap();
        let out = k.access(pid, va, AccessKind::Write).unwrap();
        let copies: Vec<_> = out
            .actions
            .iter()
            .filter_map(|a| match a {
                HwAction::PageCopyCmd { src, dst } => Some((*src, *dst)),
                _ => None,
            })
            .collect();
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0].0, k.zero_page_4k());
    }

    #[test]
    fn huge_page_fault_emits_512_region_commands() {
        let mut k = kernel(CowStrategy::Lelantus);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 2 << 20, PageSize::Huge2M).unwrap();
        let out = k.access(pid, va + 12345, AccessKind::Write).unwrap();
        let n = out.actions.iter().filter(|a| matches!(a, HwAction::PageCopyCmd { .. })).count();
        assert_eq!(n, 512);
    }

    #[test]
    fn fork_write_protects_and_flushes() {
        let mut k = kernel(CowStrategy::Lelantus);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 4096, PageSize::Regular4K).unwrap();
        // Materialize the page first.
        k.access(pid, va, AccessKind::Write).unwrap();
        let (child, actions) = k.fork(pid).unwrap();
        assert_eq!(actions.len(), 1, "one data page to flush");
        assert!(matches!(actions[0], HwAction::FlushPage { .. }));
        // Both parent and child now fault on write.
        let parent_out = k.access(pid, va, AccessKind::Write).unwrap();
        assert!(matches!(parent_out.fault, Some(FaultKind::CowCopy { from_zero: false, .. })));
        // After the parent copied, the child is sole owner; its write is
        // an early-reclaim reuse under Lelantus.
        let child_out = k.access(child, va, AccessKind::Write).unwrap();
        assert!(matches!(child_out.fault, Some(FaultKind::EarlyReclaim { .. })));
        assert!(child_out.actions.iter().any(|a| matches!(a, HwAction::PagePhycCmd { .. })));
    }

    #[test]
    fn baseline_reuse_has_no_reclaim() {
        let mut k = kernel(CowStrategy::Baseline);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 4096, PageSize::Regular4K).unwrap();
        k.access(pid, va, AccessKind::Write).unwrap();
        let (child, _) = k.fork(pid).unwrap();
        k.access(pid, va, AccessKind::Write).unwrap(); // parent copies
        let out = k.access(child, va, AccessKind::Write).unwrap();
        assert_eq!(out.fault, Some(FaultKind::WpReuse));
        assert!(out.actions.is_empty());
    }

    #[test]
    fn exit_frees_memory_and_emits_page_free() {
        let mut k = kernel(CowStrategy::Lelantus);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 8192, PageSize::Regular4K).unwrap();
        k.access(pid, va, AccessKind::Write).unwrap();
        k.access(pid, va + 4096, AccessKind::Write).unwrap();
        let free_before = k.free_bytes();
        let actions = k.exit(pid).unwrap();
        assert_eq!(k.free_bytes(), free_before + 8192);
        let frees = actions.iter().filter(|a| matches!(a, HwAction::PageFreeCmd { .. })).count();
        assert_eq!(frees, 2);
        assert!(k.live_pids().is_empty());
    }

    #[test]
    fn dying_source_triggers_phyc_for_dependents() {
        let mut k = kernel(CowStrategy::Lelantus);
        let parent = k.spawn_init();
        let va = k.mmap_anon(parent, 4096, PageSize::Regular4K).unwrap();
        k.access(parent, va, AccessKind::Write).unwrap();
        let (child, _) = k.fork(parent).unwrap();
        // Child copies (lazily) then parent exits while the child's
        // metadata still points at the parent's page.
        k.access(child, va, AccessKind::Write).unwrap();
        let actions = k.exit(parent).unwrap();
        assert!(
            actions.iter().any(|a| matches!(a, HwAction::PagePhycCmd { .. })),
            "dying source must materialize dependents: {actions:?}"
        );
    }

    #[test]
    fn silent_shredder_inits_without_zero_writes() {
        let mut k = kernel(CowStrategy::SilentShredder);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 4096, PageSize::Regular4K).unwrap();
        let out = k.access(pid, va, AccessKind::Write).unwrap();
        assert!(out.actions.iter().any(|a| matches!(a, HwAction::PageInitCmd { .. })));
        assert!(!out.actions.iter().any(|a| matches!(a, HwAction::ZeroPage { .. })));
        // But a fork copy is still a full CopyPage.
        let (child, _) = k.fork(pid).unwrap();
        let out = k.access(child, va, AccessKind::Write).unwrap();
        assert!(out.actions.iter().any(|a| matches!(a, HwAction::CopyPage { .. })));
    }

    #[test]
    fn write_to_unmapped_errors() {
        let mut k = kernel(CowStrategy::Baseline);
        let pid = k.spawn_init();
        let err = k.access(pid, VirtAddr::new(0xdead_0000), AccessKind::Write).unwrap_err();
        assert!(matches!(err, OsError::UnmappedAddress { .. }));
        let err = k.access(999, VirtAddr::new(0), AccessKind::Read).unwrap_err();
        assert!(matches!(err, OsError::NoSuchProcess(999)));
    }

    #[test]
    fn oom_is_reported() {
        let mut k = Kernel::new(KernelConfig {
            phys_bytes: 4 << 20, // 2 MB usable after the zero page
            ..KernelConfig::default_with(CowStrategy::Baseline)
        });
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 8 << 20, PageSize::Regular4K).unwrap();
        let mut oom = false;
        for i in 0..2048u64 {
            match k.access(pid, va + i * 4096, AccessKind::Write) {
                Ok(_) => {}
                Err(OsError::OutOfMemory) => {
                    oom = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(oom);
    }

    #[test]
    fn stats_track_events() {
        let mut k = kernel(CowStrategy::Lelantus);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 16 << 10, PageSize::Regular4K).unwrap();
        for i in 0..4u64 {
            k.access(pid, va + i * 4096, AccessKind::Write).unwrap();
        }
        let (_, _) = k.fork(pid).unwrap();
        let s = k.stats();
        assert_eq!(s.cow_faults, 4);
        assert_eq!(s.zero_faults, 4);
        assert_eq!(s.forks, 1);
        assert_eq!(s.pages_allocated, 4);
    }

    #[test]
    fn fork_chain_grandchild() {
        // fork-of-fork: recursive copy chains (paper §III-E) at the OS
        // level — every level shares until written.
        let mut k = kernel(CowStrategy::Lelantus);
        let p = k.spawn_init();
        let va = k.mmap_anon(p, 4096, PageSize::Regular4K).unwrap();
        k.access(p, va, AccessKind::Write).unwrap();
        let (c1, _) = k.fork(p).unwrap();
        let (c2, _) = k.fork(c1).unwrap();
        let pa_p = k.translate(p, va).unwrap();
        assert_eq!(k.translate(c1, va).unwrap(), pa_p);
        assert_eq!(k.translate(c2, va).unwrap(), pa_p);
        assert_eq!(k.map_count(pa_p.align_to(4096)), Some(3));
        // c1 writes -> private copy; c2 and p still share.
        k.access(c1, va, AccessKind::Write).unwrap();
        assert_eq!(k.map_count(pa_p.align_to(4096)), Some(2));
        k.exit(p).unwrap();
        k.exit(c1).unwrap();
        k.exit(c2).unwrap();
        assert!(k.live_pids().is_empty());
    }
}

#[cfg(test)]
mod syscall_tests {
    use super::*;

    fn kernel(strategy: CowStrategy) -> Kernel {
        Kernel::new(KernelConfig { phys_bytes: 64 << 20, ..KernelConfig::default_with(strategy) })
    }

    #[test]
    fn munmap_releases_frames_and_unmaps() {
        let mut k = kernel(CowStrategy::Lelantus);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 16 << 10, PageSize::Regular4K).unwrap();
        for p in 0..4u64 {
            k.access(pid, va + p * 4096, AccessKind::Write).unwrap();
        }
        let free_before = k.free_bytes();
        let actions = k.munmap(pid, va).unwrap();
        assert_eq!(k.free_bytes(), free_before + 16 * 1024);
        assert_eq!(actions.iter().filter(|a| matches!(a, HwAction::PageFreeCmd { .. })).count(), 4);
        assert!(k.translate(pid, va).is_none());
        assert!(matches!(
            k.access(pid, va, AccessKind::Read),
            Err(OsError::UnmappedAddress { .. })
        ));
        // Unmapping again fails cleanly.
        assert!(k.munmap(pid, va).is_err());
    }

    #[test]
    fn munmap_source_materializes_dependents() {
        let mut k = kernel(CowStrategy::Lelantus);
        let parent = k.spawn_init();
        let va = k.mmap_anon(parent, 4096, PageSize::Regular4K).unwrap();
        k.access(parent, va, AccessKind::Write).unwrap();
        let (child, _) = k.fork(parent).unwrap();
        k.access(child, va, AccessKind::Write).unwrap(); // lazy copy
        let actions = k.munmap(parent, va).unwrap();
        assert!(
            actions.iter().any(|a| matches!(a, HwAction::PagePhycCmd { .. })),
            "dying source must page_phyc its dependents: {actions:?}"
        );
    }

    #[test]
    fn madvise_dontneed_rezeroes() {
        let mut k = kernel(CowStrategy::Lelantus);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 8192, PageSize::Regular4K).unwrap();
        k.access(pid, va, AccessKind::Write).unwrap();
        k.access(pid, va + 4096, AccessKind::Write).unwrap();
        let free_before = k.free_bytes();
        let actions = k.madvise_dontneed(pid, va, 4096).unwrap();
        assert_eq!(k.free_bytes(), free_before + 4096, "advised page freed");
        assert!(actions.iter().any(|a| matches!(a, HwAction::PageFreeCmd { .. })));
        // The advised page is back on the zero page; the other is not.
        assert_eq!(k.translate(pid, va).unwrap(), k.zero_page_4k());
        assert_ne!(k.translate(pid, va + 4096).unwrap(), k.zero_page_4k());
        // Next write demand-zero faults again.
        let out = k.access(pid, va, AccessKind::Write).unwrap();
        assert!(matches!(out.fault, Some(FaultKind::CowCopy { from_zero: true, .. })));
    }

    #[test]
    fn madvise_rejects_bad_ranges() {
        let mut k = kernel(CowStrategy::Baseline);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 4096, PageSize::Regular4K).unwrap();
        assert!(k.madvise_dontneed(pid, va + 1, 64).is_err(), "unaligned");
        assert!(k.madvise_dontneed(pid, va, 8192).is_err(), "beyond the VMA");
    }

    #[test]
    fn mprotect_revokes_and_restores() {
        let mut k = kernel(CowStrategy::Baseline);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 4096, PageSize::Regular4K).unwrap();
        k.access(pid, va, AccessKind::Write).unwrap();
        k.mprotect(pid, va, false).unwrap();
        assert!(matches!(
            k.access(pid, va, AccessKind::Write),
            Err(OsError::AccessViolation { .. })
        ));
        // Reads still fine.
        assert!(k.access(pid, va, AccessKind::Read).is_ok());
        k.mprotect(pid, va, true).unwrap();
        let out = k.access(pid, va, AccessKind::Write).unwrap();
        assert!(out.fault.is_none(), "private page regains write access directly");
    }

    #[test]
    fn mprotect_true_keeps_cow_protection_on_shared_pages() {
        let mut k = kernel(CowStrategy::Baseline);
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 4096, PageSize::Regular4K).unwrap();
        k.access(pid, va, AccessKind::Write).unwrap();
        let (child, _) = k.fork(pid).unwrap();
        k.mprotect(pid, va, true).unwrap();
        // Still shared: the write must CoW-fault, not scribble on the
        // child's view.
        let out = k.access(pid, va, AccessKind::Write).unwrap();
        assert!(matches!(out.fault, Some(FaultKind::CowCopy { .. })));
        let _ = child;
    }
}
