//! Kernel configuration.

/// Which copy-on-write machinery the kernel drives (paper §V-A's four
/// compared schemes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CowStrategy {
    /// Default Linux: CoW faults copy the whole page; allocation zeroes
    /// whole pages.
    Baseline,
    /// Silent Shredder: zero-initialization is elided via counter
    /// state, but page copies remain full-cost.
    SilentShredder,
    /// Lelantus Solution 1 (resized counter blocks): CoW faults issue
    /// `page_copy` commands; copies complete lazily per line.
    Lelantus,
    /// Lelantus Solution 2 (supplementary CoW metadata): same kernel
    /// behaviour as [`CowStrategy::Lelantus`]; the memory controller
    /// stores the source address out-of-band.
    LelantusCow,
}

impl CowStrategy {
    /// True for either Lelantus scheme (the kernel behaves identically
    /// for both; only the controller encoding differs).
    pub fn is_lelantus(self) -> bool {
        matches!(self, CowStrategy::Lelantus | CowStrategy::LelantusCow)
    }

    /// All four schemes, in the paper's comparison order.
    pub fn all() -> [CowStrategy; 4] {
        [
            CowStrategy::Baseline,
            CowStrategy::SilentShredder,
            CowStrategy::Lelantus,
            CowStrategy::LelantusCow,
        ]
    }
}

impl std::fmt::Display for CowStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CowStrategy::Baseline => "Baseline",
            CowStrategy::SilentShredder => "SilentShredder",
            CowStrategy::Lelantus => "Lelantus",
            CowStrategy::LelantusCow => "Lelantus-CoW",
        };
        f.write_str(name)
    }
}

/// Kernel construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Bytes of physical memory the kernel manages (the OS-visible data
    /// area; security metadata lives above it).
    pub phys_bytes: u64,
    /// CoW machinery to drive.
    pub strategy: CowStrategy,
    /// Base virtual address handed out by `mmap`.
    pub mmap_base: u64,
    /// Runs the kernel on the original hash/tree-backed structures
    /// (`HashMap` page tables and page registry, `Vec` rmap chains,
    /// `BTreeSet` buddy free lists) instead of the frame-indexed fast
    /// structures. Behaviourally identical — every `HwAction` stream is
    /// the same — and kept for the equivalence tests that prove it.
    pub reference_structures: bool,
}

impl KernelConfig {
    /// 256 MB of managed memory with the given strategy — enough for
    /// every experiment in the paper's evaluation (16 MB–100 MB working
    /// sets) while keeping simulation memory reasonable.
    pub fn default_with(strategy: CowStrategy) -> Self {
        Self {
            phys_bytes: 256 << 20,
            strategy,
            mmap_base: 0x7f00_0000_0000,
            reference_structures: false,
        }
    }

    /// Same configuration on the original reference structures (see
    /// [`KernelConfig::reference_structures`]).
    pub fn with_reference_structures(mut self) -> Self {
        self.reference_structures = true;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.phys_bytes < (4 << 20) {
            return Err("kernel needs at least 4 MB (zero pages + slack)".into());
        }
        if !self.phys_bytes.is_multiple_of(2 << 20) {
            return Err("physical size must be a multiple of 2 MB".into());
        }
        if !self.mmap_base.is_multiple_of(2 << 20) {
            return Err("mmap base must be huge-page aligned".into());
        }
        Ok(())
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::default_with(CowStrategy::Baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_helpers() {
        assert!(CowStrategy::Lelantus.is_lelantus());
        assert!(CowStrategy::LelantusCow.is_lelantus());
        assert!(!CowStrategy::Baseline.is_lelantus());
        assert!(!CowStrategy::SilentShredder.is_lelantus());
        assert_eq!(CowStrategy::all().len(), 4);
        assert_eq!(CowStrategy::LelantusCow.to_string(), "Lelantus-CoW");
    }

    #[test]
    fn reference_structures_builder() {
        let cfg = KernelConfig::default();
        assert!(!cfg.reference_structures, "fast structures are the default");
        let cfg = cfg.with_reference_structures();
        assert!(cfg.reference_structures);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn config_validation() {
        assert!(KernelConfig::default().validate().is_ok());
        assert!(KernelConfig { phys_bytes: 1 << 20, ..KernelConfig::default() }
            .validate()
            .is_err());
        assert!(KernelConfig { phys_bytes: (256 << 20) + 4096, ..KernelConfig::default() }
            .validate()
            .is_err());
        assert!(KernelConfig { mmap_base: 0x1000, ..KernelConfig::default() }.validate().is_err());
    }
}
