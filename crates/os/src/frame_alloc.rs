//! A buddy allocator over physical page frames.
//!
//! Manages the OS-visible data area in power-of-two blocks from 4 KB
//! (order 0) up to 2 MB (order 9, a huge page) and beyond, with the
//! classic split-on-alloc / merge-on-free discipline. This is the
//! substrate behind `alloc_page()` in the fault handlers.

use lelantus_types::PhysAddr;
use std::collections::BTreeSet;

/// Smallest block: one 4 KB frame.
pub const BASE_ORDER_BYTES: u64 = 4096;

/// Largest supported order (order 11 = 8 MB), comfortably above huge
/// pages (order 9 = 2 MB).
pub const MAX_ORDER: u32 = 11;

/// A power-of-two buddy allocator.
///
/// # Examples
///
/// ```
/// use lelantus_os::BuddyAllocator;
///
/// let mut buddy = BuddyAllocator::new(0x0, 1 << 20); // 1 MiB arena
/// let frame = buddy.alloc(0).expect("a 4 KB frame");
/// buddy.free(frame, 0);
/// assert_eq!(buddy.free_bytes(), 1 << 20);
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: u64,
    total_bytes: u64,
    /// free_lists[order] holds offsets (from base) of free blocks.
    free_lists: Vec<BTreeSet<u64>>,
    /// Live allocations as (offset, order) — double-free detection.
    allocated: BTreeSet<(u64, u32)>,
    free_bytes: u64,
}

impl BuddyAllocator {
    /// Creates an allocator over `[base, base + bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if `base`/`bytes` are not multiples of 4 KB or `bytes`
    /// is zero.
    pub fn new(base: u64, bytes: u64) -> Self {
        assert!(bytes > 0 && bytes.is_multiple_of(BASE_ORDER_BYTES), "arena must be whole frames");
        assert!(base.is_multiple_of(BASE_ORDER_BYTES), "base must be frame-aligned");
        let mut a = Self {
            base,
            total_bytes: bytes,
            free_lists: vec![BTreeSet::new(); MAX_ORDER as usize + 1],
            allocated: BTreeSet::new(),
            free_bytes: 0,
        };
        // Seed with maximal aligned blocks.
        let mut offset = 0;
        while offset < bytes {
            let mut order = MAX_ORDER;
            loop {
                let size = Self::order_bytes(order);
                if offset % size == 0 && offset + size <= bytes {
                    break;
                }
                order -= 1;
            }
            a.free_lists[order as usize].insert(offset);
            a.free_bytes += Self::order_bytes(order);
            offset += Self::order_bytes(order);
        }
        a
    }

    /// Bytes in a block of `order`.
    pub fn order_bytes(order: u32) -> u64 {
        BASE_ORDER_BYTES << order
    }

    /// Order needed for an allocation of `bytes`.
    pub fn order_for_bytes(bytes: u64) -> u32 {
        let mut order = 0;
        while Self::order_bytes(order) < bytes {
            order += 1;
        }
        order
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free_bytes
    }

    /// Total arena size.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Allocates a block of `order`, splitting larger blocks as needed.
    /// Returns `None` when no block is available.
    ///
    /// # Panics
    ///
    /// Panics if `order > MAX_ORDER`.
    pub fn alloc(&mut self, order: u32) -> Option<PhysAddr> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        // Find the smallest available order >= requested.
        let mut found = None;
        for o in order..=MAX_ORDER {
            if let Some(&offset) = self.free_lists[o as usize].iter().next() {
                found = Some((o, offset));
                break;
            }
        }
        let (mut o, offset) = found?;
        self.free_lists[o as usize].remove(&offset);
        // Split down to the requested order, freeing the upper buddies.
        while o > order {
            o -= 1;
            let buddy = offset + Self::order_bytes(o);
            self.free_lists[o as usize].insert(buddy);
        }
        self.free_bytes -= Self::order_bytes(order);
        self.allocated.insert((offset, order));
        Some(PhysAddr::new(self.base + offset))
    }

    /// Frees a block previously returned by [`BuddyAllocator::alloc`]
    /// with the same `order`, merging buddies eagerly.
    ///
    /// # Panics
    ///
    /// Panics on double free, misaligned address, or out-of-arena
    /// address.
    pub fn free(&mut self, addr: PhysAddr, order: u32) {
        assert!(order <= MAX_ORDER);
        let raw = addr.as_u64();
        assert!(raw >= self.base && raw - self.base < self.total_bytes, "address outside arena");
        let mut offset = raw - self.base;
        assert!(offset.is_multiple_of(Self::order_bytes(order)), "misaligned free");
        assert!(
            self.allocated.remove(&(offset, order)),
            "double free (or wrong order) at offset {offset:#x} order {order}"
        );
        let mut order = order;
        self.free_bytes += Self::order_bytes(order);
        loop {
            if order == MAX_ORDER {
                break;
            }
            let buddy = offset ^ Self::order_bytes(order);
            if buddy + Self::order_bytes(order) <= self.total_bytes
                && self.free_lists[order as usize].remove(&buddy)
            {
                offset = offset.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        self.free_lists[order as usize].insert(offset);
    }

    /// Number of free blocks at each order (diagnostics / invariants).
    pub fn free_counts(&self) -> Vec<usize> {
        self.free_lists.iter().map(BTreeSet::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut b = BuddyAllocator::new(0, 1 << 20);
        let before = b.free_bytes();
        let f = b.alloc(0).unwrap();
        assert_eq!(b.free_bytes(), before - 4096);
        b.free(f, 0);
        assert_eq!(b.free_bytes(), before);
    }

    #[test]
    fn split_and_merge_restore_initial_state() {
        let mut b = BuddyAllocator::new(0, 1 << 23); // 8 MB = one order-11 block
        assert_eq!(b.free_counts()[MAX_ORDER as usize], 1);
        let frames: Vec<_> = (0..16).map(|_| b.alloc(0).unwrap()).collect();
        assert!(b.free_counts()[MAX_ORDER as usize] == 0);
        for f in frames {
            b.free(f, 0);
        }
        assert_eq!(b.free_counts()[MAX_ORDER as usize], 1, "buddies fully merged");
    }

    #[test]
    fn huge_page_allocation_is_aligned() {
        let mut b = BuddyAllocator::new(0, 16 << 20);
        let _small = b.alloc(0).unwrap();
        let huge = b.alloc(9).unwrap(); // 2 MB
        assert!(huge.is_aligned_to(2 << 20));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut b = BuddyAllocator::new(0, 8192);
        assert!(b.alloc(0).is_some());
        assert!(b.alloc(0).is_some());
        assert!(b.alloc(0).is_none());
        assert!(b.alloc(9).is_none());
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let mut b = BuddyAllocator::new(0x1000_0000, 4 << 20);
        let mut got = Vec::new();
        while let Some(f) = b.alloc(1) {
            got.push(f.as_u64());
        }
        got.sort_unstable();
        for pair in got.windows(2) {
            assert!(pair[1] - pair[0] >= 8192, "order-1 blocks overlap");
        }
        assert_eq!(got.len(), (4 << 20) / 8192);
    }

    #[test]
    fn base_offset_respected() {
        let mut b = BuddyAllocator::new(0x4000_0000, 1 << 20);
        let f = b.alloc(0).unwrap();
        assert!(f.as_u64() >= 0x4000_0000);
        b.free(f, 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(0, 1 << 20);
        let f = b.alloc(0).unwrap();
        b.free(f, 0);
        b.free(f, 0);
    }

    #[test]
    #[should_panic(expected = "misaligned free")]
    fn misaligned_free_panics() {
        let mut b = BuddyAllocator::new(0, 1 << 20);
        let _ = b.alloc(1).unwrap();
        b.free(PhysAddr::new(4096), 1); // order-1 blocks are 8 KB aligned
    }

    #[test]
    fn non_power_of_two_arena_is_fully_usable() {
        // 12 KB arena = one 8 KB block + one 4 KB block.
        let mut b = BuddyAllocator::new(0, 12 << 10);
        assert_eq!(b.free_bytes(), 12 << 10);
        let a1 = b.alloc(1).unwrap();
        let a0 = b.alloc(0).unwrap();
        assert!(b.alloc(0).is_none());
        b.free(a1, 1);
        b.free(a0, 0);
        assert_eq!(b.free_bytes(), 12 << 10);
    }

    #[test]
    fn order_for_bytes_rounds_up() {
        assert_eq!(BuddyAllocator::order_for_bytes(1), 0);
        assert_eq!(BuddyAllocator::order_for_bytes(4096), 0);
        assert_eq!(BuddyAllocator::order_for_bytes(4097), 1);
        assert_eq!(BuddyAllocator::order_for_bytes(2 << 20), 9);
    }

    proptest! {
        #[test]
        fn prop_alloc_free_preserves_capacity(ops in prop::collection::vec((0u32..4, any::<bool>()), 1..200)) {
            let mut b = BuddyAllocator::new(0, 2 << 20);
            let capacity = b.free_bytes();
            let mut live: Vec<(PhysAddr, u32)> = Vec::new();
            for (order, do_alloc) in ops {
                if do_alloc || live.is_empty() {
                    if let Some(f) = b.alloc(order) {
                        live.push((f, order));
                    }
                } else {
                    let (f, o) = live.swap_remove(live.len() / 2);
                    b.free(f, o);
                }
            }
            let live_bytes: u64 = live.iter().map(|(_, o)| BuddyAllocator::order_bytes(*o)).sum();
            prop_assert_eq!(b.free_bytes() + live_bytes, capacity);
            for (f, o) in live.drain(..) {
                b.free(f, o);
            }
            prop_assert_eq!(b.free_bytes(), capacity);
        }

        #[test]
        fn prop_no_overlapping_allocations(orders in prop::collection::vec(0u32..5, 1..64)) {
            let mut b = BuddyAllocator::new(0, 4 << 20);
            let mut ranges: Vec<(u64, u64)> = Vec::new();
            for o in orders {
                if let Some(f) = b.alloc(o) {
                    let start = f.as_u64();
                    let end = start + BuddyAllocator::order_bytes(o);
                    for &(s, e) in &ranges {
                        prop_assert!(end <= s || start >= e, "overlap [{start:#x},{end:#x}) vs [{s:#x},{e:#x})");
                    }
                    ranges.push((start, end));
                }
            }
        }
    }
}
