//! A buddy allocator over physical page frames.
//!
//! Manages the OS-visible data area in power-of-two blocks from 4 KB
//! (order 0) up to 2 MB (order 9, a huge page) and beyond, with the
//! classic split-on-alloc / merge-on-free discipline. This is the
//! substrate behind `alloc_page()` in the fault handlers.
//!
//! Two backings:
//!
//! * **Bitmap** (default) — per-order hierarchical bitmaps
//!   ([`BitTree`]: one bit per block, 64-way summary words stacked
//!   until a single root word). Push/pop/buddy-merge are word
//!   operations plus an O(levels) summary update — effectively O(1) —
//!   and `find_first` descends the summaries, so allocation still
//!   returns the *lowest free offset at the smallest sufficient
//!   order*, exactly the reference's `BTreeSet::iter().next()` choice.
//!   (A LIFO intrusive free list would be O(1) too, but would hand
//!   out different addresses and break the repo's bit-identity bar;
//!   the bitmap keeps address selection deterministic.) Double-free
//!   detection is a per-frame tag byte instead of a `BTreeSet` probe.
//! * **Reference** — the seed's `BTreeSet` free lists, kept behind
//!   `KernelConfig::with_reference_structures()`.

use lelantus_types::PhysAddr;
use std::collections::BTreeSet;

/// Smallest block: one 4 KB frame.
pub const BASE_ORDER_BYTES: u64 = 4096;

/// Largest supported order (order 11 = 8 MB), comfortably above huge
/// pages (order 9 = 2 MB).
pub const MAX_ORDER: u32 = 11;

/// Hierarchical bitmap over `nbits` slots: level 0 is one bit per
/// slot; each level above summarizes 64 words of the level below
/// (bit j set ⇔ word j is non-zero), up to a single root word.
/// `find_first` descends root→leaf via trailing-zero counts, so it
/// returns the lowest set bit in O(levels).
#[derive(Debug, Clone)]
struct BitTree {
    /// `levels[0]` are the leaf words; the last level is one word.
    levels: Vec<Vec<u64>>,
    count: usize,
}

impl BitTree {
    fn new(nbits: usize) -> Self {
        let mut levels = Vec::new();
        let mut len = nbits.max(1).div_ceil(64);
        levels.push(vec![0u64; len]);
        while len > 1 {
            len = len.div_ceil(64);
            levels.push(vec![0u64; len]);
        }
        Self { levels, count: 0 }
    }

    /// Sets bit `i` (must be clear).
    fn set(&mut self, i: usize) {
        let (mut word, mut bit) = (i / 64, i % 64);
        debug_assert_eq!(self.levels[0][word] & (1 << bit), 0, "bit already set");
        for level in &mut self.levels {
            let was = level[word];
            level[word] = was | 1 << bit;
            if was != 0 {
                break; // summaries above are already set
            }
            (word, bit) = (word / 64, word % 64);
        }
        self.count += 1;
    }

    /// Clears bit `i` if set; returns whether it was set.
    fn test_and_clear(&mut self, i: usize) -> bool {
        let (mut word, mut bit) = (i / 64, i % 64);
        if self.levels[0][word] & (1 << bit) == 0 {
            return false;
        }
        for level in &mut self.levels {
            level[word] &= !(1 << bit);
            if level[word] != 0 {
                break; // word still non-empty: summaries stay set
            }
            (word, bit) = (word / 64, word % 64);
        }
        self.count -= 1;
        true
    }

    /// Index of the lowest set bit, if any.
    fn find_first(&self) -> Option<usize> {
        if self.levels.last().expect("at least one level")[0] == 0 {
            return None;
        }
        let mut word = 0usize;
        for level in self.levels.iter().rev() {
            word = word * 64 + level[word].trailing_zeros() as usize;
        }
        Some(word)
    }

    fn len(&self) -> usize {
        self.count
    }
}

#[derive(Debug, Clone)]
enum Repr {
    Bitmap {
        /// `trees[order]`: bit `b` set ⇔ block at offset
        /// `b * order_bytes(order)` is free at that order.
        trees: Vec<BitTree>,
        /// Per-frame allocation tag: `order + 1` at the first frame of
        /// a live allocation, 0 otherwise. Replaces the reference's
        /// `BTreeSet<(offset, order)>` double-free probe with one
        /// byte load.
        alloc_tag: Vec<u8>,
    },
    Reference {
        /// free_lists[order] holds offsets (from base) of free blocks.
        free_lists: Vec<BTreeSet<u64>>,
        /// Live allocations as (offset, order) — double-free detection.
        allocated: BTreeSet<(u64, u32)>,
    },
}

/// A power-of-two buddy allocator.
///
/// # Examples
///
/// ```
/// use lelantus_os::BuddyAllocator;
///
/// let mut buddy = BuddyAllocator::new(0x0, 1 << 20); // 1 MiB arena
/// let frame = buddy.alloc(0).expect("a 4 KB frame");
/// buddy.free(frame, 0);
/// assert_eq!(buddy.free_bytes(), 1 << 20);
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: u64,
    total_bytes: u64,
    free_bytes: u64,
    repr: Repr,
}

impl BuddyAllocator {
    /// Creates an allocator over `[base, base + bytes)` on the bitmap
    /// backing.
    ///
    /// # Panics
    ///
    /// Panics if `base`/`bytes` are not multiples of 4 KB or `bytes`
    /// is zero.
    pub fn new(base: u64, bytes: u64) -> Self {
        let trees = (0..=MAX_ORDER)
            .map(|o| BitTree::new((bytes / Self::order_bytes(o)) as usize))
            .collect();
        let alloc_tag = vec![0u8; (bytes / BASE_ORDER_BYTES) as usize];
        Self::seeded(base, bytes, Repr::Bitmap { trees, alloc_tag })
    }

    /// Creates an allocator over `[base, base + bytes)` on the
    /// reference `BTreeSet` backing.
    ///
    /// # Panics
    ///
    /// Panics if `base`/`bytes` are not multiples of 4 KB or `bytes`
    /// is zero.
    pub fn new_reference(base: u64, bytes: u64) -> Self {
        Self::seeded(
            base,
            bytes,
            Repr::Reference {
                free_lists: vec![BTreeSet::new(); MAX_ORDER as usize + 1],
                allocated: BTreeSet::new(),
            },
        )
    }

    fn seeded(base: u64, bytes: u64, repr: Repr) -> Self {
        assert!(bytes > 0 && bytes.is_multiple_of(BASE_ORDER_BYTES), "arena must be whole frames");
        assert!(base.is_multiple_of(BASE_ORDER_BYTES), "base must be frame-aligned");
        let mut a = Self { base, total_bytes: bytes, free_bytes: 0, repr };
        // Seed with maximal aligned blocks.
        let mut offset = 0;
        while offset < bytes {
            let mut order = MAX_ORDER;
            loop {
                let size = Self::order_bytes(order);
                if offset % size == 0 && offset + size <= bytes {
                    break;
                }
                order -= 1;
            }
            a.push_free(order, offset);
            a.free_bytes += Self::order_bytes(order);
            offset += Self::order_bytes(order);
        }
        a
    }

    /// Bytes in a block of `order`.
    pub fn order_bytes(order: u32) -> u64 {
        BASE_ORDER_BYTES << order
    }

    /// Order needed for an allocation of `bytes`.
    pub fn order_for_bytes(bytes: u64) -> u32 {
        let mut order = 0;
        while Self::order_bytes(order) < bytes {
            order += 1;
        }
        order
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free_bytes
    }

    /// Total arena size.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    #[inline]
    fn push_free(&mut self, order: u32, offset: u64) {
        match &mut self.repr {
            Repr::Bitmap { trees, .. } => {
                trees[order as usize].set((offset / Self::order_bytes(order)) as usize);
            }
            Repr::Reference { free_lists, .. } => {
                free_lists[order as usize].insert(offset);
            }
        }
    }

    /// Allocates a block of `order`, splitting larger blocks as needed.
    /// Returns `None` when no block is available. The block chosen is
    /// the lowest free offset at the smallest sufficient order, on
    /// both backings — allocation addresses are deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `order > MAX_ORDER`.
    pub fn alloc(&mut self, order: u32) -> Option<PhysAddr> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        // Find the smallest available order >= requested.
        let found = match &mut self.repr {
            Repr::Bitmap { trees, .. } => (order..=MAX_ORDER).find_map(|o| {
                let bit = trees[o as usize].find_first()?;
                trees[o as usize].test_and_clear(bit);
                Some((o, bit as u64 * Self::order_bytes(o)))
            }),
            Repr::Reference { free_lists, .. } => (order..=MAX_ORDER).find_map(|o| {
                let offset = *free_lists[o as usize].iter().next()?;
                free_lists[o as usize].remove(&offset);
                Some((o, offset))
            }),
        };
        let (mut o, offset) = found?;
        // Split down to the requested order, freeing the upper buddies.
        while o > order {
            o -= 1;
            let buddy = offset + Self::order_bytes(o);
            self.push_free(o, buddy);
        }
        self.free_bytes -= Self::order_bytes(order);
        match &mut self.repr {
            Repr::Bitmap { alloc_tag, .. } => {
                alloc_tag[(offset / BASE_ORDER_BYTES) as usize] = order as u8 + 1;
            }
            Repr::Reference { allocated, .. } => {
                allocated.insert((offset, order));
            }
        }
        Some(PhysAddr::new(self.base + offset))
    }

    /// Frees a block previously returned by [`BuddyAllocator::alloc`]
    /// with the same `order`, merging buddies eagerly.
    ///
    /// # Panics
    ///
    /// Panics on double free, misaligned address, or out-of-arena
    /// address.
    pub fn free(&mut self, addr: PhysAddr, order: u32) {
        assert!(order <= MAX_ORDER);
        let raw = addr.as_u64();
        assert!(raw >= self.base && raw - self.base < self.total_bytes, "address outside arena");
        let mut offset = raw - self.base;
        assert!(offset.is_multiple_of(Self::order_bytes(order)), "misaligned free");
        let released = match &mut self.repr {
            Repr::Bitmap { alloc_tag, .. } => {
                let tag = &mut alloc_tag[(offset / BASE_ORDER_BYTES) as usize];
                let hit = *tag == order as u8 + 1;
                if hit {
                    *tag = 0;
                }
                hit
            }
            Repr::Reference { allocated, .. } => allocated.remove(&(offset, order)),
        };
        assert!(released, "double free (or wrong order) at offset {offset:#x} order {order}");
        let mut order = order;
        self.free_bytes += Self::order_bytes(order);
        loop {
            if order == MAX_ORDER {
                break;
            }
            let buddy = offset ^ Self::order_bytes(order);
            let merged = buddy + Self::order_bytes(order) <= self.total_bytes
                && match &mut self.repr {
                    Repr::Bitmap { trees, .. } => trees[order as usize]
                        .test_and_clear((buddy / Self::order_bytes(order)) as usize),
                    Repr::Reference { free_lists, .. } => free_lists[order as usize].remove(&buddy),
                };
            if merged {
                offset = offset.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        self.push_free(order, offset);
    }

    /// Number of free blocks at each order (diagnostics / invariants).
    pub fn free_counts(&self) -> Vec<usize> {
        match &self.repr {
            Repr::Bitmap { trees, .. } => trees.iter().map(BitTree::len).collect(),
            Repr::Reference { free_lists, .. } => free_lists.iter().map(BTreeSet::len).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bittree_set_clear_find() {
        let mut t = BitTree::new(100_000);
        assert_eq!(t.find_first(), None);
        for &i in &[99_999usize, 70_001, 64, 63, 7] {
            t.set(i);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.find_first(), Some(7));
        assert!(t.test_and_clear(7));
        assert!(!t.test_and_clear(7));
        assert_eq!(t.find_first(), Some(63));
        assert!(t.test_and_clear(63));
        assert!(t.test_and_clear(64));
        assert_eq!(t.find_first(), Some(70_001));
        assert!(t.test_and_clear(70_001));
        assert_eq!(t.find_first(), Some(99_999));
        assert!(t.test_and_clear(99_999));
        assert_eq!(t.find_first(), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn bittree_single_word() {
        let mut t = BitTree::new(10);
        t.set(9);
        assert_eq!(t.find_first(), Some(9));
        t.set(0);
        assert_eq!(t.find_first(), Some(0));
    }

    fn both(base: u64, bytes: u64) -> [BuddyAllocator; 2] {
        [BuddyAllocator::new(base, bytes), BuddyAllocator::new_reference(base, bytes)]
    }

    #[test]
    fn alloc_free_roundtrip() {
        for mut b in both(0, 1 << 20) {
            let before = b.free_bytes();
            let f = b.alloc(0).unwrap();
            assert_eq!(b.free_bytes(), before - 4096);
            b.free(f, 0);
            assert_eq!(b.free_bytes(), before);
        }
    }

    #[test]
    fn split_and_merge_restore_initial_state() {
        for mut b in both(0, 1 << 23) {
            // 8 MB = one order-11 block
            assert_eq!(b.free_counts()[MAX_ORDER as usize], 1);
            let frames: Vec<_> = (0..16).map(|_| b.alloc(0).unwrap()).collect();
            assert!(b.free_counts()[MAX_ORDER as usize] == 0);
            for f in frames {
                b.free(f, 0);
            }
            assert_eq!(b.free_counts()[MAX_ORDER as usize], 1, "buddies fully merged");
        }
    }

    #[test]
    fn huge_page_allocation_is_aligned() {
        for mut b in both(0, 16 << 20) {
            let _small = b.alloc(0).unwrap();
            let huge = b.alloc(9).unwrap(); // 2 MB
            assert!(huge.is_aligned_to(2 << 20));
        }
    }

    #[test]
    fn exhaustion_returns_none() {
        for mut b in both(0, 8192) {
            assert!(b.alloc(0).is_some());
            assert!(b.alloc(0).is_some());
            assert!(b.alloc(0).is_none());
            assert!(b.alloc(9).is_none());
        }
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        for mut b in both(0x1000_0000, 4 << 20) {
            let mut got = Vec::new();
            while let Some(f) = b.alloc(1) {
                got.push(f.as_u64());
            }
            got.sort_unstable();
            for pair in got.windows(2) {
                assert!(pair[1] - pair[0] >= 8192, "order-1 blocks overlap");
            }
            assert_eq!(got.len(), (4 << 20) / 8192);
        }
    }

    #[test]
    fn base_offset_respected() {
        for mut b in both(0x4000_0000, 1 << 20) {
            let f = b.alloc(0).unwrap();
            assert!(f.as_u64() >= 0x4000_0000);
            b.free(f, 0);
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(0, 1 << 20);
        let f = b.alloc(0).unwrap();
        b.free(f, 0);
        b.free(f, 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics_reference() {
        let mut b = BuddyAllocator::new_reference(0, 1 << 20);
        let f = b.alloc(0).unwrap();
        b.free(f, 0);
        b.free(f, 0);
    }

    #[test]
    #[should_panic(expected = "misaligned free")]
    fn misaligned_free_panics() {
        let mut b = BuddyAllocator::new(0, 1 << 20);
        let _ = b.alloc(1).unwrap();
        b.free(PhysAddr::new(4096), 1); // order-1 blocks are 8 KB aligned
    }

    #[test]
    fn non_power_of_two_arena_is_fully_usable() {
        // 12 KB arena = one 8 KB block + one 4 KB block.
        for mut b in both(0, 12 << 10) {
            assert_eq!(b.free_bytes(), 12 << 10);
            let a1 = b.alloc(1).unwrap();
            let a0 = b.alloc(0).unwrap();
            assert!(b.alloc(0).is_none());
            b.free(a1, 1);
            b.free(a0, 0);
            assert_eq!(b.free_bytes(), 12 << 10);
        }
    }

    #[test]
    fn order_for_bytes_rounds_up() {
        assert_eq!(BuddyAllocator::order_for_bytes(1), 0);
        assert_eq!(BuddyAllocator::order_for_bytes(4096), 0);
        assert_eq!(BuddyAllocator::order_for_bytes(4097), 1);
        assert_eq!(BuddyAllocator::order_for_bytes(2 << 20), 9);
    }

    proptest! {
        #[test]
        fn prop_alloc_free_preserves_capacity(ops in prop::collection::vec((0u32..4, any::<bool>()), 1..200)) {
            let mut b = BuddyAllocator::new(0, 2 << 20);
            let capacity = b.free_bytes();
            let mut live: Vec<(PhysAddr, u32)> = Vec::new();
            for (order, do_alloc) in ops {
                if do_alloc || live.is_empty() {
                    if let Some(f) = b.alloc(order) {
                        live.push((f, order));
                    }
                } else {
                    let (f, o) = live.swap_remove(live.len() / 2);
                    b.free(f, o);
                }
            }
            let live_bytes: u64 = live.iter().map(|(_, o)| BuddyAllocator::order_bytes(*o)).sum();
            prop_assert_eq!(b.free_bytes() + live_bytes, capacity);
            for (f, o) in live.drain(..) {
                b.free(f, o);
            }
            prop_assert_eq!(b.free_bytes(), capacity);
        }

        #[test]
        fn prop_no_overlapping_allocations(orders in prop::collection::vec(0u32..5, 1..64)) {
            let mut b = BuddyAllocator::new(0, 4 << 20);
            let mut ranges: Vec<(u64, u64)> = Vec::new();
            for o in orders {
                if let Some(f) = b.alloc(o) {
                    let start = f.as_u64();
                    let end = start + BuddyAllocator::order_bytes(o);
                    for &(s, e) in &ranges {
                        prop_assert!(end <= s || start >= e, "overlap [{start:#x},{end:#x}) vs [{s:#x},{e:#x})");
                    }
                    ranges.push((start, end));
                }
            }
        }

        /// The bitmap backing must make byte-for-byte identical
        /// address choices to the reference under arbitrary
        /// interleavings — this is what keeps `HwAction` streams
        /// bit-identical at the kernel level.
        #[test]
        fn prop_bitmap_matches_reference(ops in prop::collection::vec((0u32..6, any::<bool>()), 1..300)) {
            let mut fast = BuddyAllocator::new(0x1000, 4 << 20);
            let mut reference = BuddyAllocator::new_reference(0x1000, 4 << 20);
            let mut live: Vec<(PhysAddr, u32)> = Vec::new();
            for (order, do_alloc) in ops {
                if do_alloc || live.is_empty() {
                    let (a, b) = (fast.alloc(order), reference.alloc(order));
                    prop_assert_eq!(a, b, "divergent allocation at order {}", order);
                    if let Some(f) = a {
                        live.push((f, order));
                    }
                } else {
                    let (f, o) = live.swap_remove(live.len() / 2);
                    fast.free(f, o);
                    reference.free(f, o);
                }
                prop_assert_eq!(fast.free_bytes(), reference.free_bytes());
                prop_assert_eq!(fast.free_counts(), reference.free_counts());
            }
        }
    }
}
