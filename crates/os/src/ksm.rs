//! Kernel same-page merging (KSM).
//!
//! The paper lists deduplication as a major CoW consumer (§II-C):
//! KSM scans madvised areas, merges identical pages into one shared
//! write-protected page, and relies on CoW to split them again on
//! write. The scanner here is content-agnostic — the kernel cannot see
//! simulated memory — so callers supply a page-content fingerprint via
//! a closure (the full-system simulator hashes real page bytes).

use crate::error::OsError;
use crate::kernel::{HwAction, Kernel, ProcessId};
use lelantus_types::{PhysAddr, VirtAddr};
use std::collections::HashMap;

/// One page advised for merging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KsmCandidate {
    /// Owning process.
    pub pid: ProcessId,
    /// Page base virtual address.
    pub va: VirtAddr,
}

/// Result of one merge pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KsmReport {
    /// Pages that were remapped onto an existing twin.
    pub merged: usize,
    /// Distinct content classes seen.
    pub classes: usize,
    /// Hardware actions emitted by page releases during merging.
    pub actions: Vec<HwAction>,
}

/// Runs one KSM scan over `candidates`, merging pages whose
/// fingerprints match. `fingerprint` receives the page's *physical*
/// base and must return a stable content hash (identical content ⇒
/// identical hash).
///
/// # Errors
///
/// Propagates kernel errors for vanished mappings.
///
/// # Examples
///
/// See `crates/os/src/ksm.rs` tests and the `process_sandbox` example.
pub fn merge_pass(
    kernel: &mut Kernel,
    candidates: &[KsmCandidate],
    mut fingerprint: impl FnMut(PhysAddr) -> u64,
) -> Result<KsmReport, OsError> {
    let mut report = KsmReport::default();
    // Content class -> representative physical page.
    let mut stable: HashMap<u64, PhysAddr> = HashMap::new();
    for cand in candidates {
        let Some(pa) = kernel.translate(cand.pid, cand.va) else { continue };
        let hash = fingerprint(pa);
        match stable.get(&hash) {
            None => {
                stable.insert(hash, pa);
            }
            Some(&target) if target == pa => {
                // Already the representative (e.g. shared via fork).
            }
            Some(&target) => {
                let mut actions = kernel.ksm_remap(cand.pid, cand.va, target)?;
                report.actions.append(&mut actions);
                report.merged += 1;
            }
        }
    }
    report.classes = stable.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CowStrategy, KernelConfig};
    use crate::kernel::AccessKind;
    use lelantus_types::PageSize;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            phys_bytes: 64 << 20,
            ..KernelConfig::default_with(CowStrategy::Lelantus)
        })
    }

    #[test]
    fn all_identical_pages_collapse_to_one() {
        let mut k = kernel();
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 3 * 4096, PageSize::Regular4K).unwrap();
        for i in 0..3u64 {
            k.access(pid, va + i * 4096, AccessKind::Write).unwrap();
        }
        let free_before = k.free_bytes();
        let cands: Vec<_> = (0..3u64).map(|i| KsmCandidate { pid, va: va + i * 4096 }).collect();
        let report = merge_pass(&mut k, &cands, |_| 7).unwrap();
        assert_eq!(report.merged, 2);
        assert_eq!(report.classes, 1);
        assert_eq!(k.free_bytes(), free_before + 2 * 4096, "two frames reclaimed");
        // All three VAs resolve to one frame.
        let p0 = k.translate(pid, va).unwrap();
        assert_eq!(k.translate(pid, va + 4096).unwrap(), p0 + 4096 % 4096);
        assert_eq!(k.map_count(p0.align_to(4096)), Some(3));
        // Writing a merged page CoW-faults again.
        let out = k.access(pid, va + 4096, AccessKind::Write).unwrap();
        assert!(out.fault.is_some());
    }

    #[test]
    fn distinct_pages_do_not_merge() {
        let mut k = kernel();
        let pid = k.spawn_init();
        let va = k.mmap_anon(pid, 2 * 4096, PageSize::Regular4K).unwrap();
        k.access(pid, va, AccessKind::Write).unwrap();
        k.access(pid, va + 4096, AccessKind::Write).unwrap();
        let cands = [KsmCandidate { pid, va }, KsmCandidate { pid, va: va + 4096 }];
        let report = merge_pass(&mut k, &cands, |pa| pa.as_u64()).unwrap();
        assert_eq!(report.merged, 0);
        assert_eq!(report.classes, 2);
    }
}
