//! Typed errors for malformed traces.

/// Everything that can go wrong opening or decoding a `.ltr` file.
///
/// Each malformation class is a distinct variant so callers (the CLI
/// in particular) can report precisely what is wrong and exit
/// non-zero without panicking.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying file could not be read.
    Io(std::io::Error),
    /// The file does not start with the `LTRC` magic: not a trace.
    BadMagic,
    /// The format version is one this build does not understand.
    BadVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The file is cut short: too small for header + footer, or the
    /// trailing `LTRE` magic is missing.
    Truncated,
    /// Header + body bytes do not hash to the stored checksum.
    ChecksumMismatch {
        /// Checksum stored in the footer.
        stored: u64,
        /// Checksum computed over the file contents.
        computed: u64,
    },
    /// The header fields are inconsistent (e.g. unknown page size).
    BadHeader {
        /// What is wrong.
        reason: &'static str,
    },
    /// A body record failed to decode (only reachable on files whose
    /// checksum was forged to match, i.e. writer bugs or crafted
    /// input — never on honest corruption).
    BadRecord {
        /// Byte offset of the record within the file.
        offset: usize,
        /// What is wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a .ltr trace (bad magic)"),
            TraceError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported trace format version {found} (this build reads version {})",
                    crate::format::FORMAT_VERSION
                )
            }
            TraceError::Truncated => write!(f, "trace file is truncated (footer missing)"),
            TraceError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "trace checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            TraceError::BadHeader { reason } => write!(f, "bad trace header: {reason}"),
            TraceError::BadRecord { offset, reason } => {
                write!(f, "bad trace record at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}
