//! Zero-copy `.ltr` decoder.

use crate::error::TraceError;
use crate::format::{
    checksum64, unzigzag, uvarint, TraceHeader, TraceOp, TraceOpKind, TraceTotals, FOOTER_LEN,
    FOOTER_MAGIC, FORMAT_VERSION, HEADER_LEN, HEADER_MAGIC, KIND_PATTERN, KIND_PATTERN_REPEAT,
    KIND_READ, KIND_WRITE, OP_BATCH, OP_CONTIG, OP_CRASH_RECOVER, OP_EXIT, OP_FINISH, OP_FORK,
    OP_KSM, OP_MADVISE, OP_MERKLE_ROOT, OP_MMAP, OP_MPROTECT, OP_MUNMAP, OP_RESET_FOOTPRINT,
    OP_SPAWN, OP_SYNC_CORES, OP_USE_CORE, OP_WRITE_NT,
};
use crate::mmap::Mapping;
use lelantus_types::PageSize;
use std::path::Path;

/// An open, validated trace: header, footer, and checksum are checked
/// once at open time, so iteration afterwards touches each body byte
/// exactly once. On Unix the file is memory-mapped and every payload
/// slice a [`Record`] hands out borrows the mapping directly.
#[derive(Debug)]
pub struct Trace {
    data: Mapping,
    header: TraceHeader,
    totals: TraceTotals,
}

impl Trace {
    /// Opens and validates `path`, memory-mapping when possible.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on read failure, otherwise the precise
    /// malformation: [`TraceError::BadMagic`],
    /// [`TraceError::BadVersion`], [`TraceError::Truncated`],
    /// [`TraceError::ChecksumMismatch`], or [`TraceError::BadHeader`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::validate(Mapping::open(path.as_ref())?)
    }

    /// Opens via the buffered-read fallback (no mapping), for targets
    /// or callers that cannot mmap. Identical semantics to
    /// [`Trace::open`].
    ///
    /// # Errors
    ///
    /// Same as [`Trace::open`].
    pub fn open_buffered(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::validate(Mapping::read(path.as_ref())?)
    }

    /// Validates an in-memory trace image (tests, pipes).
    ///
    /// # Errors
    ///
    /// Same as [`Trace::open`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, TraceError> {
        Self::validate(Mapping::Owned(bytes))
    }

    fn validate(data: Mapping) -> Result<Self, TraceError> {
        let b = data.bytes();
        if b.len() < 4 {
            return Err(TraceError::Truncated);
        }
        if b[0..4] != HEADER_MAGIC {
            return Err(TraceError::BadMagic);
        }
        if b.len() < 6 {
            return Err(TraceError::Truncated);
        }
        let version = u16::from_le_bytes(b[4..6].try_into().expect("2 bytes"));
        if version != FORMAT_VERSION {
            return Err(TraceError::BadVersion { found: version });
        }
        if b.len() < HEADER_LEN + FOOTER_LEN {
            return Err(TraceError::Truncated);
        }
        let n = b.len();
        if b[n - 4..] != FOOTER_MAGIC {
            return Err(TraceError::Truncated);
        }
        let stored = u64::from_le_bytes(b[n - 12..n - 4].try_into().expect("8 bytes"));
        let computed = checksum64(&b[..n - FOOTER_LEN]);
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }
        let header = TraceHeader::decode(&b[..HEADER_LEN])?;
        let totals = TraceTotals {
            ops: u64::from_le_bytes(b[n - 28..n - 20].try_into().expect("8 bytes")),
            records: u64::from_le_bytes(b[n - 20..n - 12].try_into().expect("8 bytes")),
        };
        Ok(Self { data, header, totals })
    }

    /// The recorded geometry.
    pub fn header(&self) -> TraceHeader {
        self.header
    }

    /// Op and record totals from the footer (covered by the checksum).
    pub fn totals(&self) -> TraceTotals {
        self.totals
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.data.bytes().len() as u64
    }

    /// True when the trace is served from a live memory mapping
    /// rather than an owned buffer.
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Iterates the body records in order. Payload slices borrow the
    /// mapping; nothing is allocated per record.
    pub fn records(&self) -> Records<'_> {
        Records {
            buf: self.data.bytes(),
            pos: HEADER_LEN,
            end: self.data.bytes().len() - FOOTER_LEN,
        }
    }
}

/// Iterator over a trace's body records.
#[derive(Debug, Clone)]
pub struct Records<'a> {
    /// The whole file image (offsets below are absolute file offsets,
    /// which keeps error reports meaningful).
    buf: &'a [u8],
    pos: usize,
    end: usize,
}

impl<'a> Records<'a> {
    fn u(&mut self) -> Result<u64, &'static str> {
        let mut pos = self.pos;
        let v = uvarint(&self.buf[..self.end], &mut pos).ok_or("bad varint")?;
        self.pos = pos;
        Ok(v)
    }

    fn byte(&mut self) -> Result<u8, &'static str> {
        if self.pos >= self.end {
            return Err("record cut short");
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: u64) -> Result<&'a [u8], &'static str> {
        let n = usize::try_from(n).map_err(|_| "length overflow")?;
        let end = self.pos.checked_add(n).filter(|&e| e <= self.end).ok_or("record cut short")?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn parse(&mut self) -> Result<Record<'a>, &'static str> {
        let opcode = self.byte()?;
        Ok(match opcode {
            OP_BATCH => {
                let pid = self.u()?;
                let nops = self.u()?;
                let ops_len = self.u()?;
                let data_len = self.u()?;
                if data_len > u64::from(u32::MAX) {
                    return Err("batch arena exceeds 4 GiB");
                }
                let base = self.pos;
                let ops_bytes = self.take(ops_len)?;
                let data = self.take(data_len)?;
                Record::Batch(BatchRecord { pid, nops, data, ops_bytes, base })
            }
            OP_SPAWN => Record::SpawnInit { pid: self.u()? },
            OP_MMAP => {
                let pid = self.u()?;
                let len = self.u()?;
                let page_bytes = self.u()?;
                let page_size = PageSize::all()
                    .into_iter()
                    .find(|p| p.bytes() == page_bytes)
                    .ok_or("unknown mmap page size")?;
                let va = self.u()?;
                Record::Mmap { pid, len, page_size, va }
            }
            OP_FORK => Record::Fork { parent: self.u()?, child: self.u()? },
            OP_EXIT => Record::Exit { pid: self.u()? },
            OP_MUNMAP => Record::Munmap { pid: self.u()?, va: self.u()? },
            OP_MADVISE => Record::MadviseDontneed { pid: self.u()?, va: self.u()?, len: self.u()? },
            OP_MPROTECT => {
                Record::Mprotect { pid: self.u()?, va: self.u()?, writable: self.byte()? != 0 }
            }
            OP_KSM => {
                let n = self.u()?;
                let bytes = self.u()?;
                let base = self.pos;
                let buf = self.take(bytes)?;
                Record::KsmMerge(KsmPairs { buf, pos: 0, remaining: n, base })
            }
            OP_USE_CORE => Record::UseCore { core: self.byte()? },
            OP_SYNC_CORES => Record::SyncCores,
            OP_FINISH => Record::Finish,
            OP_WRITE_NT => {
                let pid = self.u()?;
                let va = self.u()?;
                let len = self.u()?;
                Record::WriteNt { pid, va, data: self.take(len)? }
            }
            OP_CRASH_RECOVER => Record::CrashRecover,
            OP_RESET_FOOTPRINT => Record::ResetFootprint,
            OP_MERKLE_ROOT => Record::MerkleRoot { root: self.u()? },
            _ => return Err("unknown opcode"),
        })
    }
}

impl<'a> Iterator for Records<'a> {
    type Item = Result<Record<'a>, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.end {
            return None;
        }
        let start = self.pos;
        match self.parse() {
            Ok(r) => Some(Ok(r)),
            Err(reason) => {
                // A malformed record poisons the rest of the body:
                // stop rather than resynchronize on garbage.
                self.pos = self.end;
                Some(Err(TraceError::BadRecord { offset: start, reason }))
            }
        }
    }
}

/// One decoded body record. Payload slices (`Batch` arenas, `WriteNt`
/// data) borrow the trace image.
#[derive(Debug, Clone)]
pub enum Record<'a> {
    /// A batched access run (see [`BatchRecord`]).
    Batch(BatchRecord<'a>),
    /// `spawn_init` producing `pid`.
    SpawnInit {
        /// The pid the recorded run observed (replays must match).
        pid: u64,
    },
    /// `mmap` of `len` bytes returning base `va`.
    Mmap {
        /// Owning process.
        pid: u64,
        /// Mapping length in bytes.
        len: u64,
        /// Page size the mapping was created with.
        page_size: PageSize,
        /// The base the recorded run observed (replays must match).
        va: u64,
    },
    /// `fork` of `parent` producing `child`.
    Fork {
        /// Forked process.
        parent: u64,
        /// The child pid the recorded run observed.
        child: u64,
    },
    /// `exit`.
    Exit {
        /// Exiting process.
        pid: u64,
    },
    /// `munmap` of the VMA at `va`.
    Munmap {
        /// Owning process.
        pid: u64,
        /// VMA start address.
        va: u64,
    },
    /// `madvise(MADV_DONTNEED)` over `[va, va+len)`.
    MadviseDontneed {
        /// Owning process.
        pid: u64,
        /// Range start.
        va: u64,
        /// Range length in bytes.
        len: u64,
    },
    /// `mprotect` of the VMA at `va`.
    Mprotect {
        /// Owning process.
        pid: u64,
        /// VMA start address.
        va: u64,
        /// New write permission.
        writable: bool,
    },
    /// One KSM merge pass over the candidate pairs.
    KsmMerge(KsmPairs<'a>),
    /// `use_core`.
    UseCore {
        /// Core index (0..=7).
        core: u8,
    },
    /// `sync_cores` barrier.
    SyncCores,
    /// `finish` flush point.
    Finish,
    /// Non-temporal write of `data` at `va`.
    WriteNt {
        /// Writing process.
        pid: u64,
        /// Destination address.
        va: u64,
        /// Payload (borrowed from the trace image).
        data: &'a [u8],
    },
    /// Power-cycle crash and recovery.
    CrashRecover,
    /// Controller footprint reset.
    ResetFootprint,
    /// A Merkle-root observation and the value the recorded run saw.
    MerkleRoot {
        /// Root over the counter blocks at this point.
        root: u64,
    },
}

/// A batch record: process, op count, the borrowed payload arena, and
/// the still-packed op stream (decode with [`BatchRecord::ops`]).
#[derive(Debug, Clone)]
pub struct BatchRecord<'a> {
    /// Process the batch runs as.
    pub pid: u64,
    /// Number of packed ops.
    pub nops: u64,
    /// Payload arena for explicit-data writes — a borrowed slice of
    /// the trace image (zero-copy all the way into the sim).
    pub data: &'a [u8],
    ops_bytes: &'a [u8],
    /// File offset of the op stream (error reporting).
    base: usize,
}

impl<'a> BatchRecord<'a> {
    /// Decodes the packed op stream. Allocation-free; write ops'
    /// `data_off` is reconstructed as the running arena offset
    /// (batches are canonical: writes consume the arena in order).
    pub fn ops(&self) -> BatchOps<'a> {
        BatchOps {
            buf: self.ops_bytes,
            pos: 0,
            remaining: self.nops,
            prev_va: 0,
            prev_end: 0,
            last_tag: 0,
            arena: 0,
            data_len: self.data.len() as u64,
            base: self.base,
        }
    }
}

/// Streaming decoder for a batch's packed ops.
#[derive(Debug, Clone)]
pub struct BatchOps<'a> {
    buf: &'a [u8],
    pos: usize,
    remaining: u64,
    prev_va: u64,
    prev_end: u64,
    last_tag: u8,
    arena: u64,
    data_len: u64,
    base: usize,
}

impl BatchOps<'_> {
    fn fail(&mut self, reason: &'static str) -> TraceError {
        let offset = self.base + self.pos;
        self.remaining = 0;
        TraceError::BadRecord { offset, reason }
    }

    fn decode(&mut self) -> Result<TraceOp, &'static str> {
        let b = *self.buf.get(self.pos).ok_or("op stream cut short")?;
        self.pos += 1;
        let contig = b & OP_CONTIG != 0;
        let packed_len = (b >> 3) & 0x1F;
        let va = if contig {
            self.prev_end
        } else {
            let delta =
                uvarint(self.buf, &mut self.pos).ok_or("bad address delta").map(unzigzag)?;
            self.prev_va.wrapping_add(delta as u64)
        };
        let len = if packed_len != 0 {
            u32::from(packed_len)
        } else {
            let l = uvarint(self.buf, &mut self.pos).ok_or("bad op length")?;
            u32::try_from(l).map_err(|_| "op length exceeds 4 GiB")?
        };
        let kind = match b & 3 {
            KIND_READ => TraceOpKind::Read,
            KIND_WRITE => {
                let end = self.arena.checked_add(u64::from(len)).ok_or("arena overflow")?;
                if end > self.data_len {
                    return Err("write op overruns the batch arena");
                }
                let data_off = self.arena as u32;
                self.arena = end;
                TraceOpKind::Write { data_off }
            }
            KIND_PATTERN => {
                let tag = *self.buf.get(self.pos).ok_or("op stream cut short")?;
                self.pos += 1;
                self.last_tag = tag;
                TraceOpKind::Pattern { tag }
            }
            KIND_PATTERN_REPEAT => TraceOpKind::Pattern { tag: self.last_tag },
            _ => unreachable!("2-bit kind"),
        };
        self.prev_va = va;
        self.prev_end = va.wrapping_add(u64::from(len));
        Ok(TraceOp { va, len, kind })
    }
}

impl Iterator for BatchOps<'_> {
    type Item = Result<TraceOp, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let op = match self.decode() {
            Ok(op) => op,
            Err(reason) => return Some(Err(self.fail(reason))),
        };
        if self.remaining == 0 {
            // Closing integrity checks on the last op.
            if self.pos != self.buf.len() {
                return Some(Err(self.fail("trailing bytes after last op")));
            }
            if self.arena != self.data_len {
                return Some(Err(self.fail("write ops do not cover the batch arena")));
            }
        }
        Some(Ok(op))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (0, Some(n))
    }
}

/// Streaming decoder for a KSM record's `(pid, va)` candidate pairs.
#[derive(Debug, Clone)]
pub struct KsmPairs<'a> {
    buf: &'a [u8],
    pos: usize,
    remaining: u64,
    base: usize,
}

impl KsmPairs<'_> {
    /// Number of pairs still to decode.
    pub fn len(&self) -> u64 {
        self.remaining
    }

    /// True when no pairs remain.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl Iterator for KsmPairs<'_> {
    type Item = Result<(u64, u64), TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let offset = self.base + self.pos;
        let pid = uvarint(self.buf, &mut self.pos);
        let va = uvarint(self.buf, &mut self.pos);
        match (pid, va) {
            (Some(pid), Some(va)) => Some(Ok((pid, va))),
            _ => {
                self.remaining = 0;
                Some(Err(TraceError::BadRecord { offset, reason: "bad ksm pair" }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;

    fn header() -> TraceHeader {
        TraceHeader { page_size: PageSize::Regular4K, phys_bytes: 32 << 20 }
    }

    fn sample_trace() -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), header()).unwrap();
        w.spawn_init(1).unwrap();
        w.mmap(1, 8192, PageSize::Regular4K, 0x10_0000).unwrap();
        w.batch(
            1,
            b"abcd",
            [
                TraceOp::write(0x10_0000, 4, 0),
                TraceOp::read(0x10_0004, 60),
                TraceOp::pattern(0x10_1000, 4096, 0xAA),
                TraceOp::pattern(0x10_0040, 1, 0xAA),
                TraceOp::pattern(0x10_0080, 1, 0xBB),
            ],
        )
        .unwrap();
        w.fork(1, 2).unwrap();
        w.ksm_merge([(1, 0x10_0000), (2, 0x10_0000)]).unwrap();
        w.write_nt(2, 0x10_0000, &[9; 64]).unwrap();
        w.merkle_root(0xDEAD_BEEF).unwrap();
        w.finish_event().unwrap();
        let (bytes, totals) = w.into_parts().unwrap();
        assert_eq!(totals.ops, 6);
        assert_eq!(totals.records, 8);
        bytes
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let t = Trace::from_bytes(sample_trace()).unwrap();
        assert_eq!(t.header(), header());
        assert_eq!(t.totals().ops, 6);
        let records: Vec<_> = t.records().map(|r| r.unwrap()).collect();
        assert_eq!(records.len(), 8);
        assert!(matches!(records[0], Record::SpawnInit { pid: 1 }));
        assert!(matches!(records[1], Record::Mmap { pid: 1, len: 8192, va: 0x10_0000, .. }));
        let Record::Batch(b) = &records[2] else { panic!("expected batch") };
        assert_eq!(b.pid, 1);
        assert_eq!(b.data, b"abcd");
        let ops: Vec<_> = b.ops().map(|o| o.unwrap()).collect();
        assert_eq!(
            ops,
            vec![
                TraceOp::write(0x10_0000, 4, 0),
                TraceOp::read(0x10_0004, 60),
                TraceOp::pattern(0x10_1000, 4096, 0xAA),
                TraceOp::pattern(0x10_0040, 1, 0xAA),
                TraceOp::pattern(0x10_0080, 1, 0xBB),
            ]
        );
        assert!(matches!(records[3], Record::Fork { parent: 1, child: 2 }));
        let Record::KsmMerge(pairs) = records[4].clone() else { panic!("expected ksm") };
        let pairs: Vec<_> = pairs.map(|p| p.unwrap()).collect();
        assert_eq!(pairs, vec![(1, 0x10_0000), (2, 0x10_0000)]);
        let Record::WriteNt { pid: 2, va: 0x10_0000, data } = records[5] else {
            panic!("expected write_nt")
        };
        assert_eq!(data, &[9; 64]);
        assert!(matches!(records[6], Record::MerkleRoot { root: 0xDEAD_BEEF }));
        assert!(matches!(records[7], Record::Finish));
    }

    #[test]
    fn contiguous_and_repeat_packing_is_compact() {
        // 64 single-byte same-tag pattern ops at a 64-byte stride:
        // 1 op byte + 2 delta bytes each after the first.
        let mut w = TraceWriter::new(Vec::new(), header()).unwrap();
        let ops = (0..64u64).map(|i| TraceOp::pattern(0x1000 + i * 64, 1, 7));
        w.batch(1, &[], ops).unwrap();
        let (bytes, totals) = w.into_parts().unwrap();
        assert_eq!(totals.ops, 64);
        let body = bytes.len() - HEADER_LEN - FOOTER_LEN;
        assert!(body <= 64 * 3 + 16, "packed body too large: {body} bytes");
        let t = Trace::from_bytes(bytes).unwrap();
        let Record::Batch(b) = t.records().next().unwrap().unwrap() else { panic!() };
        let decoded: Vec<_> = b.ops().map(|o| o.unwrap()).collect();
        assert_eq!(decoded.len(), 64);
        assert_eq!(decoded[63], TraceOp::pattern(0x1000 + 63 * 64, 1, 7));
    }

    #[test]
    fn open_rejects_each_malformation_distinctly() {
        let good = sample_trace();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(Trace::from_bytes(bad_magic), Err(TraceError::BadMagic)));

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        // Version corruption reports as BadVersion, not checksum: the
        // version gate runs first so future formats get a clear error.
        assert!(matches!(
            Trace::from_bytes(bad_version),
            Err(TraceError::BadVersion { found: 0x00FF })
        ));

        let truncated = good[..good.len() - 9].to_vec();
        assert!(matches!(Trace::from_bytes(truncated), Err(TraceError::Truncated)));

        assert!(matches!(Trace::from_bytes(good[..3].to_vec()), Err(TraceError::Truncated)));

        let mut flipped = good.clone();
        let mid = HEADER_LEN + 3;
        flipped[mid] ^= 0x40;
        assert!(matches!(Trace::from_bytes(flipped), Err(TraceError::ChecksumMismatch { .. })));

        assert!(Trace::from_bytes(good).is_ok());
    }

    #[test]
    fn header_only_trace_is_valid_and_empty() {
        let w = TraceWriter::new(Vec::new(), header()).unwrap();
        let (bytes, totals) = w.into_parts().unwrap();
        assert_eq!(totals, TraceTotals::default());
        let t = Trace::from_bytes(bytes).unwrap();
        assert_eq!(t.records().count(), 0);
    }
}
