//! Read-only file mappings with a buffered-read fallback.
//!
//! Unix targets map the file with a direct `mmap(2)` FFI call (`std`
//! already links libc, so no new dependency); everywhere else — and
//! whenever mapping fails, e.g. on an empty file or an exotic
//! filesystem — the file is read into an owned buffer instead. Both
//! shapes expose one contiguous `&[u8]`, so the reader above is
//! agnostic.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// A read-only view of a whole file: memory-mapped when possible,
/// owned otherwise.
#[derive(Debug)]
pub enum Mapping {
    /// Bytes read (or handed) into process memory.
    Owned(Vec<u8>),
    /// A live `mmap(2)` mapping, unmapped on drop.
    #[cfg(unix)]
    Mapped(unix::Map),
}

impl Mapping {
    /// Maps `path`, falling back to a buffered read.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        #[cfg(unix)]
        if let Some(map) = unix::Map::new(&file, len) {
            return Ok(Mapping::Mapped(map));
        }
        let mut buf = Vec::with_capacity(len as usize);
        file.read_to_end(&mut buf)?;
        Ok(Mapping::Owned(buf))
    }

    /// Reads `path` into an owned buffer, never mapping (the fallback
    /// path, kept directly reachable for tests and non-mmap targets).
    pub fn read(path: &Path) -> io::Result<Self> {
        Ok(Mapping::Owned(std::fs::read(path)?))
    }

    /// The mapped or owned bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match self {
            Mapping::Owned(v) => v,
            #[cfg(unix)]
            Mapping::Mapped(m) => m.bytes(),
        }
    }

    /// True when the bytes come from a live memory mapping.
    pub fn is_mapped(&self) -> bool {
        match self {
            Mapping::Owned(_) => false,
            #[cfg(unix)]
            Mapping::Mapped(_) => true,
        }
    }
}

#[cfg(unix)]
mod unix {
    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned read-only mapping (`munmap` on drop).
    #[derive(Debug)]
    pub struct Map {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is immutable for its whole lifetime (PROT_READ,
    // private) and owned uniquely by this struct, so sharing the
    // borrowed bytes across threads is sound.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        /// Maps `len` bytes of `file` read-only, or `None` when the
        /// kernel refuses (zero length, no mmap support...).
        pub fn new(file: &File, len: u64) -> Option<Self> {
            if len == 0 || len > usize::MAX as u64 {
                return None;
            }
            let len = len as usize;
            // SAFETY: a fresh private read-only mapping of a file we
            // hold open; the kernel validates fd and length.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 || ptr.is_null() {
                return None;
            }
            Some(Self { ptr: ptr as *const u8, len })
        }

        #[inline]
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of `len` bytes
            // owned by `self`; it stays valid until drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact region mapped in `new`.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("lelantus-mmap-test-{name}-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn mapping_and_fallback_agree() {
        let data: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        let path = temp_file("agree", &data);
        let mapped = Mapping::open(&path).unwrap();
        let owned = Mapping::read(&path).unwrap();
        assert_eq!(mapped.bytes(), owned.bytes());
        assert!(!owned.is_mapped());
        #[cfg(unix)]
        assert!(mapped.is_mapped(), "unix targets should map");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let path = temp_file("empty", b"");
        let m = Mapping::open(&path).unwrap();
        assert!(!m.is_mapped(), "zero-length files cannot be mapped");
        assert!(m.bytes().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
