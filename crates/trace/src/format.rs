//! On-disk constants, varint codec, checksum, and the op mirror types.

use crate::error::TraceError;
use lelantus_types::PageSize;

/// Header magic: the first four bytes of every `.ltr` file.
pub const HEADER_MAGIC: [u8; 4] = *b"LTRC";
/// Footer magic: the last four bytes of every complete `.ltr` file.
pub const FOOTER_MAGIC: [u8; 4] = *b"LTRE";
/// Current format version (bumped on any incompatible layout change).
pub const FORMAT_VERSION: u16 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 32;
/// Fixed footer size in bytes.
pub const FOOTER_LEN: usize = 28;

// Record opcodes (one byte each, first byte of every body record).
pub(crate) const OP_BATCH: u8 = 0x01;
pub(crate) const OP_SPAWN: u8 = 0x02;
pub(crate) const OP_MMAP: u8 = 0x03;
pub(crate) const OP_FORK: u8 = 0x04;
pub(crate) const OP_EXIT: u8 = 0x05;
pub(crate) const OP_MUNMAP: u8 = 0x06;
pub(crate) const OP_MADVISE: u8 = 0x07;
pub(crate) const OP_MPROTECT: u8 = 0x08;
pub(crate) const OP_KSM: u8 = 0x09;
pub(crate) const OP_USE_CORE: u8 = 0x0A;
pub(crate) const OP_SYNC_CORES: u8 = 0x0B;
pub(crate) const OP_FINISH: u8 = 0x0C;
pub(crate) const OP_WRITE_NT: u8 = 0x0D;
pub(crate) const OP_CRASH_RECOVER: u8 = 0x0E;
pub(crate) const OP_RESET_FOOTPRINT: u8 = 0x0F;
pub(crate) const OP_MERKLE_ROOT: u8 = 0x10;

// Packed access-op kind codes (bits 0-1 of the op byte).
pub(crate) const KIND_READ: u8 = 0;
pub(crate) const KIND_WRITE: u8 = 1;
pub(crate) const KIND_PATTERN: u8 = 2;
/// Pattern op reusing the previous pattern op's tag byte (the dominant
/// shape: long runs of same-tag line writes cost no tag byte).
pub(crate) const KIND_PATTERN_REPEAT: u8 = 3;
/// Bit 2 of the op byte: the op starts exactly where the previous op
/// ended, so no address delta is stored.
pub(crate) const OP_CONTIG: u8 = 1 << 2;
/// Largest op length packed directly into bits 3-7 of the op byte;
/// longer runs store a varint length instead.
pub(crate) const MAX_PACKED_LEN: u32 = 31;

/// The geometry a trace was captured under. Scheme-independent on
/// purpose: traces carry only virtual addresses and pids, so one
/// recording replays across all four CoW schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Default page size of the recorded system.
    pub page_size: PageSize,
    /// Physical data-area size of the recorded system.
    pub phys_bytes: u64,
}

impl TraceHeader {
    /// Encodes the fixed 32-byte header.
    pub(crate) fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&HEADER_MAGIC);
        h[4..6].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        // [6..8] flags, [12..16] + [24..32] reserved: zero.
        h[8..12].copy_from_slice(&(self.page_size.bytes() as u32).to_le_bytes());
        h[16..24].copy_from_slice(&self.phys_bytes.to_le_bytes());
        h
    }

    /// Decodes and validates a header block (magic and version already
    /// checked by the caller).
    pub(crate) fn decode(h: &[u8]) -> Result<Self, TraceError> {
        let page_bytes = u64::from(u32::from_le_bytes(h[8..12].try_into().expect("4 bytes")));
        let page_size = PageSize::all()
            .into_iter()
            .find(|p| p.bytes() == page_bytes)
            .ok_or(TraceError::BadHeader { reason: "unsupported page size" })?;
        let phys_bytes = u64::from_le_bytes(h[16..24].try_into().expect("8 bytes"));
        Ok(Self { page_size, phys_bytes })
    }
}

/// Totals a finished trace reports (also stored in the footer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceTotals {
    /// Line-granularity access ops (batched ops + non-temporal writes).
    pub ops: u64,
    /// Body records of any kind.
    pub records: u64,
}

/// One access op, mirroring `lelantus-sim`'s `BatchOp` across the
/// crate boundary (the sim's op type is crate-private by design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Start virtual address.
    pub va: u64,
    /// Length in bytes (may span many lines; the sim driver splits).
    pub len: u32,
    /// Read, explicit-data write, or pattern write.
    pub kind: TraceOpKind,
}

/// What a [`TraceOp`] does (mirror of the sim's `OpKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOpKind {
    /// Load `len` bytes (timing and residency only).
    Read,
    /// Store `len` bytes starting at `data_off` in the batch arena.
    Write {
        /// Offset of the payload within the batch's data arena.
        data_off: u32,
    },
    /// Store `len` bytes of the repeated byte `tag`.
    Pattern {
        /// The fill byte.
        tag: u8,
    },
}

impl TraceOp {
    /// A read op.
    pub fn read(va: u64, len: u32) -> Self {
        Self { va, len, kind: TraceOpKind::Read }
    }

    /// An explicit-data write op with its arena offset.
    pub fn write(va: u64, len: u32, data_off: u32) -> Self {
        Self { va, len, kind: TraceOpKind::Write { data_off } }
    }

    /// A pattern (repeated-byte) write op.
    pub fn pattern(va: u64, len: u32, tag: u8) -> Self {
        Self { va, len, kind: TraceOpKind::Pattern { tag } }
    }
}

/// Appends `v` as an LEB128 varint (7 bits per byte, low group first,
/// high bit = continuation; at most 10 bytes).
pub(crate) fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push(v as u8 | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decodes an LEB128 varint at `*pos`, advancing it. `None` on
/// truncation or a value that does not fit in 64 bits.
pub(crate) fn uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None; // 10th byte may only contribute the top bit
        }
        v |= u64::from(b & 0x7F) << shift;
        if b < 0x80 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Maps a signed delta onto an unsigned varint-friendly value
/// (0, -1, 1, -2, ... → 0, 1, 2, 3, ...).
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Streaming 64-bit checksum, folded one little-endian word at a time
/// (xor-multiply-rotate; the length is mixed into the final avalanche
/// so zero-padding the tail word is unambiguous). Not cryptographic —
/// it detects corruption and truncation, while tamper detection is the
/// simulated controller's job.
#[derive(Debug, Clone)]
pub struct Check64 {
    h: u64,
    buf: [u8; 8],
    pending: usize,
    len: u64,
}

const CHECK_SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const CHECK_MUL: u64 = 0xFF51_AFD7_ED55_8CCD;

impl Default for Check64 {
    fn default() -> Self {
        Self { h: CHECK_SEED, buf: [0; 8], pending: 0, len: 0 }
    }
}

impl Check64 {
    #[inline]
    fn fold(h: u64, word: u64) -> u64 {
        (h ^ word).wrapping_mul(CHECK_MUL).rotate_left(23)
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len() as u64;
        if self.pending > 0 {
            let take = bytes.len().min(8 - self.pending);
            self.buf[self.pending..self.pending + take].copy_from_slice(&bytes[..take]);
            self.pending += take;
            bytes = &bytes[take..];
            if self.pending == 8 {
                self.h = Self::fold(self.h, u64::from_le_bytes(self.buf));
                self.pending = 0;
            } else {
                return;
            }
        }
        let mut words = bytes.chunks_exact(8);
        for w in &mut words {
            self.h = Self::fold(self.h, u64::from_le_bytes(w.try_into().expect("8 bytes")));
        }
        let rest = words.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.pending = rest.len();
    }

    /// Final checksum value over everything fed so far.
    pub fn finish(&self) -> u64 {
        let mut h = self.h;
        if self.pending > 0 {
            let mut tail = [0u8; 8];
            tail[..self.pending].copy_from_slice(&self.buf[..self.pending]);
            h = Self::fold(h, u64::from_le_bytes(tail));
        }
        h ^= self.len;
        h = h.wrapping_mul(CHECK_MUL);
        h ^ (h >> 29)
    }
}

/// One-shot checksum over a contiguous byte range.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut c = Check64::default();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values =
            [0u64, 1, 127, 128, 129, 16383, 16384, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        for &v in &values {
            buf.clear();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len(), "value {v} consumed exactly");
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(uvarint(&[0x80], &mut pos), None, "dangling continuation");
        // 11 continuation bytes cannot encode a u64.
        let too_long = [0x80u8; 10];
        let mut pos = 0;
        assert_eq!(uvarint(&too_long, &mut pos), None);
        // A 10th byte contributing more than the top bit overflows.
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        let mut pos = 0;
        assert_eq!(uvarint(&overflow, &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 4096, -4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn checksum_is_streaming_invariant() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        let whole = checksum64(&data);
        for split in [0, 1, 7, 8, 9, 500, 999, 1000] {
            let mut c = Check64::default();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn checksum_distinguishes_padding_from_data() {
        // A trailing zero byte must change the checksum even though the
        // tail word is zero-padded (the length mix disambiguates).
        assert_ne!(checksum64(&[1, 2, 3]), checksum64(&[1, 2, 3, 0]));
        assert_ne!(checksum64(&[]), checksum64(&[0; 8]));
    }

    #[test]
    fn header_roundtrip() {
        for page_size in PageSize::all() {
            let h = TraceHeader { page_size, phys_bytes: 48 << 20 };
            let enc = h.encode();
            assert_eq!(&enc[0..4], &HEADER_MAGIC);
            assert_eq!(TraceHeader::decode(&enc).unwrap(), h);
        }
    }

    #[test]
    fn header_rejects_unknown_page_size() {
        let mut enc = TraceHeader { page_size: PageSize::Regular4K, phys_bytes: 0 }.encode();
        enc[8..12].copy_from_slice(&12345u32.to_le_bytes());
        assert!(matches!(TraceHeader::decode(&enc), Err(TraceError::BadHeader { .. })));
    }
}
