//! Buffered `.ltr` encoder.

use crate::format::{
    put_uvarint, zigzag, Check64, TraceHeader, TraceOp, TraceOpKind, TraceTotals, FOOTER_MAGIC,
    KIND_PATTERN, KIND_PATTERN_REPEAT, KIND_READ, KIND_WRITE, MAX_PACKED_LEN, OP_BATCH, OP_CONTIG,
    OP_CRASH_RECOVER, OP_EXIT, OP_FINISH, OP_FORK, OP_KSM, OP_MADVISE, OP_MERKLE_ROOT, OP_MMAP,
    OP_MPROTECT, OP_MUNMAP, OP_RESET_FOOTPRINT, OP_SPAWN, OP_SYNC_CORES, OP_USE_CORE, OP_WRITE_NT,
};
use lelantus_types::PageSize;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Streams a trace to any [`Write`] sink with batched buffered
/// encoding: each record is packed into a reused scratch buffer, fed
/// through the running checksum, and written in one `write_all` (plus
/// one more for a batch's payload arena, which is passed through
/// verbatim — the writer never copies payloads into its own buffers).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    check: Check64,
    totals: TraceTotals,
    /// Scratch for the fixed part of the current record.
    rec_buf: Vec<u8>,
    /// Scratch for a batch's packed op stream.
    ops_buf: Vec<u8>,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates (truncating) `path` and writes the header.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn create(path: impl AsRef<Path>, header: TraceHeader) -> io::Result<Self> {
        let file = File::create(path)?;
        Self::new(BufWriter::with_capacity(1 << 20, file), header)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `w` and writes the header.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn new(mut w: W, header: TraceHeader) -> io::Result<Self> {
        let mut check = Check64::default();
        let h = header.encode();
        check.update(&h);
        w.write_all(&h)?;
        Ok(Self {
            w,
            check,
            totals: TraceTotals::default(),
            rec_buf: Vec::new(),
            ops_buf: Vec::new(),
        })
    }

    /// Totals written so far.
    pub fn totals(&self) -> TraceTotals {
        self.totals
    }

    /// Flushes `rec_buf` as one record (checksummed).
    fn flush_rec(&mut self) -> io::Result<()> {
        self.check.update(&self.rec_buf);
        self.w.write_all(&self.rec_buf)?;
        self.rec_buf.clear();
        self.totals.records += 1;
        Ok(())
    }

    /// Writes one batch record: `pid`, the packed op stream, and the
    /// payload arena `data` (explicit-data writes must consume the
    /// arena in push order, exactly as `AccessBatch::push_write`
    /// builds it — the canonical form the reader reconstructs).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    ///
    /// # Panics
    ///
    /// Panics if a write op's `data_off` breaks the canonical arena
    /// order, or if the write lengths do not sum to `data.len()`.
    pub fn batch<I>(&mut self, pid: u64, data: &[u8], ops: I) -> io::Result<()>
    where
        I: IntoIterator<Item = TraceOp>,
    {
        let mut ops_buf = std::mem::take(&mut self.ops_buf);
        ops_buf.clear();
        let mut n = 0u64;
        let mut prev_va = 0u64;
        let mut prev_end = 0u64;
        let mut last_tag: Option<u8> = None;
        let mut arena = 0u64;
        for op in ops {
            let (kind, tag) = match op.kind {
                TraceOpKind::Read => (KIND_READ, None),
                TraceOpKind::Write { data_off } => {
                    assert_eq!(
                        u64::from(data_off),
                        arena,
                        "batch arena must be canonical: writes consume it in push order"
                    );
                    arena += u64::from(op.len);
                    (KIND_WRITE, None)
                }
                TraceOpKind::Pattern { tag } if last_tag == Some(tag) => {
                    (KIND_PATTERN_REPEAT, None)
                }
                TraceOpKind::Pattern { tag } => {
                    last_tag = Some(tag);
                    (KIND_PATTERN, Some(tag))
                }
            };
            let contig = op.va == prev_end && n > 0;
            let packed_len = if (1..=MAX_PACKED_LEN).contains(&op.len) { op.len as u8 } else { 0 };
            ops_buf.push(kind | if contig { OP_CONTIG } else { 0 } | (packed_len << 3));
            if !contig {
                put_uvarint(&mut ops_buf, zigzag(op.va.wrapping_sub(prev_va) as i64));
            }
            if packed_len == 0 {
                put_uvarint(&mut ops_buf, u64::from(op.len));
            }
            if let Some(t) = tag {
                ops_buf.push(t);
            }
            prev_va = op.va;
            prev_end = op.va.wrapping_add(u64::from(op.len));
            n += 1;
        }
        assert_eq!(arena, data.len() as u64, "write payloads must exactly cover the batch arena");
        self.rec_buf.clear();
        self.rec_buf.push(OP_BATCH);
        put_uvarint(&mut self.rec_buf, pid);
        put_uvarint(&mut self.rec_buf, n);
        put_uvarint(&mut self.rec_buf, ops_buf.len() as u64);
        put_uvarint(&mut self.rec_buf, data.len() as u64);
        self.check.update(&self.rec_buf);
        self.w.write_all(&self.rec_buf)?;
        self.rec_buf.clear();
        self.check.update(&ops_buf);
        self.w.write_all(&ops_buf)?;
        self.check.update(data);
        self.w.write_all(data)?;
        self.ops_buf = ops_buf;
        self.totals.records += 1;
        self.totals.ops += n;
        Ok(())
    }

    /// Records a `spawn_init` and the pid it produced.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn spawn_init(&mut self, pid: u64) -> io::Result<()> {
        self.rec_buf.push(OP_SPAWN);
        put_uvarint(&mut self.rec_buf, pid);
        self.flush_rec()
    }

    /// Records an `mmap` (any page size) and the base it returned.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn mmap(&mut self, pid: u64, len: u64, page_size: PageSize, va: u64) -> io::Result<()> {
        self.rec_buf.push(OP_MMAP);
        put_uvarint(&mut self.rec_buf, pid);
        put_uvarint(&mut self.rec_buf, len);
        put_uvarint(&mut self.rec_buf, page_size.bytes());
        put_uvarint(&mut self.rec_buf, va);
        self.flush_rec()
    }

    /// Records a `fork` and the child pid it produced.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn fork(&mut self, parent: u64, child: u64) -> io::Result<()> {
        self.rec_buf.push(OP_FORK);
        put_uvarint(&mut self.rec_buf, parent);
        put_uvarint(&mut self.rec_buf, child);
        self.flush_rec()
    }

    /// Records an `exit`.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn exit(&mut self, pid: u64) -> io::Result<()> {
        self.rec_buf.push(OP_EXIT);
        put_uvarint(&mut self.rec_buf, pid);
        self.flush_rec()
    }

    /// Records a `munmap` of the VMA at `va`.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn munmap(&mut self, pid: u64, va: u64) -> io::Result<()> {
        self.rec_buf.push(OP_MUNMAP);
        put_uvarint(&mut self.rec_buf, pid);
        put_uvarint(&mut self.rec_buf, va);
        self.flush_rec()
    }

    /// Records a `madvise(MADV_DONTNEED)`.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn madvise_dontneed(&mut self, pid: u64, va: u64, len: u64) -> io::Result<()> {
        self.rec_buf.push(OP_MADVISE);
        put_uvarint(&mut self.rec_buf, pid);
        put_uvarint(&mut self.rec_buf, va);
        put_uvarint(&mut self.rec_buf, len);
        self.flush_rec()
    }

    /// Records an `mprotect`.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn mprotect(&mut self, pid: u64, va: u64, writable: bool) -> io::Result<()> {
        self.rec_buf.push(OP_MPROTECT);
        put_uvarint(&mut self.rec_buf, pid);
        put_uvarint(&mut self.rec_buf, va);
        self.rec_buf.push(u8::from(writable));
        self.flush_rec()
    }

    /// Records a KSM merge pass over `(pid, va)` candidates.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn ksm_merge<I>(&mut self, pairs: I) -> io::Result<()>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut ops_buf = std::mem::take(&mut self.ops_buf);
        ops_buf.clear();
        let mut n = 0u64;
        for (pid, va) in pairs {
            put_uvarint(&mut ops_buf, pid);
            put_uvarint(&mut ops_buf, va);
            n += 1;
        }
        self.rec_buf.clear();
        self.rec_buf.push(OP_KSM);
        put_uvarint(&mut self.rec_buf, n);
        put_uvarint(&mut self.rec_buf, ops_buf.len() as u64);
        self.check.update(&self.rec_buf);
        self.w.write_all(&self.rec_buf)?;
        self.rec_buf.clear();
        self.check.update(&ops_buf);
        self.w.write_all(&ops_buf)?;
        self.ops_buf = ops_buf;
        self.totals.records += 1;
        Ok(())
    }

    /// Records a `use_core`.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn use_core(&mut self, core: u8) -> io::Result<()> {
        self.rec_buf.push(OP_USE_CORE);
        self.rec_buf.push(core);
        self.flush_rec()
    }

    /// Records a `sync_cores` barrier.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn sync_cores(&mut self) -> io::Result<()> {
        self.rec_buf.push(OP_SYNC_CORES);
        self.flush_rec()
    }

    /// Records a `finish` (cache/controller flush point).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn finish_event(&mut self) -> io::Result<()> {
        self.rec_buf.push(OP_FINISH);
        self.flush_rec()
    }

    /// Records a non-temporal (streaming) write and its payload.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn write_nt(&mut self, pid: u64, va: u64, data: &[u8]) -> io::Result<()> {
        self.rec_buf.push(OP_WRITE_NT);
        put_uvarint(&mut self.rec_buf, pid);
        put_uvarint(&mut self.rec_buf, va);
        put_uvarint(&mut self.rec_buf, data.len() as u64);
        self.check.update(&self.rec_buf);
        self.w.write_all(&self.rec_buf)?;
        self.rec_buf.clear();
        self.check.update(data);
        self.w.write_all(data)?;
        self.totals.records += 1;
        self.totals.ops += 1;
        Ok(())
    }

    /// Records a crash-and-recover power cycle.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn crash_recover(&mut self) -> io::Result<()> {
        self.rec_buf.push(OP_CRASH_RECOVER);
        self.flush_rec()
    }

    /// Records a footprint reset.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn reset_footprint(&mut self) -> io::Result<()> {
        self.rec_buf.push(OP_RESET_FOOTPRINT);
        self.flush_rec()
    }

    /// Records a `merkle_root` observation *and its value*: replays
    /// recompute the root at the same point and compare, so the
    /// strongest integrity oracle rides inside the trace itself.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn merkle_root(&mut self, root: u64) -> io::Result<()> {
        self.rec_buf.push(OP_MERKLE_ROOT);
        put_uvarint(&mut self.rec_buf, root);
        self.flush_rec()
    }

    /// Writes the footer, flushes, and returns the sink with the
    /// totals. The trace is only complete (and only passes
    /// [`crate::Trace::open`]) after this.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn into_parts(mut self) -> io::Result<(W, TraceTotals)> {
        let mut footer = [0u8; crate::format::FOOTER_LEN];
        footer[0..8].copy_from_slice(&self.totals.ops.to_le_bytes());
        footer[8..16].copy_from_slice(&self.totals.records.to_le_bytes());
        footer[16..24].copy_from_slice(&self.check.finish().to_le_bytes());
        footer[24..28].copy_from_slice(&FOOTER_MAGIC);
        self.w.write_all(&footer)?;
        self.w.flush()?;
        Ok((self.w, self.totals))
    }

    /// Writes the footer and flushes, dropping the sink.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn finish(self) -> io::Result<TraceTotals> {
        self.into_parts().map(|(_, totals)| totals)
    }
}
