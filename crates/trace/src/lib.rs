//! The `.ltr` binary access-trace format.
//!
//! A trace is a byte-exact transcript of every state-changing call a
//! simulated machine served: batched line accesses (mirroring
//! `AccessBatch`/`BatchOp` in `lelantus-sim`), syscall-level kernel
//! operations (`mmap`, `fork`, `exit`, KSM merges...), and the
//! expected results of allocation decisions (`spawn_init` pids,
//! `mmap` bases, `fork` children) so a replay can prove it stayed on
//! the recorded trajectory. The format is little-endian throughout
//! and page-run oriented: one pattern op can cover a whole page (or
//! region), and run lengths are varints, so the dominant workload
//! shapes cost 2–4 bytes per line-granularity op.
//!
//! ## File layout
//!
//! ```text
//! ┌────────────────────┐
//! │ header   (32 B)    │ magic "LTRC", version, page size, phys bytes
//! ├────────────────────┤
//! │ body               │ records: opcode byte + varint fields
//! │   Batch            │   pid, nops, ops_len, data_len, packed ops,
//! │   SpawnInit        │   then the payload arena (borrowed verbatim
//! │   Mmap / Fork / …  │   by the zero-copy reader)
//! ├────────────────────┤
//! │ footer   (28 B)    │ op count, record count, checksum, "LTRE"
//! └────────────────────┘
//! ```
//!
//! The trailing footer makes truncation detectable (a cut file loses
//! the end magic), and the checksum covers header + body, so any
//! corruption in between is caught at open time. See `DESIGN.md` §14
//! for the full layout diagram and the determinism argument.
//!
//! ## Reading
//!
//! [`Trace::open`] memory-maps the file on Unix targets (buffered
//! `Read`-to-memory everywhere else, or when mapping fails) and
//! validates header, footer, and checksum up front — every error a
//! malformed file can produce is a distinct [`TraceError`] variant.
//! [`Trace::records`] then iterates borrowed [`Record`]s: batch
//! payload arenas are slices of the mapping (zero-copy); the packed
//! per-op stream decodes on the fly with no allocation.
//!
//! # Examples
//!
//! ```
//! use lelantus_trace::{Record, Trace, TraceHeader, TraceOp, TraceWriter};
//! use lelantus_types::PageSize;
//!
//! let header = TraceHeader { page_size: PageSize::Regular4K, phys_bytes: 32 << 20 };
//! let mut w = TraceWriter::new(Vec::new(), header)?;
//! w.spawn_init(1)?;
//! w.mmap(1, 4096, PageSize::Regular4K, 0x1000)?;
//! w.batch(1, b"hi", [TraceOp::write(0x1000, 2, 0), TraceOp::read(0x1000, 2)])?;
//! let (bytes, totals) = w.into_parts()?;
//! assert_eq!(totals.ops, 2);
//!
//! let trace = Trace::from_bytes(bytes)?;
//! assert_eq!(trace.header(), header);
//! assert_eq!(trace.records().count(), 3);
//! match trace.records().nth(2).unwrap()? {
//!     Record::Batch(b) => assert_eq!(b.data, b"hi"),
//!     other => panic!("expected a batch, got {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;
pub mod format;
pub mod mmap;
pub mod reader;
pub mod writer;

pub use error::TraceError;
pub use format::{
    checksum64, Check64, TraceHeader, TraceOp, TraceOpKind, TraceTotals, FOOTER_LEN,
    FORMAT_VERSION, HEADER_LEN,
};
pub use reader::{BatchOps, BatchRecord, KsmPairs, Record, Records, Trace};
pub use writer::TraceWriter;
