//! Shared harness code for the experiment bench targets.
//!
//! Every table and figure of the paper's evaluation has a bench target
//! in `benches/` (run them with `cargo bench -p lelantus-bench`). They
//! print the same rows/series the paper reports; `EXPERIMENTS.md`
//! records paper-vs-measured values.
//!
//! Experiments honour the `LELANTUS_SCALE` environment variable:
//! `small` (quick sanity run), `medium` (default — shape-faithful at a
//! fraction of the cost) or `paper` (the paper's workload sizes).
//!
//! Three harness facilities are shared by the targets:
//!
//! * [`harness`] — a dependency-free micro-benchmark timer (the build
//!   environment has no criterion), with automatic calibration.
//! * [`matrix`] — [`matrix::run_matrix`] fans the independent
//!   (workload × scheme × page size) simulations of a figure across
//!   CPU cores; every cell is its own [`System`], so runs are
//!   embarrassingly parallel and bit-identical to the serial order.
//! * [`results`] — appends measured values to `BENCH_RESULTS.json` at
//!   the repository root so `EXPERIMENTS.md` claims are reproducible.
//! * [`diff`] — compares two `BENCH_RESULTS.json` snapshots and flags
//!   regressions (the `lelantus bench-diff` CLI and the CI gate).

pub mod diff;
pub mod harness;
pub mod matrix;
pub mod results;

pub use matrix::{run_cells, run_matrix, Matrix, MatrixCell};

use lelantus_os::CowStrategy;
use lelantus_sim::{SimConfig, System};
use lelantus_types::PageSize;
use lelantus_workloads::{
    bootwl::Boot, compilewl::Compile, forkbench::Forkbench, mariadbwl::Mariadb, noncopy::NonCopy,
    rediswl::Redis, shellwl::Shell, Workload, WorkloadRun,
};

/// Experiment size, selected via `LELANTUS_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long sanity run.
    Small,
    /// Default: shape-faithful, minutes-long.
    Medium,
    /// The paper's workload sizes.
    Paper,
}

impl Scale {
    /// Reads `LELANTUS_SCALE` (default [`Scale::Medium`]).
    pub fn from_env() -> Scale {
        match std::env::var("LELANTUS_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            Ok("paper") => Scale::Paper,
            _ => Scale::Medium,
        }
    }

    /// Forkbench / non-copy allocation size at this scale.
    pub fn alloc_bytes(self) -> u64 {
        match self {
            Scale::Small => 2 << 20,
            Scale::Medium => 4 << 20,
            Scale::Paper => 16 << 20,
        }
    }
}

/// Builds the Fig 9 workload list (six applications + non-copy) at
/// `scale`.
pub fn fig9_workloads(scale: Scale) -> Vec<Box<dyn Workload>> {
    match scale {
        Scale::Small => vec![
            Box::new(Boot::small()),
            Box::new(Compile::small()),
            Box::new(Forkbench { total_bytes: scale.alloc_bytes(), bytes_per_page: None }),
            Box::new(Redis::small()),
            Box::new(Mariadb::small()),
            Box::new(Shell::small()),
            Box::new(NonCopy { total_bytes: scale.alloc_bytes() }),
        ],
        Scale::Medium => vec![
            Box::new(Boot {
                services: 16,
                shared_bytes: 1 << 20,
                service_heap_bytes: 128 << 10,
                ..Boot::default()
            }),
            Box::new(Compile { heap_bytes: 6 << 20, rewrite_ops: 12_000, ..Compile::default() }),
            Box::new(Forkbench { total_bytes: scale.alloc_bytes(), bytes_per_page: None }),
            Box::new(Redis { pairs: 20_000, operations: 4_000, ..Redis::default() }),
            Box::new(Mariadb {
                buffer_pool_bytes: 4 << 20,
                index_bytes: 1 << 20,
                rows: 24_000,
                ..Mariadb::default()
            }),
            Box::new(Shell { directories: 24, ..Shell::default() }),
            Box::new(NonCopy { total_bytes: scale.alloc_bytes() }),
        ],
        Scale::Paper => vec![
            Box::new(Boot::default()),
            Box::new(Compile::default()),
            Box::new(Forkbench::default()),
            Box::new(Redis::default()),
            Box::new(Mariadb::default()),
            Box::new(Shell::default()),
            Box::new(NonCopy { total_bytes: scale.alloc_bytes() }),
        ],
    }
}

/// The paper's default configuration for a (scheme, page size) cell,
/// with the environment escape hatches applied: `LELANTUS_REFERENCE_AES`
/// selects the byte-oriented reference cipher and
/// `LELANTUS_REFERENCE_ACCESS` the per-line reference access path (for
/// before/after wall-clock comparisons — results are bit-identical
/// either way).
pub fn sim_config(strategy: CowStrategy, page: PageSize) -> SimConfig {
    let mut config = SimConfig::new(strategy, page);
    if std::env::var_os("LELANTUS_REFERENCE_AES").is_some() {
        config = config.with_reference_aes();
    }
    if std::env::var_os("LELANTUS_REFERENCE_ACCESS").is_some() {
        config = config.with_reference_access_path();
    }
    config
}

/// Runs `workload` on a fresh system with the given scheme and page
/// size, using the paper's default configuration.
pub fn run_workload(workload: &dyn Workload, strategy: CowStrategy, page: PageSize) -> WorkloadRun {
    let mut sys = System::new(sim_config(strategy, page));
    workload.run(&mut sys).unwrap_or_else(|e| panic!("{}: {e}", workload.name()))
}

/// Runs `workload` on a custom configuration.
pub fn run_workload_with(workload: &dyn Workload, config: SimConfig) -> WorkloadRun {
    let mut sys = System::new(config);
    workload.run(&mut sys).unwrap_or_else(|e| panic!("{}: {e}", workload.name()))
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", cell, width = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_default_is_medium() {
        // (Environment not set in the test harness.)
        if std::env::var("LELANTUS_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Medium);
        }
    }

    #[test]
    fn fig9_suites_have_seven_entries() {
        for scale in [Scale::Small, Scale::Medium, Scale::Paper] {
            let suite = fig9_workloads(scale);
            assert_eq!(suite.len(), 7);
            assert_eq!(suite[2].name(), "forkbench");
            assert_eq!(suite[6].name(), "non-copy");
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_x(2.345), "2.35x");
        assert_eq!(fmt_pct(0.4215), "42.15%");
    }
}
