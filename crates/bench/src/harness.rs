//! A minimal micro-benchmark timer.
//!
//! The build environment has no criterion, so the micro targets use
//! this: warm up, calibrate the iteration count to a target wall-clock
//! budget, then measure. No statistics beyond the mean — the consumers
//! are throughput *ratios* (T-table vs reference AES, batched vs
//! per-line pads) where run-to-run noise of a few percent is
//! irrelevant against order-of-magnitude expectations.

use std::time::{Duration, Instant};

/// Outcome of one [`bench`] run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured (after calibration).
    pub iters: u64,
    /// Total wall-clock seconds this benchmark took (calibration and
    /// all measurement batches) — what `BENCH_RESULTS.json` stamps on
    /// the record as its per-name cost.
    pub elapsed_s: f64,
}

impl Measurement {
    /// Iterations per second.
    pub fn per_second(&self) -> f64 {
        1e9 / self.ns_per_iter
    }

    /// How many times faster this measurement is than `other`.
    pub fn speedup_over(&self, other: &Measurement) -> f64 {
        other.ns_per_iter / self.ns_per_iter
    }
}

/// Measurement budget per benchmark (after calibration).
const BUDGET: Duration = Duration::from_millis(200);

/// Times `f`, returning the mean cost per iteration.
///
/// Calibrates geometrically until one batch exceeds ~1/10 of the
/// budget, then measures one batch sized to fill the budget. `f`'s
/// result is sunk with [`std::hint::black_box`]; keep per-iteration
/// state inside the closure.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    let bench_start = Instant::now();
    // Calibrate: find an iteration count worth ~20 ms.
    let mut iters = 1u64;
    let per_iter = loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= BUDGET / 10 {
            break elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(4);
    };
    // Measure: five batches, keep the fastest. The minimum is the
    // standard noise-robust estimator on shared machines — scheduler
    // preemption and frequency dips only ever inflate a batch.
    const BATCHES: u32 = 5;
    let iters = ((BUDGET.as_secs_f64() / per_iter / BATCHES as f64) as u64).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    let m = Measurement {
        name: name.to_string(),
        ns_per_iter: best,
        iters,
        elapsed_s: bench_start.elapsed().as_secs_f64(),
    };
    println!(
        "{:<40} {:>12.1} ns/iter {:>16.0} iters/s ({} iters)",
        m.name,
        m.ns_per_iter,
        m.per_second(),
        m.iters
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut acc = 0u64;
        let m = bench("spin", || {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters >= 1);
        assert!(m.per_second() > 0.0);
        assert!(m.elapsed_s > 0.0);
    }

    #[test]
    fn speedup_is_a_ratio_of_costs() {
        let fast = Measurement { name: "f".into(), ns_per_iter: 10.0, iters: 1, elapsed_s: 0.1 };
        let slow = Measurement { name: "s".into(), ns_per_iter: 80.0, iters: 1, elapsed_s: 0.1 };
        assert!((fast.speedup_over(&slow) - 8.0).abs() < 1e-12);
    }
}
