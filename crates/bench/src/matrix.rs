//! Parallel fan-out for independent simulation cells.
//!
//! Every figure of the evaluation runs the same workloads under
//! several (scheme, page size) combinations; each cell builds its own
//! [`System`], so the cells share nothing and the numbers are
//! bit-identical whether they run serially or spread across cores.
//! The environment has no rayon, so [`run_cells`] hand-rolls the
//! fan-out on [`std::thread::scope`] with an atomic index dispenser.
//!
//! `LELANTUS_THREADS` overrides the worker count (`1` forces serial
//! execution — useful for before/after wall-clock comparisons, see
//! `EXPERIMENTS.md`).

use crate::run_workload;
use lelantus_os::CowStrategy;
use lelantus_types::PageSize;
use lelantus_workloads::{Workload, WorkloadRun};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count: `LELANTUS_THREADS` if set, else the machine's
/// available parallelism.
///
/// # Panics
///
/// Panics if `LELANTUS_THREADS` is set but is not a positive integer.
/// Silently defaulting would run an N-hour sweep at the wrong width —
/// a typo'd `LELANTUS_THREADS=O8` or a forbidden `0` must fail loudly
/// before any cell runs.
pub fn parallelism() -> usize {
    match std::env::var("LELANTUS_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!(
                "LELANTUS_THREADS must be a positive integer (got {v:?}); \
                 unset it to use all host cores"
            ),
        },
        Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Runs `job(0..count)` across [`parallelism`] worker threads and
/// returns the results in index order. `job` must be independent per
/// index; cells are dispensed dynamically so long and short cells
/// balance across workers.
pub fn run_cells<T, F>(count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = parallelism().min(count.max(1));
    if workers <= 1 {
        return (0..count).map(&job).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let out = job(i);
                results.lock().expect("result sink poisoned")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("result sink poisoned")
        .into_iter()
        .map(|r| r.expect("every cell ran"))
        .collect()
}

/// One completed simulation of the (page × workload × scheme) matrix.
#[derive(Debug)]
pub struct MatrixCell {
    /// Workload name (as reported by [`Workload::name`]).
    pub workload: String,
    /// Scheme the cell ran under.
    pub strategy: CowStrategy,
    /// Page size the cell ran under.
    pub page: PageSize,
    /// The measurement.
    pub run: WorkloadRun,
    /// Host wall-clock seconds this cell's simulation took — what
    /// `BENCH_RESULTS.json` stamps on records derived from the cell.
    pub elapsed_s: f64,
}

/// The completed matrix, indexable by (page, workload, strategy).
#[derive(Debug)]
pub struct Matrix {
    pages: Vec<PageSize>,
    strategies: Vec<CowStrategy>,
    workloads: usize,
    cells: Vec<MatrixCell>,
}

impl Matrix {
    /// Cell for (`page_i`, `workload_i`, `strategy_i`) in the index
    /// spaces the matrix was built with.
    pub fn get(&self, page_i: usize, workload_i: usize, strategy_i: usize) -> &MatrixCell {
        &self.cells[(page_i * self.workloads + workload_i) * self.strategies.len() + strategy_i]
    }

    /// All cells in deterministic (page, workload, strategy) order.
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// Number of workloads per (page, strategy) combination.
    pub fn workload_count(&self) -> usize {
        self.workloads
    }

    /// The page-size axis.
    pub fn pages(&self) -> &[PageSize] {
        &self.pages
    }

    /// The strategy axis.
    pub fn strategies(&self) -> &[CowStrategy] {
        &self.strategies
    }
}

/// Runs every workload produced by `factory` under every strategy and
/// page size, fanning the independent cells across cores. `factory` is
/// called once per cell (workload construction is cheap; `Box<dyn
/// Workload>` is not `Sync`, the factory closure is).
pub fn run_matrix<F>(factory: &F, strategies: &[CowStrategy], pages: &[PageSize]) -> Matrix
where
    F: Fn() -> Vec<Box<dyn Workload>> + Sync,
{
    let workloads = factory().len();
    let per_page = workloads * strategies.len();
    let count = pages.len() * per_page;
    let cells = run_cells(count, |i| {
        let (page_i, rest) = (i / per_page, i % per_page);
        let (workload_i, strategy_i) = (rest / strategies.len(), rest % strategies.len());
        let wl = factory().swap_remove(workload_i);
        let (strategy, page) = (strategies[strategy_i], pages[page_i]);
        let start = std::time::Instant::now();
        let run = run_workload(wl.as_ref(), strategy, page);
        let elapsed_s = start.elapsed().as_secs_f64();
        MatrixCell { workload: wl.name().to_string(), strategy, page, run, elapsed_s }
    });
    Matrix { pages: pages.to_vec(), strategies: strategies.to_vec(), workloads, cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cells_preserves_index_order() {
        let out = run_cells(64, |i| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    /// Serializes tests that mutate `LELANTUS_THREADS` (process-global
    /// state; the test harness runs tests concurrently).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn run_cells_handles_empty_and_serial() {
        let _env = ENV_LOCK.lock().unwrap();
        assert!(run_cells(0, |i| i).is_empty());
        std::env::set_var("LELANTUS_THREADS", "1");
        let out = run_cells(5, |i| i + 1);
        std::env::remove_var("LELANTUS_THREADS");
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn parallelism_is_at_least_one() {
        let _env = ENV_LOCK.lock().unwrap();
        assert!(parallelism() >= 1);
    }

    #[test]
    fn parallelism_rejects_zero_and_garbage() {
        let _env = ENV_LOCK.lock().unwrap();
        for bad in ["0", "eight", "-2", "1.5", ""] {
            std::env::set_var("LELANTUS_THREADS", bad);
            let got = std::panic::catch_unwind(parallelism);
            std::env::remove_var("LELANTUS_THREADS");
            assert!(got.is_err(), "LELANTUS_THREADS={bad:?} must be rejected");
        }
        std::env::set_var("LELANTUS_THREADS", " 3 ");
        let got = parallelism();
        std::env::remove_var("LELANTUS_THREADS");
        assert_eq!(got, 3, "whitespace-padded counts are fine");
    }

    #[test]
    fn matrix_indexing_matches_layout() {
        use lelantus_workloads::noncopy::NonCopy;
        let factory = || -> Vec<Box<dyn Workload>> {
            vec![
                Box::new(NonCopy { total_bytes: 1 << 20 }),
                Box::new(NonCopy { total_bytes: 2 << 20 }),
            ]
        };
        let strategies = [CowStrategy::Baseline, CowStrategy::Lelantus];
        let pages = [PageSize::Regular4K];
        let m = run_matrix(&factory, &strategies, &pages);
        assert_eq!(m.cells().len(), 4);
        assert_eq!(m.workload_count(), 2);
        for (p, page) in pages.iter().enumerate() {
            for w in 0..2 {
                for (s, strategy) in strategies.iter().enumerate() {
                    let cell = m.get(p, w, s);
                    assert_eq!(cell.page, *page);
                    assert_eq!(cell.strategy, *strategy);
                    assert_eq!(cell.workload, "non-copy");
                }
            }
        }
    }

    #[test]
    fn matrix_cells_match_serial_runs() {
        use lelantus_workloads::noncopy::NonCopy;
        let factory =
            || -> Vec<Box<dyn Workload>> { vec![Box::new(NonCopy { total_bytes: 1 << 20 })] };
        let strategies = [CowStrategy::Baseline, CowStrategy::Lelantus];
        let m = run_matrix(&factory, &strategies, &[PageSize::Regular4K]);
        for (s, strategy) in strategies.iter().enumerate() {
            let serial =
                run_workload(&NonCopy { total_bytes: 1 << 20 }, *strategy, PageSize::Regular4K);
            let cell = m.get(0, 0, s);
            assert_eq!(cell.run.measured.cycles, serial.measured.cycles, "{strategy}");
            assert_eq!(
                cell.run.measured.nvm.line_writes, serial.measured.nvm.line_writes,
                "{strategy}"
            );
        }
    }
}
