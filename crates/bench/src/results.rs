//! Machine-readable results: `BENCH_RESULTS.json` at the repo root.
//!
//! Every bench target finishes by calling [`emit`], which merges its
//! records into the shared file (replacing that bench's previous
//! records, keeping everyone else's). The file is a JSON array with
//! one record object per line; the writer is hand-rolled because the
//! build environment has no serde, and the merge is line-based so it
//! needs no JSON parser either.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

/// Version of the record schema below. Bump when record fields change
/// meaning or are added/removed, so downstream tooling can dispatch.
///
/// * v1: bench/name/scheme/value/unit/wall_clock_s (implicit, no field)
/// * v2: adds `schema` and `git` to every record
/// * v3: `wall_clock_s` is per-record — the time spent producing that
///   record — for records that carry their own timing; derived records
///   (ratios, averages) still carry the whole target's wall clock
pub const RESULTS_SCHEMA_VERSION: u32 = 3;

/// Short git commit hash of the working tree, queried once per
/// process; `"unknown"` when git is unavailable (e.g. a source
/// tarball).
fn git_commit() -> &'static str {
    static HASH: OnceLock<String> = OnceLock::new();
    HASH.get_or_init(|| {
        std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".into())
    })
}

/// One measured value.
#[derive(Debug, Clone)]
pub struct Record {
    /// Metric name (e.g. `ctr_encrypt_line_64B` or `speedup/redis`).
    pub name: String,
    /// Scheme the value was measured under, when meaningful.
    pub scheme: Option<String>,
    /// The measured value.
    pub value: f64,
    /// The value's unit (e.g. `ns/iter`, `x`, `cycles`, `s`).
    pub unit: String,
    /// Wall-clock seconds spent producing *this* record, when known.
    /// `None` falls back to the whole target's wall clock at [`emit`]
    /// time (the only option for derived metrics such as ratios).
    pub wall_clock_s: Option<f64>,
}

impl Record {
    /// Convenience constructor for scheme-less metrics.
    pub fn new(name: impl Into<String>, value: f64, unit: impl Into<String>) -> Self {
        Record { name: name.into(), scheme: None, value, unit: unit.into(), wall_clock_s: None }
    }

    /// Same, tagged with a scheme.
    pub fn with_scheme(
        name: impl Into<String>,
        scheme: impl Into<String>,
        value: f64,
        unit: impl Into<String>,
    ) -> Self {
        Record {
            name: name.into(),
            scheme: Some(scheme.into()),
            value,
            unit: unit.into(),
            wall_clock_s: None,
        }
    }

    /// Stamps the record with the wall-clock time that produced it.
    pub fn timed(mut self, seconds: f64) -> Self {
        self.wall_clock_s = Some(seconds);
        self
    }
}

/// Where the results file lives: `LELANTUS_BENCH_RESULTS` if set, else
/// `BENCH_RESULTS.json` at the workspace root.
fn results_path() -> PathBuf {
    if let Ok(p) = std::env::var("LELANTUS_BENCH_RESULTS") {
        return PathBuf::from(p);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_RESULTS.json")
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render(bench: &str, wall_clock_s: f64, r: &Record) -> String {
    let scheme = match &r.scheme {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".into(),
    };
    format!(
        "{{\"schema\":{},\"git\":\"{}\",\"bench\":\"{}\",\"name\":\"{}\",\"scheme\":{},\"value\":{},\"unit\":\"{}\",\"wall_clock_s\":{:.3}}}",
        RESULTS_SCHEMA_VERSION,
        escape(git_commit()),
        escape(bench),
        escape(&r.name),
        scheme,
        if r.value.is_finite() { format!("{}", r.value) } else { "null".into() },
        escape(&r.unit),
        r.wall_clock_s.unwrap_or(wall_clock_s),
    )
}

/// Merges `records` for `bench` into the results file: existing
/// records from other benches are kept, this bench's previous records
/// are replaced. `wall_clock_s` is the target's total wall-clock time,
/// stamped on records that don't carry their own (see
/// [`Record::timed`]).
pub fn emit(bench: &str, wall_clock_s: f64, records: &[Record]) {
    let path = results_path();
    let marker = format!("\"bench\":\"{}\"", escape(bench));
    let mut lines: Vec<String> = match fs::read_to_string(&path) {
        Ok(text) => text
            .lines()
            .map(str::trim)
            .filter(|l| l.starts_with('{'))
            .filter(|l| !l.contains(&marker))
            .map(|l| l.trim_end_matches(',').to_string())
            .collect(),
        Err(_) => Vec::new(),
    };
    lines.extend(records.iter().map(|r| render(bench, wall_clock_s, r)));
    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    if let Err(e) = fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        // Status notice goes to stderr so callers emitting machine-readable
        // stdout (`lelantus tail --json`) stay parseable.
        eprintln!("\nrecorded {} result(s) for '{bench}' in {}", records.len(), path.display());
    }
}

/// Runs `body`, then emits its records stamped with the measured
/// wall-clock time. The usual shape of a bench `main`.
pub fn timed_emit(bench: &str, body: impl FnOnce() -> Vec<Record>) {
    let start = Instant::now();
    let records = body();
    emit(bench, start.elapsed().as_secs_f64(), &records);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_temp_file<R>(name: &str, f: impl FnOnce(&PathBuf) -> R) -> R {
        let path = std::env::temp_dir().join(name);
        let _ = fs::remove_file(&path);
        std::env::set_var("LELANTUS_BENCH_RESULTS", &path);
        let out = f(&path);
        std::env::remove_var("LELANTUS_BENCH_RESULTS");
        let _ = fs::remove_file(&path);
        out
    }

    #[test]
    fn emit_writes_and_merges() {
        with_temp_file("lelantus_results_merge_test.json", |path| {
            emit("alpha", 1.0, &[Record::new("m1", 1.5, "x")]);
            emit("beta", 2.0, &[Record::with_scheme("m2", "Lelantus", 3.0, "cycles")]);
            // Re-emitting alpha replaces its old record, keeps beta's.
            emit("alpha", 4.0, &[Record::new("m1", 9.5, "x")]);
            let text = fs::read_to_string(path).unwrap();
            assert!(text.contains("\"wall_clock_s\":2.000"), "beta keeps its stamp: {text}");
            let text = fs::read_to_string(path).unwrap();
            assert!(text.starts_with("[\n"), "array framing: {text}");
            assert!(text.contains("\"bench\":\"beta\""));
            assert!(text.contains("\"value\":9.5"));
            assert!(!text.contains("\"value\":1.5"), "stale record survived: {text}");
            assert!(text.contains("\"scheme\":\"Lelantus\""));
            assert!(text.contains("\"wall_clock_s\":4.000"));
            // Both record lines present, comma-separated valid JSON.
            assert_eq!(text.matches("\"bench\"").count(), 2);
            assert_eq!(text.matches(",\n").count(), 1);
            // Every record carries the schema version and a git stamp.
            assert_eq!(text.matches(&format!("\"schema\":{RESULTS_SCHEMA_VERSION}")).count(), 2);
            assert_eq!(text.matches("\"git\":\"").count(), 2);
        });
    }

    #[test]
    fn per_record_wall_clock_overrides_the_target_total() {
        with_temp_file("lelantus_results_timed_test.json", |path| {
            emit(
                "gamma",
                7.0,
                &[Record::new("fast", 1.0, "ns/iter").timed(0.25), Record::new("ratio", 2.0, "x")],
            );
            let text = fs::read_to_string(path).unwrap();
            // The measured record carries its own timing; the derived
            // one falls back to the target total.
            assert!(text.contains("\"name\":\"fast\",\"scheme\":null,\"value\":1,\"unit\":\"ns/iter\",\"wall_clock_s\":0.250"), "{text}");
            assert!(text.contains("\"name\":\"ratio\",\"scheme\":null,\"value\":2,\"unit\":\"x\",\"wall_clock_s\":7.000"), "{text}");
        });
    }

    #[test]
    fn git_commit_is_cached_and_nonempty() {
        let a = git_commit();
        assert!(!a.is_empty());
        // OnceLock: a second call returns the very same allocation.
        assert_eq!(a.as_ptr(), git_commit().as_ptr());
    }

    #[test]
    fn render_escapes_quotes() {
        let r = Record::new("we\"ird", 1.0, "x");
        let line = render("b", 0.5, &r);
        assert!(line.contains("we\\\"ird"));
        assert!(line.ends_with('}'));
    }
}
