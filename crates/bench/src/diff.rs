//! Bench-trajectory comparison: diff two `BENCH_RESULTS.json`
//! snapshots and flag regressions.
//!
//! The parser is hand-rolled (the build environment has no serde) and
//! reads exactly the line-per-record array [`crate::results::emit`]
//! writes. Records are keyed by `(bench, name, scheme)`; whether a
//! value moving up is a regression depends on its unit (see
//! [`lower_is_better`]). Units the table doesn't know are compared
//! two-sided: any move beyond the tolerance flags, which is the
//! conservative choice for a CI gate.

use std::collections::BTreeMap;

/// One parsed result record (the fields the diff needs).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Bench target that produced the record.
    pub bench: String,
    /// Metric name within the target.
    pub name: String,
    /// Scheme tag, when the metric is per-scheme.
    pub scheme: Option<String>,
    /// Measured value.
    pub value: f64,
    /// The value's unit (drives the regression direction).
    pub unit: String,
}

impl BenchRecord {
    /// Human-readable identity: `bench/name [scheme]`.
    pub fn key(&self) -> String {
        match &self.scheme {
            Some(s) => format!("{}/{} [{s}]", self.bench, self.name),
            None => format!("{}/{}", self.bench, self.name),
        }
    }
}

/// Whether a smaller value of `unit` is better (`Some(true)`), a
/// larger one is (`Some(false)`), or the direction is unknown
/// (`None`, compared two-sided).
pub fn lower_is_better(unit: &str) -> Option<bool> {
    match unit {
        "ns" | "ns/iter" | "us" | "ms" | "s" | "cycles" | "pj" | "bytes" | "lines" => Some(true),
        "x" | "GB/s" | "MB/s" | "ops/s" | "hit_rate" => Some(false),
        _ => None,
    }
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let idx = line.find(&pat)? + pat.len();
    // Tolerate pretty-printed JSON: whitespace around the colon.
    let rest = line[idx..].trim_start().strip_prefix(':')?;
    Some(rest.trim_start())
}

fn parse_string(rest: &str) -> Option<String> {
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

fn parse_number(rest: &str) -> Option<f64> {
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parses a `BENCH_RESULTS.json` text into records. Lines that are
/// not record objects (array framing) and records whose value was
/// non-finite (`null`) are skipped.
pub fn parse_results(text: &str) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let (Some(bench), Some(name), Some(unit)) = (
            field(line, "bench").and_then(parse_string),
            field(line, "name").and_then(parse_string),
            field(line, "unit").and_then(parse_string),
        ) else {
            continue;
        };
        let Some(value) = field(line, "value").and_then(parse_number) else {
            continue;
        };
        let scheme = field(line, "scheme").and_then(parse_string);
        out.push(BenchRecord { bench, name, scheme, value, unit });
    }
    out
}

/// One metric present in both snapshots.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// `bench/name [scheme]`.
    pub key: String,
    /// The metric's unit.
    pub unit: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub new: f64,
    /// `new / base`.
    pub ratio: f64,
    /// Whether the move exceeds the tolerance in the bad direction.
    pub regression: bool,
}

/// The full comparison of two snapshots.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Metrics present in both snapshots, in key order.
    pub entries: Vec<DiffEntry>,
    /// Keys only the baseline has (metric disappeared).
    pub only_base: Vec<String>,
    /// Keys only the candidate has (new metric).
    pub only_new: Vec<String>,
}

impl DiffReport {
    /// The entries that regressed.
    pub fn regressions(&self) -> Vec<&DiffEntry> {
        self.entries.iter().filter(|e| e.regression).collect()
    }
}

/// Compares `new` against `base` with a relative `tolerance`
/// (e.g. 0.25 flags moves beyond ±25 % in the unit's bad direction).
pub fn diff(base: &[BenchRecord], new: &[BenchRecord], tolerance: f64) -> DiffReport {
    type Key = (String, String, Option<String>);
    let index = |recs: &[BenchRecord]| -> BTreeMap<Key, BenchRecord> {
        recs.iter()
            .map(|r| ((r.bench.clone(), r.name.clone(), r.scheme.clone()), r.clone()))
            .collect()
    };
    let base = index(base);
    let new = index(new);
    let mut report = DiffReport::default();
    for (k, b) in &base {
        let Some(n) = new.get(k) else {
            report.only_base.push(b.key());
            continue;
        };
        let ratio = n.value / b.value;
        let worse_up = ratio > 1.0 + tolerance;
        let worse_down = ratio < 1.0 - tolerance;
        let regression = match lower_is_better(&n.unit) {
            Some(true) => worse_up,
            Some(false) => worse_down,
            None => worse_up || worse_down,
        };
        report.entries.push(DiffEntry {
            key: b.key(),
            unit: n.unit.clone(),
            base: b.value,
            new: n.value,
            ratio,
            regression,
        });
    }
    for (k, n) in &new {
        if !base.contains_key(k) {
            report.only_new.push(n.key());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bench: &str, name: &str, scheme: Option<&str>, value: f64, unit: &str) -> BenchRecord {
        BenchRecord {
            bench: bench.into(),
            name: name.into(),
            scheme: scheme.map(Into::into),
            value,
            unit: unit.into(),
        }
    }

    #[test]
    fn parses_emitted_lines() {
        let text = concat!(
            "[\n",
            "{\"schema\":3,\"git\":\"abc\",\"bench\":\"micro_crypto\",\"name\":\"ctr_encrypt\",",
            "\"scheme\":null,\"value\":41.5,\"unit\":\"ns/iter\",\"wall_clock_s\":0.250},\n",
            "{\"schema\":3,\"git\":\"abc\",\"bench\":\"forkbench\",\"name\":\"speedup\",",
            "\"scheme\":\"Lelantus\",\"value\":6.2,\"unit\":\"x\",\"wall_clock_s\":7.000},\n",
            "{\"schema\":3,\"git\":\"abc\",\"bench\":\"broken\",\"name\":\"nan\",",
            "\"scheme\":null,\"value\":null,\"unit\":\"x\",\"wall_clock_s\":1.000}\n",
            "]\n",
        );
        let recs = parse_results(text);
        assert_eq!(recs.len(), 2, "null-valued record must be skipped");
        assert_eq!(recs[0], rec("micro_crypto", "ctr_encrypt", None, 41.5, "ns/iter"));
        assert_eq!(recs[1], rec("forkbench", "speedup", Some("Lelantus"), 6.2, "x"));
        assert_eq!(recs[1].key(), "forkbench/speedup [Lelantus]");
    }

    #[test]
    fn tolerates_pretty_printed_records() {
        let text = "{\"bench\": \"b\", \"name\": \"m\", \"scheme\": null, \
                    \"value\": 2.5, \"unit\": \"x\"}";
        assert_eq!(parse_results(text), vec![rec("b", "m", None, 2.5, "x")]);
    }

    #[test]
    fn identical_snapshots_pass() {
        let a = vec![rec("b", "m", None, 100.0, "ns/iter"), rec("b", "s", Some("L"), 4.0, "x")];
        let report = diff(&a, &a, 0.25);
        assert_eq!(report.entries.len(), 2);
        assert!(report.regressions().is_empty());
        assert!(report.only_base.is_empty() && report.only_new.is_empty());
    }

    #[test]
    fn flags_a_2x_time_regression_but_not_an_improvement() {
        let base = vec![rec("b", "m", None, 100.0, "ns/iter")];
        let slower = vec![rec("b", "m", None, 200.0, "ns/iter")];
        let faster = vec![rec("b", "m", None, 50.0, "ns/iter")];
        assert_eq!(diff(&base, &slower, 0.25).regressions().len(), 1);
        assert!(diff(&base, &faster, 0.25).regressions().is_empty());
    }

    #[test]
    fn direction_follows_the_unit() {
        // A speedup ("x") dropping is a regression; rising is not.
        let base = vec![rec("b", "speedup", Some("L"), 6.0, "x")];
        let worse = vec![rec("b", "speedup", Some("L"), 3.0, "x")];
        let better = vec![rec("b", "speedup", Some("L"), 9.0, "x")];
        assert_eq!(diff(&base, &worse, 0.25).regressions().len(), 1);
        assert!(diff(&base, &better, 0.25).regressions().is_empty());
        // Unknown units compare two-sided.
        let base = vec![rec("b", "odd", None, 10.0, "furlongs")];
        let moved = vec![rec("b", "odd", None, 5.0, "furlongs")];
        assert_eq!(diff(&base, &moved, 0.25).regressions().len(), 1);
    }

    #[test]
    fn within_tolerance_is_quiet() {
        let base = vec![rec("b", "m", None, 100.0, "ns/iter")];
        let wobble = vec![rec("b", "m", None, 124.0, "ns/iter")];
        assert!(diff(&base, &wobble, 0.25).regressions().is_empty());
    }

    #[test]
    fn reports_added_and_removed_metrics() {
        let base = vec![rec("b", "old", None, 1.0, "x")];
        let new = vec![rec("b", "new", None, 1.0, "x")];
        let report = diff(&base, &new, 0.25);
        assert_eq!(report.only_base, vec!["b/old"]);
        assert_eq!(report.only_new, vec!["b/new"]);
        assert!(report.entries.is_empty());
    }
}
