//! Micro-benchmarks + CI gate for the two parallel execution paths:
//! the in-sim sharded engine (`SimConfig::with_parallel` — one
//! simulation, crypto data plane fanned across shard workers) and the
//! cross-cell fan-out (`run_cells` — many independent simulations,
//! one per core).
//!
//! Both paths are checked for bit-identical simulated results before
//! any timing is trusted (the exhaustive equivalence proper is
//! `tests/parallel_equivalence.rs`). On hosts with at least 8 cores
//! this target *asserts* that a fig11-scale sweep fanned across cores
//! is at least 4x faster than the same sweep pinned to one thread —
//! the wall-clock claim behind the parallel harness. On narrower
//! hosts the speedups are still measured and recorded, but the gate
//! does not bite (a 2-core runner cannot hit 4x).

use lelantus_bench::results::{timed_emit, Record};
use lelantus_bench::{run_cells, sim_config, Scale};
use lelantus_os::CowStrategy;
use lelantus_sim::{ParallelEngine, SimConfig, System};
use lelantus_types::PageSize;
use lelantus_workloads::forkbench::Forkbench;
use lelantus_workloads::Workload;
use std::time::Instant;

/// Repetitions for the in-sim comparison; the minimum is the
/// noise-robust estimator (preemption only ever inflates a run).
const REPS: usize = 3;

fn min_time<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("REPS >= 1"))
}

/// Runs the fig11-scale sweep — full forkbench replays over (updated
/// bytes/page × scheme) — through `run_cells` and returns each cell's
/// simulated metrics in index order. Cells are homogeneous full
/// replays so the fan-out load-balances; `LELANTUS_THREADS` (read by
/// `run_cells`) decides the width.
fn run_sweep(total_bytes: u64) -> Vec<lelantus_sim::SimMetrics> {
    const POINTS: [u64; 6] = [1, 8, 64, 256, 1024, 4096];
    let strategies = [CowStrategy::Baseline, CowStrategy::Lelantus, CowStrategy::LelantusCow];
    run_cells(POINTS.len() * strategies.len(), |i| {
        let (point_i, strat_i) = (i / strategies.len(), i % strategies.len());
        let wl = Forkbench { total_bytes, bytes_per_page: Some(POINTS[point_i]) };
        let mut sys = System::new(sim_config(strategies[strat_i], PageSize::Regular4K));
        wl.run(&mut sys).expect("forkbench").measured
    })
}

fn main() {
    let scale = Scale::from_env();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    timed_emit("micro_parallel", || {
        let mut records = Vec::new();

        // --- in-sim sharded engine vs the serial engine ----------------
        // One crypto-heavy simulation; the parallel engine keeps the
        // timing plane on the calling thread and fans AES / data-MAC /
        // Merkle-leaf work out to shard workers at epoch barriers.
        let wl = Forkbench { total_bytes: scale.alloc_bytes(), bytes_per_page: None };
        let config = || SimConfig::new(CowStrategy::Lelantus, PageSize::Regular4K);
        let workers = cores.max(2);
        let (serial_s, (serial_run, serial_root)) = min_time(|| {
            let mut sys = System::new(config());
            let run = wl.run(&mut sys).expect("forkbench");
            sys.finish();
            let root = sys.merkle_root();
            (run, root)
        });
        let (par_s, (par_run, par_root, stats)) = min_time(|| {
            let mut eng = ParallelEngine::new(config(), workers);
            let run = wl.run(&mut eng).expect("forkbench");
            eng.finish();
            let root = eng.merkle_root();
            let stats = eng.stats();
            (run, root, stats)
        });
        assert_eq!(
            serial_run.measured, par_run.measured,
            "the sharded engine must simulate identically to the serial engine"
        );
        assert_eq!(serial_root, par_root, "the sharded engine must produce the serial root");
        let insim_speedup = serial_s / par_s;
        println!(
            "in-sim engine (forkbench, {} MB, {workers} workers): serial {:.3} s, \
             sharded {:.3} s ({:.2}x)",
            wl.total_bytes >> 20,
            serial_s,
            par_s,
            insim_speedup
        );
        println!(
            "  {} barriers, {} ops dispatched, {} cross-shard messages",
            stats.barriers, stats.ops_dispatched, stats.cross_shard_messages
        );
        records.push(Record::new("insim_serial", serial_s, "s").timed(serial_s));
        records.push(Record::new("insim_sharded", par_s, "s").timed(par_s));
        records.push(Record::new("speedup/insim_sharded", insim_speedup, "x"));
        // Deterministic for a fixed scale/horizon (and independent of
        // the worker count), so the diff gate pins it exactly.
        records.push(Record::new("insim_ops_dispatched", stats.ops_dispatched as f64, "ops"));

        // --- fig11-scale sweep: one thread vs all cores ----------------
        // `run_cells` reads `LELANTUS_THREADS`; pin it to 1 for the
        // serial measurement, clear it for the all-cores one, and put
        // the caller's value back afterwards.
        let caller_threads = std::env::var("LELANTUS_THREADS").ok();
        let total_bytes = scale.alloc_bytes();
        std::env::set_var("LELANTUS_THREADS", "1");
        let sweep_serial_start = Instant::now();
        let sweep_serial = run_sweep(total_bytes);
        let sweep_serial_s = sweep_serial_start.elapsed().as_secs_f64();
        std::env::remove_var("LELANTUS_THREADS");
        let sweep_par_start = Instant::now();
        let sweep_par = run_sweep(total_bytes);
        let sweep_par_s = sweep_par_start.elapsed().as_secs_f64();
        match caller_threads {
            Some(v) => std::env::set_var("LELANTUS_THREADS", v),
            None => std::env::remove_var("LELANTUS_THREADS"),
        }
        assert_eq!(
            sweep_serial, sweep_par,
            "the fanned-out sweep must be bit-identical to the single-thread order"
        );
        let sweep_speedup = sweep_serial_s / sweep_par_s;
        println!(
            "fig11-scale sweep ({} cells, {cores} cores): 1 thread {:.3} s, \
             all cores {:.3} s ({:.2}x)",
            sweep_serial.len(),
            sweep_serial_s,
            sweep_par_s,
            sweep_speedup
        );
        records.push(Record::new("sweep_single_thread", sweep_serial_s, "s").timed(sweep_serial_s));
        records.push(Record::new("sweep_all_cores", sweep_par_s, "s").timed(sweep_par_s));
        records.push(Record::new("speedup/sweep_all_cores", sweep_speedup, "x"));

        // --- the parallel-harness claim --------------------------------
        // Only enforced where it is achievable: 4x needs >= 8 cores
        // (the sweep is embarrassingly parallel, so 8 cores leave
        // double headroom over the gate).
        if cores >= 8 {
            assert!(
                sweep_speedup >= 4.0,
                "a fig11-scale sweep on {cores} cores must beat one thread by >=4x \
                 (got {sweep_speedup:.2}x)"
            );
        } else {
            println!("gate skipped: {cores} host core(s) < 8, 4x is not achievable");
        }
        records
    });
}
