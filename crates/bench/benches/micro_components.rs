//! Micro-benchmarks for the simulator components: the buddy
//! allocator, the set-associative cache, the counter cache, the NVM
//! device datapath (the frame-indexed line store), and the secure
//! controller's read/write/command paths.

use lelantus_bench::harness::bench;
use lelantus_bench::results::{timed_emit, Record};
use lelantus_cache::{CacheConfig, SetAssocCache};
use lelantus_core::{ControllerConfig, SchemeKind, SecureMemoryController};
use lelantus_metadata::counter_block::{CounterBlock, CounterEncoding};
use lelantus_metadata::{CounterCache, CounterCacheConfig};
use lelantus_nvm::{LineStore, NvmConfig, NvmDevice};
use lelantus_os::BuddyAllocator;
use lelantus_types::{Cycles, PhysAddr};
use std::hint::black_box;

fn main() {
    timed_emit("micro_components", || {
        let mut ms = Vec::new();

        let mut buddy = BuddyAllocator::new(0, 64 << 20);
        ms.push(bench("buddy_alloc_free_4k", || {
            let f = buddy.alloc(black_box(0)).unwrap();
            buddy.free(f, 0);
        }));

        let mut cache =
            SetAssocCache::new(CacheConfig { size_bytes: 64 << 10, ways: 8, latency: 2 });
        for i in 0..1024u64 {
            cache.insert(PhysAddr::new(i * 64), [0; 64], false);
        }
        let mut i = 0u64;
        ms.push(bench("l1_lookup_hit", || {
            i = (i + 1) % 1024;
            cache.lookup(black_box(PhysAddr::new(i * 64)))
        }));

        let mut cc = CounterCache::new(CounterCacheConfig::default());
        for region in 0..4096u64 {
            cc.insert(region, CounterBlock::fresh_regular(1), false);
        }
        let mut r = 0u64;
        ms.push(bench("counter_cache_get_hit", || {
            r = (r + 13) % 4096;
            cc.get(black_box(r))
        }));

        let block = CounterBlock::fresh_cow(42);
        ms.push(bench("counter_block_encode_resized", || {
            black_box(&block).encode(CounterEncoding::Resized)
        }));
        let bytes = block.encode(CounterEncoding::Resized);
        ms.push(bench("counter_block_decode_resized", || {
            CounterBlock::decode(black_box(&bytes), CounterEncoding::Resized)
        }));

        // The raw content store (the HashMap replacement), datapath-free.
        let mut store = LineStore::new();
        for i in 0..4096u64 {
            store.insert(i * 64, [1; 64]);
        }
        let mut i = 0u64;
        ms.push(bench("line_store_insert_get", || {
            i = (i + 1) % 4096;
            store.insert(i * 64, [2; 64]);
            store.get(black_box(i * 64))
        }));

        let mut dev = NvmDevice::new(NvmConfig::default());
        let mut i = 0u64;
        ms.push(bench("nvm_write_read_line", || {
            i = (i + 1) % 4096;
            let addr = PhysAddr::new(i * 64);
            dev.write_line(addr, [1; 64], Cycles::ZERO);
            dev.read_line(black_box(addr), Cycles::ZERO)
        }));

        let mut ctrl = SecureMemoryController::new(ControllerConfig {
            data_bytes: 64 << 20,
            ..ControllerConfig::for_scheme(SchemeKind::LelantusResized)
        });
        let base = PhysAddr::new(4 << 20);
        let mut i = 0u64;
        ms.push(bench("controller_write_line", || {
            i = (i + 1) % 16384;
            ctrl.write_data_line(base + i * 64, [2; 64], Cycles::ZERO)
        }));
        let mut i = 0u64;
        ms.push(bench("controller_read_line", || {
            i = (i + 1) % 16384;
            ctrl.read_data_line(black_box(base + i * 64), Cycles::ZERO)
        }));
        let mut i = 0u64;
        ms.push(bench("controller_cmd_page_copy", || {
            i = (i + 1) % 4096;
            ctrl.cmd_page_copy(base, base + (8 << 20) + i * 4096, Cycles::ZERO)
        }));

        ms.iter()
            .map(|m| Record::new(&m.name, m.ns_per_iter, "ns/iter").timed(m.elapsed_s))
            .collect()
    });
}
